// Randomtown reproduces the paper's random-deployment comparison (Figures
// 20–22): on the 59-node town scenario, anchor-based multilateration
// localizes only the nodes that can reach three consistent anchors, while
// anchor-free LSS with the soft constraint localizes everyone.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "randomtown:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))

	dep := deploy.Town(rng)
	set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
	if err != nil {
		return err
	}
	fmt.Printf("town: %d nodes, %d anchors, %d measured pairs within 22 m\n",
		dep.N(), len(dep.Anchors), set.Len())

	// --- Multilateration with the 18 anchors (Figure 20) ---
	anchors := make(map[int]geom.Point, len(dep.Anchors))
	for _, a := range dep.Anchors {
		anchors[a] = dep.Positions[a]
	}
	mlCfg := core.DefaultMultilatConfig()
	mlCfg.ConsistencyRadius = 0 // per the paper's footnote 5
	ml, err := core.SolveMultilateration(set, anchors, mlCfg)
	if err != nil {
		return err
	}
	mlAvg, mlWorst, err := eval.AvgErrorAbsolute(ml.Positions, dep.Positions)
	if err != nil {
		return err
	}
	fmt.Printf("\nmultilateration: localized %d of %d non-anchors\n",
		len(ml.Localized), len(dep.NonAnchors()))
	fmt.Printf("  average error %.3f m, worst %.3f m (paper: 35 localized, 0.950 m)\n", mlAvg, mlWorst)

	// --- Progressive multilateration (the Section 4.1.1 extension) ---
	mlCfg.Progressive = true
	mlProg, err := core.SolveMultilateration(set, anchors, mlCfg)
	if err != nil {
		return err
	}
	progAvg, _, err := eval.AvgErrorAbsolute(mlProg.Positions, dep.Positions)
	if err != nil {
		return err
	}
	fmt.Printf("progressive multilateration: localized %d, average error %.3f m\n",
		len(mlProg.Localized), progAvg)

	// --- Anchor-free LSS with the soft constraint (Figure 21) ---
	lss, err := core.SolveLSS(set, core.DefaultLSSConfig(9), rng)
	if err != nil {
		return err
	}
	a, err := eval.Fit(lss.Positions, dep.Positions)
	if err != nil {
		return err
	}
	fmt.Printf("\nLSS (no anchors, dmin=9 m): all %d nodes localized\n", dep.N())
	fmt.Printf("  average error %.3f m, worst %.3f m (paper: 0.548 m)\n", a.AvgError, a.MaxError)

	// --- Classical MDS baseline: it cannot run at all on this input ---
	if _, err := core.SolveClassicalMDS(set); err != nil {
		fmt.Printf("\nclassical MDS: %v\n", err)
		fmt.Println("  (the paper's motivation for LSS: classical MDS needs every pairwise distance)")
	}
	return nil
}
