// Gridfield reproduces the paper's main field campaign end-to-end: the
// 46-node offset-grid deployment on a grassy field (Figure 5), the refined
// acoustic ranging service of Section 3 (chirp patterns, multi-chirp
// accumulation, k-of-m detection, median filtering, bidirectional
// consistency), and centralized LSS localization with the minimum-spacing
// soft constraint (Figure 18).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridfield:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))

	// The 7×7 offset grid of Figure 5, using 46 of the 49 positions as in
	// the paper's campaign.
	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:46]
	fmt.Printf("deployment: %d nodes on a %s (min spacing %.2f m)\n",
		dep.N(), dep.Name, dep.MinSpacing())

	// The refined ranging service in the grassy-field environment,
	// calibrated like the paper's: 10-chirp patterns, T=2, 6-of-32.
	cfg := ranging.DefaultConfig(acoustics.Grass())
	svc, err := ranging.NewService(cfg, dep, rng)
	if err != nil {
		return err
	}
	fmt.Printf("ranging: δconst calibration offset %.2f m\n", svc.CalibrationOffset())

	// Three rounds of measurements, like the paper's campaign.
	raw, err := svc.Campaign(3, 21)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d raw directed readings\n", raw.TotalReadings())

	// Statistical filtering + bidirectional-tolerant merge.
	directed := raw.Filter(measure.FilterMedian, 5)
	set, err := measure.Merge(dep.N(), directed, measure.DefaultMergeOptions())
	if err != nil {
		return err
	}
	errs, err := set.Errors(dep)
	if err != nil {
		return err
	}
	s, err := stats.Summarize(errs)
	if err != nil {
		return err
	}
	fmt.Printf("measurement set: %d pairs, median |error| %.3f m, worst %.2f m\n",
		set.Len(), s.AbsMed, maxAbs(s.Min, s.Max))

	// Error histogram, Figure 6 style.
	h, err := stats.NewHistogram(-2, 2, 16)
	if err != nil {
		return err
	}
	h.AddAll(errs)
	fmt.Println("\nranging error histogram (m):")
	fmt.Print(h.Render(40))

	// Centralized LSS with the paper's soft constraint (dmin from the
	// grid, wij=1, wD=10).
	lssCfg := core.DefaultLSSConfig(dep.MinSpacing())
	res, err := core.SolveLSS(set, lssCfg, rng)
	if err != nil {
		return err
	}
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		return err
	}
	fmt.Printf("\nLSS localization: average error %.3f m, worst %.3f m (paper: 2.2 m on sparser field data)\n",
		a.AvgError, a.MaxError)
	return nil
}

func maxAbs(a, b float64) float64 {
	if -a > b {
		return -a
	}
	return b
}
