// Quickstart: localize a 10-node network from noisy pairwise distance
// measurements using centralized LSS with the minimum-spacing soft
// constraint — the paper's primary contribution — and report the average
// localization error after best-fit alignment.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))

	// 1. A small deployment: 10 nodes scattered over 40×40 m with at least
	//    8 m separation.
	dep, err := deploy.UniformRandom(10, 40, 40, 8, rng)
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d nodes, min spacing %.1f m\n", dep.N(), dep.MinSpacing())

	// 2. Distance measurements: every pair within 25 m, with N(0, 0.33 m)
	//    noise — the paper's simulated-measurement model.
	set, err := measure.Generate(dep, 25, measure.GaussianNoise, rng)
	if err != nil {
		return err
	}
	fmt.Printf("measurements: %d of %d pairs (avg degree %.1f)\n",
		set.Len(), dep.N()*(dep.N()-1)/2, set.AvgDegree())

	// 3. Localize with LSS + the 8 m minimum-spacing soft constraint. No
	//    anchors are needed; the result is a relative map.
	cfg := core.DefaultLSSConfig(8)
	res, err := core.SolveLSS(set, cfg, rng)
	if err != nil {
		return err
	}
	fmt.Printf("solver: final objective %.3f after %d gradient steps\n", res.Error, res.Iterations)

	// 4. Evaluate against ground truth: translate/rotate/flip the relative
	//    map onto the true positions and measure residuals.
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		return err
	}
	fmt.Printf("average localization error: %.3f m (worst %.3f m)\n\n", a.AvgError, a.MaxError)

	fmt.Println("node   truth (x, y)        estimate (x, y)      error")
	for i, p := range a.Aligned {
		t := dep.Positions[i]
		fmt.Printf("%4d   (%6.2f, %6.2f)    (%6.2f, %6.2f)    %.3f m\n",
			i, t.X, t.Y, p.X, p.Y, a.Errors[i])
	}
	return nil
}
