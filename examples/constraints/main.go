// Constraints demonstrates the paper's Section 3.5.1 deployment-constraint
// filtering and the anchored-LSS extension: on a surveyed grid deployment
// the set of legal inter-node distances is known in advance, so gross
// ranging outliers can be screened out before localization; pinning a few
// surveyed anchors then yields positions directly in the absolute frame.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "constraints:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(9))
	dep := deploy.PaperGrid()

	// Clean grid measurements plus injected gross outliers (faulty
	// hardware, echoes).
	set, err := measure.Generate(dep, 22, 0.15, rng)
	if err != nil {
		return err
	}
	all := set.All()
	outliers := 0
	for k := 0; k < len(all); k += 9 {
		m := all[k]
		if err := set.Add(m.Pair.Lo, m.Pair.Hi, m.Distance+3.5+rng.Float64()*4, m.Weight); err != nil {
			return err
		}
		outliers++
	}
	fmt.Printf("measurements: %d pairs, %d corrupted with 3.5-7.5 m outliers\n", set.Len(), outliers)

	// The grid admits a small set of legal distances; filter against it.
	allowed := measure.KnownDistances(dep, 22, 0.1)
	fmt.Printf("grid admits %d distinct inter-node distances ≤22 m: ", len(allowed))
	for _, d := range allowed {
		fmt.Printf("%.2f ", d)
	}
	fmt.Println("m")

	before := set.Clone()
	removed, err := measure.FilterKnownDistances(set, allowed, 0.45, measure.ConstraintDrop)
	if err != nil {
		return err
	}
	fmt.Printf("constraint filter removed %d measurements\n\n", removed)

	// Localize with anchored LSS: three surveyed corners pin the absolute
	// frame.
	anchors := map[int]geom.Point{
		0:  dep.Positions[0],
		6:  dep.Positions[6],
		42: dep.Positions[42],
	}
	solve := func(s *measure.Set, label string) error {
		cfg := core.DefaultLSSConfig(9)
		cfg.Anchors = anchors
		res, err := core.SolveLSS(s, cfg, rand.New(rand.NewSource(13)))
		if err != nil {
			return err
		}
		est := make(map[int]geom.Point, len(res.Positions))
		for i, p := range res.Positions {
			est[i] = p
		}
		avg, worst, err := eval.AvgErrorAbsolute(est, dep.Positions)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s avg error %.3f m, worst %.3f m (absolute frame)\n", label, avg, worst)
		return nil
	}
	if err := solve(before, "without constraint filter:"); err != nil {
		return err
	}
	return solve(set, "with constraint filter:")
}
