// Distributed reproduces the paper's distributed-localization comparison
// (Figures 24/25): per-node local LSS maps, pairwise coordinate-frame
// transforms from shared neighbors, and a flooding alignment pass — run
// once on sparse field-density measurements (where transform errors
// amplify and propagate) and once on an augmented set (where the
// distributed result approaches the centralized one).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/measure"
	"resilientloc/internal/radio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))

	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:46]

	// Sparse, field-like density: 124 pairs for 46 nodes (the paper's 247
	// directed measurements).
	sparse, err := measure.Generate(dep, 21, 0.4, rng)
	if err != nil {
		return err
	}
	measure.Sparsify(sparse, 124, rng)

	// Extended density: the sparse set plus 370 simulated distances within
	// 22 m, the paper's Figure 25 procedure.
	extended := sparse.Clone()
	added, err := measure.Augment(extended, dep, 22, measure.GaussianNoise, 370, rng)
	if err != nil {
		return err
	}

	const root = 30 // nearest grid node to the paper's (27, 36) root
	for _, tc := range []struct {
		name string
		set  *measure.Set
	}{
		{fmt.Sprintf("sparse (%d pairs)", sparse.Len()), sparse},
		{fmt.Sprintf("extended (%d pairs, +%d simulated)", extended.Len(), added), extended},
	} {
		cfg := core.DefaultDistributedConfig(root, 9)
		res, err := core.SolveDistributed(tc.set, cfg, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  local maps: %d nodes built one; %d pairwise transforms; %d messages\n",
			len(res.LocalMapSizes), res.Transforms, res.MessagesSent)
		fmt.Printf("  aligned: %d of %d nodes\n", len(res.Localized), dep.N())
		if len(res.Localized) >= 2 {
			a, err := eval.FitSubset(res.Positions, dep.Positions, res.Localized)
			if err != nil {
				return err
			}
			fmt.Printf("  average error %.3f m, worst %.3f m\n", a.AvgError, a.MaxError)
		}
		fmt.Println()
	}

	// Link loss: the flood tolerates moderate loss thanks to redundant
	// paths but degrades when most transmissions fail.
	fmt.Println("alignment coverage under link loss (extended set):")
	for _, loss := range []float64{0, 0.3, 0.6, 0.9} {
		cfg := core.DefaultDistributedConfig(root, 9)
		cfg.Link = radio.LinkModel{LossRate: loss}
		res, err := core.SolveDistributed(extended, cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			return err
		}
		fmt.Printf("  loss %.0f%%: %d of %d nodes aligned\n", loss*100, len(res.Localized), dep.N())
	}
	return nil
}
