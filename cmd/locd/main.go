// Command locd is the long-lived localization-result service: an HTTP
// front-end over the same spec-driven campaign runner the CLIs use, served
// by internal/locsrv. Clients submit declarative job specs (spec.JobSpec)
// and poll — or stream — results over the wire; specs restricted to a
// trial sub-range execute partially, which is what the distributed
// coordinator (internal/engine/coord, cmd/locc) fans out across a fleet of
// locd workers.
//
// Endpoints (see internal/locsrv for the wire contract):
//
//	POST /v1/jobs             submit one spec or an array; returns job IDs
//	GET  /v1/jobs/{id}        job status, and the result once done
//	GET  /v1/jobs/{id}/events NDJSON stream of trial-progress events
//	GET  /v1/cache/{key}      raw result-cache entry by content address
//	POST /v1/cache/ranges     range-keyed cache probe for coordinator crash-resume
//	POST /v1/fleet/announce   fleet-membership announce/heartbeat/leave
//	GET  /v1/fleet            live fleet membership (the registry view)
//	GET  /metrics             Prometheus text exposition of all counters
//	GET  /healthz             liveness + queue depth, in-flight jobs, budget saturation
//
// Usage:
//
//	locd [-addr 127.0.0.1:8090] [-parallel W] [-suite-parallel C]
//	     [-cache DIR | -no-cache] [-cache-gc=off] [-debug-addr 127.0.0.1:6060]
//	     [-registry URL] [-advertise URL] [-announce-interval 3s]
//
// -debug-addr starts a second listener serving net/http/pprof under /debug/
// plus a /metrics alias, kept off the job-serving address so profiling
// endpoints are never exposed to job clients by accident.
//
// Every locd serves a fleet registry; -registry joins this worker to
// another locd's registry (or its own — a one-daemon registry bootstrap):
// it announces immediately, heartbeats every -announce-interval, and sends
// a leaving announce on shutdown. -advertise is the base URL peers should
// reach this worker at, defaulting to http://<addr>. Coordinators pointed
// at the registry with -discover pick the whole fleet up, including
// workers that join mid-run.
//
// Each submitted batch executes through run.ExecuteAll: up to
// -suite-parallel campaigns overlap (default 0 = GOMAXPROCS — this is a
// server), largest first, and every campaign draws shard slots from the
// process-wide engine.SharedBudget, so concurrent batches share the machine
// instead of oversubscribing it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/locsrv"
	"resilientloc/internal/obs"
)

func main() {
	if err := realMain(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locd:", err)
		os.Exit(1)
	}
}

func realMain(args []string) error {
	fs := flag.NewFlagSet("locd", flag.ContinueOnError)
	var opts run.Options
	// Only the environment flags the daemon consumes are registered: job
	// parameters (seed, trials, shard size) come from each submitted spec,
	// and there is no terminal to throttle repaints for.
	addr := fs.String("addr", "127.0.0.1:8090", "listen address")
	debugAddr := fs.String("debug-addr", "",
		"optional debug listen address serving net/http/pprof and /metrics (e.g. 127.0.0.1:6060)")
	fs.IntVar(&opts.Workers, "parallel", 0, "worker goroutines per campaign (0 = GOMAXPROCS)")
	fs.StringVar(&opts.CacheDir, "cache", "", "result cache directory (default: the per-user cache dir)")
	fs.BoolVar(&opts.NoCache, "no-cache", false, "disable the on-disk result cache")
	fs.StringVar(&opts.CacheGC, "cache-gc", "on", "opportunistic cache garbage collection (on|off)")
	fs.IntVar(&opts.SuiteParallel, "suite-parallel", 0,
		"campaigns to overlap per submitted batch (0 = GOMAXPROCS)")
	registry := fs.String("registry", "",
		"fleet registry base URL to announce this worker to (any locd serves one, including this one)")
	advertise := fs.String("advertise", "",
		"base URL peers should reach this worker at (default: http://<addr>)")
	announceEvery := fs.Duration("announce-interval", 0,
		"heartbeat interval for -registry announces (0 = the fleet default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := locsrv.New(opts)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	announced := make(chan struct{})
	if *registry != "" {
		self := *advertise
		if self == "" {
			self = "http://" + *addr
		}
		ann := &fleet.Announcer{
			Registry: *registry,
			Self: fleet.Announce{
				URL:         self,
				Capacity:    engine.SharedBudget().Cap(),
				Fingerprint: cache.Fingerprint(),
			},
			Interval: *announceEvery,
			Warn: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "locd: "+format+"\n", args...)
			},
		}
		go func() {
			defer close(announced)
			fmt.Fprintf(os.Stderr, "locd: announcing %s to fleet registry %s\n", self, *registry)
			if err := ann.Run(ctx); err != nil {
				errc <- fmt.Errorf("fleet announcer: %w", err)
			}
		}()
	} else {
		close(announced)
	}
	if *debugAddr != "" {
		ds := &http.Server{Addr: *debugAddr, Handler: debugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "locd: debug listening on %s (pprof, metrics)\n", *debugAddr)
			if err := ds.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug server: %w", err)
			}
		}()
		defer ds.Close()
	}
	go func() {
		fmt.Fprintf(os.Stderr, "locd: listening on %s (cache: %s)\n", *addr, orOff(srv.Session().CacheDir()))
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Let the announcer send its leaving announce so the registry drops
		// this worker immediately instead of waiting out the eviction window.
		select {
		case <-announced:
		case <-time.After(3 * time.Second):
		}
		// Unblock long-lived event streams first: Shutdown waits for open
		// connections, and an events subscriber on a running job would
		// otherwise hold the daemon until the timeout on every restart.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// debugHandler builds the -debug-addr mux: the standard pprof handlers,
// registered explicitly (importing net/http/pprof for its side effect would
// publish them on http.DefaultServeMux, which the job listener must never
// serve), plus a /metrics alias so one scrape target covers both listeners.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default().WritePrometheus(w)
	})
	return mux
}

func orOff(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}
