// Command locc is the distributed job coordinator CLI: it splits each job's
// trial space into trial_range sub-jobs, fans them out across a fleet of
// locd workers, retries failed or stalled ranges on the survivors, and
// merges the returned partial aggregates into the job's full result —
// byte-identical to running the same spec in one process (pinned by the
// golden corpus; execution metadata aside).
//
// Usage:
//
//	locc -workers http://host1:8090,http://host2:8090 -spec jobs.json [-json]
//	locc -workers ... -kind scenario -id multilat-town [-seed S] [-trials N] [-shard-size N]
//	locc -workers ... -kind scenario -id mobility-waypoint -param speed_mps=2.5
//	locc -workers ... -kind figure -id maxrange [-seed S] [-ranges N] [-stall-timeout 5m]
//	locc -workers ... -kind figure -id maxrange -trace out.json
//	locc -discover http://registry:8090 -kind scenario -id multilat-town [-resume]
//
// On a terminal, progress renders as a live per-worker scoreboard (ranges
// won, trials/sec, retries, stall hedges, steals). -trace writes the run's
// full span tree — coordinator ranges and attempts, plus each winning
// worker's job and engine-shard spans grafted beneath them — as Chrome
// trace_event JSON, loadable in chrome://tracing or Perfetto.
//
// Jobs run sequentially; each job's trials are what distribute. By default
// scheduling is elastic: workers draw shard-aligned chunks, idle workers
// steal unsubmitted work, and with -discover the fleet is read — and
// re-read mid-run — from a membership registry (any locd serves one), so
// workers that join while a job runs are put to work. -ranges N pins the
// old fixed N-way split instead. -resume probes the fleet's range-keyed
// caches for sub-ranges a crashed coordinator's run already completed and
// re-executes only the gaps. -reuse (on by default) extends that probe to
// ranges banked under a *different* trial count, so growing a previously
// coordinated 1024-trial run to 4096 computes only [1024, 4096); -ci-target
// keeps doubling the trial count until the 95% CI half-width of the
// stopping metric falls below the target, each round extending the last
// through the same cache. Every sub-job is content-addressed on the worker
// fleet — its spec hash is the job ID and its range-extended cache key the
// on-disk record — so retried or duplicated ranges are deduplicated, not
// recomputed, and a resumed or reused result is byte-identical to an
// uninterrupted cold one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"resilientloc/internal/engine/coord"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "locc:", err)
		os.Exit(1)
	}
}

// buildSpecs compiles the CLI selection into job specs: a spec file, or a
// single job from -kind/-id plus the parameter flags (including any -param
// operating-point selections, which become part of the job's content
// address exactly as in a spec file's params object).
func buildSpecs(specFile, kind, id string, seed int64, trials, shardSize int, p params.Map) ([]spec.JobSpec, error) {
	if specFile != "" {
		if kind != "" || id != "" {
			return nil, fmt.Errorf("use either -spec or -kind/-id, not both")
		}
		if len(p) > 0 {
			return nil, fmt.Errorf("-param cannot be combined with a spec file, which carries its own job parameters")
		}
		return spec.LoadFile(specFile)
	}
	if id == "" {
		return nil, fmt.Errorf("nothing to run: give -spec file.json or -kind KIND -id ID")
	}
	sp := spec.JobSpec{Kind: kind, ID: id, Seed: seed, Trials: trials, ShardSize: shardSize}
	if len(p) > 0 {
		sp.Params = p.Clone()
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return []spec.JobSpec{sp}, nil
}

func realMain(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("locc", flag.ContinueOnError)
	workersFlag := fs.String("workers", "", "comma-separated locd worker base URLs (required unless -discover is set)")
	discover := fs.String("discover", "",
		"fleet registry base URL to discover workers from (any locd serves one); re-polled mid-run for joiners")
	discoverEvery := fs.Duration("discover-interval", 0,
		"registry re-poll period with -discover (0 = default)")
	resume := fs.Bool("resume", false,
		"probe the fleet's range-keyed caches for a crashed coordinator's finished sub-ranges and run only the gaps")
	reuse := fs.Bool("reuse", true,
		"extend cached ranges banked under other trial counts (prefix reuse); -reuse=false forces a cold run")
	ciTarget := fs.Float64("ci-target", 0,
		"auto-trials mode: double the trial count until the 95% CI half-width of the stopping metric is at most this (scenario jobs; overrides nothing when 0)")
	ciMetric := fs.String("ci-metric", "",
		"stopping metric for -ci-target (default: the report's headline metric)")
	ranges := fs.Int("ranges", 0, "trial sub-ranges per job (0 = elastic chunked scheduling with work stealing)")
	stall := fs.Duration("stall-timeout", 0,
		"event-stream silence before a range is hedged onto another worker (0 = default)")
	specFile := fs.String("spec", "", "JSON job-spec file to execute (one object or an array)")
	kind := fs.String("kind", "", `job kind for -id: "figure" or "scenario"`)
	id := fs.String("id", "", "job id to run (an experiment ID or scenario name)")
	seed := fs.Int64("seed", 1, "base random seed")
	trials := fs.Int("trials", 0, "trial-count override (scenario jobs only)")
	shardSize := fs.Int("shard-size", 0, "shard-size override (scenario jobs only)")
	var pf params.FlagValue
	fs.Var(&pf, "param", "job parameter as name=value (repeatable; parameterized factories and experiments only)")
	asJSON := fs.Bool("json", false, "emit results as a JSON array (figures and reports, naked)")
	progress := fs.Bool("progress", true,
		"print aggregate trial progress and a live per-worker scoreboard to stderr")
	traceFile := fs.String("trace", "",
		"write the run's span tree (coordinator ranges, worker jobs, engine shards) as Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers := coord.ParseWorkers(*workersFlag)
	if len(workers) == 0 && *discover == "" {
		return fmt.Errorf("no workers: -workers http://host:8090[,http://host2:8090] or -discover http://registry:8090 is required")
	}
	specs, err := buildSpecs(*specFile, *kind, *id, *seed, *trials, *shardSize, pf.M)
	if err != nil {
		return err
	}
	if *ciTarget > 0 {
		if *specFile != "" {
			return fmt.Errorf("-ci-target cannot be combined with a spec file; put auto_trials in the spec instead")
		}
		for i := range specs {
			specs[i].AutoTrials = &spec.AutoTrials{CITarget: *ciTarget, Metric: *ciMetric}
			if err := specs[i].Validate(); err != nil {
				return err
			}
		}
	}

	// One tracer spans the whole invocation: each job's coordinator spans
	// (and the worker subtrees grafted under them) accumulate into one
	// Chrome trace file.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	var results []json.RawMessage
	for _, sp := range specs {
		opts := coord.Options{
			Workers:          workers,
			Ranges:           *ranges,
			Discover:         *discover,
			DiscoverInterval: *discoverEvery,
			Resume:           *resume,
			Reuse:            *reuse,
			StallTimeout:     *stall,
			Warnings:         errOut,
		}
		var sb *coord.Scoreboard
		if *progress && !*asJSON {
			sb = coord.NewScoreboard(errOut, sp.ID)
			opts.OnProgress = sb.Progress
			opts.OnScoreboard = sb.Update
		}
		start := time.Now()
		// ExecuteAuto delegates to Execute for fixed-count specs, so one call
		// covers both modes.
		val, st, err := coord.ExecuteAuto(ctx, sp, opts)
		sb.Final()
		if err != nil {
			return err
		}
		if *asJSON {
			raw, err := nakedResult(val)
			if err != nil {
				return err
			}
			results = append(results, raw)
			continue
		}
		switch {
		case val.Figure != nil:
			fmt.Fprint(out, val.Figure.Render())
		case val.Report != nil:
			val.Report.WriteSummary(out, fmt.Sprintf("%d workers, %.2fs",
				val.Report.Workers, val.Report.ElapsedSeconds))
		default:
			return fmt.Errorf("%s: coordinator returned no figure or report", sp.ID)
		}
		extra := ""
		if st.Steals > 0 {
			extra += fmt.Sprintf(", %d steals", st.Steals)
		}
		if st.Joined > 0 || st.Left > 0 {
			extra += fmt.Sprintf(", fleet %+d/%+d", st.Joined, -st.Left)
		}
		if st.ResumedRanges > 0 {
			extra += fmt.Sprintf(", resumed %d trials in %d ranges", st.ResumedTrials, st.ResumedRanges)
		}
		if st.ReusedRanges > 0 {
			extra += fmt.Sprintf(", reused %d trials in %d ranges", st.ReusedTrials, st.ReusedRanges)
		}
		fmt.Fprintf(out, "  (distributed: %d ranges over %d workers, %d retries (%d hedged, %d dedup losses)%s, %v)\n\n",
			st.Ranges, st.Workers, st.Retries, st.Hedges, st.DedupLosses, extra,
			time.Since(start).Round(time.Millisecond))
	}
	if tracer != nil {
		if err := tracer.WriteChromeTraceFile(*traceFile); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// nakedResult strips the Value envelope so -json output matches the shape
// of cmd/experiments -json (figures) and cmd/scenarios -json (reports).
func nakedResult(val *spec.Value) (json.RawMessage, error) {
	switch {
	case val.Figure != nil:
		return json.Marshal(val.Figure)
	case val.Report != nil:
		return json.Marshal(val.Report)
	}
	return nil, fmt.Errorf("coordinator returned no figure or report")
}
