package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/experiments"
	"resilientloc/internal/locsrv"
)

// twoWorkers stands up two real locd services and returns their -workers
// flag value.
func twoWorkers(t *testing.T) string {
	t.Helper()
	var urls []string
	for i := 0; i < 2; i++ {
		srv, err := locsrv.New(run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { srv.Close(); hs.Close() })
		urls = append(urls, hs.URL)
	}
	return strings.Join(urls, ",")
}

// TestDistributedScenarioMatchesLocal: a scenario coordinated over two
// workers emits the same aggregates as cmd/scenarios would locally (the
// JSON shapes match; execution metadata aside).
func TestDistributedScenarioMatchesLocal(t *testing.T) {
	workers := twoWorkers(t)
	var buf bytes.Buffer
	err := realMain([]string{"-workers", workers, "-kind", "scenario", "-id", "multilat-town",
		"-seed", "2", "-trials", "6", "-json"}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*engine.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || reports[0].Scenario != "multilat-town" || reports[0].Trials != 6 {
		t.Fatalf("unexpected reports: %+v", reports)
	}

	// Reference: the same job through the local runner.
	sess, err := run.NewSession(run.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	val, _, err := run.ExecuteSpec(sess, spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 2, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, want := *reports[0], *val.Report
	got.ClearExecutionMeta()
	want.ClearExecutionMeta()
	gj, _ := json.Marshal(&got)
	wj, _ := json.Marshal(&want)
	if string(gj) != string(wj) {
		t.Errorf("distributed aggregates diverged\n got %s\nwant %s", gj, wj)
	}
}

// TestDistributedFigureMatchesGolden: a multi-trial figure over the fleet
// renders byte-identically to the golden corpus, from a spec file.
func TestDistributedFigureMatchesGolden(t *testing.T) {
	workers := twoWorkers(t)
	specFile := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(specFile, []byte(`{"kind":"figure","id":"maxrange","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := realMain([]string{"-workers", workers, "-ranges", "3", "-spec", specFile, "-json"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	var results []*experiments.Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", "maxrange_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Render() != string(want) {
		t.Error("distributed maxrange diverged from golden output")
	}

	// Text mode renders the figure plus a distribution footer.
	buf.Reset()
	if err := realMain([]string{"-workers", workers, "-spec", specFile, "-progress=false"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "maxrange") || !strings.Contains(buf.String(), "(distributed:") {
		t.Errorf("text output missing figure or footer:\n%s", buf.String())
	}
}

// TestDistributedParamPointMatchesLocal: a parameterized factory point
// addressed with -param distributes across the fleet and merges to the same
// aggregates as the local runner — the operating point travels in the
// sub-jobs' content addresses.
func TestDistributedParamPointMatchesLocal(t *testing.T) {
	workers := twoWorkers(t)
	var buf bytes.Buffer
	err := realMain([]string{"-workers", workers, "-kind", "scenario", "-id", "mobility-waypoint",
		"-param", "speed_mps=2.5", "-seed", "2", "-trials", "4", "-json"}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*engine.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || reports[0].Scenario != "mobility-waypoint" || reports[0].Trials != 4 {
		t.Fatalf("unexpected reports: %+v", reports)
	}

	sess, err := run.NewSession(run.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	val, _, err := run.ExecuteSpec(sess, spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint",
		Seed: 2, Trials: 4, Params: params.Map{"speed_mps": params.Num(2.5)}})
	if err != nil {
		t.Fatal(err)
	}
	got, want := *reports[0], *val.Report
	got.ClearExecutionMeta()
	want.ClearExecutionMeta()
	gj, _ := json.Marshal(&got)
	wj, _ := json.Marshal(&want)
	if string(gj) != string(wj) {
		t.Errorf("distributed parameterized aggregates diverged\n got %s\nwant %s", gj, wj)
	}
}

func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},                         // no workers
		{"-workers", "http://x:1"}, // nothing to run
		{"-workers", "http://x:1", "-spec", "a.json", "-id", "b", "-kind", "scenario"},                  // both selections
		{"-workers", "http://x:1", "-kind", "bogus", "-id", "x"},                                        // bad kind
		{"-workers", "http://x:1", "-spec", "a.json", "-param", "x=1"},                                  // params vs spec file
		{"-workers", "http://x:1", "-kind", "scenario", "-id", "mobility-waypoint", "-param", "warp=9"}, // unknown param
	} {
		if err := realMain(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestReuseExtensionThroughLocc is the CLI acceptance path for prefix
// reuse: a 1024-trial scenario coordinated onto a worker, then the same
// spec at 4096 trials against the same worker cache, must reuse the full
// 1024 cached trials (reported in the summary footer) and emit aggregates
// identical to a cold local 4096-trial run.
func TestReuseExtensionThroughLocc(t *testing.T) {
	srv, err := locsrv.New(run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Close(); hs.Close() })

	gridArgs := func(trials string, extra ...string) []string {
		return append([]string{"-workers", hs.URL, "-kind", "scenario", "-id", "multilat-grid",
			"-param", "rows=3", "-param", "cols=4", "-seed", "1", "-trials", trials, "-progress=false"}, extra...)
	}
	if err := realMain(gridArgs("1024"), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if err := realMain(gridArgs("4096"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "reused 1024 trials") {
		t.Errorf("summary does not report the 1024 reused trials:\n%s%s", out.String(), errOut.String())
	}

	out.Reset()
	if err := realMain(gridArgs("4096", "-json"), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var reports []*engine.Report
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}

	sess, err := run.NewSession(run.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	val, _, err := run.ExecuteSpec(sess, spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-grid",
		Seed: 1, Trials: 4096, Params: params.Map{"rows": params.Num(3), "cols": params.Num(4)}})
	if err != nil {
		t.Fatal(err)
	}
	got, want := *reports[0], *val.Report
	got.ClearExecutionMeta()
	want.ClearExecutionMeta()
	gj, _ := json.Marshal(&got)
	wj, _ := json.Marshal(&want)
	if string(gj) != string(wj) {
		t.Errorf("extended distributed aggregates diverged from cold local run\n got %s\nwant %s", gj, wj)
	}
}

// TestCITargetThroughLocc: -ci-target drives the distributed auto-trials
// ladder; a generous target converges on the scenario's default count.
func TestCITargetThroughLocc(t *testing.T) {
	workers := twoWorkers(t)
	var buf bytes.Buffer
	err := realMain([]string{"-workers", workers, "-kind", "scenario", "-id", "multilat-town",
		"-seed", "2", "-ci-target", "1e9", "-json", "-progress=false"}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*engine.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || reports[0].Trials == 0 {
		t.Fatalf("unexpected reports: %+v", reports)
	}

	// -ci-target is a spec-construction shorthand and cannot restate a spec
	// file's contents.
	specFile := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(specFile, []byte(`{"kind":"scenario","id":"multilat-town"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"-workers", workers, "-spec", specFile, "-ci-target", "0.5"},
		io.Discard, io.Discard); err == nil {
		t.Error("-ci-target with a spec file accepted")
	}
}
