// Command localize reads a distance-measurement CSV (src,dst,distance[,weight])
// and computes node positions with one of the paper's algorithms.
//
// Usage:
//
//	localize -algo lss|multilat|mds|mdsmap|distributed
//	         [-measurements FILE] [-anchors FILE] [-dmin D] [-root N] [-seed S]
//
// With -algo multilat an anchors file (id,x,y) is required; the output is in
// the anchors' absolute frame. All other algorithms emit a relative map.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"resilientloc/internal/core"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "localize:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("localize", flag.ContinueOnError)
	algo := fs.String("algo", "lss", "algorithm: lss, multilat, mds, mdsmap, distributed")
	measFile := fs.String("measurements", "-", "measurement CSV file, '-' for stdin")
	anchorFile := fs.String("anchors", "", "anchor CSV file (id,x,y); required for multilat")
	dmin := fs.Float64("dmin", 0, "minimum node spacing soft constraint for lss/distributed, meters (0 disables)")
	root := fs.Int("root", 0, "root node for distributed alignment")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *algo {
	case "lss", "mds", "mdsmap", "multilat", "distributed":
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if *algo == "multilat" && *anchorFile == "" {
		return fmt.Errorf("multilat requires -anchors")
	}

	var in io.Reader = os.Stdin
	if *measFile != "-" {
		f, err := os.Open(*measFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	set, err := readMeasurements(in)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	switch *algo {
	case "lss":
		res, err := core.SolveLSS(set, core.DefaultLSSConfig(*dmin), rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# lss n=%d pairs=%d objective=%.4f\n", set.N(), set.Len(), res.Error)
		writePositions(stdout, res.Positions)
	case "mds":
		pts, err := core.SolveClassicalMDS(set)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# classical-mds n=%d\n", set.N())
		writePositions(stdout, pts)
	case "mdsmap":
		pts, err := core.SolveMDSMap(set)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# mds-map n=%d\n", set.N())
		writePositions(stdout, pts)
	case "multilat":
		anchors, err := readAnchors(*anchorFile)
		if err != nil {
			return err
		}
		res, err := core.SolveMultilateration(set, anchors, core.DefaultMultilatConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# multilat n=%d anchors=%d localized=%d anchors_per_node=%.2f\n",
			set.N(), len(anchors), len(res.Localized), res.AvgAnchorsPerNode)
		writePositionMap(stdout, res.Positions)
	case "distributed":
		cfg := core.DefaultDistributedConfig(*root, *dmin)
		res, err := core.SolveDistributed(set, cfg, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# distributed n=%d root=%d aligned=%d messages=%d\n",
			set.N(), *root, len(res.Localized), res.MessagesSent)
		writePositionMap(stdout, res.Positions)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// readMeasurements parses src,dst,distance[,weight] CSV lines. Lines
// beginning with '#' are comments. Node count is inferred from the largest
// index.
func readMeasurements(r io.Reader) (*measure.Set, error) {
	type row struct {
		i, j int
		d, w float64
	}
	var rows []row
	maxIdx := 0
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("line %d: want src,dst,distance[,weight], got %q", lineNo, line)
		}
		i, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("line %d: bad src: %w", lineNo, err)
		}
		j, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("line %d: bad dst: %w", lineNo, err)
		}
		d, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad distance: %w", lineNo, err)
		}
		w := 1.0
		if len(parts) >= 4 {
			w, err = strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad weight: %w", lineNo, err)
			}
		}
		rows = append(rows, row{i, j, d, w})
		if i > maxIdx {
			maxIdx = i
		}
		if j > maxIdx {
			maxIdx = j
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no measurements found")
	}
	set, err := measure.NewSet(maxIdx + 1)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := set.Add(r.i, r.j, r.d, r.w); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// readAnchors parses id,x,y CSV lines.
func readAnchors(path string) (map[int]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	anchors := make(map[int]geom.Point)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("anchors line %d: want id,x,y, got %q", lineNo, line)
		}
		id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("anchors line %d: bad id: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("anchors line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("anchors line %d: bad y: %w", lineNo, err)
		}
		anchors[id] = geom.Pt(x, y)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(anchors) == 0 {
		return nil, fmt.Errorf("no anchors found in %s", path)
	}
	return anchors, nil
}

func writePositions(w io.Writer, pts []geom.Point) {
	fmt.Fprintln(w, "# id,x,y")
	for i, p := range pts {
		fmt.Fprintf(w, "%d,%.4f,%.4f\n", i, p.X, p.Y)
	}
}

func writePositionMap(w io.Writer, pts map[int]geom.Point) {
	fmt.Fprintln(w, "# id,x,y")
	ids := make([]int, 0, len(pts))
	for i := range pts {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	for _, i := range ids {
		fmt.Fprintf(w, "%d,%.4f,%.4f\n", i, pts[i].X, pts[i].Y)
	}
}
