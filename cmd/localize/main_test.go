package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadMeasurements(t *testing.T) {
	in := strings.NewReader(`# comment
0,1,10.5
1,2,8.25,0.5

2,0,12.0
`)
	set, err := readMeasurements(in)
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 3 || set.Len() != 3 {
		t.Fatalf("N=%d Len=%d, want 3/3", set.N(), set.Len())
	}
	m, ok := set.Get(1, 2)
	if !ok || m.Distance != 8.25 || m.Weight != 0.5 {
		t.Errorf("pair (1,2) = %+v, ok=%v", m, ok)
	}
}

func TestReadMeasurementsErrors(t *testing.T) {
	cases := []string{
		"",        // empty
		"0,1",     // too few fields
		"x,1,5",   // bad src
		"0,y,5",   // bad dst
		"0,1,z",   // bad distance
		"0,1,5,w", // bad weight
		"0,0,5",   // self pair (rejected by measure)
		"0,1,-2",  // negative distance
	}
	for _, c := range cases {
		if _, err := readMeasurements(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: want error", c)
		}
	}
}

func TestReadAnchors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "anchors.csv")
	if err := os.WriteFile(path, []byte("# id,x,y\n0,1.5,2.5\n3,-1,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	anchors, err := readAnchors(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 2 {
		t.Fatalf("got %d anchors", len(anchors))
	}
	if p := anchors[3]; p.X != -1 || p.Y != 4 {
		t.Errorf("anchor 3 = %v", p)
	}
	if _, err := readAnchors(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readAnchors(bad); err == nil {
		t.Error("want error for malformed anchors")
	}
}

func TestRunLSSEndToEnd(t *testing.T) {
	dir := t.TempDir()
	meas := filepath.Join(dir, "m.csv")
	// A unit square with all six exact distances.
	data := `0,1,10
1,2,10
2,3,10
3,0,10
0,2,14.1421
1,3,14.1421
`
	if err := os.WriteFile(meas, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-algo", "lss", "-measurements", meas, "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# lss n=4") {
		t.Errorf("unexpected output header: %s", out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 { // header + column header + 4 nodes
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out.String())
	}
}

func TestRunMultilatRequiresAnchors(t *testing.T) {
	dir := t.TempDir()
	meas := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(meas, []byte("0,1,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-algo", "multilat", "-measurements", meas}, &out); err == nil {
		t.Error("want error without anchors")
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algo", "nope", "-measurements", "-"}, &out); err == nil {
		t.Error("want error for unknown algorithm")
	}
}
