// Command rangesim runs the simulated acoustic ranging service over a
// deployment and emits the filtered, merged distance measurements as CSV
// (src,dst,distance,weight), ready for cmd/localize.
//
// Usage:
//
//	rangesim [-env grass|pavement|urban|wooded] [-layout grid|town|random]
//	         [-nodes N] [-rounds R] [-maxdist D] [-seed S] [-positions FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/deploy"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rangesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rangesim", flag.ContinueOnError)
	envName := fs.String("env", "grass", "acoustic environment: grass, pavement, urban, wooded")
	layout := fs.String("layout", "grid", "deployment layout: grid, town, random")
	nodes := fs.Int("nodes", 46, "node count (random layout; grid/town are fixed-size)")
	rounds := fs.Int("rounds", 3, "measurement rounds")
	maxDist := fs.Float64("maxdist", 21, "maximum pair distance to attempt, meters")
	seed := fs.Int64("seed", 1, "random seed")
	posFile := fs.String("positions", "", "optional file to write true node positions (id,x,y)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	env, err := environment(*envName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var dep *deploy.Deployment
	switch *layout {
	case "grid":
		dep = deploy.PaperGrid()
		if *nodes > 0 && *nodes < dep.N() {
			dep.Positions = dep.Positions[:*nodes]
		}
	case "town":
		dep = deploy.Town(rng)
	case "random":
		dep, err = deploy.UniformRandom(*nodes, 70, 70, 5, rng)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown layout %q", *layout)
	}

	svc, err := ranging.NewService(ranging.DefaultConfig(env), dep, rng)
	if err != nil {
		return err
	}
	set, err := svc.CampaignSet(*rounds, *maxDist, measure.FilterMedian, measure.DefaultMergeOptions())
	if err != nil {
		return err
	}

	if *posFile != "" {
		f, err := os.Create(*posFile)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "# id,x,y")
		for i, p := range dep.Positions {
			fmt.Fprintf(f, "%d,%.4f,%.4f\n", i, p.X, p.Y)
		}
	}

	fmt.Fprintf(stdout, "# rangesim env=%s layout=%s nodes=%d rounds=%d seed=%d pairs=%d\n",
		env.Name, dep.Name, dep.N(), *rounds, *seed, set.Len())
	fmt.Fprintln(stdout, "# src,dst,distance_m,weight")
	for _, m := range set.All() {
		fmt.Fprintf(stdout, "%d,%d,%.4f,%.3f\n", m.Pair.Lo, m.Pair.Hi, m.Distance, m.Weight)
	}
	return nil
}

func environment(name string) (acoustics.Environment, error) {
	switch name {
	case "grass":
		return acoustics.Grass(), nil
	case "pavement":
		return acoustics.Pavement(), nil
	case "urban":
		return acoustics.Urban(), nil
	case "wooded":
		return acoustics.Wooded(), nil
	default:
		return acoustics.Environment{}, fmt.Errorf("unknown environment %q", name)
	}
}
