package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGridCampaign(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-layout", "grid", "-nodes", "9", "-rounds", "1", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# rangesim env=grass") {
		t.Errorf("missing header: %s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 5 {
		t.Errorf("too few output lines: %d", len(lines))
	}
	// Data lines must be parseable csv with 4 fields.
	for _, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if got := len(strings.Split(l, ",")); got != 4 {
			t.Fatalf("line %q has %d fields, want 4", l, got)
		}
	}
}

func TestRunWritesPositions(t *testing.T) {
	dir := t.TempDir()
	pos := filepath.Join(dir, "pos.csv")
	var out strings.Builder
	err := run([]string{"-layout", "grid", "-nodes", "4", "-rounds", "1", "-positions", pos}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pos)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // header + 4 nodes
		t.Errorf("positions file has %d lines, want 5:\n%s", len(lines), data)
	}
}

func TestRunLayoutsAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-layout", "moon"}, &out); err == nil {
		t.Error("want error for unknown layout")
	}
	if err := run([]string{"-env", "vacuum"}, &out); err == nil {
		t.Error("want error for unknown environment")
	}
	if err := run([]string{"-layout", "random", "-nodes", "5", "-rounds", "1", "-env", "pavement"}, &out); err != nil {
		t.Errorf("random layout failed: %v", err)
	}
}

func TestEnvironmentNames(t *testing.T) {
	for _, name := range []string{"grass", "pavement", "urban", "wooded"} {
		e, err := environment(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if e.Name != name {
			t.Errorf("environment(%s).Name = %s", name, e.Name)
		}
	}
}
