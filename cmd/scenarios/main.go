// Command scenarios lists and runs the scenario library on the concurrent
// execution engine, through the same spec-driven campaign runner (worker
// pool, result cache, streaming progress) as cmd/experiments and locd.
//
// Usage:
//
//	scenarios -list
//	scenarios -run multilat-town,ranging-grass-refined [-trials N] [-parallel W] [-seed S] [-json]
//	scenarios -run mobility-waypoint -param speed_mps=2.5 -param epoch_s=8
//	scenarios -suite multilat [-suite-parallel C] [-json]
//	scenarios -run all [-cache DIR | -no-cache] [-cache-gc=off] [-progress]
//	scenarios -spec jobs.json
//	scenarios -sweep sweep.json
//
// Every invocation first compiles its selection into declarative job specs
// (spec.JobSpec: scenario name, seed, trial/shard overrides, factory
// params) and executes them through the unified runner; -spec runs a
// ready-made spec file (one JSON object or an array, kind "scenario")
// instead — the same documents locd accepts over HTTP — and -sweep expands
// a sweep document (spec template + parameter grid) into one job per grid
// point, exactly as locd's /v1/sweeps endpoint does.
//
// -run accepts both library scenarios and parameterized factories; the
// repeatable -param flag selects a factory's operating point (-list prints
// each factory's schema), and the params become part of the job's content
// address, so every distinct operating point caches separately.
//
// All metric aggregates are deterministic per seed at any -parallel value
// (only the reported worker count and elapsed time vary), which is what
// makes results cacheable: repeated runs with the same scenario, seed,
// trial count, and binary are served from the on-disk cache with zero trial
// computation. -suite-parallel C overlaps up to C independent scenarios
// (0 = GOMAXPROCS) on one shared worker budget, largest first; aggregates
// and output order are identical at every value. Reports stream as each
// scenario finishes; -progress adds a per-scenario trials-completed counter
// on stderr for long sweeps.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/coord"
	enginerun "resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// progressWriter receives the streaming trial counters; a variable so tests
// can capture it.
var progressWriter io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	var opts enginerun.Options
	opts.RegisterCommon(fs)
	opts.RegisterTrials(fs)
	opts.RegisterShardSize(fs)
	opts.RegisterParams(fs)
	opts.RegisterSuiteParallel(fs)
	var prof enginerun.ProfileOptions
	prof.Register(fs)
	list := fs.Bool("list", false, "list scenarios and suites, then exit")
	runNames := fs.String("run", "", "comma-separated scenario names to run, or \"all\"")
	suite := fs.String("suite", "", "run every scenario of the named suite")
	specFile := fs.String("spec", "", "JSON job-spec file to execute instead of -run/-suite selection")
	sweepFile := fs.String("sweep", "", "JSON sweep file (spec template + parameter grid) to expand and execute")
	workers := fs.String("workers", "",
		"comma-separated locd worker URLs: distribute each scenario's trials across them instead of running locally")
	discover := fs.String("discover", "",
		"fleet registry base URL to discover locd workers from (distributed mode, like -workers; mid-run joiners participate)")
	ranges := fs.Int("ranges", 0, "trial sub-ranges per distributed scenario (0 = elastic chunked scheduling with stealing)")
	ciTarget := fs.Float64("ci-target", 0,
		"auto-trials mode: double each scenario's trial count until the 95% CI half-width of the stopping metric is at most this (0 = fixed trial counts)")
	ciMetric := fs.String("ci-metric", "",
		"stopping metric for -ci-target (default: each report's headline metric)")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array")
	progress := fs.Bool("progress", true, "stream per-scenario trial progress to stderr")
	traceFile := fs.String("trace", "",
		"write the run's span tree (jobs, engine shards; distributed runs add coordinator ranges) as Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *progress && !*asJSON {
		opts.Progress = progressWriter
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
		}
	}()
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	if *list || (*runNames == "" && *suite == "" && *specFile == "" && *sweepFile == "") {
		return printList(out)
	}

	if *specFile != "" || *sweepFile != "" {
		if err := enginerun.RejectSpecParameterFlags(fs, "seed", "trials", "shard-size", "param"); err != nil {
			return err
		}
	}
	specs, err := buildSpecs(opts, *runNames, *suite, *specFile, *sweepFile)
	if err != nil {
		return err
	}
	if *ciTarget > 0 {
		if *specFile != "" || *sweepFile != "" {
			return fmt.Errorf("-ci-target cannot be combined with a spec or sweep file; put auto_trials in the spec instead")
		}
		for i := range specs {
			specs[i].AutoTrials = &spec.AutoTrials{CITarget: *ciTarget, Metric: *ciMetric}
			if err := specs[i].Validate(); err != nil {
				return err
			}
		}
	}
	if *workers != "" || *discover != "" {
		if err := runDistributed(ctx, out, specs, *workers, *discover, *ranges, *asJSON, *progress); err != nil {
			return err
		}
		return writeTrace(tracer, *traceFile)
	}
	if *ranges != 0 {
		return fmt.Errorf("-ranges needs -workers or -discover")
	}
	sess, err := enginerun.NewSession(opts)
	if err != nil {
		return err
	}
	if hasAuto(specs) {
		// Auto specs never resolve as single jobs, so the suite scheduler
		// cannot take them; run the whole selection sequentially in order —
		// round sequences are interactive-length anyway.
		if err := runSequential(ctx, out, sess, specs, *asJSON); err != nil {
			return err
		}
		return writeTrace(tracer, *traceFile)
	}
	jobs, err := spec.ResolveAll(specs)
	if err != nil {
		return err
	}

	var reports []*engine.Report
	var firstErr error
	// Reports stream in suite order as prefixes complete, so output bytes
	// match sequential execution at any -suite-parallel value.
	enginerun.ExecuteAllContext(ctx, sess, jobs, func(o enginerun.Outcome) {
		if o.Err != nil {
			if firstErr == nil && !errors.Is(o.Err, enginerun.ErrSkipped) {
				firstErr = o.Err
			}
			return
		}
		reportReuse(o.Spec.ID, o.Info)
		reports = append(reports, o.Result.Report)
		if !*asJSON {
			printReport(out, o.Result.Report, o.Info.Cached)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if err := writeTrace(tracer, *traceFile); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

// hasAuto reports whether any spec drives an auto-trials round sequence.
func hasAuto(specs []spec.JobSpec) bool {
	for _, sp := range specs {
		if sp.AutoTrials != nil {
			return true
		}
	}
	return false
}

// reportReuse notes planner reuse on stderr — stderr so stdout's report
// bytes stay identical between a cold run and one extended from cache.
func reportReuse(id string, info enginerun.Info) {
	if info.ReusedTrials > 0 {
		fmt.Fprintf(os.Stderr, "scenarios: %s: reused %d of %d trials from cache\n",
			id, info.ReusedTrials, info.Trials)
	}
}

// runSequential executes specs one at a time through the session — the path
// for selections containing auto-trials specs, which the batch resolver
// rejects (each is a round sequence, not one job).
func runSequential(ctx context.Context, out io.Writer, sess *enginerun.Session, specs []spec.JobSpec, asJSON bool) error {
	var reports []*engine.Report
	for _, sp := range specs {
		val, info, err := enginerun.ExecuteSpecContext(ctx, sess, sp)
		if err != nil {
			return err
		}
		if val.Report == nil {
			return fmt.Errorf("%s: no report produced", sp.ID)
		}
		reportReuse(sp.ID, info)
		reports = append(reports, val.Report)
		if !asJSON {
			printReport(out, val.Report, info.Cached)
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

// writeTrace dumps the tracer's span tree as Chrome trace_event JSON; a nil
// tracer (no -trace flag) writes nothing.
func writeTrace(tracer *obs.Tracer, path string) error {
	if tracer == nil {
		return nil
	}
	if err := tracer.WriteChromeTraceFile(path); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

// runDistributed executes each scenario spec across the locd worker fleet
// via the trial-range coordinator. Aggregates are byte-identical to the
// local path; the report's execution metadata describes the coordinated run
// (distinct workers used, coordination wall time).
func runDistributed(ctx context.Context, out io.Writer, specs []spec.JobSpec, workers, discover string, ranges int, asJSON, progress bool) error {
	urls := coord.ParseWorkers(workers)
	var reports []*engine.Report
	for _, sp := range specs {
		// Reuse is on by default distributed, matching locc: extending a
		// previously coordinated run computes only the new trials.
		opts := coord.Options{Workers: urls, Ranges: ranges, Discover: discover, Reuse: true, Warnings: os.Stderr}
		var sb *coord.Scoreboard
		if progress && !asJSON {
			sb = coord.NewScoreboard(os.Stderr, sp.ID)
			opts.OnProgress = sb.Progress
			opts.OnScoreboard = sb.Update
		}
		val, _, err := coord.ExecuteAuto(ctx, sp, opts)
		sb.Final()
		if err != nil {
			return fmt.Errorf("%s: %w", sp.ID, err)
		}
		if val.Report == nil {
			return fmt.Errorf("%s: coordinator returned no report", sp.ID)
		}
		reports = append(reports, val.Report)
		if !asJSON {
			printReport(out, val.Report, false)
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

// buildSpecs compiles the CLI selection into scenario job specs: from a
// spec file when -spec is given, from an expanded sweep document when
// -sweep is given, else from -run/-suite plus the trial/shard/seed/param
// flags.
func buildSpecs(opts enginerun.Options, runNames, suite, specFile, sweepFile string) ([]spec.JobSpec, error) {
	if specFile != "" || sweepFile != "" {
		if runNames != "" || suite != "" || (specFile != "" && sweepFile != "") {
			return nil, fmt.Errorf("use exactly one of -run/-suite, -spec, or -sweep, not both")
		}
		if sweepFile != "" {
			sw, err := spec.LoadSweepFile(sweepFile)
			if err != nil {
				return nil, err
			}
			return sw.Expand()
		}
		return spec.LoadFileOfKind(specFile, spec.KindScenario)
	}
	names, err := selectNames(runNames, suite)
	if err != nil {
		return nil, err
	}
	return opts.Specs(spec.KindScenario, names), nil
}

// selectNames resolves -run/-suite into scenario names: suites and "all"
// draw from the library; explicit -run names may also address parameterized
// factories (whose operating point the -param flags select).
func selectNames(runNames, suite string) ([]string, error) {
	if suite != "" {
		if runNames != "" {
			return nil, fmt.Errorf("use either -run or -suite, not both")
		}
		st, ok := engine.FindSuite(suite)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suite)
		}
		names := make([]string, len(st.Scenarios))
		for i, s := range st.Scenarios {
			names[i] = s.Name
		}
		return names, nil
	}
	if runNames == "all" {
		lib := engine.Library()
		names := make([]string, len(lib))
		for i, s := range lib {
			names[i] = s.Name
		}
		return names, nil
	}
	var names []string
	for _, name := range strings.Split(runNames, ",") {
		name = strings.TrimSpace(name)
		_, inLibrary := engine.Find(name)
		_, isFactory := engine.FindFactory(name)
		if !inLibrary && !isFactory {
			return nil, fmt.Errorf("unknown scenario %q", name)
		}
		names = append(names, name)
	}
	return names, nil
}

func printList(out io.Writer) error {
	for _, suite := range engine.Suites() {
		fmt.Fprintf(out, "suite %s — %s\n", suite.Name, suite.Description)
		for _, s := range suite.Scenarios {
			fmt.Fprintf(out, "  %-28s %4d trials  %s\n", s.Name, s.Trials, s.Description)
		}
	}
	fmt.Fprintf(out, "parameterized factories — select an operating point with repeated -param name=value\n")
	for _, f := range engine.Factories() {
		fmt.Fprintf(out, "  %-28s %s\n", f.Name, f.Description)
		for _, p := range f.Params {
			constraint := p.Constraint()
			if constraint != "" {
				constraint = "  " + constraint
			}
			fmt.Fprintf(out, "      %-16s %-6s default %-10s%s  %s\n",
				p.Name, p.Kind, p.Default.String(), constraint, p.Help)
		}
	}
	return nil
}

func printReport(out io.Writer, rep *engine.Report, cached bool) {
	// On a cache hit the stored report's workers/elapsed describe the run
	// that filled the cache, not this invocation — say "cached" instead.
	how := fmt.Sprintf("%d workers, %.2fs", rep.Workers, rep.ElapsedSeconds)
	if cached {
		how = "cached"
	}
	rep.WriteSummary(out, how)
	fmt.Fprintln(out)
}
