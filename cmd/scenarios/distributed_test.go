package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine"
	enginerun "resilientloc/internal/engine/run"
	"resilientloc/internal/locsrv"
)

// distWorkers stands up two real locd services for the -workers flag.
func distWorkers(t *testing.T) string {
	t.Helper()
	var urls []string
	for i := 0; i < 2; i++ {
		srv, err := locsrv.New(enginerun.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { srv.Close(); hs.Close() })
		urls = append(urls, hs.URL)
	}
	return strings.Join(urls, ",")
}

// TestWorkersFlagMatchesLocalRun: -workers routes the same specs through
// the distributed coordinator and produces the same aggregates as the local
// path (execution metadata aside).
func TestWorkersFlagMatchesLocalRun(t *testing.T) {
	args := []string{"-run", "multilat-town", "-trials", "6", "-seed", "3", "-json", "-no-cache"}
	var local bytes.Buffer
	if err := run(args, &local); err != nil {
		t.Fatal(err)
	}
	var dist bytes.Buffer
	if err := run(append(args, "-workers", distWorkers(t)), &dist); err != nil {
		t.Fatal(err)
	}
	var lr, dr []*engine.Report
	if err := json.Unmarshal(local.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(dist.Bytes(), &dr); err != nil {
		t.Fatalf("invalid distributed JSON: %v\n%s", err, dist.String())
	}
	if len(lr) != 1 || len(dr) != 1 {
		t.Fatalf("got %d local / %d distributed reports", len(lr), len(dr))
	}
	lr[0].ClearExecutionMeta()
	dr[0].ClearExecutionMeta()
	lj, _ := json.Marshal(lr[0])
	dj, _ := json.Marshal(dr[0])
	if string(lj) != string(dj) {
		t.Errorf("-workers aggregates diverged\nlocal %s\ndist  %s", lj, dj)
	}
}

// TestRangesNeedsWorkers: -ranges without -workers is an error instead of a
// silent no-op.
func TestRangesNeedsWorkers(t *testing.T) {
	if err := run([]string{"-run", "multilat-town", "-ranges", "2"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-workers") {
		t.Errorf("err %v, want -ranges/-workers coupling error", err)
	}
}
