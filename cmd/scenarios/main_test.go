package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"resilientloc/internal/engine"
)

func TestListOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suite ranging", "suite multilat", "multilat-town", "maxrange-grass-t2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunScenarioTextAndJSON(t *testing.T) {
	var text bytes.Buffer
	err := run([]string{"-run", "multilat-town", "-trials", "3", "-seed", "2", "-parallel", "2", "-no-cache"}, &text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "multilat-town") || !strings.Contains(text.String(), "localized_frac") {
		t.Errorf("text report incomplete:\n%s", text.String())
	}

	var jsonBuf bytes.Buffer
	err = run([]string{"-run", "multilat-town", "-trials", "3", "-seed", "2", "-json", "-no-cache"}, &jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	var reports []engine.Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, jsonBuf.String())
	}
	if len(reports) != 1 || reports[0].Scenario != "multilat-town" || reports[0].Trials != 3 {
		t.Errorf("unexpected JSON reports: %+v", reports)
	}
	if _, ok := reports[0].Metric("avg_error_m"); !ok {
		t.Error("JSON report missing avg_error_m")
	}
}

func TestRunSuite(t *testing.T) {
	var buf bytes.Buffer
	// The multilat suite is the cheapest that exercises several scenarios.
	err := run([]string{"-suite", "multilat", "-trials", "2", "-seed", "3", "-no-cache"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"multilat-town", "multilat-anchor-dropout-6", "multilat-grid-196"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestRunCachedScenario(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-run", "multilat-town", "-trials", "2", "-seed", "4", "-cache", dir}
	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), ", cached ==") {
		t.Errorf("second run not served from cache:\n%s", second.String())
	}
	// A streamed progress counter reaches the progress writer.
	var progress bytes.Buffer
	prev := progressWriter
	progressWriter = &progress
	defer func() { progressWriter = prev }()
	var buf bytes.Buffer
	if err := run([]string{"-run", "multilat-town", "-trials", "2", "-seed", "5", "-no-cache"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "2/2 trials") {
		t.Errorf("progress stream missing trial counter: %q", progress.String())
	}
}

// TestRunSuiteParallelMatchesSequential runs a whole suite overlapped and
// sequentially: every deterministic byte must match; only the per-run
// "W workers, E.EEs" header fragment may differ.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	normalize := func(s string) string {
		return regexp.MustCompile(`\d+ workers, \d+\.\d+s`).ReplaceAllString(s, "N workers")
	}
	base := []string{"-suite", "multilat", "-trials", "2", "-seed", "3", "-no-cache"}
	var sequential, overlapped bytes.Buffer
	if err := run(base, &sequential); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-suite-parallel", "0"}, base...), &overlapped); err != nil {
		t.Fatal(err)
	}
	if normalize(sequential.String()) != normalize(overlapped.String()) {
		t.Errorf("-suite-parallel output differs from sequential:\n--- sequential ---\n%s--- overlapped ---\n%s",
			sequential.String(), overlapped.String())
	}
}

// TestSpecFileMatchesFlags is the -spec acceptance check: a spec file
// carrying the same scenario, seed, and trial override produces output
// byte-identical to the flag invocation (the per-run "W workers, E.EEs"
// fragment aside).
func TestSpecFileMatchesFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	doc := `{"kind":"scenario","id":"multilat-town","seed":2,"trials":3}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	normalize := func(s string) string {
		return regexp.MustCompile(`\d+ workers, \d+\.\d+s`).ReplaceAllString(s, "N workers")
	}
	var flags, specs bytes.Buffer
	if err := run([]string{"-run", "multilat-town", "-trials", "3", "-seed", "2", "-no-cache"}, &flags); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path, "-no-cache"}, &specs); err != nil {
		t.Fatal(err)
	}
	if normalize(flags.String()) != normalize(specs.String()) {
		t.Errorf("-spec output differs from flags\n--- flags ---\n%s--- spec ---\n%s",
			flags.String(), specs.String())
	}
}

func TestSpecFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(`{"kind":"figure","id":"fig11","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "scenario specs") {
		t.Errorf("figure spec accepted by the scenario CLI: %v", err)
	}
	if err := run([]string{"-spec", path, "-run", "multilat-town"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Errorf("-spec with -run accepted: %v", err)
	}
	// Explicit job-parameter flags would silently lose against the file's
	// embedded parameters, so they must be rejected.
	scen := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(scen, []byte(`{"kind":"scenario","id":"multilat-town","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", scen, "-trials", "9"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-trials") {
		t.Errorf("-trials with -spec accepted: %v", err)
	}
}

// TestFactoryScenarioWithParams: -run addresses a parameterized factory and
// the repeatable -param flag selects its operating point; -list prints the
// factory schema the flags are validated against.
func TestFactoryScenarioWithParams(t *testing.T) {
	var list bytes.Buffer
	if err := run([]string{"-list"}, &list); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parameterized factories", "mobility-waypoint", "speed_mps", "ranging-mixed-env", "boundary_frac"} {
		if !strings.Contains(list.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, list.String())
		}
	}

	var buf bytes.Buffer
	err := run([]string{"-run", "mobility-waypoint", "-param", "speed_mps=2.5",
		"-trials", "2", "-seed", "2", "-no-cache", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var reports []engine.Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || reports[0].Scenario != "mobility-waypoint" || reports[0].Trials != 2 {
		t.Errorf("unexpected reports: %+v", reports)
	}

	// Out-of-schema points are rejected by name before any trial runs.
	if err := run([]string{"-run", "mobility-waypoint", "-param", "warp=9", "-no-cache"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), `unknown parameter "warp"`) {
		t.Errorf("bogus param accepted: %v", err)
	}
	if err := run([]string{"-run", "multilat-town", "-param", "speed_mps=1", "-no-cache"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "takes no parameters") {
		t.Errorf("param on a library scenario accepted: %v", err)
	}
}

// TestSweepFileExpandsToPointRuns: -sweep expands a template + grid into one
// job per point, and each point's output is byte-identical to running it
// directly via -param (the workers/elapsed header fragment aside).
func TestSweepFileExpandsToPointRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	doc := `{"template":{"kind":"scenario","id":"mobility-waypoint","seed":2,"trials":2},
	         "grid":{"speed_mps":[0,2.5]}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	normalize := func(s string) string {
		return regexp.MustCompile(`\d+ workers, \d+\.\d+s`).ReplaceAllString(s, "N workers")
	}
	var swept bytes.Buffer
	if err := run([]string{"-sweep", path, "-no-cache"}, &swept); err != nil {
		t.Fatal(err)
	}
	var points bytes.Buffer
	for _, speed := range []string{"0", "2.5"} {
		if err := run([]string{"-run", "mobility-waypoint", "-param", "speed_mps=" + speed,
			"-trials", "2", "-seed", "2", "-no-cache"}, &points); err != nil {
			t.Fatal(err)
		}
	}
	if normalize(swept.String()) != normalize(points.String()) {
		t.Errorf("-sweep output differs from per-point -param runs\n--- sweep ---\n%s--- points ---\n%s",
			swept.String(), points.String())
	}

	// Sweep files pin every job parameter, so explicit ones are rejected.
	if err := run([]string{"-sweep", path, "-param", "epoch_s=8"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-param") {
		t.Errorf("-param with -sweep accepted: %v", err)
	}
	if err := run([]string{"-sweep", path, "-spec", path}, &bytes.Buffer{}); err == nil {
		t.Error("-sweep with -spec accepted")
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-run", "nope"},
		{"-suite", "nope"},
		{"-run", "multilat-town", "-suite", "multilat"},
		{"-run", "multilat-town", "-parallel", "-1"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
