// Command benchdelta compares two benchmark records in the BENCH_engine.json
// format (go test -bench -json, i.e. test2json event streams) and reports the
// per-benchmark ns/op delta — the CI step that turns the uploaded benchmark
// artifact into an actual regression signal instead of a write-only file.
// When the records carry -benchmem columns, B/op and allocs/op are diffed
// too, and any allocs/op increase is annotated: a benchmark that was
// allocation-free picking up a steady-state per-trial allocation is a
// regression the ns/op threshold can easily miss.
//
// Usage:
//
//	benchdelta [-threshold 10] [-annotate] [-fail] old.json new.json
//
// Benchmarks present in both files print as "old -> new (+delta%)"; ones
// present in only one file are listed as new or gone. A regression is a
// ns/op increase beyond -threshold percent, or any allocs/op increase:
// -annotate emits a GitHub Actions ::warning:: line per regression (so the
// run is annotated without failing), and -fail exits nonzero on ns/op
// regressions, for use as a hard gate. A missing old file is not an error —
// the first run of a pipeline has no baseline — it prints a note and exits
// zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"time"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
}

// benchLine matches a benchmark result line inside a test2json "output"
// event: name (with the -GOMAXPROCS suffix), iteration count, ns/op, and the
// optional -benchmem columns (B/op, allocs/op).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op(?:\s+([0-9.eE+]+) B/op\s+([0-9.eE+]+) allocs/op)?`)

// benchStat is one benchmark's parsed result. hasMem is set when the line
// carried -benchmem columns.
type benchStat struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// parseBench extracts per-benchmark stats from a test2json stream. Repeated
// results for one name keep the last, matching -count semantics.
func parseBench(path string) (map[string]benchStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]benchStat)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" {
			continue
		}
		m := benchLine.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		var st benchStat
		if _, err := fmt.Sscanf(m[3], "%g", &st.ns); err != nil {
			continue
		}
		if m[4] != "" && m[5] != "" {
			if _, err := fmt.Sscanf(m[4], "%g", &st.bytes); err == nil {
				if _, err := fmt.Sscanf(m[5], "%g", &st.allocs); err == nil {
					st.hasMem = true
				}
			}
		}
		out[m[1]] = st
	}
	return out, sc.Err()
}

func realMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdelta", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "ns/op increase (percent) that counts as a regression")
	annotate := fs.Bool("annotate", false, "emit a GitHub Actions ::warning:: line per regression")
	fail := fs.Bool("fail", false, "exit nonzero when any benchmark regresses beyond the threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdelta [-threshold PCT] [-annotate] [-fail] old.json new.json")
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	old, err := parseBench(oldPath)
	if os.IsNotExist(err) {
		fmt.Fprintf(out, "benchdelta: no baseline at %s; nothing to compare\n", oldPath)
		return nil
	}
	if err != nil {
		return err
	}
	cur, err := parseBench(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(old)+len(cur))
	seen := make(map[string]bool)
	for n := range old {
		names = append(names, n)
		seen[n] = true
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	regressions := 0
	for _, n := range names {
		o, hasOld := old[n]
		c, hasCur := cur[n]
		switch {
		case !hasCur:
			fmt.Fprintf(out, "%-44s %12s -> %12s\n", n, fmtNs(o.ns), "(gone)")
		case !hasOld:
			fmt.Fprintf(out, "%-44s %12s -> %12s\n", n, "(new)", fmtNs(c.ns))
		default:
			delta := (c.ns - o.ns) / o.ns * 100
			mark := ""
			if delta > *threshold {
				regressions++
				mark = "  REGRESSION"
				if *annotate {
					fmt.Fprintf(out, "::warning file=BENCH_engine.json::%s regressed %.1f%% (%s -> %s, threshold %.0f%%)\n",
						n, delta, fmtNs(o.ns), fmtNs(c.ns), *threshold)
				}
			}
			if o.hasMem && c.hasMem && c.allocs > o.allocs {
				// New steady-state allocations are flagged regardless of the
				// ns/op threshold: a single reintroduced per-trial allocation
				// barely moves ns/op but silently re-engages the GC.
				mark += "  ALLOCS"
				if *annotate {
					fmt.Fprintf(out, "::warning file=BENCH_engine.json::%s allocs/op rose %g -> %g (B/op %g -> %g)\n",
						n, o.allocs, c.allocs, o.bytes, c.bytes)
				}
			}
			fmt.Fprintf(out, "%-44s %12s -> %12s  %+6.1f%%%s\n", n, fmtNs(o.ns), fmtNs(c.ns), delta, mark)
			if o.hasMem && c.hasMem && (c.allocs != o.allocs || c.bytes != o.bytes) {
				fmt.Fprintf(out, "%-44s %12g -> %12g  allocs/op (%g -> %g B/op)\n", "", o.allocs, c.allocs, o.bytes, c.bytes)
			}
		}
	}
	if regressions > 0 && *fail {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", regressions, *threshold)
	}
	return nil
}

// fmtNs renders a ns/op value as a human duration (sub-ns values keep the
// raw number — durations round them to 0).
func fmtNs(ns float64) string {
	if ns < 1 {
		return fmt.Sprintf("%gns", ns)
	}
	return time.Duration(ns).Round(time.Microsecond / 10).String()
}
