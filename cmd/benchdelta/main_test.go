package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench fabricates a test2json benchmark record with the given
// name → ns/op results.
func writeBench(t *testing.T, path string, results map[string]float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"resilientloc"}` + "\n")
	for name, ns := range results {
		// The Output field carries the raw benchmark line, tabs and all.
		b.WriteString(fmt.Sprintf(`{"Action":"output","Package":"resilientloc","Output":"%s-8 \t       2\t %g ns/op\n"}`,
			name, ns) + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"resilientloc"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseBenchStripsProcsSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	writeBench(t, path, map[string]float64{
		"BenchmarkFigSuiteSerial": 500000000,
		"BenchmarkCoordMerge":     1200.5,
	})
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkFigSuiteSerial"].ns != 500000000 || got["BenchmarkCoordMerge"].ns != 1200.5 {
		t.Errorf("parsed %v", got)
	}
	if got["BenchmarkFigSuiteSerial"].hasMem {
		t.Error("no -benchmem columns present, hasMem must be false")
	}
}

// writeBenchMem fabricates a test2json record whose lines carry -benchmem
// columns: name → {ns/op, B/op, allocs/op}.
func writeBenchMem(t *testing.T, path string, results map[string][3]float64) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"resilientloc"}` + "\n")
	for name, v := range results {
		b.WriteString(fmt.Sprintf(`{"Action":"output","Package":"resilientloc","Output":"%s-8 \t       2\t %g ns/op\t %g B/op\t %g allocs/op\n"}`,
			name, v[0], v[1], v[2]) + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"resilientloc"}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAllocIncreaseIsAnnotated(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchMem(t, oldPath, map[string][3]float64{
		"BenchmarkTrialDetect": {28000, 0, 0},
		"BenchmarkTrialLSS":    {31000000, 136968, 749},
	})
	writeBenchMem(t, newPath, map[string][3]float64{
		"BenchmarkTrialDetect": {28100, 164432, 10}, // ns/op fine, allocs reintroduced
		"BenchmarkTrialLSS":    {30900000, 136968, 749},
	})

	var out strings.Builder
	if err := realMain([]string{"-annotate", oldPath, newPath}, &out); err != nil {
		t.Fatalf("alloc increases must warn, not fail: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "::warning file=BENCH_engine.json::BenchmarkTrialDetect allocs/op rose 0 -> 10") {
		t.Errorf("missing allocs warning:\n%s", s)
	}
	if !strings.Contains(s, "ALLOCS") {
		t.Errorf("missing ALLOCS mark:\n%s", s)
	}
	if strings.Contains(s, "BenchmarkTrialLSS  ALLOCS") {
		t.Errorf("unchanged allocs flagged:\n%s", s)
	}
	if strings.Count(s, "::warning") != 1 {
		t.Errorf("want exactly one warning:\n%s", s)
	}

	// The allocs-only regression must not trip the ns/op hard gate.
	if err := realMain([]string{"-fail", oldPath, newPath}, io.Discard); err != nil {
		t.Errorf("-fail is ns/op-only; alloc increase should not error: %v", err)
	}
}

func TestDeltaReportsRegressionsAndChurn(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBench(t, oldPath, map[string]float64{
		"BenchmarkStable":    1000,
		"BenchmarkRegressed": 1000,
		"BenchmarkImproved":  1000,
		"BenchmarkGone":      1000,
	})
	writeBench(t, newPath, map[string]float64{
		"BenchmarkStable":    1040, // +4%: inside the threshold
		"BenchmarkRegressed": 1300, // +30%: regression
		"BenchmarkImproved":  700,
		"BenchmarkAdded":     50,
	})

	var out strings.Builder
	if err := realMain([]string{"-annotate", oldPath, newPath}, &out); err != nil {
		t.Fatalf("annotate mode must not fail the run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"::warning file=BENCH_engine.json::BenchmarkRegressed regressed 30.0%",
		"REGRESSION",
		"(new)",
		"(gone)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "::warning") != 1 {
		t.Errorf("want exactly one warning annotation (only the >10%% regression):\n%s", s)
	}
	if strings.Contains(s, "BenchmarkImproved") && strings.Contains(s, "BenchmarkImproved  REGRESSION") {
		t.Errorf("an improvement was flagged as a regression:\n%s", s)
	}

	// -fail turns the regression into a nonzero exit.
	if err := realMain([]string{"-fail", oldPath, newPath}, io.Discard); err == nil {
		t.Error("-fail with a 30% regression should error")
	}
	// A higher threshold absorbs it.
	if err := realMain([]string{"-fail", "-threshold", "50", oldPath, newPath}, io.Discard); err != nil {
		t.Errorf("-threshold 50 should absorb a 30%% regression: %v", err)
	}
}

func TestMissingBaselineIsNotAnError(t *testing.T) {
	dir := t.TempDir()
	newPath := filepath.Join(dir, "new.json")
	writeBench(t, newPath, map[string]float64{"BenchmarkX": 10})
	var out strings.Builder
	if err := realMain([]string{filepath.Join(dir, "absent.json"), newPath}, &out); err != nil {
		t.Fatalf("missing baseline must not error: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Errorf("output %q should note the missing baseline", out.String())
	}
}
