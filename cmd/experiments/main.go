// Command experiments regenerates every figure of the paper's evaluation
// and prints paper-claim-versus-measured results. All figures execute
// through the engine campaign path shared with cmd/scenarios: same worker
// pool, same result cache, same streaming progress.
//
// Usage:
//
//	experiments [-seed N] [-only fig06,fig18] [-parallel W] [-json]
//	            [-suite-parallel C] [-cache DIR | -no-cache] [-cache-gc=off]
//	            [-progress]
//
// Repeated runs hit the on-disk result cache (keyed by scenario, seed,
// trial count, shard size, and a fingerprint of the binary) and skip all
// trial computation; -no-cache forces recomputation. -suite-parallel C
// overlaps up to C independent figure campaigns (0 = GOMAXPROCS) on top of
// trial-level parallelism, all drawing from one shared worker budget;
// results and output order are identical at every value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"resilientloc/internal/engine/run"
	"resilientloc/internal/experiments"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var opts run.Options
	opts.RegisterCommon(fs)
	opts.RegisterSuiteParallel(fs)
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	asJSON := fs.Bool("json", false, "emit results as a JSON array")
	progress := fs.Bool("progress", true, "stream per-figure trial progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *progress && !*asJSON {
		opts.Progress = os.Stderr
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	sess, err := run.NewSession(opts)
	if err != nil {
		return err
	}

	jobs := make([]run.Job[*experiments.Result], len(selected))
	for i, e := range selected {
		jobs[i] = run.Job[*experiments.Result]{Name: e.ID, Build: e.Campaign}
	}
	var results []*experiments.Result
	var firstErr error
	// onDone streams each figure in suite order as soon as it (and all its
	// predecessors) finished, so output bytes match sequential execution.
	run.ExecuteAll(sess, jobs, func(o run.Outcome[*experiments.Result]) {
		if o.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.Name, o.Err)
			}
			return
		}
		results = append(results, o.Result)
		if !*asJSON {
			fmt.Fprint(out, o.Result.Render())
			status := fmt.Sprintf("elapsed: %v", o.Info.Elapsed.Round(time.Millisecond))
			if o.Info.Cached {
				status = "cached"
			}
			fmt.Fprintf(out, "  (%s)\n\n", status)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
