// Command experiments regenerates every figure of the paper's evaluation
// and prints paper-claim-versus-measured results. All figures execute
// through the spec-driven engine campaign path shared with cmd/scenarios
// and the locd service: same worker pool, same result cache, same streaming
// progress.
//
// Usage:
//
//	experiments [-seed N] [-only fig06,fig18] [-parallel W] [-json]
//	            [-suite-parallel C] [-cache DIR | -no-cache] [-cache-gc=off]
//	            [-progress] [-progress-refresh 250ms]
//	experiments -list
//	experiments -only maxrange -param rounds=10
//	experiments -spec jobs.json
//	experiments -sweep sweep.json
//
// Every invocation first compiles its selection into declarative job specs
// (spec.JobSpec) and executes them through the unified runner; -spec skips
// the compilation and runs a ready-made spec file (one JSON object or an
// array of them, kind "figure"), exactly as locd would run the same specs,
// and -sweep expands a sweep document (spec template + parameter grid) into
// one job per grid point. Experiments that declare a parameter schema
// (-list prints it) accept -param name=value overrides; everything else is
// a fixed reproduction whose operating point is its definition.
//
// Repeated runs hit the on-disk result cache (keyed by scenario, seed,
// trial count, shard size, and a fingerprint of the binary) and skip all
// trial computation; -no-cache forces recomputation. -suite-parallel C
// overlaps up to C independent figure campaigns (0 = GOMAXPROCS) on top of
// trial-level parallelism, all drawing from one shared worker budget, with
// the largest campaigns dispatched first; results and output order are
// identical at every value.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"resilientloc/internal/engine/coord"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/experiments"
	"resilientloc/internal/obs"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// buildSpecs compiles the CLI selection into figure job specs: from a spec
// file when -spec is given, from an expanded sweep document when -sweep is
// given, else from -only/-seed/-param.
func buildSpecs(opts run.Options, only, specFile, sweepFile string) ([]spec.JobSpec, error) {
	if specFile != "" || sweepFile != "" {
		if only != "" || (specFile != "" && sweepFile != "") {
			return nil, fmt.Errorf("use exactly one of -only, -spec, or -sweep, not both")
		}
		if sweepFile != "" {
			sw, err := spec.LoadSweepFile(sweepFile)
			if err != nil {
				return nil, err
			}
			return sw.Expand()
		}
		return spec.LoadFileOfKind(specFile, spec.KindFigure)
	}
	var ids []string
	if only == "" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Find(id); !ok {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
			ids = append(ids, id)
		}
	}
	return opts.Specs(spec.KindFigure, ids), nil
}

func realMain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var opts run.Options
	opts.RegisterCommon(fs)
	opts.RegisterParams(fs)
	opts.RegisterSuiteParallel(fs)
	var prof run.ProfileOptions
	prof.Register(fs)
	list := fs.Bool("list", false, "list experiment IDs and their parameter schemas, then exit")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	specFile := fs.String("spec", "", "JSON job-spec file to execute instead of -only selection")
	sweepFile := fs.String("sweep", "", "JSON sweep file (spec template + parameter grid) to expand and execute")
	workers := fs.String("workers", "",
		"comma-separated locd worker URLs: distribute each figure's trials across them instead of running locally")
	discover := fs.String("discover", "",
		"fleet registry base URL to discover locd workers from (distributed mode, like -workers; mid-run joiners participate)")
	ranges := fs.Int("ranges", 0, "trial sub-ranges per distributed figure (0 = elastic chunked scheduling with stealing)")
	asJSON := fs.Bool("json", false, "emit results as a JSON array")
	progress := fs.Bool("progress", true, "stream per-figure trial progress to stderr")
	traceFile := fs.String("trace", "",
		"write the run's span tree (jobs, engine shards; distributed runs add coordinator ranges) as Chrome trace_event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *progress && !*asJSON {
		opts.Progress = os.Stderr
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	if *list {
		return printList(out)
	}
	if *specFile != "" || *sweepFile != "" {
		if err := run.RejectSpecParameterFlags(fs, "seed", "param"); err != nil {
			return err
		}
	}
	specs, err := buildSpecs(opts, *only, *specFile, *sweepFile)
	if err != nil {
		return err
	}
	if *workers != "" || *discover != "" {
		if err := runDistributed(ctx, out, specs, *workers, *discover, *ranges, *asJSON, *progress); err != nil {
			return err
		}
		return writeTrace(tracer, *traceFile)
	}
	if *ranges != 0 {
		return fmt.Errorf("-ranges needs -workers or -discover")
	}
	jobs, err := spec.ResolveAll(specs)
	if err != nil {
		return err
	}
	sess, err := run.NewSession(opts)
	if err != nil {
		return err
	}

	var results []*experiments.Result
	var firstErr error
	// onDone streams each figure in suite order as soon as it (and all its
	// predecessors) finished, so output bytes match sequential execution.
	run.ExecuteAllContext(ctx, sess, jobs, func(o run.Outcome) {
		if o.Err != nil {
			if firstErr == nil && !errors.Is(o.Err, run.ErrSkipped) {
				firstErr = fmt.Errorf("%s: %w", o.Spec.ID, o.Err)
			}
			return
		}
		results = append(results, o.Result.Figure)
		if !*asJSON {
			fmt.Fprint(out, o.Result.Figure.Render())
			status := fmt.Sprintf("elapsed: %v", o.Info.Elapsed.Round(time.Millisecond))
			if o.Info.Cached {
				status = "cached"
			}
			fmt.Fprintf(out, "  (%s)\n\n", status)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if err := writeTrace(tracer, *traceFile); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// printList writes each experiment ID; parameterized experiments also list
// their schema, one "-param" line per declared axis.
func printList(out io.Writer) error {
	for _, e := range experiments.All() {
		fmt.Fprintf(out, "%s\n", e.ID)
		for _, p := range e.Params {
			constraint := p.Constraint()
			if constraint != "" {
				constraint = "  " + constraint
			}
			fmt.Fprintf(out, "    %-16s %-6s default %-10s%s  %s\n",
				p.Name, p.Kind, p.Default.String(), constraint, p.Help)
		}
	}
	return nil
}

// writeTrace dumps the tracer's span tree as Chrome trace_event JSON; a nil
// tracer (no -trace flag) writes nothing.
func writeTrace(tracer *obs.Tracer, path string) error {
	if tracer == nil {
		return nil
	}
	if err := tracer.WriteChromeTraceFile(path); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

// runDistributed executes each figure spec across the locd worker fleet via
// the trial-range coordinator. Figure results are byte-identical to the
// local path (figures carry no execution metadata), so -json output matches
// a local run exactly.
func runDistributed(ctx context.Context, out io.Writer, specs []spec.JobSpec, workers, discover string, ranges int, asJSON, progress bool) error {
	urls := coord.ParseWorkers(workers)
	var results []*experiments.Result
	for _, sp := range specs {
		start := time.Now()
		opts := coord.Options{Workers: urls, Ranges: ranges, Discover: discover, Warnings: os.Stderr}
		var sb *coord.Scoreboard
		if progress && !asJSON {
			sb = coord.NewScoreboard(os.Stderr, sp.ID)
			opts.OnProgress = sb.Progress
			opts.OnScoreboard = sb.Update
		}
		val, st, err := coord.Execute(ctx, sp, opts)
		sb.Final()
		if err != nil {
			return fmt.Errorf("%s: %w", sp.ID, err)
		}
		if val.Figure == nil {
			return fmt.Errorf("%s: coordinator returned no figure", sp.ID)
		}
		results = append(results, val.Figure)
		if !asJSON {
			fmt.Fprint(out, val.Figure.Render())
			fmt.Fprintf(out, "  (distributed: %d ranges over %d workers, elapsed: %v)\n\n",
				st.Ranges, st.Workers, time.Since(start).Round(time.Millisecond))
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
