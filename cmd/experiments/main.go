// Command experiments regenerates every figure of the paper's evaluation
// and prints paper-claim-versus-measured results.
//
// Usage:
//
//	experiments [-seed N] [-only fig06,fig18]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resilientloc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "base random seed (experiments are deterministic per seed)")
	only := fs.String("only", "", "comma-separated experiment IDs to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(res.Render())
		fmt.Printf("  (elapsed: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
