package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// fig11 is the cheapest experiment; the full harness is exercised by
	// the experiments package tests and benchmarks.
	if err := run([]string{"-only", "fig11", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "fig99"}); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("want error for unknown flag")
	}
}
