package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	// fig11 is the cheapest experiment; the full harness is exercised by
	// the experiments package tests and benchmarks.
	var buf bytes.Buffer
	if err := realMain([]string{"-only", "fig11", "-seed", "2", "-no-cache", "-progress=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig11", "error with consistency check", "elapsed"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain([]string{"-only", "fig11,fig20", "-seed", "2", "-no-cache", "-progress=false", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var results []*experiments.Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(results) != 2 || results[0].ID != "fig11" || results[1].ID != "fig20" {
		t.Errorf("unexpected JSON results: %+v", results)
	}
	if _, ok := results[0].Get("error with consistency check"); !ok {
		t.Error("decoded result missing metric")
	}
}

func TestRunCached(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var first, second bytes.Buffer
	if err := realMain([]string{"-only", "fig11", "-seed", "3", "-cache", dir, "-progress=false"}, &first); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"-only", "fig11", "-seed", "3", "-cache", dir, "-progress=false"}, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "(cached)") {
		t.Errorf("second run not served from cache:\n%s", second.String())
	}
	trim := func(s string) string { return s[:strings.Index(s, "  (")] }
	if trim(first.String()) != trim(second.String()) {
		t.Errorf("cached output differs:\n%s\nvs:\n%s", first.String(), second.String())
	}
}

// TestRunSuiteParallelMatchesSequential checks the CLI's -suite-parallel
// path emits the figures in the same order with identical bodies; only the
// per-figure "(elapsed: ...)" status lines may differ between runs.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	strip := func(s string) string {
		var kept []string
		for _, l := range strings.Split(s, "\n") {
			if !strings.HasPrefix(l, "  (") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	base := []string{"-only", "fig11,fig20,maxrange", "-seed", "1", "-no-cache", "-progress=false"}
	var sequential, overlapped bytes.Buffer
	if err := realMain(base, &sequential); err != nil {
		t.Fatal(err)
	}
	if err := realMain(append([]string{"-suite-parallel", "3"}, base...), &overlapped); err != nil {
		t.Fatal(err)
	}
	if strip(sequential.String()) != strip(overlapped.String()) {
		t.Errorf("-suite-parallel output differs from sequential:\n--- sequential ---\n%s--- overlapped ---\n%s",
			sequential.String(), overlapped.String())
	}
}

// TestSpecFileMatchesFlags is the -spec acceptance check: running a spec
// file must produce output byte-identical to the equivalent flag
// invocation, in both text and JSON modes.
func TestSpecFileMatchesFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	doc := `[{"kind":"figure","id":"fig11","seed":2},{"kind":"figure","id":"fig20","seed":2}]`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{nil, {"-json"}} {
		var flags, specs bytes.Buffer
		base := append([]string{"-no-cache", "-progress=false"}, mode...)
		if err := realMain(append([]string{"-only", "fig11,fig20", "-seed", "2"}, base...), &flags); err != nil {
			t.Fatal(err)
		}
		if err := realMain(append([]string{"-spec", path}, base...), &specs); err != nil {
			t.Fatal(err)
		}
		trim := func(s string) string { // per-run elapsed lines may differ
			var kept []string
			for _, l := range strings.Split(s, "\n") {
				if !strings.HasPrefix(l, "  (") {
					kept = append(kept, l)
				}
			}
			return strings.Join(kept, "\n")
		}
		if trim(flags.String()) != trim(specs.String()) {
			t.Errorf("mode %v: -spec output differs from flags\n--- flags ---\n%s--- spec ---\n%s",
				mode, flags.String(), specs.String())
		}
	}
}

func TestSpecFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(`{"kind":"scenario","id":"multilat-town","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"-spec", path}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "figure specs") {
		t.Errorf("scenario spec accepted by the figure CLI: %v", err)
	}
	if err := realMain([]string{"-spec", path, "-only", "fig11"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Errorf("-spec with -only accepted: %v", err)
	}
	if err := realMain([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}); err == nil {
		t.Error("missing spec file accepted")
	}
	// An explicit -seed would silently lose against the file's embedded
	// seeds, so it must be rejected.
	fig := filepath.Join(t.TempDir(), "fig.json")
	if err := os.WriteFile(fig, []byte(`{"kind":"figure","id":"fig11","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"-spec", fig, "-seed", "7"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-seed") {
		t.Errorf("-seed with -spec accepted: %v", err)
	}
}

// TestListAndParams: -list prints every experiment ID plus the parameter
// schema of the parameterized ones, and -param selects an operating point
// (validated against the schema) for -only runs.
func TestListAndParams(t *testing.T) {
	var list bytes.Buffer
	if err := realMain([]string{"-list"}, &list); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig11", "maxrange", "rounds", "default 40"} {
		if !strings.Contains(list.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, list.String())
		}
	}

	var buf bytes.Buffer
	if err := realMain([]string{"-only", "maxrange", "-param", "rounds=5",
		"-seed", "2", "-no-cache", "-progress=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "maxrange") {
		t.Errorf("parameterized run output incomplete:\n%s", buf.String())
	}

	if err := realMain([]string{"-only", "maxrange", "-param", "rounds=0", "-no-cache"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range param accepted: %v", err)
	}
	if err := realMain([]string{"-only", "fig11", "-param", "rounds=5", "-no-cache"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "takes no parameters") {
		t.Errorf("param on a fixed figure accepted: %v", err)
	}
}

// TestSweepFile: -sweep expands a figure template across its grid; -param
// conflicts with the file like the other job-parameter flags.
func TestSweepFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	doc := `{"template":{"kind":"figure","id":"maxrange"},"grid":{"rounds":[4,5]},"seeds":[2]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := realMain([]string{"-sweep", path, "-no-cache", "-progress=false", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var results []*experiments.Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, buf.String())
	}
	if len(results) != 2 || results[0].ID != "maxrange" || results[1].ID != "maxrange" {
		t.Errorf("sweep results %+v, want two maxrange points", results)
	}
	if err := realMain([]string{"-sweep", path, "-param", "rounds=9"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-param") {
		t.Errorf("-param with -sweep accepted: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := realMain([]string{"-only", "fig99"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := realMain([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for unknown flag")
	}
}
