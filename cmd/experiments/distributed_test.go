package main

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/run"
	"resilientloc/internal/locsrv"
)

// distWorkers stands up two real locd services for the -workers flag.
func distWorkers(t *testing.T) string {
	t.Helper()
	var urls []string
	for i := 0; i < 2; i++ {
		srv, err := locsrv.New(run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { srv.Close(); hs.Close() })
		urls = append(urls, hs.URL)
	}
	return strings.Join(urls, ",")
}

// TestWorkersFlagMatchesLocalJSON: figure results carry no execution
// metadata, so -workers -json output is byte-identical to the local run.
func TestWorkersFlagMatchesLocalJSON(t *testing.T) {
	args := []string{"-only", "maxrange", "-seed", "1", "-json", "-no-cache"}
	var local bytes.Buffer
	if err := realMain(args, &local); err != nil {
		t.Fatal(err)
	}
	var dist bytes.Buffer
	if err := realMain(append(args, "-workers", distWorkers(t), "-ranges", "4"), &dist); err != nil {
		t.Fatal(err)
	}
	if local.String() != dist.String() {
		t.Errorf("-workers JSON output diverged from local run\nlocal %s\ndist  %s", local.String(), dist.String())
	}
}

// TestRangesNeedsWorkers: -ranges without -workers errors.
func TestRangesNeedsWorkers(t *testing.T) {
	if err := realMain([]string{"-only", "fig11", "-ranges", "2"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-workers") {
		t.Errorf("err %v, want -ranges/-workers coupling error", err)
	}
}
