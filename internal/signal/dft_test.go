package signal

import (
	"math"
	"math/rand"
	"testing"
)

// steadyStatePower runs the filter over a pure tone long enough to fill the
// window and returns the final band powers.
func steadyStatePower(freqFrac float64, amplitude float64) (p4, p6 float64) {
	var f SlidingDFT
	for i := 0; i < 4*SlidingDFTWindow; i++ {
		p4, p6 = f.Filter(amplitude * math.Sin(2*math.Pi*freqFrac*float64(i)))
	}
	return p4, p6
}

func TestSlidingDFTSelectivity(t *testing.T) {
	// A tone at fs/4 must light up the p4 band far more than p6 and vice
	// versa.
	p4at4, p6at4 := steadyStatePower(0.25, 100)
	if p4at4 < 100*p6at4 {
		t.Errorf("fs/4 tone: p4=%g not dominant over p6=%g", p4at4, p6at4)
	}
	p4at6, p6at6 := steadyStatePower(1.0/6, 100)
	if p6at6 < 100*p4at6 {
		t.Errorf("fs/6 tone: p6=%g not dominant over p4=%g", p6at6, p4at6)
	}
}

func TestSlidingDFTToneMagnitude(t *testing.T) {
	// For amplitude A at the exact bin frequency the unnormalized DFT bin
	// magnitude is A·W/2, so power ≈ (A·W/2)².
	const amp = 10.0
	p4, _ := steadyStatePower(0.25, amp)
	want := amp * amp * SlidingDFTWindow * SlidingDFTWindow / 4
	if math.Abs(p4-want)/want > 0.05 {
		t.Errorf("p4 = %g, want ≈%g", p4, want)
	}
	// The paper's p6 formula (re6²+3·im6²)/2 carries a factor of 2 relative
	// to |S|²: its integer coefficients are 2·cos and (2/√3)·sin, so
	// re6²+3·im6² = 4|S|².
	_, p6 := steadyStatePower(1.0/6, amp)
	if math.Abs(p6-2*want)/(2*want) > 0.05 {
		t.Errorf("p6 = %g, want ≈%g", p6, 2*want)
	}
}

func TestSlidingDFTSilenceIsZero(t *testing.T) {
	var f SlidingDFT
	var p4, p6 float64
	for i := 0; i < 100; i++ {
		p4, p6 = f.Filter(0)
	}
	if p4 != 0 || p6 != 0 {
		t.Errorf("silence: p4=%g p6=%g, want 0", p4, p6)
	}
}

func TestSlidingDFTMatchesGoertzel(t *testing.T) {
	// After the window fills, the sliding filter's fs/4 power must match a
	// direct Goertzel computation over the same 36 samples.
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64()*3 + 5*math.Sin(2*math.Pi*0.25*float64(i))
	}
	var f SlidingDFT
	var p4 float64
	for _, s := range samples {
		p4, _ = f.Filter(s)
	}
	window := samples[len(samples)-SlidingDFTWindow:]
	want := GoertzelPower(window, 0.25)
	if math.Abs(p4-want) > 1e-6*(1+want) {
		t.Errorf("sliding p4 = %g, Goertzel = %g", p4, want)
	}
}

func TestSlidingDFTDecaysAfterTone(t *testing.T) {
	var f SlidingDFT
	var p6 float64
	for i := 0; i < 72; i++ {
		p6, _ = f.Filter(100 * math.Sin(2*math.Pi/6*float64(i)))
	}
	// Feed silence for a full window: power must return to ~0.
	for i := 0; i < SlidingDFTWindow; i++ {
		_, p6 = f.Filter(0)
	}
	if p6 > 1e-9 {
		t.Errorf("band power %g did not decay after tone", p6)
	}
}

func TestSlidingDFTReset(t *testing.T) {
	var f SlidingDFT
	for i := 0; i < 50; i++ {
		f.Filter(7)
	}
	f.Reset()
	p4, p6 := f.Filter(0)
	if p4 != 0 || p6 != 0 {
		t.Errorf("after Reset: p4=%g p6=%g, want 0", p4, p6)
	}
}

func TestDFTDetectorCleanSignal(t *testing.T) {
	cfg := DefaultSynth()
	wave, err := cfg.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := DefaultDFTDetector().Detect(wave)
	if len(hits) != cfg.Chirps {
		t.Fatalf("clean signal: %d detections, want %d (hits=%v)", len(hits), cfg.Chirps, hits)
	}
	for i, start := range cfg.ChirpStarts() {
		if math.Abs(float64(hits[i]-start)) > SlidingDFTWindow+16 {
			t.Errorf("hit %d at %d, chirp starts at %d", i, hits[i], start)
		}
	}
}

func TestDFTDetectorNoisySignal(t *testing.T) {
	// Figure 10's noisy case: the paper reports 3 of 4 chirps detected with
	// no false positives. We require ≥3 of 4 with zero false positives.
	cfg := DefaultSynth()
	cfg.NoiseStd = 700 // SNR ≈ 1 per-sample: heavily degraded
	rng := rand.New(rand.NewSource(13))
	wave, err := cfg.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	hits := DefaultDFTDetector().Detect(wave)
	starts := cfg.ChirpStarts()
	matched := 0
	false_ := 0
	for _, h := range hits {
		ok := false
		for _, s := range starts {
			if h >= s-SlidingDFTWindow && h <= s+cfg.ChirpLen {
				ok = true
				break
			}
		}
		if ok {
			matched++
		} else {
			false_++
		}
	}
	if matched < 3 {
		t.Errorf("only %d/4 chirps detected in noise (hits=%v)", matched, hits)
	}
	if false_ > 0 {
		t.Errorf("%d false positives in noise (hits=%v)", false_, hits)
	}
}

func TestDFTDetectorPureNoiseNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	wave := make([]float64, 16000) // one second of pure noise
	for i := range wave {
		wave[i] = rng.NormFloat64() * 500
	}
	hits := DefaultDFTDetector().Detect(wave)
	if len(hits) != 0 {
		t.Errorf("pure noise produced %d detections: %v", len(hits), hits)
	}
}

func TestDFTDetectorShortInput(t *testing.T) {
	if hits := DefaultDFTDetector().Detect(make([]float64, 10)); hits != nil {
		t.Errorf("short input produced hits: %v", hits)
	}
}

func TestGoertzelPowerKnown(t *testing.T) {
	// 36 samples of sin at fs/4: power = (A·W/2)².
	samples := make([]float64, 36)
	for i := range samples {
		samples[i] = 2 * math.Sin(2*math.Pi*0.25*float64(i))
	}
	got := GoertzelPower(samples, 0.25)
	want := 4.0 * 36 * 36 / 4
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("Goertzel = %g, want ≈%g", got, want)
	}
	// Off-bin frequency: near zero response.
	off := GoertzelPower(samples, 1.0/6)
	if off > want/100 {
		t.Errorf("off-bin power %g too high vs %g", off, want)
	}
}

func TestSynthValidate(t *testing.T) {
	good := DefaultSynth()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []SynthConfig{
		{},
		{SampleRate: 16000, ToneFreq: 9000, ChirpLen: 1, Chirps: 1}, // above Nyquist
		{SampleRate: 16000, ToneFreq: 4000, ChirpLen: 0, Chirps: 1},
		{SampleRate: 16000, ToneFreq: 4000, ChirpLen: 1, Chirps: 1, Gap: -1},
		{SampleRate: 16000, ToneFreq: 4000, ChirpLen: 1, Chirps: 1, NoiseStd: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSynthGenerate(t *testing.T) {
	cfg := DefaultSynth()
	wave, err := cfg.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != cfg.TotalLen() {
		t.Fatalf("length %d, want %d", len(wave), cfg.TotalLen())
	}
	// Leading silence must be exactly zero without noise.
	for i := 0; i < cfg.Lead; i++ {
		if wave[i] != 0 {
			t.Fatalf("lead sample %d = %g, want 0", i, wave[i])
		}
	}
	// Chirp regions must carry energy.
	start := cfg.ChirpStarts()[0]
	var energy float64
	for i := start; i < start+cfg.ChirpLen; i++ {
		energy += wave[i] * wave[i]
	}
	if energy == 0 {
		t.Error("chirp region has no energy")
	}
	// Noise without rng must error.
	cfg.NoiseStd = 1
	if _, err := cfg.Generate(nil); err == nil {
		t.Error("want error for nil rng with noise")
	}
}
