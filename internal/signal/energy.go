package signal

import (
	"errors"
	"math"
)

// BandpassEnergyDetector is the XSM-style alternative the paper evaluates in
// Section 3.7's first paragraph: a tunable hardware band-pass filter around
// the beacon frequency followed by simple energy detection. The paper found
// it achieves "similar accuracy as the MICA hardware tone detector, but a
// shorter maximum range (10 m)" because plain energy detection needs a
// higher SNR than coherent tone detection.
type BandpassEnergyDetector struct {
	// SampleRate is the sampling rate, Hz.
	SampleRate float64
	// CenterFreq is the band-pass center frequency, Hz.
	CenterFreq float64
	// Q is the filter's quality factor (center frequency / bandwidth).
	Q float64
	// Margin is the multiple of the tracked noise-floor energy required
	// for detection.
	Margin float64
	// MinRun is the number of consecutive over-margin samples required.
	MinRun int
	// Refractory is the post-detection dead time in samples.
	Refractory int
	// NoiseWindow is the span of the sliding-minimum noise tracker.
	NoiseWindow int
	// EnergyWindow is the short-term energy averaging span, samples. After
	// a narrow band-pass the noise is correlated over ~Q·fs/f samples, so
	// this must be long enough to pool several coherence times or the
	// energy estimate fluctuates wildly.
	EnergyWindow int
}

// DefaultBandpassEnergyDetector returns a detector tuned to the fs/6 beacon
// used throughout this repository.
func DefaultBandpassEnergyDetector() BandpassEnergyDetector {
	// The energy window plus the filter's ring-down must fit inside the
	// inter-chirp gap (64 samples at the default pattern) so the noise
	// floor can be tracked between chirps: that caps Q at ~4, which admits
	// more noise — the physical reason the paper found plain energy
	// detection usable only at shorter range than coherent tone detection.
	return BandpassEnergyDetector{
		SampleRate:   16000,
		CenterFreq:   16000.0 / 6,
		Q:            4,
		Margin:       25,
		MinRun:       24,
		Refractory:   128 + SlidingDFTWindow,
		NoiseWindow:  384,
		EnergyWindow: 48,
	}
}

// Validate checks the detector parameters.
func (d BandpassEnergyDetector) Validate() error {
	switch {
	case d.SampleRate <= 0:
		return errors.New("signal: energy detector: non-positive sample rate")
	case d.CenterFreq <= 0 || d.CenterFreq >= d.SampleRate/2:
		return errors.New("signal: energy detector: center frequency outside (0, Nyquist)")
	case d.Q <= 0:
		return errors.New("signal: energy detector: non-positive Q")
	case d.Margin < 1:
		return errors.New("signal: energy detector: margin below 1")
	}
	return nil
}

// biquadBandpass computes the constant-peak-gain band-pass biquad
// coefficients (RBJ cookbook).
func (d BandpassEnergyDetector) biquadBandpass() (b0, b1, b2, a1, a2 float64) {
	w0 := 2 * math.Pi * d.CenterFreq / d.SampleRate
	alpha := math.Sin(w0) / (2 * d.Q)
	a0 := 1 + alpha
	b0 = alpha / a0
	b1 = 0
	b2 = -alpha / a0
	a1 = -2 * math.Cos(w0) / a0
	a2 = (1 - alpha) / a0
	return
}

// Filter runs the band-pass over the waveform and returns the filtered
// series.
func (d BandpassEnergyDetector) Filter(samples []float64) []float64 {
	b0, b1, b2, a1, a2 := d.biquadBandpass()
	out := make([]float64, len(samples))
	var x1, x2, y1, y2 float64
	for i, x := range samples {
		y := b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2
		out[i] = y
		x2, x1 = x1, x
		y2, y1 = y1, y
	}
	return out
}

// Detect returns the sample indices at which chirps are detected: the
// band-passed signal's short-term energy must exceed Margin times the
// sliding-minimum noise energy for MinRun consecutive samples.
func (d BandpassEnergyDetector) Detect(samples []float64) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(samples) < SlidingDFTWindow {
		return nil, nil
	}
	filtered := d.Filter(samples)
	ew := d.EnergyWindow
	if ew <= 0 {
		ew = 96
	}
	energy := slidingMeanSquare(filtered, ew)
	nw := d.NoiseWindow
	if nw <= 0 {
		nw = 384
	}
	// Warm-up energies (windows not yet full) are unreliable and can sit
	// near zero, which would poison the minimum tracker and make the
	// threshold vanish; exclude them from floor computation.
	forFloor := append([]float64(nil), energy...)
	for i := 0; i < ew && i < len(forFloor); i++ {
		forFloor[i] = math.Inf(1)
	}
	floor := slidingMin(forFloor, nw)

	minRun := d.MinRun
	if minRun <= 0 {
		minRun = 1
	}
	var hits []int
	run, cooldown := 0, 0
	for i := range energy {
		if i < ew {
			continue // warm-up: energy and floor estimates not yet formed
		}
		if cooldown > 0 {
			cooldown--
			run = 0
			continue
		}
		if energy[i] > d.Margin*floor[i] && energy[i] > 1e-12 {
			run++
			if run == minRun {
				hits = append(hits, i-minRun+1)
				cooldown = d.Refractory
			}
		} else {
			run = 0
		}
	}
	return hits, nil
}
