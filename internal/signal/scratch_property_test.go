package signal

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/scratch"
)

// sameF64 reports bitwise equality of two float64 slices (NaNs and signed
// zeros included): the scratch-reuse contract is bit-identical output, not
// approximate equality.
func sameF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDetectInMatchesDetect: across randomized waveforms, the arena-backed
// detection path must produce exactly the hits of the allocating path, with
// the arena reused (and therefore dirty) between iterations.
func TestDetectInMatchesDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	det := DefaultDFTDetector()
	ws := scratch.New()
	for iter := 0; iter < 40; iter++ {
		cfg := DefaultSynth()
		cfg.NoiseStd = float64(rng.Intn(1200))
		cfg.Chirps = 1 + rng.Intn(5)
		cfg.Lead = 100 + rng.Intn(400)
		wave, err := cfg.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		want := det.Detect(wave)
		got := det.DetectIn(ws, wave)
		if !sameInts(want, got) {
			t.Fatalf("iter %d: DetectIn %v != Detect %v", iter, got, want)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("iter %d: nilness differs", iter)
		}
		ws.Release()
	}
}

// TestFilterSeriesInMatchesFilterSeries checks the flattened single-band
// power series against the reference two-band filter, bit for bit.
func TestFilterSeriesInMatchesFilterSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	var f SlidingDFT
	ws := scratch.New()
	for iter := 0; iter < 20; iter++ {
		n := 64 + rng.Intn(4000)
		wave := make([]float64, n)
		for i := range wave {
			wave[i] = rng.NormFloat64() * 500
		}
		f.Reset()
		wantP4, wantP6 := f.FilterSeries(wave)
		f.Reset()
		gotP4, gotP6 := f.FilterSeriesIn(ws, wave)
		if !sameF64(wantP4, gotP4) || !sameF64(wantP6, gotP6) {
			t.Fatalf("iter %d: arena-backed FilterSeriesIn differs from FilterSeries", iter)
		}
		ws.Release()
	}
}

// TestGenerateIntoMatchesGenerate: synthesizing into a reused (dirty) buffer
// from a precomputed template must consume the RNG identically and produce
// bit-identical samples, including signed zeros in the noise floor.
func TestGenerateIntoMatchesGenerate(t *testing.T) {
	ws := scratch.New()
	for iter := 0; iter < 20; iter++ {
		cfg := DefaultSynth()
		cfg.NoiseStd = float64(iter * 60)
		cfg.Chirps = 1 + iter%5
		tmpl, err := cfg.Template()
		if err != nil {
			t.Fatal(err)
		}
		want, err := cfg.Generate(rand.New(rand.NewSource(int64(500 + iter))))
		if err != nil {
			t.Fatal(err)
		}
		out := ws.Float64s(cfg.TotalLen())
		if err := cfg.GenerateInto(out, tmpl, rand.New(rand.NewSource(int64(500+iter)))); err != nil {
			t.Fatal(err)
		}
		if !sameF64(want, out) {
			t.Fatalf("iter %d: GenerateInto differs from Generate", iter)
		}
		ws.Release()
	}
}
