package signal

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnergyDetectorValidate(t *testing.T) {
	if err := DefaultBandpassEnergyDetector().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := []BandpassEnergyDetector{
		{},
		{SampleRate: 16000, CenterFreq: 9000, Q: 8, Margin: 10}, // above Nyquist
		{SampleRate: 16000, CenterFreq: 2000, Q: 0, Margin: 10},
		{SampleRate: 16000, CenterFreq: 2000, Q: 8, Margin: 0.5},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("detector %d should be invalid", i)
		}
	}
}

func TestBiquadSelectivity(t *testing.T) {
	d := DefaultBandpassEnergyDetector()
	gain := func(freq float64) float64 {
		n := 2000
		in := make([]float64, n)
		for i := range in {
			in[i] = math.Sin(2 * math.Pi * freq / d.SampleRate * float64(i))
		}
		out := d.Filter(in)
		var e float64
		for _, y := range out[n/2:] { // steady state
			e += y * y
		}
		return e
	}
	center := gain(d.CenterFreq)
	off := gain(d.CenterFreq * 2.5)
	if center < 10*off {
		t.Errorf("band-pass not selective: center %g vs off-band %g", center, off)
	}
}

func TestEnergyDetectorCleanSignal(t *testing.T) {
	cfg := DefaultSynth()
	wave, err := cfg.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := DefaultBandpassEnergyDetector().Detect(wave)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != cfg.Chirps {
		t.Fatalf("clean signal: %d detections, want %d (hits=%v)", len(hits), cfg.Chirps, hits)
	}
}

func TestEnergyDetectorPureNoiseNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wave := make([]float64, 16000)
	for i := range wave {
		wave[i] = rng.NormFloat64() * 500
	}
	hits, err := DefaultBandpassEnergyDetector().Detect(wave)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("pure noise produced %d detections: %v", len(hits), hits)
	}
}

// TestEnergyDetectorWorseThanDFTInNoise reproduces the paper's §3.7
// comparison: band-pass + energy detection achieves similar accuracy but a
// *shorter maximum range* than coherent tone detection — i.e. at low SNR the
// DFT detector still finds chirps the energy detector misses.
func TestEnergyDetectorWorseThanDFTInNoise(t *testing.T) {
	countHits := func(noise float64, seed int64) (dft, energy int) {
		cfg := DefaultSynth()
		cfg.NoiseStd = noise
		rng := rand.New(rand.NewSource(seed))
		wave, err := cfg.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		starts := cfg.ChirpStarts()
		match := func(hits []int) int {
			n := 0
			for _, h := range hits {
				for _, s := range starts {
					if h >= s-SlidingDFTWindow && h <= s+cfg.ChirpLen {
						n++
						break
					}
				}
			}
			return n
		}
		eh, err := DefaultBandpassEnergyDetector().Detect(wave)
		if err != nil {
			t.Fatal(err)
		}
		return match(DefaultDFTDetector().Detect(wave)), match(eh)
	}

	// Moderate noise: both should find most chirps.
	dftMod, energyMod := countHits(300, 11)
	if dftMod < 3 || energyMod < 3 {
		t.Errorf("moderate noise: dft=%d energy=%d, want ≥3 each", dftMod, energyMod)
	}

	// Heavy noise across several trials: the DFT detector must find at
	// least as many chirps in total, and strictly more overall.
	var dftTotal, energyTotal int
	for seed := int64(0); seed < 8; seed++ {
		d, e := countHits(900, 100+seed)
		dftTotal += d
		energyTotal += e
	}
	if dftTotal < energyTotal {
		t.Errorf("heavy noise: dft=%d < energy=%d — coherent detection should win", dftTotal, energyTotal)
	}
}

func TestEnergyDetectorShortInput(t *testing.T) {
	hits, err := DefaultBandpassEnergyDetector().Detect(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if hits != nil {
		t.Errorf("short input produced hits: %v", hits)
	}
}

func TestEnergyDetectorInvalidConfig(t *testing.T) {
	d := DefaultBandpassEnergyDetector()
	d.Q = -1
	if _, err := d.Detect(make([]float64, 100)); err == nil {
		t.Error("want error for invalid config")
	}
}
