package signal

import (
	"math/rand"
	"testing"
)

func TestNewAccumulator(t *testing.T) {
	if _, err := NewAccumulator(0); err == nil {
		t.Error("want error for zero size")
	}
	a, err := NewAccumulator(10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 10 || a.Chirps() != 0 {
		t.Errorf("fresh accumulator wrong: len=%d chirps=%d", a.Len(), a.Chirps())
	}
}

func TestAccumulatorAddRecording(t *testing.T) {
	a, _ := NewAccumulator(4)
	if err := a.AddRecording([]bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRecording([]bool{true, false, false, true}); err != nil {
		t.Fatal(err)
	}
	want := []uint8{2, 0, 1, 1}
	for i, w := range want {
		if a.Samples()[i] != w {
			t.Errorf("cell %d = %d, want %d", i, a.Samples()[i], w)
		}
	}
	if a.Chirps() != 2 {
		t.Errorf("Chirps = %d, want 2", a.Chirps())
	}
	if err := a.AddRecording([]bool{true}); err == nil {
		t.Error("want error for wrong length")
	}
}

func TestAccumulatorSaturation(t *testing.T) {
	a, _ := NewAccumulator(1)
	for i := 0; i < MaxAccumulated; i++ {
		if err := a.AddRecording([]bool{true}); err != nil {
			t.Fatalf("recording %d: %v", i, err)
		}
	}
	if a.Samples()[0] != MaxAccumulated {
		t.Errorf("cell = %d, want %d", a.Samples()[0], MaxAccumulated)
	}
	// The 16th recording must be rejected: the 4-bit buffer is full.
	if err := a.AddRecording([]bool{true}); err == nil {
		t.Error("want error at capacity")
	}
}

func TestAccumulatorReset(t *testing.T) {
	a, _ := NewAccumulator(2)
	_ = a.AddRecording([]bool{true, true})
	a.Reset()
	if a.Chirps() != 0 || a.Samples()[0] != 0 || a.Samples()[1] != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDetectSignalBasic(t *testing.T) {
	// Signal occupies offsets 5..12 with strong accumulation.
	samples := make([]uint8, 20)
	for i := 5; i <= 12; i++ {
		samples[i] = 8
	}
	got := DetectSignal(samples, 4, 8, 2)
	if got != 5 {
		t.Errorf("DetectSignal = %d, want 5", got)
	}
}

func TestDetectSignalAtZero(t *testing.T) {
	samples := []uint8{5, 5, 5, 5, 0, 0, 0, 0}
	if got := DetectSignal(samples, 3, 4, 2); got != 0 {
		t.Errorf("DetectSignal = %d, want 0", got)
	}
}

func TestDetectSignalNone(t *testing.T) {
	samples := make([]uint8, 50)
	samples[7] = 9 // single spike: below k-of-m
	if got := DetectSignal(samples, 3, 8, 2); got != -1 {
		t.Errorf("DetectSignal = %d, want -1", got)
	}
}

func TestDetectSignalRequiresWindowStartHot(t *testing.T) {
	// k hot samples exist in a window, but the window start must itself be
	// hot per Figure 3 (samples[i-m+1] ≥ T).
	samples := []uint8{0, 0, 3, 3, 3, 0, 0, 0, 0, 0}
	got := DetectSignal(samples, 3, 5, 2)
	// Window starting at 2 contains 3 hot and starts hot.
	if got != 2 {
		t.Errorf("DetectSignal = %d, want 2", got)
	}
}

func TestDetectSignalIgnoresSparseNoise(t *testing.T) {
	// Uncorrelated noise: isolated accumulated counts of 1 scattered about,
	// below the T=2 threshold that multi-chirp correlation would produce.
	rng := rand.New(rand.NewSource(3))
	samples := make([]uint8, 500)
	for i := range samples {
		if rng.Float64() < 0.2 {
			samples[i] = 1
		}
	}
	if got := DetectSignal(samples, 6, 32, 2); got != -1 {
		t.Errorf("noise triggered detection at %d", got)
	}
}

func TestDetectSignalDegenerateParams(t *testing.T) {
	s := []uint8{3, 3, 3}
	for _, tc := range []struct {
		name    string
		k, m    int
		samples []uint8
	}{
		{"zero m", 1, 0, s},
		{"zero k", 0, 2, s},
		{"k > m", 3, 2, s},
		{"short buffer", 2, 8, s},
	} {
		if got := DetectSignal(tc.samples, tc.k, tc.m, 1); got != -1 {
			t.Errorf("%s: got %d, want -1", tc.name, got)
		}
	}
}

func TestDetectAllFindsMultipleChirps(t *testing.T) {
	samples := make([]uint8, 100)
	for _, start := range []int{10, 40, 70} {
		for i := start; i < start+8; i++ {
			samples[i] = 5
		}
	}
	hits := DetectAll(samples, 4, 8, 2)
	if len(hits) != 3 {
		t.Fatalf("got %d hits (%v), want 3", len(hits), hits)
	}
	for i, want := range []int{10, 40, 70} {
		if hits[i] != want {
			t.Errorf("hit %d = %d, want %d", i, hits[i], want)
		}
	}
}

// TestEndToEndAccumulateDetect exercises the full Figure 3 flow with the
// paper's calibrated parameters: 10 chirps, T=2, 6-of-32 detection.
func TestEndToEndAccumulateDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		bufLen      = 1000
		arrival     = 333 // true signal start offset
		chirpLen    = 128
		pDetect     = 0.5  // per-sample detection probability during signal
		pFalse      = 0.01 // per-sample false positive probability
		chirps      = 10
		timingSlack = 8 // allowed detection offset error, samples
	)
	acc, _ := NewAccumulator(bufLen)
	for c := 0; c < chirps; c++ {
		rec := make([]bool, bufLen)
		for i := range rec {
			inSignal := i >= arrival && i < arrival+chirpLen
			p := pFalse
			if inSignal {
				p = pDetect
			}
			rec[i] = rng.Float64() < p
		}
		if err := acc.AddRecording(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := DetectSignal(acc.Samples(), 6, 32, 2)
	if got < arrival-timingSlack || got > arrival+timingSlack {
		t.Errorf("detected at %d, want %d±%d", got, arrival, timingSlack)
	}
}

func TestPatternValidate(t *testing.T) {
	if err := DefaultPattern().Validate(); err != nil {
		t.Errorf("default pattern invalid: %v", err)
	}
	bad := []Pattern{
		{Chirps: 0, ChirpLen: 1},
		{Chirps: 1, ChirpLen: 0},
		{Chirps: 1, ChirpLen: 1, GapLen: -1},
		{Chirps: 1, ChirpLen: 1, SilenceFrac: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("pattern %d should be invalid", i)
		}
	}
}

func TestPatternSchedule(t *testing.T) {
	p := Pattern{Chirps: 3, ChirpLen: 10, GapLen: 5}
	starts := p.Schedule(nil)
	want := []int{0, 15, 30}
	for i, w := range want {
		if starts[i] != w {
			t.Errorf("start %d = %d, want %d", i, starts[i], w)
		}
	}
	// Random delays only ever lengthen gaps.
	p.RandomDelay = 4
	rng := rand.New(rand.NewSource(9))
	starts = p.Schedule(rng)
	for i := 1; i < len(starts); i++ {
		gap := starts[i] - starts[i-1]
		if gap < 15 || gap > 19 {
			t.Errorf("gap %d = %d, want in [15,19]", i, gap)
		}
	}
}

func TestPatternVerifyAt(t *testing.T) {
	p := Pattern{Chirps: 1, ChirpLen: 8, RequireSilent: 4, SilenceFrac: 0.25}
	samples := make([]uint8, 20)
	for i := 10; i < 18; i++ {
		samples[i] = 5
	}
	if !p.VerifyAt(samples, 10, 2) {
		t.Error("clean preceding silence rejected")
	}
	// Hot samples immediately before the detection: echo tail → reject.
	samples[8] = 5
	samples[9] = 5
	if p.VerifyAt(samples, 10, 2) {
		t.Error("echo tail accepted")
	}
	// Out-of-range index.
	if p.VerifyAt(samples, -1, 2) || p.VerifyAt(samples, 20, 2) {
		t.Error("out-of-range index accepted")
	}
	// Index 0: no preceding window, accept.
	if !p.VerifyAt(samples, 0, 2) {
		t.Error("index 0 rejected")
	}
}
