// Package signal implements the acoustic signal-detection algorithms of the
// paper's Section 3: the multi-chirp binary accumulation buffer and
// sliding-window threshold detector of Figure 3 (used with a hardware tone
// detector), the chirp-pattern encoder/verifier of Section 3.5, and the
// sliding-DFT software tone detector of Figure 9 (for platforms without a
// hardware tone detector, e.g. the XSM mote).
package signal

import (
	"errors"
	"fmt"
)

// AccumulatorBits is the number of bits the ranging service allocates per
// buffer offset; the paper uses 4 bits, allowing up to 15 chirps to be
// accumulated (Section 3.6.2).
const AccumulatorBits = 4

// MaxAccumulated is the saturation value of one buffer cell.
const MaxAccumulated = 1<<AccumulatorBits - 1

// Accumulator sums binary tone-detector outputs across multiple chirps at
// the same buffer offsets, implementing the paper's record-signal routine
// (Figure 3). Detections of a true signal land at correlated offsets and
// accumulate; uncorrelated noise does not.
type Accumulator struct {
	samples []uint8
	chirps  int
}

// NewAccumulator creates an accumulator with n sample offsets. The buffer
// length bounds the maximum measurable distance: n = fs · dmax / Vs.
func NewAccumulator(n int) (*Accumulator, error) {
	if n <= 0 {
		return nil, errors.New("signal: NewAccumulator: non-positive buffer size")
	}
	return &Accumulator{samples: make([]uint8, n)}, nil
}

// Len returns the number of sample offsets.
func (a *Accumulator) Len() int { return len(a.samples) }

// Chirps returns how many chirp recordings have been accumulated.
func (a *Accumulator) Chirps() int { return a.chirps }

// AddRecording accumulates one chirp's binary tone-detector time series.
// detections must have the same length as the buffer. Cells saturate at
// MaxAccumulated, modeling the 4-bit hardware buffer. It returns an error
// after MaxAccumulated recordings, matching the mote's capacity.
func (a *Accumulator) AddRecording(detections []bool) error {
	if len(detections) != len(a.samples) {
		return fmt.Errorf("signal: AddRecording: length %d != buffer %d", len(detections), len(a.samples))
	}
	if a.chirps >= MaxAccumulated {
		return fmt.Errorf("signal: AddRecording: accumulator full (%d chirps)", a.chirps)
	}
	a.chirps++
	for i, d := range detections {
		if d && a.samples[i] < MaxAccumulated {
			a.samples[i]++
		}
	}
	return nil
}

// Samples exposes the accumulated buffer (shared, not copied) for the
// detector. Treat as read-only.
func (a *Accumulator) Samples() []uint8 { return a.samples }

// Reset clears the buffer for a new measurement round.
func (a *Accumulator) Reset() {
	a.chirps = 0
	for i := range a.samples {
		a.samples[i] = 0
	}
}

// DetectSignal is the paper's detect-signal routine (Figure 3): it slides a
// window of m consecutive samples over the accumulated buffer and returns
// the index of the first window whose first sample meets the threshold and
// which contains at least k samples ≥ T. It returns -1 when no signal is
// found.
//
// The returned index is the offset of the beginning of the acoustic signal
// in the sample buffer; the caller converts it to a distance via the
// sampling rate and the speed of sound.
func DetectSignal(samples []uint8, k, m int, t uint8) int {
	if m <= 0 || k <= 0 || k > m || len(samples) < m {
		return -1
	}
	count := 0
	for i := 0; i < m; i++ {
		if samples[i] >= t {
			count++
		}
	}
	// First window [0, m).
	if count >= k && samples[0] >= t {
		return 0
	}
	for i := m; i < len(samples); i++ {
		if samples[i-m] >= t {
			count--
		}
		if samples[i] >= t {
			count++
		}
		// Window is [i-m+1, i]; report its start when it both passes the
		// k-of-m test and begins with a detection, per Figure 3.
		if count >= k && samples[i-m+1] >= t {
			return i - m + 1
		}
	}
	return -1
}

// DetectAll returns the start indices of every non-overlapping detection in
// the buffer, useful for counting chirps of a pattern and for diagnosing
// echo-induced repeats. Windows are consumed greedily: after a detection at
// index i the search resumes at i+m.
func DetectAll(samples []uint8, k, m int, t uint8) []int {
	var hits []int
	off := 0
	for off+m <= len(samples) {
		i := DetectSignal(samples[off:], k, m, t)
		if i < 0 {
			break
		}
		hits = append(hits, off+i)
		off += i + m
	}
	return hits
}
