package signal

import (
	"errors"
	"math"
	"math/rand"
)

// Waveform synthesis for testing the software tone detector and reproducing
// Figure 10 (clean and noisy chirp trains before/after filtering).

// SynthConfig describes a synthetic sampled waveform containing a train of
// constant-frequency chirps in additive white Gaussian noise.
type SynthConfig struct {
	SampleRate float64 // Hz (paper: 16 kHz)
	ToneFreq   float64 // Hz of the beacon tone (fs/6 ≈ 2.67 kHz by default)
	Amplitude  float64 // tone amplitude, arbitrary units
	NoiseStd   float64 // standard deviation of additive Gaussian noise
	ChirpLen   int     // samples per chirp
	Gap        int     // samples of silence between chirps
	Chirps     int     // number of chirps
	Lead       int     // samples of leading silence
	Trail      int     // samples of trailing silence
}

// DefaultSynth returns a configuration matching the Figure 10 setting: four
// chirps of a tone at fs/6 with surrounding silence.
func DefaultSynth() SynthConfig {
	return SynthConfig{
		SampleRate: 16000,
		ToneFreq:   16000.0 / 6,
		Amplitude:  1000,
		NoiseStd:   0,
		ChirpLen:   128,
		Gap:        64,
		Chirps:     4,
		Lead:       64,
		Trail:      64,
	}
}

// Validate checks the synthesis parameters.
func (c SynthConfig) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return errors.New("signal: SynthConfig: non-positive sample rate")
	case c.ToneFreq <= 0 || c.ToneFreq >= c.SampleRate/2:
		return errors.New("signal: SynthConfig: tone frequency outside (0, Nyquist)")
	case c.ChirpLen <= 0 || c.Chirps <= 0:
		return errors.New("signal: SynthConfig: need positive chirp length and count")
	case c.Gap < 0 || c.Lead < 0 || c.Trail < 0:
		return errors.New("signal: SynthConfig: negative interval")
	case c.NoiseStd < 0:
		return errors.New("signal: SynthConfig: negative noise std")
	}
	return nil
}

// ChirpStarts returns the sample index at which each chirp begins.
func (c SynthConfig) ChirpStarts() []int {
	starts := make([]int, c.Chirps)
	off := c.Lead
	for i := range starts {
		starts[i] = off
		off += c.ChirpLen + c.Gap
	}
	return starts
}

// TotalLen returns the total waveform length in samples.
func (c SynthConfig) TotalLen() int {
	return c.Lead + c.Chirps*c.ChirpLen + (c.Chirps-1)*c.Gap + c.Trail
}

// Generate synthesizes the waveform. rng supplies the noise; it may be nil
// when NoiseStd is zero.
func (c SynthConfig) Generate(rng *rand.Rand) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.NoiseStd > 0 && rng == nil {
		return nil, errors.New("signal: Generate: nil rng with nonzero noise")
	}
	n := c.TotalLen()
	out := make([]float64, n)
	if c.NoiseStd > 0 {
		for i := range out {
			out[i] = rng.NormFloat64() * c.NoiseStd
		}
	}
	omega := 2 * math.Pi * c.ToneFreq / c.SampleRate
	for _, start := range c.ChirpStarts() {
		for j := 0; j < c.ChirpLen && start+j < n; j++ {
			out[start+j] += c.Amplitude * math.Sin(omega*float64(start+j))
		}
	}
	return out, nil
}

// Template precomputes the deterministic chirp train — the waveform minus
// its noise — so repeated syntheses (one per trial) can skip the per-sample
// Sin calls via GenerateInto. Each chirp sample holds exactly the value
// Generate adds at that index; NoiseStd is irrelevant to the template.
func (c SynthConfig) Template() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.TotalLen()
	tmpl := make([]float64, n)
	omega := 2 * math.Pi * c.ToneFreq / c.SampleRate
	for _, start := range c.ChirpStarts() {
		for j := 0; j < c.ChirpLen && start+j < n; j++ {
			tmpl[start+j] = c.Amplitude * math.Sin(omega*float64(start+j))
		}
	}
	return tmpl, nil
}

// GenerateInto synthesizes the waveform into out (length TotalLen) reusing a
// template from Template called on a config with the same geometry. The
// result is bit-identical to Generate: the noise fill consumes the same rng
// stream, and the template values are added at exactly the chirp indices
// Generate touches (untouched samples keep the pure noise value, never a
// `+ 0` rewrite, so signed zeros survive).
func (c SynthConfig) GenerateInto(out, tmpl []float64, rng *rand.Rand) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.NoiseStd > 0 && rng == nil {
		return errors.New("signal: GenerateInto: nil rng with nonzero noise")
	}
	n := c.TotalLen()
	if len(out) != n || len(tmpl) != n {
		return errors.New("signal: GenerateInto: out/template length mismatch")
	}
	if c.NoiseStd > 0 {
		for i := range out {
			out[i] = rng.NormFloat64() * c.NoiseStd
		}
	} else {
		clear(out)
	}
	// Same starts as ChirpStarts, computed without allocating.
	start := c.Lead
	for ci := 0; ci < c.Chirps; ci++ {
		for j := 0; j < c.ChirpLen && start+j < n; j++ {
			out[start+j] += tmpl[start+j]
		}
		start += c.ChirpLen + c.Gap
	}
	return nil
}
