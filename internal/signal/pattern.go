package signal

import (
	"errors"
	"math/rand"
)

// Pattern describes the acoustic signal pattern of Section 3.5: a sequence
// of identical chirps interspersed with silence, with small random delays
// between elements so that echoes of one chirp do not align with the next.
type Pattern struct {
	Chirps        int     // number of chirps in the pattern (paper: 10)
	ChirpLen      int     // chirp length in samples (paper: 8 ms at 16 kHz = 128)
	GapLen        int     // nominal silence between chirps, samples
	RandomDelay   int     // max extra random delay added to each gap, samples
	RequireSilent int     // samples of required silence before a chirp for pattern verification
	SilenceFrac   float64 // max fraction of positives tolerated in the silence window
}

// Validate checks the pattern parameters.
func (p Pattern) Validate() error {
	switch {
	case p.Chirps <= 0:
		return errors.New("signal: pattern needs at least one chirp")
	case p.ChirpLen <= 0:
		return errors.New("signal: non-positive chirp length")
	case p.GapLen < 0 || p.RandomDelay < 0 || p.RequireSilent < 0:
		return errors.New("signal: negative pattern interval")
	case p.SilenceFrac < 0 || p.SilenceFrac > 1:
		return errors.New("signal: SilenceFrac out of [0,1]")
	}
	return nil
}

// Schedule returns the start offset of each chirp (in samples, relative to
// the start of the pattern) with fresh random inter-chirp delays drawn from
// rng. A nil rng yields the deterministic nominal schedule.
func (p Pattern) Schedule(rng *rand.Rand) []int {
	starts := make([]int, p.Chirps)
	off := 0
	for i := range starts {
		starts[i] = off
		off += p.ChirpLen + p.GapLen
		if rng != nil && p.RandomDelay > 0 {
			off += rng.Intn(p.RandomDelay + 1)
		}
	}
	return starts
}

// VerifyAt checks whether a detection at index idx in the accumulated
// buffer is consistent with the pattern: the RequireSilent samples before
// the chirp must be (mostly) below threshold, rejecting detections that are
// the tail of an echo or a continuation of wide-band noise (Section 3.5:
// "we look at both the chirp and the interval preceding it").
func (p Pattern) VerifyAt(samples []uint8, idx int, t uint8) bool {
	if idx < 0 || idx >= len(samples) {
		return false
	}
	lo := idx - p.RequireSilent
	if lo < 0 {
		lo = 0
	}
	if idx == lo {
		return true // no preceding window available; accept
	}
	var hot int
	for i := lo; i < idx; i++ {
		if samples[i] >= t {
			hot++
		}
	}
	return float64(hot) <= p.SilenceFrac*float64(idx-lo)
}

// DefaultPattern returns the parameters the paper calibrated for the grassy
// field campaign (Section 3.6): ten 8 ms chirps at a 16 kHz sampling rate.
func DefaultPattern() Pattern {
	return Pattern{
		Chirps:        10,
		ChirpLen:      128, // 8 ms × 16 kHz
		GapLen:        512, // 32 ms of nominal silence
		RandomDelay:   160, // up to 10 ms random extra delay
		RequireSilent: 64,  // 4 ms of required preceding quiet
		SilenceFrac:   0.25,
	}
}
