package signal

import (
	"math"

	"resilientloc/internal/scratch"
)

// SlidingDFTWindow is the window length of the paper's XSM detection filter
// (Figure 9): 36 samples, the least common multiple of the two beacon
// periods (4 and 6 samples), so both bins complete whole cycles per window.
const SlidingDFTWindow = 36

// SlidingDFT is the paper's Figure 9 software tone-detection filter: an
// incrementally-updated DFT over a sliding 36-sample window that tracks the
// power of two candidate beacon bands at 1/4 and 1/6 of the sampling rate.
// Those frequencies are chosen so the complex roots of unity are 0, ±1, ±1/2
// (scaled), avoiding multiplications on a microcontroller.
//
// The zero value is ready to use.
type SlidingDFT struct {
	samples [SlidingDFTWindow]float64
	n       int // index into the circular buffer, mod 36 (phase mod 4 follows n)
	k       int // phase counter mod 6
	re4     float64
	im4     float64
	re6     float64
	im6     float64
}

// Reset restores the filter to its initial state.
func (f *SlidingDFT) Reset() { *f = SlidingDFT{} }

// Filter pushes one raw sample and returns the updated band power estimates
// (p4, p6) for the fs/4 and fs/6 beacon bands, exactly per Figure 9:
// p4 = re4² + im4², p6 = (re6² + 3·im6²)/2.
func (f *SlidingDFT) Filter(sample float64) (p4, p6 float64) {
	// Replace the oldest sample; the delta updates the running DFT bins.
	delta := sample - f.samples[f.n]
	f.samples[f.n] = sample

	// fs/4 bin: roots of unity cycle (1, i, -1, -i) with period 4. Because
	// 36 ≡ 0 (mod 4), the phase of a buffer slot is stable across wraps.
	switch f.n % 4 {
	case 0:
		f.re4 += delta
	case 1:
		f.im4 += delta
	case 2:
		f.re4 -= delta
	case 3:
		f.im4 -= delta
	}

	// fs/6 bin: coefficients are 2·cos and (2/√3)·sin of 2πk/6, kept integer
	// by scaling; the (re6² + 3·im6²)/2 output compensates.
	switch f.k {
	case 0:
		f.re6 += 2 * delta
	case 1:
		f.re6 += delta
		f.im6 += delta
	case 2:
		f.re6 -= delta
		f.im6 += delta
	case 3:
		f.re6 -= 2 * delta
	case 4:
		f.re6 -= delta
		f.im6 -= delta
	case 5:
		f.re6 += delta
		f.im6 -= delta
	}

	f.n = (f.n + 1) % SlidingDFTWindow
	f.k = (f.k + 1) % 6

	return f.re4*f.re4 + f.im4*f.im4, (f.re6*f.re6 + 3*f.im6*f.im6) / 2
}

// FilterSeries runs the filter over an entire sampled waveform and returns
// the two band-power series, each the same length as the input.
func (f *SlidingDFT) FilterSeries(samples []float64) (p4, p6 []float64) {
	return f.FilterSeriesIn(nil, samples)
}

// FilterSeriesIn is FilterSeries with the output series borrowed from ws
// (nil ws allocates). The returned slices are arena-owned: valid only until
// the arena's next Release.
func (f *SlidingDFT) FilterSeriesIn(ws *scratch.Arena, samples []float64) (p4, p6 []float64) {
	p4 = ws.Float64s(len(samples))
	p6 = ws.Float64s(len(samples))
	for i, s := range samples {
		p4[i], p6[i] = f.Filter(s)
	}
	return p4, p6
}

// filterBand4Series fills out with the fs/4 band-power series, bit-identical
// to FilterSeries' p4 output: the two bins share only the sample delta, so
// skipping the fs/6 accumulator updates performs exactly the same operations
// on the fs/4 state.
func filterBand4Series(out, samples []float64) {
	var buf [SlidingDFTWindow]float64
	var re4, im4 float64
	n, m := 0, 0 // buffer index mod 36, phase mod 4
	for i, s := range samples {
		delta := s - buf[n]
		buf[n] = s
		switch m {
		case 0:
			re4 += delta
		case 1:
			im4 += delta
		case 2:
			re4 -= delta
		case 3:
			im4 -= delta
		}
		if n++; n == SlidingDFTWindow {
			n = 0
		}
		if m++; m == 4 {
			m = 0
		}
		out[i] = re4*re4 + im4*im4
	}
}

// filterBand6Series fills out with the fs/6 band-power series, bit-identical
// to FilterSeries' p6 output (see filterBand4Series).
func filterBand6Series(out, samples []float64) {
	var buf [SlidingDFTWindow]float64
	var re6, im6 float64
	n, k := 0, 0 // buffer index mod 36, phase mod 6
	for i, s := range samples {
		delta := s - buf[n]
		buf[n] = s
		switch k {
		case 0:
			re6 += 2 * delta
		case 1:
			re6 += delta
			im6 += delta
		case 2:
			re6 -= delta
			im6 += delta
		case 3:
			re6 -= 2 * delta
		case 4:
			re6 -= delta
			im6 -= delta
		case 5:
			re6 += delta
			im6 -= delta
		}
		if n++; n == SlidingDFTWindow {
			n = 0
		}
		if k++; k == 6 {
			k = 0
		}
		out[i] = (re6*re6 + 3*im6*im6) / 2
	}
}

// DFTDetector detects chirps in a raw sampled waveform using the sliding
// DFT filter plus the paper's noise-isolation rule (Section 3.7): estimate
// the broadband noise power, subtract/compare it against the beacon-band
// output, and declare a detection when the band exceeds the noise floor by a
// margin for a sustained run of samples.
//
// The noise floor is estimated as a sliding *minimum* of the windowed mean
// square over the preceding NoiseWindow samples. The minimum reaches the
// pure-noise level during inter-chirp gaps, so — unlike a plain Parseval
// average — the estimate is not inflated by the beacon tone itself while a
// chirp is sounding.
type DFTDetector struct {
	// Band selects which beacon band to monitor: 4 for fs/4, 6 for fs/6.
	Band int
	// Margin is the multiple of the per-bin noise power the beacon band must
	// exceed for detection. Noise bin power is exponentially distributed and
	// strongly correlated across the window overlap, so the margin — not
	// MinRun — controls the false-positive rate; 12–16 keeps false positives
	// negligible over seconds of audio while still detecting tones near
	// unity per-sample SNR.
	Margin float64
	// MinRun is the number of consecutive over-margin samples required to
	// declare a chirp, suppressing single-sample flickers.
	MinRun int
	// Refractory is the number of samples after a detection during which no
	// new chirp is declared. Set it to at least chirp length + DFT window so
	// one chirp (plus the window tail it leaves in the filter) yields one
	// event.
	Refractory int
	// NoiseWindow is the span, in samples, over which the minimum of the
	// windowed mean square is tracked. It must cover at least one
	// inter-chirp gap so the estimate can dip to the true floor.
	NoiseWindow int
}

// DefaultDFTDetector returns the configuration used for the Figure 10
// reproduction: fs/6 band, 16× noise margin, 18-sample run, refractory
// covering a 128-sample chirp plus the filter window.
func DefaultDFTDetector() DFTDetector {
	return DFTDetector{
		Band:        6,
		Margin:      16,
		MinRun:      18,
		Refractory:  128 + SlidingDFTWindow,
		NoiseWindow: 256,
	}
}

// Detect returns the sample indices at which chirps are detected in the
// waveform.
func (d DFTDetector) Detect(samples []float64) []int {
	return d.DetectIn(nil, samples)
}

// DetectIn is Detect with every workspace — the monitored band-power series,
// the windowed mean square, the noise floor, and the min-filter deque —
// borrowed from ws instead of allocated (nil ws allocates). In the engine's
// steady state the detection path performs zero allocations per trial. The
// returned hit slice is arena-owned: valid only until ws's next Release.
func (d DFTDetector) DetectIn(ws *scratch.Arena, samples []float64) []int {
	if len(samples) < SlidingDFTWindow {
		return nil
	}
	// Only the monitored band's series is needed, and the two bins' states
	// are independent, so a band-specific pass halves the filter work while
	// performing bit-identical operations on the monitored accumulators.
	band := ws.Float64s(len(samples))
	bandScale := 0.5 // Figure 9's (re6²+3·im6²)/2 equals 2·|S|²; undo it
	if d.Band == 4 {
		filterBand4Series(band, samples)
		bandScale = 1
	} else {
		filterBand6Series(band, samples)
	}

	// Per-bin noise power: by Parseval a W-sample window of variance-σ²
	// noise puts W·σ² in each bin on average; σ² comes from the sliding
	// minimum of the windowed mean square.
	meanSq := ws.Float64s(len(samples))
	slidingMeanSquareInto(meanSq, samples, SlidingDFTWindow)
	nw := d.noiseWindow()
	floor := ws.Float64s(len(samples))
	slidingMinInto(floor, ws.Ints(nw+1), meanSq, nw)
	const w = float64(SlidingDFTWindow)

	margin := d.Margin
	if margin < 1 {
		margin = 1
	}
	minRun := d.MinRun
	if minRun <= 0 {
		minRun = 1
	}

	// Each hit consumes at least minRun over-margin samples, which bounds
	// the hit count and keeps the append below allocation-free.
	hits := ws.IntCap(len(samples)/minRun + 1)
	run := 0
	cooldown := 0
	for i := range band {
		if cooldown > 0 {
			cooldown--
			run = 0
			continue
		}
		p := band[i] * bandScale
		if p > margin*w*floor[i] && p > 1e-12 {
			run++
			if run == minRun {
				hits = append(hits, i-minRun+1)
				cooldown = d.Refractory
			}
		} else {
			run = 0
		}
	}
	if len(hits) == 0 {
		return nil
	}
	return hits
}

func (d DFTDetector) noiseWindow() int {
	if d.NoiseWindow <= 0 {
		return 256
	}
	return d.NoiseWindow
}

// slidingMeanSquare returns the mean of squared samples over a trailing
// window of length w at each index (shorter at the start).
func slidingMeanSquare(samples []float64, w int) []float64 {
	out := make([]float64, len(samples))
	slidingMeanSquareInto(out, samples, w)
	return out
}

// slidingMeanSquareInto is slidingMeanSquare writing into out, which must
// have the same length as samples.
func slidingMeanSquareInto(out, samples []float64, w int) {
	var sum float64
	for i, s := range samples {
		sum += s * s
		if i >= w {
			sum -= samples[i-w] * samples[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
}

// slidingMin returns, at each index, the minimum of xs over the trailing
// window of length w, using a monotonic deque for O(n) total work.
func slidingMin(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	slidingMinInto(out, make([]int, w+1), xs, w)
	return out
}

// slidingMinInto is slidingMin writing into out (same length as xs), with
// the monotonic deque held in ring, a circular index buffer of length ≥ w+1.
// The ring replaces the old `deque = deque[1:]` head pop, which leaked
// capacity from the front and forced append regrowth on long waveforms; here
// head and tail just wrap.
func slidingMinInto(out []float64, ring []int, xs []float64, w int) {
	n := len(ring)
	head, count := 0, 0 // deque occupies ring[head … head+count) circularly
	for i, x := range xs {
		for count > 0 {
			back := head + count - 1
			if back >= n {
				back -= n
			}
			if xs[ring[back]] < x {
				break
			}
			count--
		}
		tail := head + count
		if tail >= n {
			tail -= n
		}
		ring[tail] = i
		count++
		if ring[head] <= i-w {
			if head++; head == n {
				head = 0
			}
			count--
		}
		out[i] = xs[ring[head]]
	}
}

// GoertzelPower computes the DFT bin power of samples at normalized
// frequency freq (cycles per sample) with the Goertzel recurrence. It is the
// reference implementation the sliding filter is validated against in tests.
func GoertzelPower(samples []float64, freq float64) float64 {
	omega := 2 * math.Pi * freq
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}
