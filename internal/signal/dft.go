package signal

import "math"

// SlidingDFTWindow is the window length of the paper's XSM detection filter
// (Figure 9): 36 samples, the least common multiple of the two beacon
// periods (4 and 6 samples), so both bins complete whole cycles per window.
const SlidingDFTWindow = 36

// SlidingDFT is the paper's Figure 9 software tone-detection filter: an
// incrementally-updated DFT over a sliding 36-sample window that tracks the
// power of two candidate beacon bands at 1/4 and 1/6 of the sampling rate.
// Those frequencies are chosen so the complex roots of unity are 0, ±1, ±1/2
// (scaled), avoiding multiplications on a microcontroller.
//
// The zero value is ready to use.
type SlidingDFT struct {
	samples [SlidingDFTWindow]float64
	n       int // index into the circular buffer, mod 36 (phase mod 4 follows n)
	k       int // phase counter mod 6
	re4     float64
	im4     float64
	re6     float64
	im6     float64
}

// Reset restores the filter to its initial state.
func (f *SlidingDFT) Reset() { *f = SlidingDFT{} }

// Filter pushes one raw sample and returns the updated band power estimates
// (p4, p6) for the fs/4 and fs/6 beacon bands, exactly per Figure 9:
// p4 = re4² + im4², p6 = (re6² + 3·im6²)/2.
func (f *SlidingDFT) Filter(sample float64) (p4, p6 float64) {
	// Replace the oldest sample; the delta updates the running DFT bins.
	delta := sample - f.samples[f.n]
	f.samples[f.n] = sample

	// fs/4 bin: roots of unity cycle (1, i, -1, -i) with period 4. Because
	// 36 ≡ 0 (mod 4), the phase of a buffer slot is stable across wraps.
	switch f.n % 4 {
	case 0:
		f.re4 += delta
	case 1:
		f.im4 += delta
	case 2:
		f.re4 -= delta
	case 3:
		f.im4 -= delta
	}

	// fs/6 bin: coefficients are 2·cos and (2/√3)·sin of 2πk/6, kept integer
	// by scaling; the (re6² + 3·im6²)/2 output compensates.
	switch f.k {
	case 0:
		f.re6 += 2 * delta
	case 1:
		f.re6 += delta
		f.im6 += delta
	case 2:
		f.re6 -= delta
		f.im6 += delta
	case 3:
		f.re6 -= 2 * delta
	case 4:
		f.re6 -= delta
		f.im6 -= delta
	case 5:
		f.re6 += delta
		f.im6 -= delta
	}

	f.n = (f.n + 1) % SlidingDFTWindow
	f.k = (f.k + 1) % 6

	return f.re4*f.re4 + f.im4*f.im4, (f.re6*f.re6 + 3*f.im6*f.im6) / 2
}

// FilterSeries runs the filter over an entire sampled waveform and returns
// the two band-power series, each the same length as the input.
func (f *SlidingDFT) FilterSeries(samples []float64) (p4, p6 []float64) {
	p4 = make([]float64, len(samples))
	p6 = make([]float64, len(samples))
	for i, s := range samples {
		p4[i], p6[i] = f.Filter(s)
	}
	return p4, p6
}

// DFTDetector detects chirps in a raw sampled waveform using the sliding
// DFT filter plus the paper's noise-isolation rule (Section 3.7): estimate
// the broadband noise power, subtract/compare it against the beacon-band
// output, and declare a detection when the band exceeds the noise floor by a
// margin for a sustained run of samples.
//
// The noise floor is estimated as a sliding *minimum* of the windowed mean
// square over the preceding NoiseWindow samples. The minimum reaches the
// pure-noise level during inter-chirp gaps, so — unlike a plain Parseval
// average — the estimate is not inflated by the beacon tone itself while a
// chirp is sounding.
type DFTDetector struct {
	// Band selects which beacon band to monitor: 4 for fs/4, 6 for fs/6.
	Band int
	// Margin is the multiple of the per-bin noise power the beacon band must
	// exceed for detection. Noise bin power is exponentially distributed and
	// strongly correlated across the window overlap, so the margin — not
	// MinRun — controls the false-positive rate; 12–16 keeps false positives
	// negligible over seconds of audio while still detecting tones near
	// unity per-sample SNR.
	Margin float64
	// MinRun is the number of consecutive over-margin samples required to
	// declare a chirp, suppressing single-sample flickers.
	MinRun int
	// Refractory is the number of samples after a detection during which no
	// new chirp is declared. Set it to at least chirp length + DFT window so
	// one chirp (plus the window tail it leaves in the filter) yields one
	// event.
	Refractory int
	// NoiseWindow is the span, in samples, over which the minimum of the
	// windowed mean square is tracked. It must cover at least one
	// inter-chirp gap so the estimate can dip to the true floor.
	NoiseWindow int
}

// DefaultDFTDetector returns the configuration used for the Figure 10
// reproduction: fs/6 band, 16× noise margin, 18-sample run, refractory
// covering a 128-sample chirp plus the filter window.
func DefaultDFTDetector() DFTDetector {
	return DFTDetector{
		Band:        6,
		Margin:      16,
		MinRun:      18,
		Refractory:  128 + SlidingDFTWindow,
		NoiseWindow: 256,
	}
}

// Detect returns the sample indices at which chirps are detected in the
// waveform.
func (d DFTDetector) Detect(samples []float64) []int {
	if len(samples) < SlidingDFTWindow {
		return nil
	}
	var f SlidingDFT
	p4, p6 := f.FilterSeries(samples)
	band := p6
	bandScale := 0.5 // Figure 9's (re6²+3·im6²)/2 equals 2·|S|²; undo it
	if d.Band == 4 {
		band = p4
		bandScale = 1
	}

	// Per-bin noise power: by Parseval a W-sample window of variance-σ²
	// noise puts W·σ² in each bin on average; σ² comes from the sliding
	// minimum of the windowed mean square.
	meanSq := slidingMeanSquare(samples, SlidingDFTWindow)
	floor := slidingMin(meanSq, d.noiseWindow())
	const w = float64(SlidingDFTWindow)

	margin := d.Margin
	if margin < 1 {
		margin = 1
	}
	minRun := d.MinRun
	if minRun <= 0 {
		minRun = 1
	}

	var hits []int
	run := 0
	cooldown := 0
	for i := range band {
		if cooldown > 0 {
			cooldown--
			run = 0
			continue
		}
		p := band[i] * bandScale
		if p > margin*w*floor[i] && p > 1e-12 {
			run++
			if run == minRun {
				hits = append(hits, i-minRun+1)
				cooldown = d.Refractory
			}
		} else {
			run = 0
		}
	}
	return hits
}

func (d DFTDetector) noiseWindow() int {
	if d.NoiseWindow <= 0 {
		return 256
	}
	return d.NoiseWindow
}

// slidingMeanSquare returns the mean of squared samples over a trailing
// window of length w at each index (shorter at the start).
func slidingMeanSquare(samples []float64, w int) []float64 {
	out := make([]float64, len(samples))
	var sum float64
	for i, s := range samples {
		sum += s * s
		if i >= w {
			sum -= samples[i-w] * samples[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// slidingMin returns, at each index, the minimum of xs over the trailing
// window of length w, using a monotonic deque for O(n) total work.
func slidingMin(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	deque := make([]int, 0, w) // indices with increasing values
	for i, x := range xs {
		for len(deque) > 0 && xs[deque[len(deque)-1]] >= x {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, i)
		if deque[0] <= i-w {
			deque = deque[1:]
		}
		out[i] = xs[deque[0]]
	}
	return out
}

// GoertzelPower computes the DFT bin power of samples at normalized
// frequency freq (cycles per sample) with the Goertzel recurrence. It is the
// reference implementation the sliding filter is validated against in tests.
func GoertzelPower(samples []float64, freq float64) float64 {
	omega := 2 * math.Pi * freq
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}
