// Package locsrv is the localization-result service: the HTTP front-end
// over the spec-driven campaign runner that cmd/locd serves and the
// distributed coordinator (internal/engine/coord) submits trial-range
// sub-jobs to. It lives as a library so the daemon binary stays a thin
// flag-and-signal shell and every consumer — coordinator tests, CLI
// distributed modes, CI harnesses — can stand up a real worker in-process.
//
// Jobs are wire-addressable and content-addressed: a job's ID is the
// SHA-256 of its spec's canonical encoding, so identical submissions are
// the same job. Resubmitting a spec while its first run is in flight
// attaches to that run (and a submission whose cache key is already
// populated is answered from the on-disk result cache with zero trial
// computation — the same cache the CLIs share when pointed at the same
// directory and binary). A spec restricted to a proper trial sub-range
// executes partially and answers with the range's serialized shard
// aggregates (spec.Value.Partial), which is the unit of work the
// coordinator fans out and merges.
//
// Endpoints:
//
//	POST /v1/jobs             submit one spec or an array; returns job IDs
//	GET  /v1/jobs/{id}        job status, and the result once done
//	GET  /v1/jobs/{id}/events NDJSON stream of trial-progress events
//	GET  /v1/cache/{key}      raw result-cache entry by content address
//	GET  /healthz             liveness
//
// Every events stream that observes its job finish ends with a terminal
// status line — status "done" or "failed" (with error text and the
// retryable "skipped" marker) — so stream consumers can distinguish a job
// failure from a mere disconnect, which never carries a status line.
package locsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// job is one wire-addressable execution: a resolved spec plus its
// life-cycle state. All fields are guarded by the server mutex.
type job struct {
	id       string
	resolved spec.Resolved
	status   string // "running", "done", "failed"
	trials   int    // effective total trial count
	progress int    // trials completed so far
	result   *spec.Value
	info     run.Info
	errMsg   string
	skipped  bool                     // failed only because a batch sibling failed; retryable
	done     chan struct{}            // closed when the job leaves "running"
	subs     map[chan [2]int]struct{} // event subscribers: (done, total)
	// trace is the job's recorded span subtree (run.job and the engine spans
	// beneath it), extracted from the batch tracer at completion. Served in
	// the job summary so the coordinator can graft worker-side execution
	// timelines into its own trace.
	trace []obs.SpanRecord
}

// maxFinishedJobs bounds the in-memory job table: finished jobs beyond the
// cap are evicted oldest-first (their results live on in the result cache;
// an evicted id polls as 404 and resubmits as a fresh — typically cached —
// job). Running jobs are never evicted. A variable so tests can shrink it.
var maxFinishedJobs = 1024

// Server is the job table and its execution session. Zero value is not
// usable; construct with New.
type Server struct {
	sess *run.Session
	stop chan struct{} // closed by Close to unblock event streams
	once sync.Once

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job ids in completion order, for eviction
}

// New builds the job table and its session from the execution options. The
// session's OnProgress hook is bound before the session exists, because
// NewSession needs the final Options — the hook only dereferences the
// server, which is ready.
func New(opts run.Options) (*Server, error) {
	s := &Server{jobs: make(map[string]*job), stop: make(chan struct{})}
	opts.OnProgress = s.onProgress
	sess, err := run.NewSession(opts)
	if err != nil {
		return nil, err
	}
	s.sess = sess
	return s, nil
}

// Session exposes the server's execution session (cache directory, trial
// accounting).
func (s *Server) Session() *run.Session { return s.sess }

// Close unblocks every open event stream; idempotent. Call it before HTTP
// server shutdown, which waits for open connections — a subscriber on a
// running job would otherwise hold the daemon until the timeout.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCache)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleMetrics serves the process-wide metric registry in Prometheus text
// exposition format: engine shard/trial counters, cache hit rates, run-layer
// job accounting — everything the instrumented layers record.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// health is the /healthz body: liveness plus the load signals a fleet
// scheduler balances on — how deep the queue is, how many jobs are actually
// executing, and how saturated the shared shard budget is.
type health struct {
	Status string `json:"status"`
	// QueueDepth is the number of submitted jobs waiting for a suite-scheduler
	// slot (run_jobs_queued).
	QueueDepth int64 `json:"queue_depth"`
	// InflightJobs is the number of jobs currently executing trials
	// (run_jobs_inflight).
	InflightJobs int64 `json:"inflight_jobs"`
	// RunningJobs is the size of the job table's "running" set: queued plus
	// executing, as the wire sees it.
	RunningJobs int `json:"running_jobs"`
	// BudgetInUse / BudgetCap describe the process-wide shard-slot budget;
	// BudgetSaturation is their ratio (1.0 = every worker slot busy).
	BudgetInUse      int     `json:"budget_in_use"`
	BudgetCap        int     `json:"budget_cap"`
	BudgetSaturation float64 `json:"budget_saturation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.status == "running" {
			running++
		}
	}
	s.mu.Unlock()
	b := engine.SharedBudget()
	h := health{
		Status:       "ok",
		QueueDepth:   obs.Default().Gauge("run_jobs_queued").Value(),
		InflightJobs: obs.Default().Gauge("run_jobs_inflight").Value(),
		RunningJobs:  running,
		BudgetInUse:  b.InUse(),
		BudgetCap:    b.Cap(),
	}
	h.BudgetSaturation = float64(h.BudgetInUse) / float64(h.BudgetCap)
	writeJSON(w, http.StatusOK, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// jobSummary is the wire representation of a job.
type jobSummary struct {
	ID             string       `json:"id"`
	Spec           spec.JobSpec `json:"spec"`
	Status         string       `json:"status"`
	Trials         int          `json:"trials"`
	DoneTrials     int          `json:"done_trials"`
	Cached         bool         `json:"cached,omitempty"`
	ElapsedSeconds float64      `json:"elapsed_seconds,omitempty"`
	CacheKey       string       `json:"cache_key,omitempty"`
	Error          string       `json:"error,omitempty"`
	// Skipped marks a failure that only reflects a batch sibling's error;
	// the job is retryable by resubmitting its spec. The machine-readable
	// field is the contract — the error text is not.
	Skipped bool        `json:"skipped,omitempty"`
	URL     string      `json:"url"`
	Result  *spec.Value `json:"result,omitempty"`
	// Trace is the job's span subtree (run.job plus the engine spans under
	// it), present on finished jobs when the result is requested. Timestamps
	// are this worker's clock; the coordinator remaps span IDs on import.
	Trace []obs.SpanRecord `json:"trace,omitempty"`
}

// summaryLocked renders a job; the caller holds s.mu.
func (j *job) summaryLocked(withResult bool) jobSummary {
	v := jobSummary{
		ID:         j.id,
		Spec:       j.resolved.Spec,
		Status:     j.status,
		Trials:     j.trials,
		DoneTrials: j.progress,
		Cached:     j.info.Cached,
		CacheKey:   j.info.CacheKey,
		Error:      j.errMsg,
		Skipped:    j.skipped,
		URL:        "/v1/jobs/" + j.id,
	}
	if j.status != "running" {
		v.ElapsedSeconds = j.info.Elapsed.Seconds()
	}
	if withResult && j.status == "done" {
		v.Result = j.result
		v.Trace = j.trace
	}
	return v
}

// handleSubmit accepts one spec or an array, registers the new jobs, and
// launches one suite run for them. Specs whose job ID already exists —
// running or finished — are answered with the existing job, so identical
// concurrent submissions compute their trials exactly once. A job that
// failed only because a batch sibling failed (skipped) is retried by
// resubmission instead of being memoized forever.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	specs, err := spec.Decode(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, tooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resolved, err := spec.ResolveAll(specs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, rj := range resolved {
		if rj.Spec.KeepTrialValues && rj.PartialRange() == nil {
			// A full job's retained per-trial values never serialize (they
			// exist for in-process Finalize consumers), so over the wire the
			// knob could only burn a cache bypass without ever being
			// observable. A proper trial-range sub-job is exempt: its
			// engine.Partial serializes the retained values, which is how the
			// coordinator distributes retention jobs.
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("spec %s: keep_trial_values is not observable over the wire; drop it", rj.Spec.ID))
			return
		}
	}
	s.mu.Lock()
	summaries := make([]jobSummary, 0, len(resolved))
	var fresh []*job
	for _, rj := range resolved {
		id := rj.Spec.Hash()
		j, ok := s.jobs[id]
		if ok && j.skipped {
			ok = false // replace the skipped record with a fresh attempt
			s.dropFinishedLocked(id)
		}
		if !ok {
			// A batch listing one spec twice takes this branch once: the
			// first occurrence inserts the job the second one finds.
			j = &job{
				id:       id,
				resolved: rj,
				status:   "running",
				trials:   rj.Trials,
				done:     make(chan struct{}),
				subs:     make(map[chan [2]int]struct{}),
			}
			s.jobs[id] = j
			fresh = append(fresh, j)
		}
		summaries = append(summaries, j.summaryLocked(false))
	}
	s.mu.Unlock()
	if len(fresh) > 0 {
		jobs := make([]spec.Resolved, len(fresh))
		for i, j := range fresh {
			jobs[i] = j.resolved
		}
		// Each batch runs under its own tracer, so every job's execution
		// timeline can be extracted at completion and served with its result.
		// Unordered: each job answers its pollers and event streams the
		// moment it finishes, instead of waiting on batch siblings.
		tr := obs.NewTracer()
		ctx := obs.WithTracer(context.Background(), tr)
		go run.ExecuteAllUnorderedContext(ctx, s.sess, jobs, func(o run.Outcome) {
			s.finishTraced(tr, o)
		})
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": summaries})
}

// dropFinishedLocked removes a job id from the eviction queue; called when
// a skipped record is replaced, so its stale queue entry cannot evict the
// retry's record ahead of time. The caller holds s.mu.
func (s *Server) dropFinishedLocked(id string) {
	for i, f := range s.finished {
		if f == id {
			s.finished = append(s.finished[:i], s.finished[i+1:]...)
			return
		}
	}
}

// finishTraced extracts the outcome's span subtree — the job's run.job span
// and everything beneath it — from the batch tracer, then records the
// outcome. The job's spans are all ended by the time its outcome is
// delivered, so the extraction is complete even while batch siblings are
// still running.
func (s *Server) finishTraced(tr *obs.Tracer, o run.Outcome) {
	id := o.Spec.Hash()
	trace := obs.Subtree(tr.Export(), func(r obs.SpanRecord) bool {
		return r.Name == "run.job" && r.Attrs["job"] == id
	})
	s.finish(o, trace)
}

// finish records a suite outcome on its job, wakes every waiter, and evicts
// the oldest finished jobs beyond the table bound.
func (s *Server) finish(o run.Outcome, trace []obs.SpanRecord) {
	id := o.Spec.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.info = o.Info
	j.trace = trace
	if o.Err != nil {
		j.status = "failed"
		j.errMsg = o.Err.Error()
		j.skipped = errors.Is(o.Err, run.ErrSkipped)
	} else {
		j.status = "done"
		j.result = o.Result
		j.progress = o.Info.Trials
	}
	close(j.done)
	s.finished = append(s.finished, id)
	for len(s.finished) > maxFinishedJobs {
		victim := s.finished[0]
		s.finished = s.finished[1:]
		// Only evict the record this completion refers to: the id may have
		// been re-registered (skipped retry) and be running again.
		if v, ok := s.jobs[victim]; ok && v.status != "running" {
			delete(s.jobs, victim)
		}
	}
}

// onProgress is the session hook: route trial counters to the job's record
// and its event subscribers. Slow subscribers drop intermediate events —
// each event carries the absolute counter, so the next one catches them up.
func (s *Server) onProgress(id string, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.progress = done
	for ch := range j.subs {
		select {
		case ch <- [2]int{done, total}:
		default:
		}
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var v jobSummary
	if ok {
		v = j.summaryLocked(true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// event is one NDJSON line of a job's progress stream. The terminal line
// carries the final status — "done" or "failed", with the error text and
// retryable marker — instead of a counter delta, so a consumer can always
// tell a finished job from a dropped connection.
type event struct {
	ID     string `json:"id"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Status string `json:"status,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Skipped mirrors jobSummary.Skipped on terminal "failed" lines: the
	// failure is a batch sibling's, and resubmitting the spec retries it.
	Skipped bool `json:"skipped,omitempty"`
	// ElapsedSeconds is the job's wall time, carried on terminal lines only —
	// the same per-job timing the job summary reports.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// handleEvents streams trial-progress counters for one job as
// newline-delimited JSON until the job finishes (one snapshot line is
// always emitted first, so subscribing to a finished job still yields its
// final state plus the terminal line). The stream ends with a terminal
// status line whenever the job itself finished; it ends without one only
// when the subscriber disconnected or the server shut down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch := make(chan [2]int, 64)
	s.mu.Lock()
	j.subs[ch] = struct{}{}
	snapshot := event{ID: j.id, Done: j.progress, Total: j.trials}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(j.subs, ch)
		s.mu.Unlock()
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(e event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit(snapshot) {
		return
	}
	for {
		select {
		case p := <-ch:
			if !emit(event{ID: j.id, Done: p[0], Total: p[1]}) {
				return
			}
		case <-j.done:
			s.mu.Lock()
			final := event{ID: j.id, Done: j.progress, Total: j.trials,
				Status: j.status, Cached: j.info.Cached, Error: j.errMsg, Skipped: j.skipped,
				ElapsedSeconds: j.info.Elapsed.Seconds()}
			s.mu.Unlock()
			emit(final)
			return
		case <-s.stop:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleCache serves a raw result-cache entry by its content address — the
// self-describing {key, value} JSON document the cache stores on disk.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	b, ok, err := s.sess.CacheEntry(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such cache entry (or caching is disabled)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}
