// Package locsrv is the localization-result service: the HTTP front-end
// over the spec-driven campaign runner that cmd/locd serves and the
// distributed coordinator (internal/engine/coord) submits trial-range
// sub-jobs to. It lives as a library so the daemon binary stays a thin
// flag-and-signal shell and every consumer — coordinator tests, CLI
// distributed modes, CI harnesses — can stand up a real worker in-process.
//
// Jobs are wire-addressable and content-addressed: a job's ID is the
// SHA-256 of its spec's canonical encoding, so identical submissions are
// the same job. Resubmitting a spec while its first run is in flight
// attaches to that run (and a submission whose cache key is already
// populated is answered from the on-disk result cache with zero trial
// computation — the same cache the CLIs share when pointed at the same
// directory and binary). A spec restricted to a proper trial sub-range
// executes partially and answers with the range's serialized shard
// aggregates (spec.Value.Partial), which is the unit of work the
// coordinator fans out and merges.
//
// Endpoints:
//
//	POST /v1/jobs             submit one spec or an array; returns job IDs
//	POST /v1/sweeps           expand a sweep and stream one merged NDJSON feed
//	GET  /v1/jobs/{id}        job status, and the result once done
//	GET  /v1/jobs/{id}/events NDJSON stream of trial-progress events
//	GET  /v1/cache/{key}      raw result-cache entry by content address
//	POST /v1/cache/ranges     crash-resume probe: cached ranges of a job spec
//	POST /v1/fleet/announce   worker registration heartbeat (fleet registry)
//	GET  /v1/fleet            live fleet membership
//	GET  /healthz             liveness
//
// Every events stream that observes its job finish ends with a terminal
// status line — status "done" or "failed" (with error text and the
// retryable "skipped" marker) — so stream consumers can distinguish a job
// failure from a mere disconnect, which never carries a status line.
//
// Submissions that would push the running-job table past its admission
// bound — sized from the shared shard budget's capacity, so a big machine
// queues proportionally more than a small one — are rejected whole with
// 429 and a Retry-After header scaled by queue depth and actual budget
// saturation (Budget.InUse vs capacity), so a fleet scheduler can back off
// instead of piling work onto a saturated worker.
//
// Every server also hosts a fleet registry (internal/engine/fleet): locd
// workers announce themselves to any one of them, and coordinators
// discover the fleet from it instead of being handed a static worker list.
package locsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// job is one wire-addressable execution: a resolved spec plus its
// life-cycle state. All fields are guarded by the server mutex.
type job struct {
	id       string
	resolved spec.Resolved
	status   string // "running", "done", "failed"
	trials   int    // effective total trial count
	progress int    // trials completed so far
	result   *spec.Value
	info     run.Info
	errMsg   string
	skipped  bool                     // failed only because a batch sibling failed; retryable
	done     chan struct{}            // closed when the job leaves "running"
	subs     map[chan [2]int]struct{} // event subscribers: (done, total)
	// trace is the job's recorded span subtree (run.job and the engine spans
	// beneath it), extracted from the batch tracer at completion. Served in
	// the job summary so the coordinator can graft worker-side execution
	// timelines into its own trace.
	trace []obs.SpanRecord
}

// maxFinishedJobs bounds the in-memory job table: finished jobs beyond the
// cap are evicted oldest-first (their results live on in the result cache;
// an evicted id polls as 404 and resubmits as a fresh — typically cached —
// job). Running jobs are never evicted. A variable so tests can shrink it.
var maxFinishedJobs = 1024

// runningPerSlot sizes the admission bound per shard-budget slot: the
// "running" set of the job table may hold at most runningPerSlot jobs per
// slot of the shared budget's capacity. A submission — single spec, batch,
// or sweep — whose fresh registrations would push the running count past
// that is rejected whole with 429, before any of its jobs register.
// Resubmissions of in-flight or finished jobs are free (they attach,
// registering nothing). Tying the bound to budget capacity instead of a
// fixed count means a 32-core worker admits a proportionally deeper queue
// than a 2-core one — the bound tracks what the machine can actually
// drain. A variable so tests can shrink it.
var runningPerSlot = 32

// admissionBudget is the budget whose capacity and saturation the 429
// admission bound derives from: the process-wide shard budget in
// production, a pinned tiny budget in tests.
var admissionBudget = engine.SharedBudget

// maxRunningJobs returns the current admission bound on the running set.
func maxRunningJobs() int { return runningPerSlot * admissionBudget().Cap() }

// overloadError reports a rejected submission: the batch's fresh jobs plus
// the currently running set would exceed the budget-derived admission
// bound. RetryAfter is the suggested back-off in seconds, scaled by the
// suite-scheduler queue depth and the budget's saturation.
type overloadError struct {
	fresh, running, limit int
	retryAfter            int
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("overloaded: %d running jobs + %d new would exceed the %d-job bound; retry after %ds",
		e.running, e.fresh, e.limit, e.retryAfter)
}

// retryAfterSeconds scales the back-off hint with the suite-scheduler queue
// depth (the run_jobs_queued gauge /healthz also reports) and the shard
// budget's actual saturation: an idle-but-full table suggests 1s, a fully
// saturated budget adds a few seconds, and a deep queue pushes toward the
// one-minute ceiling.
func retryAfterSeconds() int {
	retry := 1 + int(obs.Default().Gauge("run_jobs_queued").Value())/64
	if b := admissionBudget(); b.Cap() > 0 {
		retry += (4 * b.InUse()) / b.Cap()
	}
	if retry > 60 {
		retry = 60
	}
	return retry
}

// Server is the job table and its execution session. Zero value is not
// usable; construct with New.
type Server struct {
	sess  *run.Session
	fleet *fleet.Registry
	stop  chan struct{} // closed by Close to unblock event streams
	once  sync.Once

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job ids in completion order, for eviction
}

// New builds the job table and its session from the execution options. The
// session's OnProgress hook is bound before the session exists, because
// NewSession needs the final Options — the hook only dereferences the
// server, which is ready.
func New(opts run.Options) (*Server, error) {
	s := &Server{
		jobs:  make(map[string]*job),
		fleet: fleet.NewRegistry(0),
		stop:  make(chan struct{}),
	}
	opts.OnProgress = s.onProgress
	sess, err := run.NewSession(opts)
	if err != nil {
		return nil, err
	}
	s.sess = sess
	return s, nil
}

// Session exposes the server's execution session (cache directory, trial
// accounting).
func (s *Server) Session() *run.Session { return s.sess }

// Fleet exposes the server's membership registry: every locd hosts one, so
// any worker can double as the fleet's discovery point.
func (s *Server) Fleet() *fleet.Registry { return s.fleet }

// Close unblocks every open event stream; idempotent. Call it before HTTP
// server shutdown, which waits for open connections — a subscriber on a
// running job would otherwise hold the daemon until the timeout.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCache)
	mux.HandleFunc("POST /v1/cache/ranges", s.handleCacheRanges)
	mux.HandleFunc("POST "+fleet.AnnouncePath, s.handleFleetAnnounce)
	mux.HandleFunc("GET "+fleet.ListPath, s.handleFleetList)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleMetrics serves the process-wide metric registry in Prometheus text
// exposition format: engine shard/trial counters, cache hit rates, run-layer
// job accounting — everything the instrumented layers record.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// health is the /healthz body: liveness plus the load signals a fleet
// scheduler balances on — how deep the queue is, how many jobs are actually
// executing, and how saturated the shared shard budget is.
type health struct {
	Status string `json:"status"`
	// QueueDepth is the number of submitted jobs waiting for a suite-scheduler
	// slot (run_jobs_queued).
	QueueDepth int64 `json:"queue_depth"`
	// InflightJobs is the number of jobs currently executing trials
	// (run_jobs_inflight).
	InflightJobs int64 `json:"inflight_jobs"`
	// RunningJobs is the size of the job table's "running" set: queued plus
	// executing, as the wire sees it.
	RunningJobs int `json:"running_jobs"`
	// BudgetInUse / BudgetCap describe the process-wide shard-slot budget;
	// BudgetSaturation is their ratio (1.0 = every worker slot busy).
	BudgetInUse      int     `json:"budget_in_use"`
	BudgetCap        int     `json:"budget_cap"`
	BudgetSaturation float64 `json:"budget_saturation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.status == "running" {
			running++
		}
	}
	s.mu.Unlock()
	b := engine.SharedBudget()
	h := health{
		Status:       "ok",
		QueueDepth:   obs.Default().Gauge("run_jobs_queued").Value(),
		InflightJobs: obs.Default().Gauge("run_jobs_inflight").Value(),
		RunningJobs:  running,
		BudgetInUse:  b.InUse(),
		BudgetCap:    b.Cap(),
	}
	h.BudgetSaturation = float64(h.BudgetInUse) / float64(h.BudgetCap)
	writeJSON(w, http.StatusOK, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// jobSummary is the wire representation of a job.
type jobSummary struct {
	ID   string       `json:"id"`
	Spec spec.JobSpec `json:"spec"`
	// Params is the job's resolved operating point — the spec's params with
	// the factory's defaults filled in. Absent for param-less jobs.
	Params     params.Map `json:"params,omitempty"`
	Status     string     `json:"status"`
	Trials     int        `json:"trials"`
	DoneTrials int        `json:"done_trials"`
	Cached     bool       `json:"cached,omitempty"`
	// ReusedTrials counts trials the prefix-reuse planner satisfied from
	// cached range entries instead of recomputing (see run.Info).
	ReusedTrials   int     `json:"reused_trials,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	CacheKey       string  `json:"cache_key,omitempty"`
	Error          string  `json:"error,omitempty"`
	// Skipped marks a failure that only reflects a batch sibling's error;
	// the job is retryable by resubmitting its spec. The machine-readable
	// field is the contract — the error text is not.
	Skipped bool        `json:"skipped,omitempty"`
	URL     string      `json:"url"`
	Result  *spec.Value `json:"result,omitempty"`
	// Trace is the job's span subtree (run.job plus the engine spans under
	// it), present on finished jobs when the result is requested. Timestamps
	// are this worker's clock; the coordinator remaps span IDs on import.
	Trace []obs.SpanRecord `json:"trace,omitempty"`
}

// summaryLocked renders a job; the caller holds s.mu.
func (j *job) summaryLocked(withResult bool) jobSummary {
	v := jobSummary{
		ID:           j.id,
		Spec:         j.resolved.Spec,
		Params:       j.resolved.Params,
		Status:       j.status,
		Trials:       j.trials,
		DoneTrials:   j.progress,
		Cached:       j.info.Cached,
		ReusedTrials: j.info.ReusedTrials,
		CacheKey:     j.info.CacheKey,
		Error:        j.errMsg,
		Skipped:      j.skipped,
		URL:          "/v1/jobs/" + j.id,
	}
	if j.status != "running" {
		v.ElapsedSeconds = j.info.Elapsed.Seconds()
	}
	if withResult && j.status == "done" {
		v.Result = j.result
		v.Trace = j.trace
	}
	return v
}

// handleSubmit accepts one spec or an array, registers the new jobs, and
// launches one suite run for them. Specs whose job ID already exists —
// running or finished — are answered with the existing job, so identical
// concurrent submissions compute their trials exactly once. A job that
// failed only because a batch sibling failed (skipped) is retried by
// resubmission instead of being memoized forever.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	specs, err := spec.Decode(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, tooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resolved, err := spec.ResolveAll(specs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkWireObservable(resolved); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	summaries, _, fresh, err := s.registerJobs(resolved)
	if err != nil {
		writeOverloaded(w, err)
		return
	}
	s.launch(fresh)
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": summaries})
}

// checkWireObservable rejects specs whose retained per-trial values could
// never reach the submitter. A full job's retained values never serialize
// (they exist for in-process Finalize consumers), so over the wire the knob
// could only burn a cache bypass without ever being observable. A proper
// trial-range sub-job is exempt: its engine.Partial serializes the retained
// values, which is how the coordinator distributes retention jobs.
func checkWireObservable(resolved []spec.Resolved) error {
	for _, rj := range resolved {
		if rj.Spec.KeepTrialValues && rj.PartialRange() == nil {
			return fmt.Errorf("spec %s: keep_trial_values is not observable over the wire; drop it", rj.Spec.ID)
		}
	}
	return nil
}

// writeOverloaded renders a registration error; an overloadError becomes a
// 429 with a Retry-After header, anything else a 500.
func writeOverloaded(w http.ResponseWriter, err error) {
	var ov *overloadError
	if errors.As(err, &ov) {
		w.Header().Set("Retry-After", strconv.Itoa(ov.retryAfter))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// registerJobs checks admission and registers a batch's fresh jobs under one
// mutex hold, so the batch is admitted or rejected atomically: on overload
// nothing registers and the returned error carries the retry hint. On
// success it returns one summary and one job pointer per resolved spec (in
// submission order, duplicates and attachments included) plus the fresh
// subset that needs an executor.
func (s *Server) registerJobs(resolved []spec.Resolved) ([]jobSummary, []*job, []*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, j := range s.jobs {
		if j.status == "running" {
			running++
		}
	}
	freshIDs := make(map[string]bool)
	for _, rj := range resolved {
		id := rj.Spec.Hash()
		if j, ok := s.jobs[id]; !ok || j.skipped {
			freshIDs[id] = true
		}
	}
	if limit := maxRunningJobs(); running+len(freshIDs) > limit {
		return nil, nil, nil, &overloadError{
			fresh: len(freshIDs), running: running, limit: limit,
			retryAfter: retryAfterSeconds(),
		}
	}
	summaries := make([]jobSummary, 0, len(resolved))
	all := make([]*job, 0, len(resolved))
	var fresh []*job
	for _, rj := range resolved {
		id := rj.Spec.Hash()
		j, ok := s.jobs[id]
		if ok && j.skipped {
			ok = false // replace the skipped record with a fresh attempt
			s.dropFinishedLocked(id)
		}
		if !ok {
			// A batch listing one spec twice takes this branch once: the
			// first occurrence inserts the job the second one finds.
			j = &job{
				id:       id,
				resolved: rj,
				status:   "running",
				trials:   rj.Trials,
				done:     make(chan struct{}),
				subs:     make(map[chan [2]int]struct{}),
			}
			s.jobs[id] = j
			fresh = append(fresh, j)
		}
		summaries = append(summaries, j.summaryLocked(false))
		all = append(all, j)
	}
	return summaries, all, fresh, nil
}

// launch starts one unordered suite run for a batch's fresh jobs. Each batch
// runs under its own tracer, so every job's execution timeline can be
// extracted at completion and served with its result. Unordered: each job
// answers its pollers and event streams the moment it finishes, instead of
// waiting on batch siblings.
func (s *Server) launch(fresh []*job) {
	if len(fresh) == 0 {
		return
	}
	jobs := make([]spec.Resolved, len(fresh))
	for i, j := range fresh {
		jobs[i] = j.resolved
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	go run.ExecuteAllUnorderedContext(ctx, s.sess, jobs, func(o run.Outcome) {
		s.finishTraced(tr, o)
	})
}

// dropFinishedLocked removes a job id from the eviction queue; called when
// a skipped record is replaced, so its stale queue entry cannot evict the
// retry's record ahead of time. The caller holds s.mu.
func (s *Server) dropFinishedLocked(id string) {
	for i, f := range s.finished {
		if f == id {
			s.finished = append(s.finished[:i], s.finished[i+1:]...)
			return
		}
	}
}

// finishTraced extracts the outcome's span subtree — the job's run.job span
// and everything beneath it — from the batch tracer, then records the
// outcome. The job's spans are all ended by the time its outcome is
// delivered, so the extraction is complete even while batch siblings are
// still running.
func (s *Server) finishTraced(tr *obs.Tracer, o run.Outcome) {
	id := o.Spec.Hash()
	trace := obs.Subtree(tr.Export(), func(r obs.SpanRecord) bool {
		return r.Name == "run.job" && r.Attrs["job"] == id
	})
	s.finish(o, trace)
}

// finish records a suite outcome on its job, wakes every waiter, and evicts
// the oldest finished jobs beyond the table bound.
func (s *Server) finish(o run.Outcome, trace []obs.SpanRecord) {
	id := o.Spec.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.info = o.Info
	j.trace = trace
	if o.Err != nil {
		j.status = "failed"
		j.errMsg = o.Err.Error()
		j.skipped = errors.Is(o.Err, run.ErrSkipped)
	} else {
		j.status = "done"
		j.result = o.Result
		j.progress = o.Info.Trials
	}
	close(j.done)
	s.finished = append(s.finished, id)
	for len(s.finished) > maxFinishedJobs {
		victim := s.finished[0]
		s.finished = s.finished[1:]
		// Only evict the record this completion refers to: the id may have
		// been re-registered (skipped retry) and be running again.
		if v, ok := s.jobs[victim]; ok && v.status != "running" {
			delete(s.jobs, victim)
		}
	}
}

// onProgress is the session hook: route trial counters to the job's record
// and its event subscribers. Slow subscribers drop intermediate events —
// each event carries the absolute counter, so the next one catches them up.
func (s *Server) onProgress(id string, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.progress = done
	for ch := range j.subs {
		select {
		case ch <- [2]int{done, total}:
		default:
		}
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var v jobSummary
	if ok {
		v = j.summaryLocked(true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// event is one NDJSON line of a job's progress stream. The terminal line
// carries the final status — "done" or "failed", with the error text and
// retryable marker — instead of a counter delta, so a consumer can always
// tell a finished job from a dropped connection.
type event struct {
	ID     string `json:"id"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Status string `json:"status,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// ReusedTrials mirrors jobSummary.ReusedTrials on terminal lines: how
	// many of the job's trials the prefix-reuse planner satisfied from
	// cached range entries.
	ReusedTrials int    `json:"reused_trials,omitempty"`
	Error        string `json:"error,omitempty"`
	// Skipped mirrors jobSummary.Skipped on terminal "failed" lines: the
	// failure is a batch sibling's, and resubmitting the spec retries it.
	Skipped bool `json:"skipped,omitempty"`
	// ElapsedSeconds is the job's wall time, carried on terminal lines only —
	// the same per-job timing the job summary reports.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// Result carries the job's final value on a sweep stream's terminal
	// "done" lines, so a sweep consumer never has to fetch N job summaries.
	// Single-job event streams leave it unset — their consumers already hold
	// the job URL.
	Result *spec.Value `json:"result,omitempty"`
}

// handleEvents streams trial-progress counters for one job as
// newline-delimited JSON until the job finishes (one snapshot line is
// always emitted first, so subscribing to a finished job still yields its
// final state plus the terminal line). The stream ends with a terminal
// status line whenever the job itself finished; it ends without one only
// when the subscriber disconnected or the server shut down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch := make(chan [2]int, 64)
	s.mu.Lock()
	j.subs[ch] = struct{}{}
	snapshot := event{ID: j.id, Done: j.progress, Total: j.trials}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(j.subs, ch)
		s.mu.Unlock()
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(e event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit(snapshot) {
		return
	}
	for {
		select {
		case p := <-ch:
			if !emit(event{ID: j.id, Done: p[0], Total: p[1]}) {
				return
			}
		case <-j.done:
			s.mu.Lock()
			final := event{ID: j.id, Done: j.progress, Total: j.trials,
				Status: j.status, Cached: j.info.Cached, ReusedTrials: j.info.ReusedTrials,
				Error: j.errMsg, Skipped: j.skipped,
				ElapsedSeconds: j.info.Elapsed.Seconds()}
			s.mu.Unlock()
			emit(final)
			return
		case <-s.stop:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// sweepHeader is the first NDJSON line of a sweep stream: the expansion's
// shape, so the consumer knows every job ID (in expansion order) and how
// many terminal lines to expect before reading any progress.
type sweepHeader struct {
	Points      int      `json:"points"`
	Jobs        []string `json:"jobs"`
	TotalTrials int      `json:"total_trials"`
}

// sweepSummary is the last NDJSON line of a sweep stream: "done" when every
// point succeeded, "failed" with the failure count otherwise. Like a job
// stream's terminal status line, its presence is what distinguishes a
// completed sweep from a dropped connection.
type sweepSummary struct {
	Status string `json:"status"`
	Points int    `json:"points"`
	Failed int    `json:"failed,omitempty"`
}

// handleSweeps expands a sweep document into its content-addressed job
// specs, registers them as one batch (deduplicated against running and
// finished jobs by the same machinery as POST /v1/jobs, and subject to the
// same 429 backpressure), and answers with a single merged NDJSON stream:
// one header line naming every job, interleaved per-job progress lines,
// one terminal status line per job — carrying the result on success — and
// a final sweep summary line.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	sw, err := spec.DecodeSweep(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, tooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := sw.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resolved, err := spec.ResolveAll(specs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkWireObservable(resolved); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	_, all, fresh, err := s.registerJobs(resolved)
	if err != nil {
		writeOverloaded(w, err)
		return
	}
	s.launch(fresh)

	// The expansion may contain repeated points (e.g. a template param equal
	// to a grid value is rejected earlier, but two grids can still collide
	// after resolution only at the cache layer, and duplicate seeds are
	// legal); each distinct job streams once.
	var uniq []*job
	seen := make(map[string]bool)
	for _, j := range all {
		if !seen[j.id] {
			seen[j.id] = true
			uniq = append(uniq, j)
		}
	}
	hdr := sweepHeader{Points: len(all), Jobs: make([]string, len(uniq))}
	for i, j := range uniq {
		hdr.Jobs[i] = j.id
		hdr.TotalTrials += j.resolved.Trials
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit(hdr) {
		return
	}

	// One forwarder per job funnels its progress and terminal event into the
	// merged channel; the handler goroutine is the only writer to the
	// response. Forwarders block on the merged send (terminal lines must not
	// drop) and bail out when the stream ends for any reason.
	done := make(chan struct{})
	defer close(done)
	merged := make(chan event, 64)
	for _, j := range uniq {
		go func(j *job) {
			ch := make(chan [2]int, 64)
			s.mu.Lock()
			j.subs[ch] = struct{}{}
			s.mu.Unlock()
			defer func() {
				s.mu.Lock()
				delete(j.subs, ch)
				s.mu.Unlock()
			}()
			for {
				select {
				case p := <-ch:
					select {
					case merged <- event{ID: j.id, Done: p[0], Total: p[1]}:
					case <-done:
						return
					}
				case <-j.done:
					s.mu.Lock()
					final := event{ID: j.id, Done: j.progress, Total: j.trials,
						Status: j.status, Cached: j.info.Cached, ReusedTrials: j.info.ReusedTrials,
						Error: j.errMsg, Skipped: j.skipped,
						ElapsedSeconds: j.info.Elapsed.Seconds()}
					if j.status == "done" {
						final.Result = j.result
					}
					s.mu.Unlock()
					select {
					case merged <- final:
					case <-done:
					}
					return
				case <-done:
					return
				}
			}
		}(j)
	}

	finished, failed := 0, 0
	for finished < len(uniq) {
		select {
		case e := <-merged:
			if !emit(e) {
				return
			}
			if e.Status != "" {
				finished++
				if e.Status != "done" {
					failed++
				}
			}
		case <-s.stop:
			return
		case <-r.Context().Done():
			return
		}
	}
	sum := sweepSummary{Status: "done", Points: len(all), Failed: failed}
	if failed > 0 {
		sum.Status = "failed"
	}
	emit(sum)
}

// handleCache serves a raw result-cache entry by its content address — the
// self-describing {key, value} JSON document the cache stores on disk.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	b, ok, err := s.sess.CacheEntry(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such cache entry (or caching is disabled)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// handleCacheRanges is the crash-resume probe: the body is one full-job
// spec, and the response is the run.RangeProbe of everything this worker's
// cache has banked for it — the full-run entry's content address (if any)
// and every partial-range entry, keyed with this worker's own binary
// fingerprint. A restarted coordinator probes each worker, greedily covers
// the trial space from the answers, fetches the chosen entries via
// GET /v1/cache/{key}, and re-executes only the gaps.
func (s *Server) handleCacheRanges(w http.ResponseWriter, r *http.Request) {
	specs, err := spec.Decode(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(specs) != 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("range probe wants exactly one job spec, got %d", len(specs)))
		return
	}
	probe, err := s.sess.RangeEntries(specs[0])
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, probe)
}

// handleFleetAnnounce registers (or, for a leaving announce, removes) one
// worker in this server's fleet registry.
func (s *Server) handleFleetAnnounce(w http.ResponseWriter, r *http.Request) {
	var a fleet.Announce
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10)).Decode(&a); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	joined, err := s.fleet.Announce(a)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"joined": joined})
}

// handleFleetList serves the live fleet membership plus the registry's
// eviction window, so clients can size their own polling against it.
func (s *Server) handleFleetList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, fleet.View{
		Workers:           s.fleet.Members(),
		EvictAfterSeconds: s.fleet.EvictAfter().Seconds(),
	})
}
