package locsrv

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// TestFleetEndpoints: workers register through POST /v1/fleet/announce,
// GET /v1/fleet lists them (with the eviction window), leaves remove them,
// and malformed announces are rejected without registering.
func TestFleetEndpoints(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})

	announce := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/fleet/announce", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	list := func() fleet.View {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/fleet: status %d", resp.StatusCode)
		}
		var v fleet.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	resp := announce(`{"url":"http://w1:8090","capacity":4,"fingerprint":"abcd"}`)
	var joined struct {
		Joined bool `json:"joined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&joined); err != nil || resp.StatusCode != http.StatusOK || !joined.Joined {
		t.Fatalf("first announce: status %d joined=%v err=%v", resp.StatusCode, joined.Joined, err)
	}
	resp.Body.Close()
	if resp := announce(`{"url":"http://w2:8090","capacity":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("second announce: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	v := list()
	if len(v.Workers) != 2 || v.Workers[0].URL != "http://w1:8090" || v.Workers[1].URL != "http://w2:8090" {
		t.Fatalf("fleet = %+v", v.Workers)
	}
	if v.Workers[0].Capacity != 4 || v.Workers[0].Fingerprint != "abcd" {
		t.Fatalf("member metadata = %+v", v.Workers[0])
	}
	if v.EvictAfterSeconds != fleet.DefaultEvictAfter.Seconds() {
		t.Errorf("evict_after_seconds = %v", v.EvictAfterSeconds)
	}

	if resp := announce(`{"url":"http://w1:8090","leaving":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if v := list(); len(v.Workers) != 1 || v.Workers[0].URL != "http://w2:8090" {
		t.Fatalf("fleet after leave = %+v", v.Workers)
	}

	for _, bad := range []string{`{}`, `{"url":"no-scheme"}`, `{"url":"http://w3:1","capacity":-2}`, `not json`} {
		resp := announce(bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("announce %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if v := list(); len(v.Workers) != 1 {
		t.Fatalf("rejected announces registered members: %+v", v.Workers)
	}
}

// TestCacheRangesEndpoint: POST /v1/cache/ranges answers with the
// range-keyed entries this worker banked for a job, and each reported hash
// is fetchable through GET /v1/cache/{key} — the wire loop the resuming
// coordinator drives.
func TestCacheRangesEndpoint(t *testing.T) {
	srv, hs := newTestServer(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})

	// Bank two ranges directly through the server's session, as finished
	// sub-jobs of a dead coordinator would have.
	full := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 91, Trials: 8, ShardSize: 2}
	for _, rg := range [][2]int{{0, 4}, {6, 8}} {
		sub := full
		sub.TrialRange = &spec.Range{Lo: rg[0], Hi: rg[1]}
		if _, _, err := run.ExecuteSpec(srv.Session(), sub); err != nil {
			t.Fatal(err)
		}
	}

	body, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/cache/ranges", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/cache/ranges: status %d", resp.StatusCode)
	}
	var probe run.RangeProbe
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	if probe.Trials != 8 || probe.Full != "" || len(probe.Ranges) != 2 {
		t.Fatalf("probe = %+v", probe)
	}
	if probe.Ranges[0].Lo != 0 || probe.Ranges[0].Hi != 4 || probe.Ranges[1].Lo != 6 || probe.Ranges[1].Hi != 8 {
		t.Fatalf("probe ranges = %+v", probe.Ranges)
	}
	for _, re := range probe.Ranges {
		er, err := http.Get(hs.URL + "/v1/cache/" + re.Hash)
		if err != nil {
			t.Fatal(err)
		}
		er.Body.Close()
		if er.StatusCode != http.StatusOK {
			t.Errorf("GET /v1/cache/%s: status %d", re.Hash, er.StatusCode)
		}
	}

	// A batch body or a sub-range spec is rejected.
	for _, bad := range []string{
		`[{"kind":"scenario","id":"multilat-town","seed":91,"trials":8,"shard_size":2},
		  {"kind":"scenario","id":"multilat-town","seed":92,"trials":8,"shard_size":2}]`,
		`{"kind":"scenario","id":"multilat-town","seed":91,"trials":8,"shard_size":2,"trial_range":{"lo":0,"hi":4}}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/cache/ranges", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("probe body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
