package locsrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

func newTestServer(t *testing.T, opts run.Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.CacheDir == "" && !opts.NoCache {
		opts.CacheDir = filepath.Join(t.TempDir(), "cache")
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// submit POSTs a spec document and returns the response job summaries.
func submit(t *testing.T, hs *httptest.Server, body string) []jobSummary {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Jobs
}

// poll fetches the job until it leaves "running" or the deadline passes.
func poll(t *testing.T, hs *httptest.Server, id string) jobSummary {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobSummary
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != "running" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after deadline: %+v", id, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFigureJobMatchesGoldenCorpus is the service acceptance check: a
// figure job submitted over the wire returns a result that renders
// byte-identically to the golden corpus (which also pins cmd/experiments'
// output for the same job) at seeds 1 and 5.
func TestFigureJobMatchesGoldenCorpus(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	goldenDir := filepath.Join("..", "..", "internal", "experiments", "testdata", "golden")
	for _, seed := range []int64{1, 5} {
		body := fmt.Sprintf(`{"kind":"figure","id":"fig11","seed":%d}`, seed)
		jobs := submit(t, hs, body)
		if len(jobs) != 1 {
			t.Fatalf("submitted 1 spec, got %d jobs", len(jobs))
		}
		v := poll(t, hs, jobs[0].ID)
		if v.Status != "done" || v.Result == nil || v.Result.Figure == nil {
			t.Fatalf("seed %d: job ended %q (error %q), result %+v", seed, v.Status, v.Error, v.Result)
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("fig11_seed%d.golden", seed)))
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Result.Figure.Render(); got != string(want) {
			t.Errorf("fig11 seed %d over the wire diverged from golden output\n--- got ---\n%s--- want ---\n%s",
				seed, got, want)
		}
		if v.DoneTrials != v.Trials || v.Trials != 1 {
			t.Errorf("seed %d: trials %d/%d, want 1/1", seed, v.DoneTrials, v.Trials)
		}
	}
}

// TestDedupInFlightAndResubmission: identical specs — submitted
// concurrently, listed twice in one batch, or resubmitted after completion
// — are one job with one execution; trials are computed exactly once.
func TestDedupInFlightAndResubmission(t *testing.T) {
	srv, hs := newTestServer(t, run.Options{})
	body := `{"kind":"scenario","id":"multilat-town","seed":9,"trials":4}`

	var wg sync.WaitGroup
	ids := make([]string, 4)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, hs, body)[0].ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("identical specs got distinct job ids: %v", ids)
		}
	}
	v := poll(t, hs, ids[0])
	if v.Status != "done" || v.Cached {
		t.Fatalf("job ended %q cached=%v, want a fresh done run", v.Status, v.Cached)
	}
	if got := srv.Session().TrialsExecuted(); got != 4 {
		t.Errorf("concurrent identical submissions computed %d trials, want exactly 4", got)
	}

	// A batch naming the same job twice is still one job, answered twice.
	jobs := submit(t, hs, "["+body+","+body+"]")
	if len(jobs) != 2 || jobs[0].ID != ids[0] || jobs[1].ID != ids[0] {
		t.Fatalf("duplicate batch returned %+v, want the existing job twice", jobs)
	}
	if jobs[0].Status != "done" {
		t.Errorf("resubmission of a finished job reports %q, want done", jobs[0].Status)
	}
	if got := srv.Session().TrialsExecuted(); got != 4 {
		t.Errorf("resubmission recomputed: %d trials total, want still 4", got)
	}

	// A distinct spec with the same cache key shape but a new seed computes.
	other := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":10,"trials":4}`)[0]
	if other.ID == ids[0] {
		t.Fatal("different seed mapped to the same job id")
	}
	if v := poll(t, hs, other.ID); v.Status != "done" {
		t.Fatalf("second job ended %q: %s", v.Status, v.Error)
	}
	if got := srv.Session().TrialsExecuted(); got != 8 {
		t.Errorf("distinct job did not compute: %d trials total, want 8", got)
	}
}

// TestEventsStreamNDJSON: the events endpoint emits newline-delimited JSON
// counter events ending in a terminal status line — including for
// subscribers who arrive after the job finished.
func TestEventsStreamNDJSON(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	jobs := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":3,"trials":4,"shard_size":1}`)
	id := jobs[0].ID

	readEvents := func() []event {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("events content type %q", ct)
		}
		var events []event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("unparseable event line %q: %v", sc.Text(), err)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return events
	}

	// Live subscription: the stream terminates when the job does.
	live := readEvents()
	if len(live) == 0 {
		t.Fatal("live events stream was empty")
	}
	last := live[len(live)-1]
	if last.Status != "done" || last.Done != 4 || last.Total != 4 {
		t.Errorf("terminal event %+v, want done 4/4", last)
	}
	prev := -1
	for _, e := range live {
		if e.ID != id || e.Done < prev {
			t.Errorf("event stream inconsistent: %+v", live)
			break
		}
		prev = e.Done
	}

	// Late subscription to the finished job: snapshot plus terminal line.
	late := readEvents()
	if len(late) != 2 || late[1].Status != "done" {
		t.Errorf("late subscription got %+v, want snapshot + terminal", late)
	}
}

// TestCacheEndpointServesEntries: a finished job's cache_key addresses its
// raw self-describing cache entry; bad and absent keys are 400/404.
func TestCacheEndpointServesEntries(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	id := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":2,"trials":2}`)[0].ID
	v := poll(t, hs, id)
	if v.Status != "done" || v.CacheKey == "" {
		t.Fatalf("job %+v, want done with a cache key", v)
	}
	resp, err := http.Get(hs.URL + "/v1/cache/" + v.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cache/{key}: status %d", resp.StatusCode)
	}
	var entry struct {
		Key struct {
			Scenario string `json:"scenario"`
			Seed     int64  `json:"seed"`
		} `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Key.Scenario != "multilat-town" || entry.Key.Seed != 2 || len(entry.Value) == 0 {
		t.Errorf("cache entry not self-describing: %+v", entry)
	}

	if r, _ := http.Get(hs.URL + "/v1/cache/not-a-hash"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid hash: status %d, want 400", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/v1/cache/" + strings.Repeat("0", 64)); r.StatusCode != http.StatusNotFound {
		t.Errorf("absent hash: status %d, want 404", r.StatusCode)
	}
}

func TestSubmitAndLookupErrors(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})
	for body, want := range map[string]string{
		`{not json`: "decode",
		`{"kind":"figure","id":"fig99","seed":1}`:                                    "unknown figure",
		`{"kind":"figure","id":"fig11","trials":4}`:                                  "pin their trial count",
		`{"kind":"figure","id":"fig11","seeed":1}`:                                   "unknown field",
		`{"kind":"scenario","id":"multilat-town","seed":1,"keep_trial_values":true}`: "not observable over the wire",
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, want) {
			t.Errorf("POST %q: status %d error %q, want 400 mentioning %q", body, resp.StatusCode, e.Error, want)
		}
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/nope/events"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
}

// TestFinishedJobEviction: the job table is bounded — finished jobs beyond
// the cap are evicted oldest-first (they poll as 404 and resubmit as fresh,
// cache-served jobs), while recent ones survive.
func TestFinishedJobEviction(t *testing.T) {
	prev := maxFinishedJobs
	maxFinishedJobs = 2
	defer func() { maxFinishedJobs = prev }()
	_, hs := newTestServer(t, run.Options{})
	var ids []string
	for seed := 1; seed <= 3; seed++ {
		id := submit(t, hs, fmt.Sprintf(`{"kind":"scenario","id":"multilat-town","seed":%d,"trials":2}`, seed))[0].ID
		if v := poll(t, hs, id); v.Status != "done" {
			t.Fatalf("seed %d ended %q", seed, v.Status)
		}
		ids = append(ids, id)
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/" + ids[0]); r.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job not evicted: status %d", r.StatusCode)
	}
	for _, id := range ids[1:] {
		if r, _ := http.Get(hs.URL + "/v1/jobs/" + id); r.StatusCode != http.StatusOK {
			t.Errorf("recent job %s evicted: status %d", id, r.StatusCode)
		}
	}
	// The evicted job resubmits as a fresh record and is answered from the
	// result cache without recomputation.
	again := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":1,"trials":2}`)[0]
	if again.ID != ids[0] {
		t.Fatalf("resubmission changed the job id")
	}
	if v := poll(t, hs, again.ID); v.Status != "done" || !v.Cached {
		t.Errorf("resubmitted evicted job: status %q cached %v, want a cache-served done", v.Status, v.Cached)
	}
}

// TestPartialTrialRangeOverTheWire: a spec restricted to a trial sub-range
// executes partially — the response carries serialized shard aggregates
// (Value.Partial), never a finalized report — and the sub-ranges of one
// job merge back to exactly the full job's result. This is the worker-side
// half of the distributed coordinator.
func TestPartialTrialRangeOverTheWire(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})

	full := poll(t, hs, submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":1,"trials":6}`)[0].ID)
	if full.Status != "done" || full.Result == nil || full.Result.Report == nil {
		t.Fatalf("full job: %+v", full)
	}

	var parts []*engine.Partial
	for _, body := range []string{
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":0,"hi":4}}`,
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":4,"hi":6}}`,
	} {
		js := submit(t, hs, body)
		if len(js) != 1 {
			t.Fatalf("submitted 1 partial spec, got %d jobs", len(js))
		}
		v := poll(t, hs, js[0].ID)
		if v.Status != "done" || v.Result == nil || v.Result.Partial == nil || v.Result.Report != nil {
			t.Fatalf("partial job %s: %+v", body, v)
		}
		if v.Result.Partial.Retained {
			t.Errorf("scenario partial retained trial values: %+v", v.Result.Partial)
		}
		parts = append(parts, v.Result.Partial)
	}
	if parts[0].Hi != 4 || parts[1].Lo != 4 {
		t.Fatalf("partials cover %+v", parts)
	}
	rep, err := engine.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetExecutionMeta(full.Result.Report.Workers, full.Result.Report.ElapsedSeconds)
	got, _ := json.Marshal(rep)
	want, _ := json.Marshal(full.Result.Report)
	if string(got) != string(want) {
		t.Errorf("merged wire partials diverged from the full job\n got %s\nwant %s", got, want)
	}

	// An out-of-bounds range is still rejected at submission.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":4,"hi":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized trial range accepted over the wire: status %d", resp.StatusCode)
	}

	// keep_trial_values is accepted on a proper sub-range — the Partial
	// serializes the retained values, which is how the coordinator
	// distributes retention jobs. (The full-job rejection is covered in
	// TestSubmitAndLookupErrors.)
	keepJobs := submit(t, hs,
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"keep_trial_values":true,"trial_range":{"lo":1,"hi":3}}`)
	v := poll(t, hs, keepJobs[0].ID)
	if v.Status != "done" || v.Result == nil || v.Result.Partial == nil || !v.Result.Partial.Retained {
		t.Errorf("partial retention job: %+v, want a done retained partial", v)
	}
}

// TestEventsTerminalFailedLine: when a job errors, every events subscriber
// receives a terminal status:"failed" line carrying the error (and the
// retryable skipped marker when applicable) before the stream closes —
// a consumer must be able to distinguish job failure from a dropped
// connection, which ends with no status line at all. The failure is
// injected through the same finish path the suite executor drives.
func TestEventsTerminalFailedLine(t *testing.T) {
	srv, hs := newTestServer(t, run.Options{NoCache: true})

	// Register a running job directly (no library scenario fails on
	// demand), then subscribe and fail it.
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 77, Trials: 4}
	rj, err := spec.Resolve(sp)
	if err != nil {
		t.Fatal(err)
	}
	id := sp.Hash()
	j := &job{
		id:       id,
		resolved: rj,
		status:   "running",
		trials:   rj.Trials,
		done:     make(chan struct{}),
		subs:     make(map[chan [2]int]struct{}),
	}
	srv.mu.Lock()
	srv.jobs[id] = j
	srv.mu.Unlock()

	type streamResult struct {
		events []event
		err    error
	}
	resc := make(chan streamResult, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
		if err != nil {
			resc <- streamResult{nil, err}
			return
		}
		defer resp.Body.Close()
		var events []event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				resc <- streamResult{nil, fmt.Errorf("bad line %q: %v", sc.Text(), err)}
				return
			}
			events = append(events, e)
		}
		resc <- streamResult{events, sc.Err()}
	}()

	// Let the subscriber attach (the snapshot line is emitted on attach).
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(j.subs)
		srv.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.finish(run.Outcome{Spec: sp, Err: fmt.Errorf("trial 2: boom")}, nil)

	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.events) == 0 {
		t.Fatal("no events received")
	}
	last := res.events[len(res.events)-1]
	if last.Status != "failed" || !strings.Contains(last.Error, "boom") || last.Skipped {
		t.Errorf("terminal event %+v, want status failed with the job's error", last)
	}

	// A late subscriber to the failed job gets the terminal line too, and
	// the job summary agrees.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var late []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		late = append(late, e)
	}
	if len(late) != 2 || late[1].Status != "failed" || !strings.Contains(late[1].Error, "boom") {
		t.Errorf("late subscription got %+v, want snapshot + terminal failed", late)
	}

	// Skipped failures mark the terminal line as retryable.
	sp2 := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 78, Trials: 4}
	rj2, err := spec.Resolve(sp2)
	if err != nil {
		t.Fatal(err)
	}
	id2 := sp2.Hash()
	srv.mu.Lock()
	srv.jobs[id2] = &job{id: id2, resolved: rj2, status: "running", trials: rj2.Trials,
		done: make(chan struct{}), subs: make(map[chan [2]int]struct{})}
	srv.mu.Unlock()
	srv.finish(run.Outcome{Spec: sp2, Err: fmt.Errorf("%w", run.ErrSkipped)}, nil)
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + id2 + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var skippedEvents []event
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var e event
		if err := json.Unmarshal(sc2.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		skippedEvents = append(skippedEvents, e)
	}
	final := skippedEvents[len(skippedEvents)-1]
	if final.Status != "failed" || !final.Skipped {
		t.Errorf("skipped job terminal event %+v, want failed with skipped=true", final)
	}
}

// TestMetricsHealthzAndJobTrace covers the telemetry surface: a finished
// job's summary carries its span subtree; after a warm run (a second
// server on the same cache directory re-executes the spec and hits the
// populated cache) /metrics exposes non-zero job, shard, and cache-hit
// counters; and /healthz reports queue depth, in-flight jobs, and budget
// saturation instead of a bare "ok".
func TestMetricsHealthzAndJobTrace(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	_, hs1 := newTestServer(t, run.Options{CacheDir: cacheDir})
	body := `{"kind":"scenario","id":"multilat-town","seed":3,"trials":4}`

	jobs := submit(t, hs1, body)
	v := poll(t, hs1, jobs[0].ID)
	if v.Status != "done" {
		t.Fatalf("job ended %q (error %q)", v.Status, v.Error)
	}
	if len(v.Trace) == 0 {
		t.Error("done job summary carries no span subtree")
	}
	names := make(map[string]int)
	for _, r := range v.Trace {
		names[r.Name]++
	}
	if names["run.job"] != 1 || names["engine.shard"] == 0 {
		t.Errorf("job trace spans %v, want one run.job with engine.shard children", names)
	}

	// Warm run: a fresh server over the same cache directory executes the
	// same spec and must serve it from the populated result cache.
	_, hs2 := newTestServer(t, run.Options{CacheDir: cacheDir})
	v2 := poll(t, hs2, submit(t, hs2, body)[0].ID)
	if v2.Status != "done" {
		t.Fatalf("warm job ended %q (error %q)", v2.Status, v2.Error)
	}

	resp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q, want text/plain exposition", ct)
	}
	metrics := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			var f float64
			if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
				metrics[name] = f
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"run_jobs_total", "run_jobs_cached_total",
		"engine_trials_total", "engine_shards_total",
		"cache_get_total", "cache_hit_total", "cache_put_total",
		"run_job_seconds_count",
	} {
		if metrics[name] <= 0 {
			t.Errorf("/metrics %s = %g, want > 0 after a warm run", name, metrics[name])
		}
	}

	hresp, err := http.Get(hs2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status %q", h.Status)
	}
	if h.BudgetCap < 1 {
		t.Errorf("healthz budget_cap %d, want >= 1", h.BudgetCap)
	}
	if h.QueueDepth != 0 || h.InflightJobs != 0 || h.RunningJobs != 0 {
		t.Errorf("healthz reports load at rest: %+v", h)
	}
	if h.BudgetSaturation < 0 || h.BudgetSaturation > 1 {
		t.Errorf("healthz budget_saturation %g outside [0,1]", h.BudgetSaturation)
	}
}
