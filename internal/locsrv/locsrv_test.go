package locsrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

func newTestServer(t *testing.T, opts run.Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.CacheDir == "" && !opts.NoCache {
		opts.CacheDir = filepath.Join(t.TempDir(), "cache")
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// submit POSTs a spec document and returns the response job summaries.
func submit(t *testing.T, hs *httptest.Server, body string) []jobSummary {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Jobs
}

// poll fetches the job until it leaves "running" or the deadline passes.
func poll(t *testing.T, hs *httptest.Server, id string) jobSummary {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobSummary
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != "running" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after deadline: %+v", id, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFigureJobMatchesGoldenCorpus is the service acceptance check: a
// figure job submitted over the wire returns a result that renders
// byte-identically to the golden corpus (which also pins cmd/experiments'
// output for the same job) at seeds 1 and 5.
func TestFigureJobMatchesGoldenCorpus(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	goldenDir := filepath.Join("..", "..", "internal", "experiments", "testdata", "golden")
	for _, seed := range []int64{1, 5} {
		body := fmt.Sprintf(`{"kind":"figure","id":"fig11","seed":%d}`, seed)
		jobs := submit(t, hs, body)
		if len(jobs) != 1 {
			t.Fatalf("submitted 1 spec, got %d jobs", len(jobs))
		}
		v := poll(t, hs, jobs[0].ID)
		if v.Status != "done" || v.Result == nil || v.Result.Figure == nil {
			t.Fatalf("seed %d: job ended %q (error %q), result %+v", seed, v.Status, v.Error, v.Result)
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("fig11_seed%d.golden", seed)))
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Result.Figure.Render(); got != string(want) {
			t.Errorf("fig11 seed %d over the wire diverged from golden output\n--- got ---\n%s--- want ---\n%s",
				seed, got, want)
		}
		if v.DoneTrials != v.Trials || v.Trials != 1 {
			t.Errorf("seed %d: trials %d/%d, want 1/1", seed, v.DoneTrials, v.Trials)
		}
	}
}

// TestDedupInFlightAndResubmission: identical specs — submitted
// concurrently, listed twice in one batch, or resubmitted after completion
// — are one job with one execution; trials are computed exactly once.
func TestDedupInFlightAndResubmission(t *testing.T) {
	srv, hs := newTestServer(t, run.Options{})
	body := `{"kind":"scenario","id":"multilat-town","seed":9,"trials":4}`

	var wg sync.WaitGroup
	ids := make([]string, 4)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, hs, body)[0].ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("identical specs got distinct job ids: %v", ids)
		}
	}
	v := poll(t, hs, ids[0])
	if v.Status != "done" || v.Cached {
		t.Fatalf("job ended %q cached=%v, want a fresh done run", v.Status, v.Cached)
	}
	if got := srv.Session().TrialsExecuted(); got != 4 {
		t.Errorf("concurrent identical submissions computed %d trials, want exactly 4", got)
	}

	// A batch naming the same job twice is still one job, answered twice.
	jobs := submit(t, hs, "["+body+","+body+"]")
	if len(jobs) != 2 || jobs[0].ID != ids[0] || jobs[1].ID != ids[0] {
		t.Fatalf("duplicate batch returned %+v, want the existing job twice", jobs)
	}
	if jobs[0].Status != "done" {
		t.Errorf("resubmission of a finished job reports %q, want done", jobs[0].Status)
	}
	if got := srv.Session().TrialsExecuted(); got != 4 {
		t.Errorf("resubmission recomputed: %d trials total, want still 4", got)
	}

	// A distinct spec with the same cache key shape but a new seed computes.
	other := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":10,"trials":4}`)[0]
	if other.ID == ids[0] {
		t.Fatal("different seed mapped to the same job id")
	}
	if v := poll(t, hs, other.ID); v.Status != "done" {
		t.Fatalf("second job ended %q: %s", v.Status, v.Error)
	}
	if got := srv.Session().TrialsExecuted(); got != 8 {
		t.Errorf("distinct job did not compute: %d trials total, want 8", got)
	}
}

// TestEventsStreamNDJSON: the events endpoint emits newline-delimited JSON
// counter events ending in a terminal status line — including for
// subscribers who arrive after the job finished.
func TestEventsStreamNDJSON(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	jobs := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":3,"trials":4,"shard_size":1}`)
	id := jobs[0].ID

	readEvents := func() []event {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("events content type %q", ct)
		}
		var events []event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("unparseable event line %q: %v", sc.Text(), err)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return events
	}

	// Live subscription: the stream terminates when the job does.
	live := readEvents()
	if len(live) == 0 {
		t.Fatal("live events stream was empty")
	}
	last := live[len(live)-1]
	if last.Status != "done" || last.Done != 4 || last.Total != 4 {
		t.Errorf("terminal event %+v, want done 4/4", last)
	}
	prev := -1
	for _, e := range live {
		if e.ID != id || e.Done < prev {
			t.Errorf("event stream inconsistent: %+v", live)
			break
		}
		prev = e.Done
	}

	// Late subscription to the finished job: snapshot plus terminal line.
	late := readEvents()
	if len(late) != 2 || late[1].Status != "done" {
		t.Errorf("late subscription got %+v, want snapshot + terminal", late)
	}
}

// TestCacheEndpointServesEntries: a finished job's cache_key addresses its
// raw self-describing cache entry; bad and absent keys are 400/404.
func TestCacheEndpointServesEntries(t *testing.T) {
	_, hs := newTestServer(t, run.Options{})
	id := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":2,"trials":2}`)[0].ID
	v := poll(t, hs, id)
	if v.Status != "done" || v.CacheKey == "" {
		t.Fatalf("job %+v, want done with a cache key", v)
	}
	resp, err := http.Get(hs.URL + "/v1/cache/" + v.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cache/{key}: status %d", resp.StatusCode)
	}
	var entry struct {
		Key struct {
			Scenario string `json:"scenario"`
			Seed     int64  `json:"seed"`
		} `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Key.Scenario != "multilat-town" || entry.Key.Seed != 2 || len(entry.Value) == 0 {
		t.Errorf("cache entry not self-describing: %+v", entry)
	}

	if r, _ := http.Get(hs.URL + "/v1/cache/not-a-hash"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid hash: status %d, want 400", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/v1/cache/" + strings.Repeat("0", 64)); r.StatusCode != http.StatusNotFound {
		t.Errorf("absent hash: status %d, want 404", r.StatusCode)
	}
}

func TestSubmitAndLookupErrors(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})
	for body, want := range map[string]string{
		`{not json`: "decode",
		`{"kind":"figure","id":"fig99","seed":1}`:                                    "unknown figure",
		`{"kind":"figure","id":"fig11","trials":4}`:                                  "pin their trial count",
		`{"kind":"figure","id":"fig11","seeed":1}`:                                   "unknown field",
		`{"kind":"scenario","id":"multilat-town","seed":1,"keep_trial_values":true}`: "not observable over the wire",
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, want) {
			t.Errorf("POST %q: status %d error %q, want 400 mentioning %q", body, resp.StatusCode, e.Error, want)
		}
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/nope/events"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(hs.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
}

// TestFinishedJobEviction: the job table is bounded — finished jobs beyond
// the cap are evicted oldest-first (they poll as 404 and resubmit as fresh,
// cache-served jobs), while recent ones survive.
func TestFinishedJobEviction(t *testing.T) {
	prev := maxFinishedJobs
	maxFinishedJobs = 2
	defer func() { maxFinishedJobs = prev }()
	_, hs := newTestServer(t, run.Options{})
	var ids []string
	for seed := 1; seed <= 3; seed++ {
		id := submit(t, hs, fmt.Sprintf(`{"kind":"scenario","id":"multilat-town","seed":%d,"trials":2}`, seed))[0].ID
		if v := poll(t, hs, id); v.Status != "done" {
			t.Fatalf("seed %d ended %q", seed, v.Status)
		}
		ids = append(ids, id)
	}
	if r, _ := http.Get(hs.URL + "/v1/jobs/" + ids[0]); r.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job not evicted: status %d", r.StatusCode)
	}
	for _, id := range ids[1:] {
		if r, _ := http.Get(hs.URL + "/v1/jobs/" + id); r.StatusCode != http.StatusOK {
			t.Errorf("recent job %s evicted: status %d", id, r.StatusCode)
		}
	}
	// The evicted job resubmits as a fresh record and is answered from the
	// result cache without recomputation.
	again := submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":1,"trials":2}`)[0]
	if again.ID != ids[0] {
		t.Fatalf("resubmission changed the job id")
	}
	if v := poll(t, hs, again.ID); v.Status != "done" || !v.Cached {
		t.Errorf("resubmitted evicted job: status %q cached %v, want a cache-served done", v.Status, v.Cached)
	}
}

// TestPartialTrialRangeOverTheWire: a spec restricted to a trial sub-range
// executes partially — the response carries serialized shard aggregates
// (Value.Partial), never a finalized report — and the sub-ranges of one
// job merge back to exactly the full job's result. This is the worker-side
// half of the distributed coordinator.
func TestPartialTrialRangeOverTheWire(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})

	full := poll(t, hs, submit(t, hs, `{"kind":"scenario","id":"multilat-town","seed":1,"trials":6}`)[0].ID)
	if full.Status != "done" || full.Result == nil || full.Result.Report == nil {
		t.Fatalf("full job: %+v", full)
	}

	var parts []*engine.Partial
	for _, body := range []string{
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":0,"hi":4}}`,
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":4,"hi":6}}`,
	} {
		js := submit(t, hs, body)
		if len(js) != 1 {
			t.Fatalf("submitted 1 partial spec, got %d jobs", len(js))
		}
		v := poll(t, hs, js[0].ID)
		if v.Status != "done" || v.Result == nil || v.Result.Partial == nil || v.Result.Report != nil {
			t.Fatalf("partial job %s: %+v", body, v)
		}
		if v.Result.Partial.Retained {
			t.Errorf("scenario partial retained trial values: %+v", v.Result.Partial)
		}
		parts = append(parts, v.Result.Partial)
	}
	if parts[0].Hi != 4 || parts[1].Lo != 4 {
		t.Fatalf("partials cover %+v", parts)
	}
	rep, err := engine.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetExecutionMeta(full.Result.Report.Workers, full.Result.Report.ElapsedSeconds)
	got, _ := json.Marshal(rep)
	want, _ := json.Marshal(full.Result.Report)
	if string(got) != string(want) {
		t.Errorf("merged wire partials diverged from the full job\n got %s\nwant %s", got, want)
	}

	// An out-of-bounds range is still rejected at submission.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"trial_range":{"lo":4,"hi":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized trial range accepted over the wire: status %d", resp.StatusCode)
	}

	// keep_trial_values is accepted on a proper sub-range — the Partial
	// serializes the retained values, which is how the coordinator
	// distributes retention jobs. (The full-job rejection is covered in
	// TestSubmitAndLookupErrors.)
	keepJobs := submit(t, hs,
		`{"kind":"scenario","id":"multilat-town","seed":1,"trials":6,"keep_trial_values":true,"trial_range":{"lo":1,"hi":3}}`)
	v := poll(t, hs, keepJobs[0].ID)
	if v.Status != "done" || v.Result == nil || v.Result.Partial == nil || !v.Result.Partial.Retained {
		t.Errorf("partial retention job: %+v, want a done retained partial", v)
	}
}

// TestEventsTerminalFailedLine: when a job errors, every events subscriber
// receives a terminal status:"failed" line carrying the error (and the
// retryable skipped marker when applicable) before the stream closes —
// a consumer must be able to distinguish job failure from a dropped
// connection, which ends with no status line at all. The failure is
// injected through the same finish path the suite executor drives.
func TestEventsTerminalFailedLine(t *testing.T) {
	srv, hs := newTestServer(t, run.Options{NoCache: true})

	// Register a running job directly (no library scenario fails on
	// demand), then subscribe and fail it.
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 77, Trials: 4}
	rj, err := spec.Resolve(sp)
	if err != nil {
		t.Fatal(err)
	}
	id := sp.Hash()
	j := &job{
		id:       id,
		resolved: rj,
		status:   "running",
		trials:   rj.Trials,
		done:     make(chan struct{}),
		subs:     make(map[chan [2]int]struct{}),
	}
	srv.mu.Lock()
	srv.jobs[id] = j
	srv.mu.Unlock()

	type streamResult struct {
		events []event
		err    error
	}
	resc := make(chan streamResult, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
		if err != nil {
			resc <- streamResult{nil, err}
			return
		}
		defer resp.Body.Close()
		var events []event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				resc <- streamResult{nil, fmt.Errorf("bad line %q: %v", sc.Text(), err)}
				return
			}
			events = append(events, e)
		}
		resc <- streamResult{events, sc.Err()}
	}()

	// Let the subscriber attach (the snapshot line is emitted on attach).
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(j.subs)
		srv.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.finish(run.Outcome{Spec: sp, Err: fmt.Errorf("trial 2: boom")}, nil)

	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.events) == 0 {
		t.Fatal("no events received")
	}
	last := res.events[len(res.events)-1]
	if last.Status != "failed" || !strings.Contains(last.Error, "boom") || last.Skipped {
		t.Errorf("terminal event %+v, want status failed with the job's error", last)
	}

	// A late subscriber to the failed job gets the terminal line too, and
	// the job summary agrees.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var late []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		late = append(late, e)
	}
	if len(late) != 2 || late[1].Status != "failed" || !strings.Contains(late[1].Error, "boom") {
		t.Errorf("late subscription got %+v, want snapshot + terminal failed", late)
	}

	// Skipped failures mark the terminal line as retryable.
	sp2 := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 78, Trials: 4}
	rj2, err := spec.Resolve(sp2)
	if err != nil {
		t.Fatal(err)
	}
	id2 := sp2.Hash()
	srv.mu.Lock()
	srv.jobs[id2] = &job{id: id2, resolved: rj2, status: "running", trials: rj2.Trials,
		done: make(chan struct{}), subs: make(map[chan [2]int]struct{})}
	srv.mu.Unlock()
	srv.finish(run.Outcome{Spec: sp2, Err: fmt.Errorf("%w", run.ErrSkipped)}, nil)
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + id2 + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var skippedEvents []event
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var e event
		if err := json.Unmarshal(sc2.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		skippedEvents = append(skippedEvents, e)
	}
	final := skippedEvents[len(skippedEvents)-1]
	if final.Status != "failed" || !final.Skipped {
		t.Errorf("skipped job terminal event %+v, want failed with skipped=true", final)
	}
}

// TestBackpressure429: a submission whose fresh jobs would push the running
// set past the budget-derived admission bound (runningPerSlot jobs per
// shard-budget slot) is rejected whole — 429, a Retry-After header, and no
// partial registration — on both the jobs and sweeps endpoints.
// Deduplicating resubmissions register nothing, so they pass even at the
// bound.
func TestBackpressure429(t *testing.T) {
	// Pin the bound to exactly one job: one running slot per budget slot on
	// a one-slot budget.
	prevPer, prevBudget := runningPerSlot, admissionBudget
	runningPerSlot = 1
	tiny := engine.NewBudget(1)
	admissionBudget = func() *engine.Budget { return tiny }
	defer func() { runningPerSlot, admissionBudget = prevPer, prevBudget }()
	_, hs := newTestServer(t, run.Options{NoCache: true})

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	requireRejected := func(resp *http.Response) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Errorf("Retry-After %q, want a positive integer", ra)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "overloaded") {
			t.Errorf("429 body error %q (%v), want it to mention overload", e.Error, err)
		}
	}

	// Two fresh specs against a one-job bound: rejected atomically.
	batch := `[{"kind":"scenario","id":"multilat-town","seed":50,"trials":2},
	           {"kind":"scenario","id":"multilat-town","seed":51,"trials":2}]`
	requireRejected(post("/v1/jobs", batch))
	for _, seed := range []int{50, 51} {
		sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: int64(seed), Trials: 2}
		if r, _ := http.Get(hs.URL + "/v1/jobs/" + sp.Hash()); r.StatusCode != http.StatusNotFound {
			t.Errorf("seed %d registered despite the batch rejection: status %d", seed, r.StatusCode)
		}
	}

	// A two-point sweep hits the same admission check before streaming.
	sweep := `{"template":{"kind":"scenario","id":"mobility-waypoint","seed":52,"trials":2},
	           "grid":{"speed_mps":[0,2.5]}}`
	requireRejected(post("/v1/sweeps", sweep))

	// A single fresh spec fits the bound exactly, and resubmitting it —
	// running or finished — registers nothing, so it passes too.
	one := `{"kind":"scenario","id":"multilat-town","seed":50,"trials":2}`
	id := submit(t, hs, one)[0].ID
	if again := submit(t, hs, one); again[0].ID != id {
		t.Errorf("resubmission at the bound changed the job id")
	}
	if v := poll(t, hs, id); v.Status != "done" {
		t.Fatalf("admitted job ended %q: %s", v.Status, v.Error)
	}
}

// readSweepStream POSTs a sweep document and parses the merged NDJSON
// stream into its header, event lines, and trailing summary.
func readSweepStream(t *testing.T, hs *httptest.Server, body string) (sweepHeader, []event, sweepSummary) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sweeps: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep stream content type %q", ct)
	}
	var lines []json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, json.RawMessage(strings.Clone(sc.Text())))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("sweep stream has %d lines, want header + summary at least", len(lines))
	}
	var hdr sweepHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header line %s: %v", lines[0], err)
	}
	var sum sweepSummary
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
		t.Fatalf("summary line %s: %v", lines[len(lines)-1], err)
	}
	var events []event
	for _, ln := range lines[1 : len(lines)-1] {
		var e event
		if err := json.Unmarshal(ln, &e); err != nil {
			t.Fatalf("event line %s: %v", ln, err)
		}
		events = append(events, e)
	}
	return hdr, events, sum
}

// TestSweepEndpointMergedStream: a sweep expands server-side into
// content-addressed jobs and streams one merged feed — header, per-job
// terminal lines carrying results, final summary. The same points submitted
// individually to /v1/jobs return byte-identical results, and re-running
// the sweep answers every point from the cache.
func TestSweepEndpointMergedStream(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	srv, hs := newTestServer(t, run.Options{CacheDir: cacheDir})
	sweep := `{"template":{"kind":"scenario","id":"mobility-waypoint","trials":2,"params":{"epoch_s":4}},
	           "grid":{"speed_mps":[0,2.5]},
	           "seeds":[1,5]}`

	hdr, events, sum := readSweepStream(t, hs, sweep)
	if hdr.Points != 4 || len(hdr.Jobs) != 4 || hdr.TotalTrials != 8 {
		t.Fatalf("sweep header %+v, want 4 points / 4 jobs / 8 trials", hdr)
	}
	if sum.Status != "done" || sum.Points != 4 || sum.Failed != 0 {
		t.Fatalf("sweep summary %+v, want done 4/0", sum)
	}
	terminal := make(map[string]event)
	for _, e := range events {
		if e.Status != "" {
			terminal[e.ID] = e
		}
	}
	if len(terminal) != 4 {
		t.Fatalf("got %d terminal lines, want 4: %+v", len(terminal), events)
	}
	for _, id := range hdr.Jobs {
		e, ok := terminal[id]
		if !ok || e.Status != "done" || e.Result == nil || e.Result.Report == nil {
			t.Fatalf("job %s terminal line %+v, want done with a report", id, e)
		}
	}

	// The same points submitted individually are the same jobs with
	// byte-identical reports (cache-served now: the sweep already ran them).
	for i, speed := range []string{"0", "2.5"} {
		for j, seed := range []string{"1", "5"} {
			body := fmt.Sprintf(`{"kind":"scenario","id":"mobility-waypoint","seed":%s,"trials":2,"params":{"epoch_s":4,"speed_mps":%s}}`,
				seed, speed)
			v := poll(t, hs, submit(t, hs, body)[0].ID)
			// Seeds expand outermost, then the lone axis: jobs[seedIdx*2+speedIdx].
			wantID := hdr.Jobs[j*2+i]
			if v.ID != wantID {
				t.Errorf("point speed=%s seed=%s is job %s, sweep expanded it as %s", speed, seed, v.ID, wantID)
			}
			if v.Status != "done" || v.Result == nil || v.Result.Report == nil {
				t.Fatalf("individual job %+v", v)
			}
			got, _ := json.Marshal(v.Result.Report)
			want, _ := json.Marshal(terminal[wantID].Result.Report)
			if string(got) != string(want) {
				t.Errorf("point speed=%s seed=%s diverged between sweep and individual submission\n got %s\nwant %s",
					speed, seed, got, want)
			}
			if resolved := v.Params; resolved.Float("speed_mps") == 0 && speed != "0" {
				t.Errorf("job summary params %s do not surface the operating point", resolved.Canonical())
			}
		}
	}

	// Re-running the sweep on the same server attaches every point to its
	// finished job: no trial recomputes.
	trialsBefore := srv.Session().TrialsExecuted()
	_, _, sum2 := readSweepStream(t, hs, sweep)
	if sum2.Status != "done" || sum2.Points != 4 {
		t.Fatalf("second sweep run summary %+v", sum2)
	}
	if got := srv.Session().TrialsExecuted(); got != trialsBefore {
		t.Errorf("second sweep run recomputed: %d trials executed, want still %d", got, trialsBefore)
	}

	// A fresh server over the same cache directory re-executes the sweep and
	// answers every point from the populated result cache.
	_, hs2 := newTestServer(t, run.Options{CacheDir: cacheDir})
	_, warm, sum3 := readSweepStream(t, hs2, sweep)
	if sum3.Status != "done" {
		t.Fatalf("warm sweep run summary %+v", sum3)
	}
	for _, e := range warm {
		if e.Status == "done" && !e.Cached {
			t.Errorf("warm sweep run missed the result cache on job %s", e.ID)
		}
	}
}

// TestSweepEndpointErrors: malformed documents, invalid expansions, and
// wire-unobservable templates are rejected before anything registers.
func TestSweepEndpointErrors(t *testing.T) {
	_, hs := newTestServer(t, run.Options{NoCache: true})
	for body, want := range map[string]string{
		`{not json`: "decode",
		`{"template":{"kind":"scenario","id":"mobility-waypoint","seed":1},"gird":{"speed_mps":[1]}}`:       "unknown field",
		`{"template":{"kind":"scenario","id":"mobility-waypoint","seed":1},"grid":{"speed_mps":[]}}`:        "has no values",
		`{"template":{"kind":"scenario","id":"mobility-waypoint","seed":1},"grid":{"speed_mps":[99]}}`:      "out of range",
		`{"template":{"kind":"scenario","id":"multilat-town","seed":1},"grid":{"drop":[1]}}`:                "takes no parameters",
		`{"template":{"kind":"scenario","id":"multilat-town","seed":1,"keep_trial_values":true},"grid":{}}`: "not observable over the wire",
	} {
		resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error, want) {
			t.Errorf("POST /v1/sweeps %q: status %d error %q, want 400 mentioning %q", body, resp.StatusCode, e.Error, want)
		}
	}
}

// TestThreeEntryPointByteIdentity is the parameterization acceptance check:
// an operating point inexpressible before spec params — mobility-waypoint
// at speed_mps 2.5 — produces byte-identical reports through the in-process
// runner, POST /v1/jobs, and POST /v1/sweeps, across different worker
// counts. Execution metadata (workers, wall time) is cleared before
// comparison; everything else must match to the byte.
func TestThreeEntryPointByteIdentity(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint", Seed: 1, Trials: 4,
		Params: params.Map{"speed_mps": params.Num(2.5)}}

	render := func(rep *engine.Report) string {
		t.Helper()
		rep.ClearExecutionMeta()
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Entry point 1: the in-process runner, serial.
	sess, err := run.NewSession(run.Options{NoCache: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := run.ExecuteSpec(sess, sp)
	if err != nil {
		t.Fatal(err)
	}
	if local.Report == nil {
		t.Fatalf("local run returned %+v, want a report", local)
	}
	want := render(local.Report)

	// Entry point 2: the jobs endpoint, 8 workers.
	_, hs1 := newTestServer(t, run.Options{NoCache: true, Workers: 8})
	body := `{"kind":"scenario","id":"mobility-waypoint","seed":1,"trials":4,"params":{"speed_mps":2.5}}`
	v := poll(t, hs1, submit(t, hs1, body)[0].ID)
	if v.Status != "done" || v.Result == nil || v.Result.Report == nil {
		t.Fatalf("wire job %+v", v)
	}
	if got := render(v.Result.Report); got != want {
		t.Errorf("POST /v1/jobs diverged from the in-process runner\n got %s\nwant %s", got, want)
	}

	// Entry point 3: the sweeps endpoint on a fresh server, 2 workers, with
	// the point spelled as a single-value grid axis.
	_, hs2 := newTestServer(t, run.Options{NoCache: true, Workers: 2})
	sweep := `{"template":{"kind":"scenario","id":"mobility-waypoint","seed":1,"trials":4},
	           "grid":{"speed_mps":[2.5]}}`
	hdr, events, sum := readSweepStream(t, hs2, sweep)
	if hdr.Points != 1 || sum.Status != "done" {
		t.Fatalf("sweep header %+v summary %+v", hdr, sum)
	}
	last := events[len(events)-1]
	if last.Status != "done" || last.Result == nil || last.Result.Report == nil {
		t.Fatalf("sweep terminal line %+v", last)
	}
	if last.ID != v.ID {
		t.Errorf("sweep expanded the point as job %s, /v1/jobs addressed it as %s", last.ID, v.ID)
	}
	if got := render(last.Result.Report); got != want {
		t.Errorf("POST /v1/sweeps diverged from the in-process runner\n got %s\nwant %s", got, want)
	}
}

// TestMetricsHealthzAndJobTrace covers the telemetry surface: a finished
// job's summary carries its span subtree; after a warm run (a second
// server on the same cache directory re-executes the spec and hits the
// populated cache) /metrics exposes non-zero job, shard, and cache-hit
// counters; and /healthz reports queue depth, in-flight jobs, and budget
// saturation instead of a bare "ok".
func TestMetricsHealthzAndJobTrace(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	_, hs1 := newTestServer(t, run.Options{CacheDir: cacheDir})
	body := `{"kind":"scenario","id":"multilat-town","seed":3,"trials":4}`

	jobs := submit(t, hs1, body)
	v := poll(t, hs1, jobs[0].ID)
	if v.Status != "done" {
		t.Fatalf("job ended %q (error %q)", v.Status, v.Error)
	}
	if len(v.Trace) == 0 {
		t.Error("done job summary carries no span subtree")
	}
	names := make(map[string]int)
	for _, r := range v.Trace {
		names[r.Name]++
	}
	if names["run.job"] != 1 || names["engine.shard"] == 0 {
		t.Errorf("job trace spans %v, want one run.job with engine.shard children", names)
	}

	// Warm run: a fresh server over the same cache directory executes the
	// same spec and must serve it from the populated result cache.
	_, hs2 := newTestServer(t, run.Options{CacheDir: cacheDir})
	v2 := poll(t, hs2, submit(t, hs2, body)[0].ID)
	if v2.Status != "done" {
		t.Fatalf("warm job ended %q (error %q)", v2.Status, v2.Error)
	}

	resp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q, want text/plain exposition", ct)
	}
	metrics := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			var f float64
			if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
				metrics[name] = f
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"run_jobs_total", "run_jobs_cached_total",
		"engine_trials_total", "engine_shards_total",
		"cache_get_total", "cache_hit_total", "cache_put_total",
		"run_job_seconds_count",
	} {
		if metrics[name] <= 0 {
			t.Errorf("/metrics %s = %g, want > 0 after a warm run", name, metrics[name])
		}
	}

	hresp, err := http.Get(hs2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status %q", h.Status)
	}
	if h.BudgetCap < 1 {
		t.Errorf("healthz budget_cap %d, want >= 1", h.BudgetCap)
	}
	if h.QueueDepth != 0 || h.InflightJobs != 0 || h.RunningJobs != 0 {
		t.Errorf("healthz reports load at rest: %+v", h)
	}
	if h.BudgetSaturation < 0 || h.BudgetSaturation > 1 {
		t.Errorf("healthz budget_saturation %g outside [0,1]", h.BudgetSaturation)
	}
}
