// Package scratch provides a per-shard scratch arena: typed buffer pools
// that the trial hot path (signal detection, matrix solves, LSS descent,
// multilateration) borrows workspaces from instead of calling make() per
// trial.
//
// The contract is built around determinism, not just speed:
//
//   - Every Grab-style method returns a buffer in exactly the state a fresh
//     make() would produce (zeroed for the sized variants, empty for the
//     *Cap variants), so code converted to the arena computes bit-identical
//     results to its fresh-allocation form.
//   - A nil *Arena is valid everywhere and falls back to plain allocation,
//     so public APIs can expose an arena-aware variant without forking their
//     logic.
//   - Buffers are owned by the arena and valid only until the next Release.
//     The engine calls Release between trials; anything a trial wants to
//     keep past its own Run call must be copied out first.
//
// An Arena is not safe for concurrent use. The engine keeps one arena per
// shard worker, which is exactly the isolation the runner's worker pool
// provides.
package scratch

import "resilientloc/internal/geom"

// Resetter is implemented by stashed workspaces that need their cursor (not
// their storage) cleared between trials; Release calls Reset on every stash
// entry that implements it.
type Resetter interface{ Reset() }

// pool hands out slices of one element type in Grab order and reuses the
// same slots, in the same order, after a release — a trial that performs the
// same sequence of grabs every time (the engine's case) settles into zero
// allocations.
type pool[T any] struct {
	slots [][]T
	next  int
}

// grab returns a length-n slice, reusing the current slot when it has the
// capacity. Reused memory is cleared so the result is indistinguishable from
// make([]T, n).
func (p *pool[T]) grab(n int) []T {
	s := p.slot(n)
	s = s[:n]
	clear(s)
	return s
}

// grabCap returns a length-0 slice with capacity ≥ n for append-style use.
func (p *pool[T]) grabCap(n int) []T {
	return p.slot(n)[:0]
}

func (p *pool[T]) slot(n int) []T {
	if p.next < len(p.slots) && cap(p.slots[p.next]) >= n {
		s := p.slots[p.next]
		p.next++
		return s
	}
	s := make([]T, n)
	if p.next < len(p.slots) {
		p.slots[p.next] = s
	} else {
		p.slots = append(p.slots, s)
	}
	p.next++
	return s
}

func (p *pool[T]) release() { p.next = 0 }

// Arena is the shard-scoped workspace. The zero value is ready to use.
type Arena struct {
	f64    pool[float64]
	ints   pool[int]
	bools  pool[bool]
	points pool[geom.Point]
	stash  map[string]any
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Float64s returns a zeroed []float64 of length n, equivalent to
// make([]float64, n). Nil-safe.
func (a *Arena) Float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64.grab(n)
}

// Float64Cap returns an empty []float64 with capacity ≥ n, equivalent to
// make([]float64, 0, n). Nil-safe.
func (a *Arena) Float64Cap(n int) []float64 {
	if a == nil {
		return make([]float64, 0, n)
	}
	return a.f64.grabCap(n)
}

// Ints returns a zeroed []int of length n. Nil-safe.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.grab(n)
}

// IntCap returns an empty []int with capacity ≥ n. Nil-safe.
func (a *Arena) IntCap(n int) []int {
	if a == nil {
		return make([]int, 0, n)
	}
	return a.ints.grabCap(n)
}

// Bools returns a zeroed []bool of length n. Nil-safe.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bools.grab(n)
}

// Points returns a zeroed []geom.Point of length n. Nil-safe.
func (a *Arena) Points(n int) []geom.Point {
	if a == nil {
		return make([]geom.Point, n)
	}
	return a.points.grab(n)
}

// PointCap returns an empty []geom.Point with capacity ≥ n. Nil-safe.
func (a *Arena) PointCap(n int) []geom.Point {
	if a == nil {
		return make([]geom.Point, 0, n)
	}
	return a.points.grabCap(n)
}

// Stash returns the package-owned workspace registered under key, calling
// build to create it on first use. Unlike grabbed buffers, stashed values
// survive Release — but any stashed value implementing Resetter has Reset
// called on each Release, so cursor-style workspaces rewind between trials.
// With a nil arena, build runs every call (fresh workspace each time).
func (a *Arena) Stash(key string, build func() any) any {
	if a == nil {
		return build()
	}
	v, ok := a.stash[key]
	if !ok {
		if a.stash == nil {
			a.stash = make(map[string]any, 4)
		}
		v = build()
		a.stash[key] = v
	}
	return v
}

// Release rewinds every pool so the next trial reuses the same slots, and
// resets stashed workspaces that implement Resetter. Grabbed buffers become
// invalid. Nil-safe and idempotent.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.f64.release()
	a.ints.release()
	a.bools.release()
	a.points.release()
	for _, v := range a.stash {
		if r, ok := v.(Resetter); ok {
			r.Reset()
		}
	}
}
