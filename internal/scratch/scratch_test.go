package scratch

import "testing"

func TestGrabZeroesReusedMemory(t *testing.T) {
	a := New()
	f := a.Float64s(8)
	for i := range f {
		f[i] = 3.5
	}
	a.Release()
	g := a.Float64s(8)
	if &g[0] != &f[0] {
		t.Fatalf("expected slot reuse after Release")
	}
	for i, v := range g {
		if v != 0 {
			t.Fatalf("reused slot not zeroed at %d: %v", i, v)
		}
	}
}

func TestGrabOrderAndGrowth(t *testing.T) {
	a := New()
	x := a.Ints(4)
	y := a.Ints(4)
	if &x[0] == &y[0] {
		t.Fatalf("two live grabs must not alias")
	}
	a.Release()
	// A larger request on a too-small slot reallocates; the slot keeps the
	// bigger backing for next time.
	big := a.Ints(16)
	a.Release()
	big2 := a.Ints(16)
	if &big[0] != &big2[0] {
		t.Fatalf("grown slot should be reused")
	}
}

func TestCapVariants(t *testing.T) {
	a := New()
	h := a.IntCap(5)
	if len(h) != 0 || cap(h) < 5 {
		t.Fatalf("IntCap: len=%d cap=%d", len(h), cap(h))
	}
	h = append(h, 1, 2, 3)
	a.Release()
	h2 := a.IntCap(5)
	if len(h2) != 0 {
		t.Fatalf("IntCap after release: len=%d", len(h2))
	}
}

func TestNilArenaFallsBackToMake(t *testing.T) {
	var a *Arena
	f := a.Float64s(3)
	if len(f) != 3 {
		t.Fatalf("nil arena Float64s len=%d", len(f))
	}
	for _, v := range f {
		if v != 0 {
			t.Fatalf("nil arena slice not zeroed")
		}
	}
	if c := a.Float64Cap(7); len(c) != 0 || cap(c) != 7 {
		t.Fatalf("nil arena Float64Cap: len=%d cap=%d", len(c), cap(c))
	}
	a.Release() // must not panic
	calls := 0
	a.Stash("k", func() any { calls++; return calls })
	a.Stash("k", func() any { calls++; return calls })
	if calls != 2 {
		t.Fatalf("nil arena Stash should build every call, got %d", calls)
	}
}

type resettable struct{ resets int }

func (r *resettable) Reset() { r.resets++ }

func TestStashPersistsAndResets(t *testing.T) {
	a := New()
	builds := 0
	get := func() *resettable {
		return a.Stash("ws", func() any { builds++; return &resettable{} }).(*resettable)
	}
	w1 := get()
	w2 := get()
	if w1 != w2 || builds != 1 {
		t.Fatalf("stash must build once: builds=%d", builds)
	}
	a.Release()
	if w1.resets != 1 {
		t.Fatalf("Release must call Reset, got %d", w1.resets)
	}
	if get() != w1 {
		t.Fatalf("stash must survive Release")
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	a := New()
	work := func() {
		f := a.Float64s(64)
		f[0] = 1
		_ = a.Ints(16)
		_ = a.Bools(8)
		_ = a.Points(4)
		h := a.Float64Cap(32)
		_ = append(h, 1)
		a.Release()
	}
	work() // warm the slots
	if n := testing.AllocsPerRun(100, work); n != 0 {
		t.Fatalf("steady-state allocs per run = %v, want 0", n)
	}
}
