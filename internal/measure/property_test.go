package measure

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
)

// Property: after an arbitrary sequence of Add/Remove operations, the Set's
// Len, All, Neighbors and Degree views stay mutually consistent.
func TestPropertySetViewConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(10)
		s, err := NewSet(n)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			if rng.Float64() < 0.7 {
				_ = s.Add(i, j, rng.Float64()*20+0.1, 1)
			} else {
				s.Remove(i, j)
			}
		}
		all := s.All()
		if len(all) != s.Len() {
			t.Fatalf("All() length %d != Len() %d", len(all), s.Len())
		}
		degSum := 0
		for i := 0; i < n; i++ {
			deg := s.Degree(i)
			degSum += deg
			for _, nb := range s.Neighbors(i) {
				if _, ok := s.Get(i, nb); !ok {
					t.Fatalf("neighbor (%d,%d) has no measurement", i, nb)
				}
			}
		}
		if degSum != 2*s.Len() {
			t.Fatalf("degree sum %d != 2·Len %d", degSum, 2*s.Len())
		}
		if got := s.AvgDegree(); math.Abs(got-float64(degSum)/float64(n)) > 1e-12 {
			t.Fatalf("AvgDegree inconsistent: %v", got)
		}
	}
}

// Property: TriangleCheck leaves no triangle violating the inequality by
// more than the slack, and never removes measurements from violation-free
// sets.
func TestPropertyTriangleCheckFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		s, err := NewSet(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.7 {
					_ = s.Add(i, j, rng.Float64()*30+0.1, 1)
				}
			}
		}
		const slack = 0.5
		TriangleCheck(s, slack)
		// No remaining triangle may violate the inequality beyond slack.
		for _, m := range s.All() {
			a, b := m.Pair.Lo, m.Pair.Hi
			for c := 0; c < n; c++ {
				if c == a || c == b {
					continue
				}
				mac, ok1 := s.Get(a, c)
				mbc, ok2 := s.Get(b, c)
				if !ok1 || !ok2 {
					continue
				}
				longest := math.Max(m.Distance, math.Max(mac.Distance, mbc.Distance))
				sum := m.Distance + mac.Distance + mbc.Distance - longest
				if longest > sum+slack+1e-9 {
					t.Fatalf("trial %d: violation survives: %v vs %v", trial, longest, sum)
				}
			}
		}
		// Idempotence: a second pass removes nothing.
		if removed := TriangleCheck(s, slack); removed != 0 {
			t.Fatalf("trial %d: second pass removed %d", trial, removed)
		}
	}
}

// Property: Merge never invents pairs — every output pair exists in some
// direction of the input — and bidirectional-consistent pairs average the
// two directions.
func TestPropertyMergeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		directed := make(map[[2]int]float64)
		for k := 0; k < 30; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			directed[[2]int{i, j}] = rng.Float64()*20 + 0.1
		}
		s, err := Merge(n, directed, DefaultMergeOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range s.All() {
			fwd, fok := directed[[2]int{m.Pair.Lo, m.Pair.Hi}]
			rev, rok := directed[[2]int{m.Pair.Hi, m.Pair.Lo}]
			switch {
			case fok && rok:
				want := (fwd + rev) / 2
				if math.Abs(m.Distance-want) > 1e-12 {
					t.Fatalf("bidir pair distance %v, want %v", m.Distance, want)
				}
			case fok:
				if m.Distance != fwd {
					t.Fatalf("unidir pair distance %v, want %v", m.Distance, fwd)
				}
			case rok:
				if m.Distance != rev {
					t.Fatalf("unidir pair distance %v, want %v", m.Distance, rev)
				}
			default:
				t.Fatalf("merged pair %v absent from input", m.Pair)
			}
		}
	}
}

// Property: Generate + Errors round-trip — the signed error of every
// generated measurement equals measurement minus true distance, and no
// generated distance is non-positive.
func TestPropertyGenerateErrorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		dep, err := deploy.UniformRandom(5+rng.Intn(10), 50, 50, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(dep, 30, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		errs, err := s.Errors(dep)
		if err != nil {
			t.Fatal(err)
		}
		if len(errs) != s.Len() {
			t.Fatalf("errors length %d != set length %d", len(errs), s.Len())
		}
		for i, m := range s.All() {
			if m.Distance <= 0 {
				t.Fatalf("non-positive generated distance %v", m.Distance)
			}
			truth := dep.Positions[m.Pair.Lo].Dist(dep.Positions[m.Pair.Hi])
			if math.Abs(errs[i]-(m.Distance-truth)) > 1e-12 {
				t.Fatalf("error mismatch at %d", i)
			}
		}
	}
}

// Property: Sparsify to k keeps exactly min(k, Len) measurements, all of
// which existed before.
func TestPropertySparsifySubset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dep := deploy.PaperGrid()
	for trial := 0; trial < 20; trial++ {
		s, err := Generate(dep, 22, 0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		before := s.Clone()
		k := rng.Intn(s.Len() + 10)
		Sparsify(s, k, rng)
		want := k
		if before.Len() < k {
			want = before.Len()
		}
		if s.Len() != want {
			t.Fatalf("Len = %d, want %d", s.Len(), want)
		}
		for _, m := range s.All() {
			bm, ok := before.Get(m.Pair.Lo, m.Pair.Hi)
			if !ok || bm != m {
				t.Fatalf("sparsified set contains new/changed measurement %+v", m)
			}
		}
	}
}
