package measure

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
)

func TestKnownDistances(t *testing.T) {
	dep, err := deploy.OffsetGrid(2, 2, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Positions: (0,0), (10,0), (5,9), (15,9): distances 10 (×2),
	// sqrt(25+81)=10.30 (×2), sqrt(225+81)=17.49, sqrt(25+81)... and
	// (0,0)-(15,9) = 17.49. Expect {10, 10.30, 17.49} after merging.
	ds := KnownDistances(dep, 100, 0.2)
	if len(ds) != 3 {
		t.Fatalf("got %d distinct distances %v, want 3", len(ds), ds)
	}
	want := []float64{10, math.Hypot(5, 9), math.Hypot(15, 9)}
	for i, w := range want {
		if math.Abs(ds[i]-w) > 0.2 {
			t.Errorf("distance %d = %v, want %v", i, ds[i], w)
		}
	}
	// Range cutoff removes the long diagonal.
	short := KnownDistances(dep, 12, 0.2)
	if len(short) != 2 {
		t.Errorf("with cutoff got %v, want 2 entries", short)
	}
}

func TestFilterKnownDistancesDrop(t *testing.T) {
	s := mustSet(t, 4)
	_ = s.Add(0, 1, 10.1, 1)  // conforming (near 10)
	_ = s.Add(1, 2, 13.7, 1)  // non-conforming
	_ = s.Add(2, 3, 17.45, 1) // conforming (near 17.49)
	allowed := []float64{10, 10.30, 17.49}
	n, err := FilterKnownDistances(s, allowed, 0.3, ConstraintDrop)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("affected = %d, want 1", n)
	}
	if _, ok := s.Get(1, 2); ok {
		t.Error("non-conforming measurement survived drop")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestFilterKnownDistancesSnap(t *testing.T) {
	s := mustSet(t, 2)
	_ = s.Add(0, 1, 10.9, 0.7)
	n, err := FilterKnownDistances(s, []float64{10, 17.49}, 0.3, ConstraintSnap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("affected = %d, want 1", n)
	}
	m, _ := s.Get(0, 1)
	if m.Distance != 10 {
		t.Errorf("snapped distance = %v, want 10", m.Distance)
	}
	if m.Weight != 0.7 {
		t.Errorf("weight changed on snap: %v", m.Weight)
	}
}

func TestFilterKnownDistancesDownweight(t *testing.T) {
	s := mustSet(t, 2)
	_ = s.Add(0, 1, 13, 1)
	if _, err := FilterKnownDistances(s, []float64{10}, 0.3, ConstraintDownweight); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Get(0, 1)
	if m.Weight != 0.5 {
		t.Errorf("weight = %v, want 0.5", m.Weight)
	}
	if m.Distance != 13 {
		t.Errorf("distance changed on downweight: %v", m.Distance)
	}
}

func TestFilterKnownDistancesErrors(t *testing.T) {
	s := mustSet(t, 2)
	_ = s.Add(0, 1, 10, 1)
	if _, err := FilterKnownDistances(s, nil, 0.3, ConstraintDrop); err == nil {
		t.Error("want error for empty allowed set")
	}
	if _, err := FilterKnownDistances(s, []float64{10}, -1, ConstraintDrop); err == nil {
		t.Error("want error for negative tolerance")
	}
	if _, err := FilterKnownDistances(s, []float64{10}, 0.3, ConstraintAction(0)); err == nil {
		t.Error("want error for invalid action")
	}
}

// TestFilterKnownDistancesImprovesGridData: injecting gross outliers into a
// grid measurement set and filtering against the known grid distances must
// remove exactly the outliers.
func TestFilterKnownDistancesImprovesGridData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dep := deploy.PaperGrid()
	s, err := Generate(dep, 22, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	clean := s.Len()
	// Corrupt 10 measurements by +3.5 m — an offset that lands every grid
	// distance in a gap of the allowed set. (An outlier that happens to
	// coincide with *another* valid grid distance is undetectable by this
	// filter: grid-constraint checking aliases, which is why the paper
	// pairs it with the other consistency checks.)
	all := s.All()
	for k := 0; k < 10; k++ {
		m := all[k*7]
		_ = s.Add(m.Pair.Lo, m.Pair.Hi, m.Distance+3.5, m.Weight)
	}
	// Fine merge tolerance: the grid's 10 m and 10.30 m neighbor distances
	// must stay distinct entries.
	allowed := KnownDistances(dep, 22, 0.1)
	n, err := FilterKnownDistances(s, allowed, 0.3, ConstraintDrop)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 || n > 14 { // the 10 outliers plus at most a few 3σ tails
		t.Errorf("filtered %d measurements, want 10-14", n)
	}
	if s.Len() < clean-14 {
		t.Errorf("filter removed too many: %d of %d", clean-s.Len(), clean)
	}
	// Remaining errors must all be small.
	errs, err := s.Errors(dep)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		if math.Abs(e) > 1 {
			t.Fatalf("large error %v survived the constraint filter", e)
		}
	}
}

func TestNearestSorted(t *testing.T) {
	xs := []float64{1, 5, 10}
	for _, tc := range []struct{ v, want float64 }{
		{0, 1}, {1, 1}, {2.9, 1}, {3.1, 5}, {7, 5}, {8, 10}, {42, 10},
	} {
		if got := nearestSorted(xs, tc.v); got != tc.want {
			t.Errorf("nearestSorted(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestHopDistanceBounds(t *testing.T) {
	s := mustSet(t, 4)
	// Chain 0-1-2 with max link range 10; a claimed 25 m direct link 0-2
	// exceeds 2 hops × 10 m and must be flagged.
	_ = s.Add(0, 1, 9, 1)
	_ = s.Add(1, 2, 9, 1)
	_ = s.Add(0, 2, 25, 1)
	flagged := HopDistanceBounds(s, 10)
	if len(flagged) != 1 || flagged[0] != MkPair(0, 2) {
		t.Errorf("flagged = %v, want [(0,2)]", flagged)
	}
	// Direct measurements within one hop bound are never flagged.
	if got := HopDistanceBounds(s, 30); len(got) != 0 {
		t.Errorf("with generous bound flagged %v", got)
	}
	if got := HopDistanceBounds(s, 0); got != nil {
		t.Errorf("zero bound should flag nothing, got %v", got)
	}
}
