// Package measure defines the distance-measurement data structures shared by
// the ranging service and the localization algorithms: raw repeated directed
// measurements, the statistical filters of paper Section 3.5 (median/mode),
// the bidirectional and triangle-inequality consistency checks, and the
// synthetic distance generators the paper uses to augment sparse field data
// (Figures 15/16 and 25) and to drive the random-deployment simulations
// (Figures 20–22).
package measure

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"resilientloc/internal/deploy"
	"resilientloc/internal/stats"
)

// Pair is an unordered node pair, stored with Lo < Hi.
type Pair struct {
	Lo, Hi int
}

// MkPair normalizes (i, j) into a Pair. It panics when i == j, which always
// indicates a programming error (self-ranging is meaningless).
func MkPair(i, j int) Pair {
	switch {
	case i == j:
		panic(fmt.Sprintf("measure: self-pair (%d,%d)", i, j))
	case i < j:
		return Pair{Lo: i, Hi: j}
	default:
		return Pair{Lo: j, Hi: i}
	}
}

// Measurement is one undirected filtered distance estimate.
type Measurement struct {
	Pair     Pair
	Distance float64 // meters
	Weight   float64 // confidence weight for LSS (wij); 1 by default
}

// Set is an undirected sparse collection of distance measurements, the input
// to every localization algorithm.
type Set struct {
	n  int
	m  map[Pair]Measurement
	ks []Pair // insertion-ordered keys for deterministic iteration
}

// NewSet creates an empty measurement set over n nodes (indices 0..n-1).
func NewSet(n int) (*Set, error) {
	if n <= 0 {
		return nil, errors.New("measure: NewSet: need positive node count")
	}
	return &Set{n: n, m: make(map[Pair]Measurement)}, nil
}

// N returns the number of nodes the set spans.
func (s *Set) N() int { return s.n }

// Len returns the number of measured pairs.
func (s *Set) Len() int { return len(s.m) }

// Add inserts or replaces the measurement for pair (i, j). A non-positive
// weight is promoted to 1.
func (s *Set) Add(i, j int, distance, weight float64) error {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		return fmt.Errorf("measure: Add: node index out of range (%d,%d) with n=%d", i, j, s.n)
	}
	if i == j {
		return fmt.Errorf("measure: Add: self-pair %d", i)
	}
	if distance <= 0 || math.IsNaN(distance) || math.IsInf(distance, 0) {
		return fmt.Errorf("measure: Add: invalid distance %v", distance)
	}
	if weight <= 0 {
		weight = 1
	}
	p := MkPair(i, j)
	if _, exists := s.m[p]; !exists {
		s.ks = append(s.ks, p)
	}
	s.m[p] = Measurement{Pair: p, Distance: distance, Weight: weight}
	return nil
}

// Get returns the measurement for (i, j) and whether it exists.
func (s *Set) Get(i, j int) (Measurement, bool) {
	m, ok := s.m[MkPair(i, j)]
	return m, ok
}

// Remove deletes the measurement for (i, j) if present.
func (s *Set) Remove(i, j int) {
	p := MkPair(i, j)
	if _, ok := s.m[p]; !ok {
		return
	}
	delete(s.m, p)
	for k, q := range s.ks {
		if q == p {
			s.ks = append(s.ks[:k], s.ks[k+1:]...)
			break
		}
	}
}

// All returns every measurement in insertion order.
func (s *Set) All() []Measurement {
	out := make([]Measurement, 0, len(s.m))
	for _, p := range s.ks {
		out = append(out, s.m[p])
	}
	return out
}

// Neighbors returns the nodes with a measurement to i, ascending.
func (s *Set) Neighbors(i int) []int {
	var out []int
	for _, p := range s.ks {
		switch i {
		case p.Lo:
			out = append(out, p.Hi)
		case p.Hi:
			out = append(out, p.Lo)
		}
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of measurements incident to node i.
func (s *Set) Degree(i int) int { return len(s.Neighbors(i)) }

// AvgDegree returns the mean node degree — the paper reports e.g. "the
// average number of anchors per node was 1.47" from this kind of statistic.
func (s *Set) AvgDegree() float64 {
	if s.n == 0 {
		return 0
	}
	return 2 * float64(len(s.m)) / float64(s.n)
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, m: make(map[Pair]Measurement, len(s.m)), ks: append([]Pair(nil), s.ks...)}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

// Connected reports whether the measurement graph is connected over all n
// nodes (isolated nodes make it disconnected).
func (s *Set) Connected() bool {
	if s.n == 0 {
		return true
	}
	adj := make(map[int][]int, s.n)
	for _, p := range s.ks {
		adj[p.Lo] = append(adj[p.Lo], p.Hi)
		adj[p.Hi] = append(adj[p.Hi], p.Lo)
	}
	seen := make([]bool, s.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == s.n
}

// Errors returns the signed measurement errors (measured − true) for a
// deployment with known ground-truth positions.
func (s *Set) Errors(dep *deploy.Deployment) ([]float64, error) {
	if dep.N() != s.n {
		return nil, fmt.Errorf("measure: Errors: deployment has %d nodes, set has %d", dep.N(), s.n)
	}
	out := make([]float64, 0, len(s.m))
	for _, p := range s.ks {
		m := s.m[p]
		truth := dep.Positions[p.Lo].Dist(dep.Positions[p.Hi])
		out = append(out, m.Distance-truth)
	}
	return out, nil
}

// Raw is a collection of repeated *directed* distance measurements, as
// produced by the ranging service before filtering: readings[i][j] holds all
// raw estimates of the i→j distance.
type Raw struct {
	n        int
	readings map[[2]int][]float64
	keys     [][2]int
}

// NewRaw creates an empty raw collection over n nodes.
func NewRaw(n int) (*Raw, error) {
	if n <= 0 {
		return nil, errors.New("measure: NewRaw: need positive node count")
	}
	return &Raw{n: n, readings: make(map[[2]int][]float64)}, nil
}

// N returns the number of nodes the collection spans.
func (r *Raw) N() int { return r.n }

// Add appends one raw directed reading from src to dst.
func (r *Raw) Add(src, dst int, distance float64) error {
	if src < 0 || src >= r.n || dst < 0 || dst >= r.n {
		return fmt.Errorf("measure: Raw.Add: node index out of range (%d,%d)", src, dst)
	}
	if src == dst {
		return fmt.Errorf("measure: Raw.Add: self-pair %d", src)
	}
	if distance <= 0 || math.IsNaN(distance) || math.IsInf(distance, 0) {
		return fmt.Errorf("measure: Raw.Add: invalid distance %v", distance)
	}
	k := [2]int{src, dst}
	if _, ok := r.readings[k]; !ok {
		r.keys = append(r.keys, k)
	}
	r.readings[k] = append(r.readings[k], distance)
	return nil
}

// Readings returns the raw readings for the directed pair (src, dst).
func (r *Raw) Readings(src, dst int) []float64 {
	return r.readings[[2]int{src, dst}]
}

// DirectedPairs returns all directed pairs with at least one reading, in
// insertion order.
func (r *Raw) DirectedPairs() [][2]int { return append([][2]int(nil), r.keys...) }

// SignedErrors returns the measured-minus-true error of every directed raw
// reading against the deployment's ground-truth positions, in DirectedPairs
// order. This is the single error-extraction path shared by the figure
// reproductions and the scenario library.
func (r *Raw) SignedErrors(dep *deploy.Deployment) []float64 {
	var errs []float64
	for _, k := range r.DirectedPairs() {
		truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
		for _, d := range r.Readings(k[0], k[1]) {
			errs = append(errs, d-truth)
		}
	}
	return errs
}

// TotalReadings returns the total number of raw readings stored.
func (r *Raw) TotalReadings() int {
	t := 0
	for _, v := range r.readings {
		t += len(v)
	}
	return t
}

// FilterKind selects the statistical filter applied to repeated readings.
type FilterKind int

// Statistical filters per paper Section 3.5: the median for small sample
// counts, the mode (densest cluster) when enough measurements are available.
const (
	FilterMedian FilterKind = iota + 1
	FilterMode
)

// ModeBinWidth is the cluster width used by the mode filter, meters.
const ModeBinWidth = 0.5

// Filter reduces repeated directed readings to one estimate per direction.
// The mode filter falls back to the median when fewer than minModeSamples
// readings are available ("it needs more measurements to be effective").
func (r *Raw) Filter(kind FilterKind, minModeSamples int) map[[2]int]float64 {
	out := make(map[[2]int]float64, len(r.readings))
	for _, k := range r.keys {
		v := r.readings[k]
		var est float64
		if kind == FilterMode && len(v) >= minModeSamples {
			est, _ = stats.Mode(v, ModeBinWidth)
		} else {
			est, _ = stats.Median(v)
		}
		out[k] = est
	}
	return out
}

// MergeOptions controls how directed estimates merge into an undirected Set.
type MergeOptions struct {
	// BidirTolerance is the maximum |d(i→j) − d(j→i)| for a bidirectional
	// pair to be considered consistent, meters.
	BidirTolerance float64
	// RequireBidirectional drops pairs measured in only one direction when
	// true (Figure 7's "bidirectional measurements only"); otherwise
	// unidirectional estimates are retained with reduced weight, which the
	// paper recommends when data is scarce.
	RequireBidirectional bool
	// UnidirectionalWeight is the LSS weight assigned to unidirectional
	// pairs when they are retained (bidirectional-consistent pairs get 1).
	UnidirectionalWeight float64
}

// DefaultMergeOptions returns the merge policy used by the refined ranging
// service: 1 m bidirectional tolerance, unidirectional pairs kept at half
// weight.
func DefaultMergeOptions() MergeOptions {
	return MergeOptions{BidirTolerance: 1.0, RequireBidirectional: false, UnidirectionalWeight: 0.5}
}

// Merge combines directed estimates into an undirected Set, applying the
// bidirectional consistency check of Section 3.5: pairs measured in both
// directions are kept (averaged) only when the two directions agree within
// BidirTolerance; disagreeing pairs are discarded entirely.
func Merge(n int, directed map[[2]int]float64, opt MergeOptions) (*Set, error) {
	s, err := NewSet(n)
	if err != nil {
		return nil, err
	}
	uniWeight := opt.UnidirectionalWeight
	if uniWeight <= 0 {
		uniWeight = 0.5
	}
	done := make(map[Pair]bool)
	// Deterministic iteration: sort the directed keys.
	keys := make([][2]int, 0, len(directed))
	for k := range directed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		p := MkPair(k[0], k[1])
		if done[p] {
			continue
		}
		done[p] = true
		fwd, fok := directed[[2]int{p.Lo, p.Hi}]
		rev, rok := directed[[2]int{p.Hi, p.Lo}]
		switch {
		case fok && rok:
			if math.Abs(fwd-rev) <= opt.BidirTolerance {
				if err := s.Add(p.Lo, p.Hi, (fwd+rev)/2, 1); err != nil {
					return nil, err
				}
			}
			// Inconsistent bidirectional pair: discarded.
		case fok || rok:
			if opt.RequireBidirectional {
				continue
			}
			d := fwd
			if rok {
				d = rev
			}
			if err := s.Add(p.Lo, p.Hi, d, uniWeight); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// TriangleCheck removes measurements that violate the triangle inequality
// with slack (paper §3.5: "If three nodes have measurements to each other,
// we use the triangle inequality to identify inconsistent one"). For every
// measured triangle where one side exceeds the sum of the other two plus
// slack, the longest side is removed — the paper notes no check can identify
// the incorrect measurement with certainty; dropping the longest is the
// conservative choice against late-detection overestimates. It returns the
// number of measurements removed.
func TriangleCheck(s *Set, slack float64) int {
	removed := 0
	// Iterate until fixpoint: removing one side can re-validate others.
	for {
		type viol struct {
			p      Pair
			excess float64
		}
		var worst *viol
		// Find the worst violation over all measured triangles.
		for _, mi := range s.All() {
			a, b := mi.Pair.Lo, mi.Pair.Hi
			for c := 0; c < s.n; c++ {
				if c == a || c == b {
					continue
				}
				mac, ok1 := s.Get(a, c)
				mbc, ok2 := s.Get(b, c)
				if !ok1 || !ok2 {
					continue
				}
				// Longest side of the triangle and its excess.
				sides := []Measurement{mi, mac, mbc}
				sort.Slice(sides, func(x, y int) bool { return sides[x].Distance > sides[y].Distance })
				excess := sides[0].Distance - (sides[1].Distance + sides[2].Distance) - slack
				if excess > 0 && (worst == nil || excess > worst.excess) {
					worst = &viol{p: sides[0].Pair, excess: excess}
				}
			}
		}
		if worst == nil {
			return removed
		}
		s.Remove(worst.p.Lo, worst.p.Hi)
		removed++
	}
}

// GaussianNoise is the paper's simulated-distance noise: N(0, 0.33 m).
const GaussianNoise = 0.33

// Generate creates a measurement set for a deployment: every pair closer
// than maxRange gets the true distance perturbed by N(0, sigma), the exact
// procedure of Figures 15 and 20 ("perturbed the distances with errors from
// a Gaussian distribution N(µ=0; σ=0.33m)" with a 22 m cutoff).
func Generate(dep *deploy.Deployment, maxRange, sigma float64, rng *rand.Rand) (*Set, error) {
	s, err := NewSet(dep.N())
	if err != nil {
		return nil, err
	}
	for i := 0; i < dep.N(); i++ {
		for j := i + 1; j < dep.N(); j++ {
			d := dep.Positions[i].Dist(dep.Positions[j])
			if d > maxRange {
				continue
			}
			meas := d + rng.NormFloat64()*sigma
			if meas <= 0.01 {
				meas = 0.01
			}
			if err := s.Add(i, j, meas, 1); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Augment adds up to count simulated measurements for pairs closer than
// maxRange that are missing from s, perturbing true distances by N(0,
// sigma) — the paper's augmentation procedure for Figures 15/16 (370 added
// pairs) and 25. It returns the number of pairs actually added.
func Augment(s *Set, dep *deploy.Deployment, maxRange, sigma float64, count int, rng *rand.Rand) (int, error) {
	if dep.N() != s.n {
		return 0, fmt.Errorf("measure: Augment: deployment has %d nodes, set has %d", dep.N(), s.n)
	}
	var missing []Pair
	for i := 0; i < dep.N(); i++ {
		for j := i + 1; j < dep.N(); j++ {
			if dep.Positions[i].Dist(dep.Positions[j]) > maxRange {
				continue
			}
			if _, ok := s.Get(i, j); !ok {
				missing = append(missing, MkPair(i, j))
			}
		}
	}
	rng.Shuffle(len(missing), func(a, b int) { missing[a], missing[b] = missing[b], missing[a] })
	if count > len(missing) {
		count = len(missing)
	}
	for _, p := range missing[:count] {
		d := dep.Positions[p.Lo].Dist(dep.Positions[p.Hi])
		meas := d + rng.NormFloat64()*sigma
		if meas <= 0.01 {
			meas = 0.01
		}
		if err := s.Add(p.Lo, p.Hi, meas, 1); err != nil {
			return 0, err
		}
	}
	return count, nil
}

// Sparsify randomly retains exactly keep measurements (or all, if fewer),
// used to reproduce the paper's sparse field datasets at a target pair
// count (e.g. 247 pairs over 47 nodes in Figure 24).
func Sparsify(s *Set, keep int, rng *rand.Rand) {
	if keep >= s.Len() {
		return
	}
	pairs := append([]Pair(nil), s.ks...)
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	for _, p := range pairs[keep:] {
		s.Remove(p.Lo, p.Hi)
	}
}
