package measure

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/stats"
)

func mustSet(t *testing.T, n int) *Set {
	t.Helper()
	s, err := NewSet(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMkPair(t *testing.T) {
	p := MkPair(5, 2)
	if p.Lo != 2 || p.Hi != 5 {
		t.Errorf("MkPair(5,2) = %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for self-pair")
		}
	}()
	MkPair(3, 3)
}

func TestSetAddGetRemove(t *testing.T) {
	s := mustSet(t, 5)
	if err := s.Add(1, 3, 10.5, 0); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Get(3, 1) // order-insensitive
	if !ok || m.Distance != 10.5 || m.Weight != 1 {
		t.Errorf("Get = %+v, ok=%v", m, ok)
	}
	// Replace with explicit weight.
	if err := s.Add(3, 1, 11, 0.5); err != nil {
		t.Fatal(err)
	}
	m, _ = s.Get(1, 3)
	if m.Distance != 11 || m.Weight != 0.5 {
		t.Errorf("after replace: %+v", m)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	s.Remove(1, 3)
	if _, ok := s.Get(1, 3); ok || s.Len() != 0 {
		t.Error("Remove failed")
	}
	s.Remove(1, 3) // idempotent
}

func TestSetAddErrors(t *testing.T) {
	s := mustSet(t, 3)
	cases := []struct {
		name string
		i, j int
		d    float64
	}{
		{"out of range", 0, 5, 1},
		{"negative index", -1, 1, 1},
		{"self pair", 1, 1, 1},
		{"zero distance", 0, 1, 0},
		{"negative distance", 0, 1, -2},
		{"NaN", 0, 1, math.NaN()},
		{"Inf", 0, 1, math.Inf(1)},
	}
	for _, tc := range cases {
		if err := s.Add(tc.i, tc.j, tc.d, 1); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if _, err := NewSet(0); err == nil {
		t.Error("want error for n=0")
	}
}

func TestSetNeighborsDegree(t *testing.T) {
	s := mustSet(t, 5)
	_ = s.Add(0, 1, 1, 1)
	_ = s.Add(0, 2, 1, 1)
	_ = s.Add(3, 0, 1, 1)
	nb := s.Neighbors(0)
	want := []int{1, 2, 3}
	if len(nb) != 3 {
		t.Fatalf("neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Errorf("neighbors = %v, want %v", nb, want)
		}
	}
	if s.Degree(0) != 3 || s.Degree(4) != 0 {
		t.Errorf("degrees wrong: %d, %d", s.Degree(0), s.Degree(4))
	}
	if got := s.AvgDegree(); math.Abs(got-1.2) > 1e-12 { // 2*3/5
		t.Errorf("AvgDegree = %v, want 1.2", got)
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := mustSet(t, 3)
	_ = s.Add(0, 1, 5, 1)
	c := s.Clone()
	c.Remove(0, 1)
	if _, ok := s.Get(0, 1); !ok {
		t.Error("Clone aliases original")
	}
}

func TestSetConnected(t *testing.T) {
	s := mustSet(t, 4)
	_ = s.Add(0, 1, 1, 1)
	_ = s.Add(1, 2, 1, 1)
	if s.Connected() {
		t.Error("node 3 is isolated; should be disconnected")
	}
	_ = s.Add(2, 3, 1, 1)
	if !s.Connected() {
		t.Error("chain should be connected")
	}
}

func TestSetErrors(t *testing.T) {
	dep := deploy.PaperGrid()
	s := mustSet(t, dep.N())
	truth := dep.Positions[0].Dist(dep.Positions[1])
	_ = s.Add(0, 1, truth+0.5, 1)
	errs, err := s.Errors(dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 || math.Abs(errs[0]-0.5) > 1e-12 {
		t.Errorf("errors = %v, want [0.5]", errs)
	}
	bad := mustSet(t, 3)
	if _, err := bad.Errors(dep); err == nil {
		t.Error("want error for node-count mismatch")
	}
}

func TestRawAddAndFilter(t *testing.T) {
	r, err := NewRaw(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{10.0, 10.1, 9.9, 25.0, 10.05} { // one outlier
		if err := r.Add(0, 1, d); err != nil {
			t.Fatal(err)
		}
	}
	if r.TotalReadings() != 5 {
		t.Errorf("TotalReadings = %d", r.TotalReadings())
	}
	med := r.Filter(FilterMedian, 0)
	if math.Abs(med[[2]int{0, 1}]-10.05) > 1e-9 {
		t.Errorf("median = %v, want 10.05", med[[2]int{0, 1}])
	}
	mode := r.Filter(FilterMode, 4)
	if math.Abs(mode[[2]int{0, 1}]-10.0) > 0.1 {
		t.Errorf("mode = %v, want ≈10.0", mode[[2]int{0, 1}])
	}
	// Mode falls back to median below the sample minimum.
	r2, _ := NewRaw(2)
	_ = r2.Add(0, 1, 5)
	_ = r2.Add(0, 1, 6)
	fb := r2.Filter(FilterMode, 4)
	if math.Abs(fb[[2]int{0, 1}]-5.5) > 1e-9 {
		t.Errorf("fallback = %v, want 5.5 (median)", fb[[2]int{0, 1}])
	}
}

func TestRawAddErrors(t *testing.T) {
	r, _ := NewRaw(3)
	if err := r.Add(0, 0, 1); err == nil {
		t.Error("want error for self-pair")
	}
	if err := r.Add(0, 9, 1); err == nil {
		t.Error("want error for out-of-range")
	}
	if err := r.Add(0, 1, -1); err == nil {
		t.Error("want error for negative distance")
	}
	if _, err := NewRaw(0); err == nil {
		t.Error("want error for n=0")
	}
}

func TestMergeBidirectionalConsistent(t *testing.T) {
	directed := map[[2]int]float64{
		{0, 1}: 10.2, {1, 0}: 10.0, // consistent: kept, averaged
		{1, 2}: 8.0, {2, 1}: 12.0, // inconsistent: dropped
		{2, 3}: 5.0, // unidirectional: kept at reduced weight
	}
	s, err := Merge(4, directed, DefaultMergeOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.Get(0, 1)
	if !ok || math.Abs(m.Distance-10.1) > 1e-9 || m.Weight != 1 {
		t.Errorf("bidir pair = %+v, ok=%v", m, ok)
	}
	if _, ok := s.Get(1, 2); ok {
		t.Error("inconsistent pair retained")
	}
	m, ok = s.Get(2, 3)
	if !ok || m.Weight != 0.5 {
		t.Errorf("unidirectional pair = %+v, ok=%v", m, ok)
	}
}

func TestMergeRequireBidirectional(t *testing.T) {
	directed := map[[2]int]float64{
		{0, 1}: 10.0, {1, 0}: 10.1,
		{2, 3}: 5.0,
	}
	opt := DefaultMergeOptions()
	opt.RequireBidirectional = true
	s, err := Merge(4, directed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (unidirectional dropped)", s.Len())
	}
}

func TestMergeDeterministic(t *testing.T) {
	directed := map[[2]int]float64{
		{0, 1}: 1, {2, 3}: 2, {1, 2}: 3, {0, 3}: 4,
	}
	a, _ := Merge(4, directed, DefaultMergeOptions())
	b, _ := Merge(4, directed, DefaultMergeOptions())
	am, bm := a.All(), b.All()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatal("merge order nondeterministic")
		}
	}
}

func TestTriangleCheck(t *testing.T) {
	s := mustSet(t, 3)
	_ = s.Add(0, 1, 3, 1)
	_ = s.Add(1, 2, 4, 1)
	_ = s.Add(0, 2, 20, 1) // violates: 20 > 3+4
	removed := TriangleCheck(s, 0.5)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if _, ok := s.Get(0, 2); ok {
		t.Error("violating side retained")
	}
	if _, ok := s.Get(0, 1); !ok {
		t.Error("valid side removed")
	}
}

func TestTriangleCheckNoViolation(t *testing.T) {
	s := mustSet(t, 3)
	_ = s.Add(0, 1, 3, 1)
	_ = s.Add(1, 2, 4, 1)
	_ = s.Add(0, 2, 5, 1)
	if removed := TriangleCheck(s, 0.5); removed != 0 {
		t.Errorf("removed = %d, want 0", removed)
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dep := deploy.PaperGrid()
	s, err := Generate(dep, 22, GaussianNoise, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every measured pair must be within range; every in-range pair
	// measured.
	count := 0
	for i := 0; i < dep.N(); i++ {
		for j := i + 1; j < dep.N(); j++ {
			d := dep.Positions[i].Dist(dep.Positions[j])
			_, ok := s.Get(i, j)
			if d <= 22 && !ok {
				t.Fatalf("in-range pair (%d,%d) missing", i, j)
			}
			if d > 22 && ok {
				t.Fatalf("out-of-range pair (%d,%d) measured", i, j)
			}
			if ok {
				count++
			}
		}
	}
	if s.Len() != count {
		t.Errorf("Len = %d, want %d", s.Len(), count)
	}
	// Error distribution ≈ N(0, 0.33).
	errs, err := s.Errors(dep)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := stats.StdDev(errs)
	if math.Abs(sd-GaussianNoise) > 0.05 {
		t.Errorf("error sd = %v, want ≈%v", sd, GaussianNoise)
	}
}

func TestAugment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dep := deploy.PaperGrid()
	s := mustSet(t, dep.N())
	_ = s.Add(0, 1, 10, 1)
	before := s.Len()
	added, err := Augment(s, dep, 22, GaussianNoise, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if added != 50 {
		t.Errorf("added = %d, want 50", added)
	}
	if s.Len() != before+50 {
		t.Errorf("Len = %d, want %d", s.Len(), before+50)
	}
	// Requesting more than available adds only what exists.
	huge, err := Augment(s, dep, 22, GaussianNoise, 1<<20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if huge <= 0 {
		t.Error("second augment added nothing")
	}
	if _, err := Augment(mustSet(t, 3), dep, 22, 0.33, 5, rng); err == nil {
		t.Error("want error for node-count mismatch")
	}
}

func TestSparsify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dep := deploy.PaperGrid()
	s, _ := Generate(dep, 22, GaussianNoise, rng)
	Sparsify(s, 100, rng)
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
	// Sparsify to more than present: no-op.
	Sparsify(s, 1000, rng)
	if s.Len() != 100 {
		t.Errorf("Len = %d after no-op sparsify, want 100", s.Len())
	}
}
