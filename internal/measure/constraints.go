package measure

import (
	"errors"
	"math"
	"sort"

	"resilientloc/internal/deploy"
)

// Deployment-constraint filtering (paper Section 3.5.1): "On a regular grid
// deployment, a set of possible inter-node distances can be deduced from the
// size and shape of the grid configuration. These data provide additional
// constraints that consistent ranging measurements should satisfy." The
// paper lists this as planned future filtering; we implement it.

// KnownDistances returns the sorted set of distinct inter-node distances a
// deployment's geometry admits, up to maxRange, merged within mergeTol
// (distances closer than mergeTol collapse to one entry).
func KnownDistances(dep *deploy.Deployment, maxRange, mergeTol float64) []float64 {
	var ds []float64
	for i := 0; i < dep.N(); i++ {
		for j := i + 1; j < dep.N(); j++ {
			d := dep.Positions[i].Dist(dep.Positions[j])
			if d <= maxRange {
				ds = append(ds, d)
			}
		}
	}
	sort.Float64s(ds)
	var out []float64
	for _, d := range ds {
		if len(out) == 0 || d-out[len(out)-1] > mergeTol {
			out = append(out, d)
		}
	}
	return out
}

// ConstraintAction selects what FilterKnownDistances does with a
// measurement that is not close to any allowed distance.
type ConstraintAction int

const (
	// ConstraintDrop removes non-conforming measurements.
	ConstraintDrop ConstraintAction = iota + 1
	// ConstraintSnap replaces a non-conforming measurement's distance with
	// the nearest allowed value (keeping its weight), trading bias for
	// robustness when the deployment geometry is exactly known.
	ConstraintSnap
	// ConstraintDownweight keeps non-conforming measurements but halves
	// their LSS weight, the paper's "it may be beneficial to retain
	// suspicious measurements due to the scarcity of available data".
	ConstraintDownweight
)

// FilterKnownDistances validates every measurement in s against the allowed
// distance set: a measurement within tol of some allowed distance is
// untouched; otherwise the action applies. It returns the number of
// measurements affected. allowed must be sorted ascending and non-empty.
func FilterKnownDistances(s *Set, allowed []float64, tol float64, action ConstraintAction) (int, error) {
	if len(allowed) == 0 {
		return 0, errors.New("measure: FilterKnownDistances: empty allowed set")
	}
	if tol < 0 {
		return 0, errors.New("measure: FilterKnownDistances: negative tolerance")
	}
	switch action {
	case ConstraintDrop, ConstraintSnap, ConstraintDownweight:
	default:
		return 0, errors.New("measure: FilterKnownDistances: invalid action")
	}
	affected := 0
	for _, m := range s.All() {
		nearest := nearestSorted(allowed, m.Distance)
		if math.Abs(nearest-m.Distance) <= tol {
			continue
		}
		affected++
		switch action {
		case ConstraintDrop:
			s.Remove(m.Pair.Lo, m.Pair.Hi)
		case ConstraintSnap:
			if err := s.Add(m.Pair.Lo, m.Pair.Hi, nearest, m.Weight); err != nil {
				return affected, err
			}
		case ConstraintDownweight:
			if err := s.Add(m.Pair.Lo, m.Pair.Hi, m.Distance, m.Weight/2); err != nil {
				return affected, err
			}
		}
	}
	return affected, nil
}

// nearestSorted returns the element of sorted xs closest to v.
func nearestSorted(xs []float64, v float64) float64 {
	i := sort.SearchFloat64s(xs, v)
	switch {
	case i == 0:
		return xs[0]
	case i == len(xs):
		return xs[len(xs)-1]
	case v-xs[i-1] <= xs[i]-v:
		return xs[i-1]
	default:
		return xs[i]
	}
}

// HopDistanceBounds (paper §3.5.1: "Rough distance estimates can be made
// based on node density and network hop count before the ranging service
// starts") computes, for every measured pair, the minimum hop count through
// the measurement graph and flags measurements whose distance exceeds
// hops·maxHopRange — a physical impossibility when every link is at most
// maxHopRange long. It returns the flagged pairs; the caller decides what to
// do with them.
func HopDistanceBounds(s *Set, maxHopRange float64) []Pair {
	if maxHopRange <= 0 {
		return nil
	}
	// BFS hop counts between all measured pairs over the measurement graph.
	adj := make(map[int][]int, s.N())
	for _, m := range s.All() {
		adj[m.Pair.Lo] = append(adj[m.Pair.Lo], m.Pair.Hi)
		adj[m.Pair.Hi] = append(adj[m.Pair.Hi], m.Pair.Lo)
	}
	var flagged []Pair
	for _, m := range s.All() {
		hops := bfsHops(adj, m.Pair.Lo, m.Pair.Hi, s.N())
		if hops > 0 && m.Distance > float64(hops)*maxHopRange {
			flagged = append(flagged, m.Pair)
		}
	}
	return flagged
}

// bfsHops returns the hop distance from src to dst, or -1 if unreachable.
func bfsHops(adj map[int][]int, src, dst, n int) int {
	if src == dst {
		return 0
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if w == dst {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}
