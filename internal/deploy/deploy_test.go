package deploy

import (
	"math"
	"math/rand"
	"testing"
)

func TestOffsetGridShape(t *testing.T) {
	d, err := OffsetGrid(7, 7, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 49 {
		t.Fatalf("N = %d, want 49", d.N())
	}
	// Row 0 node 0 at origin; row 1 offset by 5 in x, 9 in y.
	if d.Positions[0].X != 0 || d.Positions[0].Y != 0 {
		t.Errorf("node 0 at %v, want origin", d.Positions[0])
	}
	if d.Positions[7].X != 5 || d.Positions[7].Y != 9 {
		t.Errorf("node 7 at %v, want (5,9)", d.Positions[7])
	}
}

func TestOffsetGridErrors(t *testing.T) {
	if _, err := OffsetGrid(0, 7, 9, 10); err == nil {
		t.Error("want error for zero rows")
	}
	if _, err := OffsetGrid(7, 7, 0, 10); err == nil {
		t.Error("want error for zero spacing")
	}
}

func TestPaperGridNearestNeighborSpacing(t *testing.T) {
	d := PaperGrid()
	// Figure 5: nearest neighbors are 9 m and 10 m apart. The offset-grid
	// minimum spacing must be between 9 and 10.3 m.
	minSep := d.MinSpacing()
	if minSep < 9 || minSep > 10.3 {
		t.Errorf("min spacing = %v, want in [9, 10.3]", minSep)
	}
	// Area ≈ 60×54 m (Figure 5 axes run to ~60 m).
	var maxX, maxY float64
	for _, p := range d.Positions {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX < 55 || maxX > 70 || maxY < 50 || maxY > 60 {
		t.Errorf("grid extent (%v, %v) outside Figure 5's ~60x54 m", maxX, maxY)
	}
}

func TestDeploymentValidate(t *testing.T) {
	d := PaperGrid()
	if err := d.Validate(); err != nil {
		t.Errorf("valid deployment rejected: %v", err)
	}
	d.Anchors = []int{0, 0}
	if err := d.Validate(); err == nil {
		t.Error("want error for duplicate anchors")
	}
	d.Anchors = []int{99}
	if err := d.Validate(); err == nil {
		t.Error("want error for out-of-range anchor")
	}
	empty := &Deployment{}
	if err := empty.Validate(); err == nil {
		t.Error("want error for empty deployment")
	}
}

func TestChooseRandomAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := PaperGrid()
	if err := d.ChooseRandomAnchors(13, rng); err != nil {
		t.Fatal(err)
	}
	if len(d.Anchors) != 13 {
		t.Fatalf("got %d anchors, want 13", len(d.Anchors))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.NonAnchors()) != 36 {
		t.Errorf("non-anchors = %d, want 36", len(d.NonAnchors()))
	}
	for _, a := range d.Anchors {
		if !d.IsAnchor(a) {
			t.Errorf("IsAnchor(%d) = false for anchor", a)
		}
	}
	if err := d.ChooseRandomAnchors(100, rng); err == nil {
		t.Error("want error for too many anchors")
	}
}

func TestParkingLot(t *testing.T) {
	d := ParkingLot()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 15 {
		t.Errorf("N = %d, want 15", d.N())
	}
	if len(d.Anchors) != 5 {
		t.Errorf("anchors = %d, want 5", len(d.Anchors))
	}
	// All nodes within a ~25x25 m footprint.
	for i, p := range d.Positions {
		if p.X < -10 || p.X > 15 || p.Y < 0 || p.Y > 22 {
			t.Errorf("node %d at %v outside the lot", i, p)
		}
	}
}

func TestTown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Town(rng)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 59 {
		t.Errorf("N = %d, want 59", d.N())
	}
	if len(d.Anchors) != 18 {
		t.Errorf("anchors = %d, want 18", len(d.Anchors))
	}
	// Determinism: the same seed reproduces the same layout.
	d2 := Town(rand.New(rand.NewSource(5)))
	for i := range d.Positions {
		if d.Positions[i] != d2.Positions[i] {
			t.Fatalf("node %d differs across same-seed runs", i)
		}
	}
}

func TestUniformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, err := UniformRandom(50, 100, 100, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 50 {
		t.Fatalf("N = %d, want 50", d.N())
	}
	if minSep := d.MinSpacing(); minSep < 5 {
		t.Errorf("min spacing = %v, want ≥5", minSep)
	}
	for _, p := range d.Positions {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Errorf("node at %v outside area", p)
		}
	}
}

func TestUniformRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := UniformRandom(0, 10, 10, 0, rng); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := UniformRandom(5, 0, 10, 0, rng); err == nil {
		t.Error("want error for zero area")
	}
	if _, err := UniformRandom(5, 10, 10, -1, rng); err == nil {
		t.Error("want error for negative minSep")
	}
	// Impossible packing: 100 nodes with 50 m separation in 10x10.
	if _, err := UniformRandom(100, 10, 10, 50, rng); err == nil {
		t.Error("want error for impossible packing")
	}
}

func TestMinSpacingDegenerate(t *testing.T) {
	d := &Deployment{Positions: PaperGrid().Positions[:1]}
	if d.MinSpacing() != 0 {
		t.Error("single-node min spacing should be 0")
	}
}
