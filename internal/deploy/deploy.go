// Package deploy generates the node layouts of the paper's evaluation:
// the 7×7 offset grid with 9 m / 10 m spacing (Figure 5), the 15-node
// parking-lot deployment (Figure 12), the 59-position "small town" map used
// for the random-deployment simulations (Figures 20–22), and generic uniform
// random deployments for scaling studies.
package deploy

import (
	"errors"
	"fmt"
	"math/rand"

	"resilientloc/internal/geom"
)

// Deployment is a set of node positions plus the indices of anchor nodes
// (nodes that know their own position a priori).
type Deployment struct {
	Name      string
	Positions []geom.Point
	Anchors   []int // indices into Positions; empty for anchor-free schemes
}

// N returns the number of nodes.
func (d *Deployment) N() int { return len(d.Positions) }

// IsAnchor reports whether node i is an anchor.
func (d *Deployment) IsAnchor(i int) bool {
	for _, a := range d.Anchors {
		if a == i {
			return true
		}
	}
	return false
}

// NonAnchors returns the indices of all non-anchor nodes.
func (d *Deployment) NonAnchors() []int {
	out := make([]int, 0, d.N()-len(d.Anchors))
	for i := range d.Positions {
		if !d.IsAnchor(i) {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants.
func (d *Deployment) Validate() error {
	if len(d.Positions) == 0 {
		return errors.New("deploy: no positions")
	}
	seen := make(map[int]bool, len(d.Anchors))
	for _, a := range d.Anchors {
		if a < 0 || a >= len(d.Positions) {
			return fmt.Errorf("deploy: anchor index %d out of range", a)
		}
		if seen[a] {
			return fmt.Errorf("deploy: duplicate anchor index %d", a)
		}
		seen[a] = true
	}
	return nil
}

// ChooseRandomAnchors designates k distinct random nodes as anchors,
// replacing any existing anchor set.
func (d *Deployment) ChooseRandomAnchors(k int, rng *rand.Rand) error {
	if k < 0 || k > d.N() {
		return fmt.Errorf("deploy: cannot choose %d anchors from %d nodes", k, d.N())
	}
	perm := rng.Perm(d.N())
	d.Anchors = append([]int(nil), perm[:k]...)
	return nil
}

// MinSpacing returns the smallest pairwise distance in the deployment, the
// quantity the LSS soft constraint relies on. It returns 0 for fewer than
// two nodes.
func (d *Deployment) MinSpacing() float64 {
	if d.N() < 2 {
		return 0
	}
	best := d.Positions[0].Dist(d.Positions[1])
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if dist := d.Positions[i].Dist(d.Positions[j]); dist < best {
				best = dist
			}
		}
	}
	return best
}

// OffsetGrid builds the paper's Figure 5 layout: rows 9 m apart vertically;
// nodes 10 m apart within a row; odd rows offset by half the horizontal
// spacing, so nearest neighbors are 9 m and 10 m apart with a minimum
// spacing of 9.14 m used as the soft-constraint dmin in Section 4.2.2
// (offset-row diagonal: sqrt(9² + 5²) ≈ 10.30 m; the paper's stated 9.14 m
// minimum corresponds to its exact survey geometry — we expose whatever the
// generated grid's true minimum is via MinSpacing).
func OffsetGrid(rows, cols int, rowSpacing, colSpacing float64) (*Deployment, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("deploy: OffsetGrid: invalid shape %dx%d", rows, cols)
	}
	if rowSpacing <= 0 || colSpacing <= 0 {
		return nil, errors.New("deploy: OffsetGrid: non-positive spacing")
	}
	d := &Deployment{Name: fmt.Sprintf("offset-grid-%dx%d", rows, cols)}
	for r := 0; r < rows; r++ {
		xOff := 0.0
		if r%2 == 1 {
			xOff = colSpacing / 2
		}
		for c := 0; c < cols; c++ {
			d.Positions = append(d.Positions, geom.Pt(
				xOff+float64(c)*colSpacing,
				float64(r)*rowSpacing,
			))
		}
	}
	return d, nil
}

// PaperGrid returns the 7×7 offset grid of the paper's main campaign
// (Figure 5): 49 plausible positions over a ~60×54 m area with 9 m row and
// 10 m column spacing. The paper's experiments used 46–47 of the 49
// positions; callers slice as needed.
func PaperGrid() *Deployment {
	d, err := OffsetGrid(7, 7, 9, 10)
	if err != nil {
		panic("deploy: PaperGrid: " + err.Error()) // static parameters; cannot fail
	}
	d.Name = "paper-grid-7x7"
	return d
}

// ParkingLot returns the 15-node, 25×25 m parking-lot deployment of the
// multilateration experiment (Figure 12): 5 anchors along the periphery
// (the only nodes fitted with loudspeakers) and 10 non-anchors inside.
func ParkingLot() *Deployment {
	return &Deployment{
		Name: "parking-lot-15",
		Positions: []geom.Point{
			// Anchors (loudspeaker-equipped), spread around the lot.
			geom.Pt(-8, 1), geom.Pt(12, 2), geom.Pt(2, 21), geom.Pt(-6, 16), geom.Pt(11, 14),
			// Non-anchor nodes.
			geom.Pt(-4, 4), geom.Pt(0, 2), geom.Pt(5, 5), geom.Pt(9, 7),
			geom.Pt(-2, 9), geom.Pt(3, 10), geom.Pt(7, 12), geom.Pt(-5, 12),
			geom.Pt(0, 15), geom.Pt(5, 18),
		},
		Anchors: []int{0, 1, 2, 3, 4},
	}
}

// Town returns 59 plausible node positions over a few blocks of a small
// town, the random-deployment scenario of Figures 20–22: nodes along street
// frontages and around two city blocks. The geometry is scaled so that the
// number of node pairs within the 22 m ranging cutoff matches the paper's
// 945 ("we selected 945 pairs of nodes whose Euclidean distances were less
// than 22m"), which implies a compact ≈60×50 m footprint. 18 of the nodes
// are designated anchors for the multilateration run; LSS ignores anchors.
func Town(rng *rand.Rand) *Deployment {
	d := &Deployment{Name: "town-59"}
	// Street-frontage rows around two blocks, jittered so the layout is
	// plausible rather than gridded. The paper's density (55% of all pairs
	// within 22 m) dictates the ≈6.5 m frontage spacing.
	const sx = 6.5 // frontage spacing, m
	jitter := func(x, y float64) geom.Point {
		return geom.Pt(x+rng.Float64()*2.2-1.1, y+rng.Float64()*2.2-1.1)
	}
	// Block 1 (south): perimeter positions.
	for i := 0; i < 8; i++ {
		d.Positions = append(d.Positions, jitter(float64(i)*sx, 0))
	}
	for i := 0; i < 8; i++ {
		d.Positions = append(d.Positions, jitter(float64(i)*sx, 16))
	}
	d.Positions = append(d.Positions,
		jitter(0, 5.5), jitter(50, 5.5), jitter(0, 11), jitter(50, 11))
	// Block 2 (north): a second block across the street.
	for i := 0; i < 7; i++ {
		d.Positions = append(d.Positions, jitter(float64(i)*7+3, 26))
	}
	for i := 0; i < 7; i++ {
		d.Positions = append(d.Positions, jitter(float64(i)*7+3, 36))
	}
	d.Positions = append(d.Positions, jitter(3, 31), jitter(52, 31))
	// Scattered yard/alley positions filling the interior.
	for len(d.Positions) < 59 {
		d.Positions = append(d.Positions, jitter(4+rng.Float64()*44, 4+rng.Float64()*28))
	}
	d.Positions = d.Positions[:59]
	if err := d.ChooseRandomAnchors(18, rng); err != nil {
		panic("deploy: Town: " + err.Error()) // 18 < 59; cannot fail
	}
	return d
}

// UniformRandom scatters n nodes uniformly over a w×h rectangle with a
// minimum-spacing rejection rule (re-draws any point closer than minSep to
// an accepted one, giving up after a bounded number of attempts).
func UniformRandom(n int, w, h, minSep float64, rng *rand.Rand) (*Deployment, error) {
	if n <= 0 {
		return nil, errors.New("deploy: UniformRandom: need positive n")
	}
	if w <= 0 || h <= 0 {
		return nil, errors.New("deploy: UniformRandom: non-positive area")
	}
	if minSep < 0 {
		return nil, errors.New("deploy: UniformRandom: negative minSep")
	}
	d := &Deployment{Name: fmt.Sprintf("uniform-%d", n)}
	const maxAttempts = 10000
	for len(d.Positions) < n {
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			p := geom.Pt(rng.Float64()*w, rng.Float64()*h)
			clear := true
			for _, q := range d.Positions {
				if p.Dist(q) < minSep {
					clear = false
					break
				}
			}
			if clear {
				d.Positions = append(d.Positions, p)
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("deploy: UniformRandom: cannot place %d nodes with %.1fm separation in %.0fx%.0f", n, minSep, w, h)
		}
	}
	return d, nil
}
