// Package experiments regenerates every figure of the paper's evaluation:
// the ranging figures of Section 3 (Figures 2–10 and the §3.6.2 maximum-
// range analysis) and the localization figures of Section 4 (Figures 11–25).
// Each experiment is a deterministic function of its seed and returns a
// Result that records the paper's claim next to the measured reproduction,
// so cmd/experiments and EXPERIMENTS.md can print paper-vs-measured tables.
//
// Every experiment executes through the engine campaign path: an Experiment
// is a builder of an engine.Campaign[*Result] whose trials carry the
// figure's Monte Carlo structure (one trial for single-shot figures, one
// trial per sweep point or optimizer descent for the ensemble figures) and
// whose Finalize assembles the Result from the shard-merged report. Seed
// derivation in each campaign reproduces the original serial generators'
// arithmetic, so figure output is byte-identical to the pre-engine code at
// every seed and worker count (pinned by the golden tests).
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/stats"
)

// Metric is one named measured quantity.
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// SeriesPoint is one (x, y) sample of a figure's data series.
type SeriesPoint struct {
	X, Y float64
}

// Series is a named data series (one curve of a figure).
type Series struct {
	Name   string
	Points []SeriesPoint
}

// Result is the outcome of one experiment.
type Result struct {
	ID         string // e.g. "fig06"
	Title      string
	PaperClaim string // what the paper reports, with its numbers
	Metrics    []Metric
	Series     []Series
	Notes      string

	// index maps metric name to its position in Metrics; maintained by Add
	// and rebuilt lazily by Get when stale (e.g. after JSON decoding).
	index map[string]int
}

// Add appends a metric.
func (r *Result) Add(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
	if r.index != nil {
		r.index[name] = len(r.Metrics) - 1
	}
}

// Get returns the named metric's value and whether it exists, via a
// map-backed index (rebuilt when the Metrics slice was populated behind the
// index's back, as after a cache decode).
func (r *Result) Get(name string) (float64, bool) {
	if len(r.index) != len(r.Metrics) {
		r.index = make(map[string]int, len(r.Metrics))
		for i, m := range r.Metrics {
			r.index[m.Name] = i
		}
	}
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.Metrics[i].Value, true
}

// Render formats the result as an indented text block for the harness.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "  paper: %s\n", r.PaperClaim)
	for _, m := range r.Metrics {
		if m.Unit != "" {
			fmt.Fprintf(&b, "  %-42s %10.3f %s\n", m.Name, m.Value, m.Unit)
		} else {
			fmt.Fprintf(&b, "  %-42s %10.3f\n", m.Name, m.Value)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  series %s:", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " (%.3g, %.4g)", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Notes)
	}
	return b.String()
}

// Experiment is a named, seedable reproduction of one paper figure,
// expressed as an engine campaign.
type Experiment struct {
	ID string
	// Campaign builds the experiment's engine campaign for a seed. The
	// campaign's scenario is named after the experiment ID, which is what
	// the result cache keys on.
	Campaign func(seed int64) engine.Campaign[*Result]
	// Params declares the experiment's swept axes beyond the seed, if any.
	// Most figures are parameter-free reproductions — a fixed operating
	// point is their definition — and leave this nil, which makes any
	// params on their spec an error.
	Params params.Schema
	// ParamCampaign builds the campaign at a resolved operating point
	// (every declared parameter present; see params.Schema.Resolve). Set
	// exactly when Params is non-empty. Campaign(seed) must equal
	// ParamCampaign(seed, defaults) so the param-less spec stays
	// byte-identical to the pinned figure.
	ParamCampaign func(seed int64, p params.Map) engine.Campaign[*Result]
}

// Run executes the experiment through the engine campaign path with default
// parallelism (GOMAXPROCS workers).
func (e Experiment) Run(seed int64) (*Result, error) {
	return e.RunWorkers(seed, 0)
}

// RunWorkers executes the experiment with an explicit engine worker count
// (0 = GOMAXPROCS). Output is identical at every worker count.
func (e Experiment) RunWorkers(seed int64, workers int) (*Result, error) {
	runner, err := engine.NewRunner(engine.Config{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	res, _, err := engine.RunCampaign(runner, e.Campaign(seed))
	return res, err
}

// singleTrial wraps a one-shot figure computation as a 1-trial campaign.
// The identity SeedFn makes the trial's RNG rand.New(rand.NewSource(seed)) —
// exactly the generator the original serial figure function built — so the
// port is output-preserving by construction.
func singleTrial(id string, fn func(t *engine.T) (*Result, error)) engine.Campaign[*Result] {
	return engine.Campaign[*Result]{
		Scenario: engine.Scenario{
			Name:      id,
			Trials:    1,
			MaxTrials: 1,
			SeedFn:    func(seed int64, _ int) int64 { return seed },
			Run: func(t *engine.T) error {
				r, err := fn(t)
				if err != nil {
					return err
				}
				t.Keep(r)
				return nil
			},
		},
		KeepTrialValues: true,
		FixedTrials:     true,
		Finalize: func(rep *engine.Report) (*Result, error) {
			r, _ := rep.TrialOutputs[0].(*Result)
			if r == nil {
				return nil, fmt.Errorf("experiments: %s: trial kept no Result", id)
			}
			return r, nil
		},
	}
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig02", Campaign: fig02Campaign},
		{ID: "fig04", Campaign: fig04Campaign},
		{ID: "fig06", Campaign: fig06Campaign},
		{ID: "fig07", Campaign: fig07Campaign},
		{ID: "fig08", Campaign: fig08Campaign},
		{ID: "fig10", Campaign: fig10Campaign},
		{
			ID:       "maxrange",
			Campaign: maxRangeCampaign,
			Params: params.Schema{
				{Name: "rounds", Kind: params.Int, Default: params.Num(maxRangeSweepRounds), Min: 1, Max: 400,
					Help: "measurement attempts per sweep point"},
			},
			ParamCampaign: func(seed int64, p params.Map) engine.Campaign[*Result] {
				return maxRangeCampaignRounds(seed, p.Int("rounds"))
			},
		},
		{ID: "fig11", Campaign: fig11Campaign},
		{ID: "fig12", Campaign: fig12Campaign},
		{ID: "fig14", Campaign: fig14Campaign},
		{ID: "fig16", Campaign: fig16Campaign},
		{ID: "fig18", Campaign: fig18Campaign},
		{ID: "fig19", Campaign: fig19Campaign},
		{ID: "fig20", Campaign: fig20Campaign},
		{ID: "fig21", Campaign: fig21Campaign},
		{ID: "fig22", Campaign: fig22Campaign},
		{ID: "fig23", Campaign: fig23Campaign},
		{ID: "fig24", Campaign: fig24Campaign},
		{ID: "fig25", Campaign: fig25Campaign},
	}
}

var (
	registryOnce sync.Once
	registry     map[string]Experiment
)

// Find returns the experiment with the given ID via a map-backed registry.
func Find(id string) (Experiment, bool) {
	registryOnce.Do(func() {
		all := All()
		registry = make(map[string]Experiment, len(all))
		for _, e := range all {
			registry[e.ID] = e
		}
	})
	e, ok := registry[id]
	return e, ok
}

// addErrorStats reports the standard error-sample metrics every ranging
// figure shares: sample size, robust central error, extremes, and the
// large-error population split.
func addErrorStats(r *Result, errs []float64) error {
	s, err := stats.Summarize(errs)
	if err != nil {
		return err
	}
	r.Add("measurements", float64(s.N), "")
	r.Add("median |error|", s.AbsMed, "m")
	r.Add("mean error", s.Mean, "m")
	r.Add("max |error|", math.Max(math.Abs(s.Min), math.Abs(s.Max)), "m")
	r.Add("fraction |error| > 1 m", s.Frac1m, "")
	var under, over int
	for _, e := range errs {
		if e < -1 {
			under++
		} else if e > 1 {
			over++
		}
	}
	if under+over > 0 {
		r.Add("underestimate share of large errors", float64(under)/float64(under+over), "")
	}
	return nil
}

// histogramSeries bins errs into a (bin center, count) series.
func histogramSeries(errs []float64, lo, hi float64, bins int) ([]SeriesPoint, error) {
	h, err := stats.NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.AddAll(errs)
	pts := make([]SeriesPoint, 0, bins)
	for i, c := range h.Counts {
		pts = append(pts, SeriesPoint{X: h.BinCenter(i), Y: float64(c)})
	}
	return pts, nil
}
