// Package experiments regenerates every figure of the paper's evaluation:
// the ranging figures of Section 3 (Figures 2–10 and the §3.6.2 maximum-
// range analysis) and the localization figures of Section 4 (Figures 11–25).
// Each experiment is a deterministic function of its seed and returns a
// Result that records the paper's claim next to the measured reproduction,
// so cmd/experiments and EXPERIMENTS.md can print paper-vs-measured tables.
package experiments

import (
	"fmt"
	"strings"
)

// Metric is one named measured quantity.
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// SeriesPoint is one (x, y) sample of a figure's data series.
type SeriesPoint struct {
	X, Y float64
}

// Series is a named data series (one curve of a figure).
type Series struct {
	Name   string
	Points []SeriesPoint
}

// Result is the outcome of one experiment.
type Result struct {
	ID         string // e.g. "fig06"
	Title      string
	PaperClaim string // what the paper reports, with its numbers
	Metrics    []Metric
	Series     []Series
	Notes      string
}

// Add appends a metric.
func (r *Result) Add(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Get returns the named metric's value and whether it exists.
func (r *Result) Get(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Render formats the result as an indented text block for the harness.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "  paper: %s\n", r.PaperClaim)
	for _, m := range r.Metrics {
		if m.Unit != "" {
			fmt.Fprintf(&b, "  %-42s %10.3f %s\n", m.Name, m.Value, m.Unit)
		} else {
			fmt.Fprintf(&b, "  %-42s %10.3f\n", m.Name, m.Value)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  series %s:", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " (%.3g, %.4g)", p.X, p.Y)
		}
		b.WriteString("\n")
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Notes)
	}
	return b.String()
}

// Experiment is a named, seedable reproduction of one paper figure.
type Experiment struct {
	ID  string
	Run func(seed int64) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig02", Run: Fig02BaselineRangingUrban},
		{ID: "fig04", Run: Fig04MedianFiltering},
		{ID: "fig06", Run: Fig06RefinedErrorHistogram},
		{ID: "fig07", Run: Fig07BidirectionalFilter},
		{ID: "fig08", Run: Fig08ErrorVsDistance},
		{ID: "fig10", Run: Fig10DFTToneDetection},
		{ID: "maxrange", Run: MaxRangeSweep},
		{ID: "fig11", Run: Fig11IntersectionConsistency},
		{ID: "fig12", Run: Fig12MultilatParkingLot},
		{ID: "fig14", Run: Fig14MultilatSparseGrid},
		{ID: "fig16", Run: Fig16MultilatAugmentedGrid},
		{ID: "fig18", Run: Fig18LSSGridConstrained},
		{ID: "fig19", Run: Fig19LSSGridUnconstrained},
		{ID: "fig20", Run: Fig20MultilatTown},
		{ID: "fig21", Run: Fig21LSSTownConstrained},
		{ID: "fig22", Run: Fig22LSSTownUnconstrained},
		{ID: "fig23", Run: Fig23ConvergenceCurves},
		{ID: "fig24", Run: Fig24DistributedSparse},
		{ID: "fig25", Run: Fig25DistributedExtended},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
