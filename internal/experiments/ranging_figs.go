package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/deploy"
	"resilientloc/internal/engine"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/signal"
	"resilientloc/internal/stats"
)

// urbanDeployment builds the 60-node urban evaluation layout of Section 3.3:
// nodes scattered over ~70×70 m with distances up to 30 m in play.
func urbanDeployment(rng *rand.Rand) (*deploy.Deployment, error) {
	return deploy.UniformRandom(60, 70, 70, 5, rng)
}

// grassGrid46 returns the 46-node offset-grid deployment of the grass
// campaign (Figure 5 minus the three unused positions).
func grassGrid46() *deploy.Deployment {
	d := deploy.PaperGrid()
	d.Positions = d.Positions[:46]
	d.Name = "grass-grid-46"
	return d
}

// signedErrors collects measured-minus-true errors for all directed raw
// readings.
func signedErrors(raw *measure.Raw, dep *deploy.Deployment) []float64 {
	var errs []float64
	for _, k := range raw.DirectedPairs() {
		truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
		for _, d := range raw.Readings(k[0], k[1]) {
			errs = append(errs, d-truth)
		}
	}
	return errs
}

func addErrorStats(r *Result, errs []float64) error {
	s, err := stats.Summarize(errs)
	if err != nil {
		return err
	}
	r.Add("measurements", float64(s.N), "")
	r.Add("median |error|", s.AbsMed, "m")
	r.Add("mean error", s.Mean, "m")
	r.Add("max |error|", math.Max(math.Abs(s.Min), math.Abs(s.Max)), "m")
	r.Add("fraction |error| > 1 m", s.Frac1m, "")
	var under, over int
	for _, e := range errs {
		if e < -1 {
			under++
		} else if e > 1 {
			over++
		}
	}
	if under+over > 0 {
		r.Add("underestimate share of large errors", float64(under)/float64(under+over), "")
	}
	return nil
}

// Fig02BaselineRangingUrban reproduces Figure 2: baseline acoustic ranging
// on a 60-node urban deployment, distances up to 30 m. The paper's plot
// shows many >1 m errors, predominantly underestimates from echoes and
// noise picked up before the true chirp.
func Fig02BaselineRangingUrban(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	dep, err := urbanDeployment(rng)
	if err != nil {
		return nil, err
	}
	svc, err := ranging.NewService(ranging.BaselineConfig(acoustics.Urban()), dep, rng)
	if err != nil {
		return nil, err
	}
	raw, err := svc.Campaign(1, 30)
	if err != nil {
		return nil, err
	}
	errs := signedErrors(raw, dep)
	r := &Result{
		ID:    "fig02",
		Title: "Baseline ranging errors, urban 60-node deployment (≤30 m)",
		PaperClaim: "many measurements with >1 m error; most large errors are " +
			"underestimates from echoes/noise detected before the chirp",
	}
	if err := addErrorStats(r, errs); err != nil {
		return nil, err
	}
	hist, err := histogramSeries(errs, -12, 12, 24)
	if err != nil {
		return nil, err
	}
	r.Series = append(r.Series, Series{Name: "error histogram (m, count)", Points: hist})
	return r, nil
}

// Fig04MedianFiltering reproduces Figure 4: the baseline service with median
// filtering over up to five repeated measurements per pair, which removes
// most uncorrelated large errors.
func Fig04MedianFiltering(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	dep, err := urbanDeployment(rng)
	if err != nil {
		return nil, err
	}
	svc, err := ranging.NewService(ranging.BaselineConfig(acoustics.Urban()), dep, rng)
	if err != nil {
		return nil, err
	}
	raw, err := svc.Campaign(5, 30)
	if err != nil {
		return nil, err
	}

	rawErrs := signedErrors(raw, dep)
	rawSummary, err := stats.Summarize(rawErrs)
	if err != nil {
		return nil, err
	}

	directed := raw.Filter(measure.FilterMedian, 0)
	var filtErrs []float64
	for k, d := range directed {
		truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
		filtErrs = append(filtErrs, d-truth)
	}
	filtSummary, err := stats.Summarize(filtErrs)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:         "fig04",
		Title:      "Baseline ranging with median filtering of ≤5 measurements, urban",
		PaperClaim: "median filtering visibly thins the large-error population of Figure 2",
	}
	r.Add("raw fraction |error| > 1 m", rawSummary.Frac1m, "")
	r.Add("filtered fraction |error| > 1 m", filtSummary.Frac1m, "")
	r.Add("raw median |error|", rawSummary.AbsMed, "m")
	r.Add("filtered median |error|", filtSummary.AbsMed, "m")
	if filtSummary.Frac1m > rawSummary.Frac1m {
		r.Notes = "REGRESSION: filtering increased the large-error fraction"
	}
	return r, nil
}

// grassCampaign runs the refined-service campaign of Section 3.6 and
// returns both the raw readings and the deployment.
func grassCampaign(rng *rand.Rand, rounds int) (*measure.Raw, *deploy.Deployment, error) {
	dep := grassGrid46()
	svc, err := ranging.NewService(ranging.DefaultConfig(acoustics.Grass()), dep, rng)
	if err != nil {
		return nil, nil, err
	}
	raw, err := svc.Campaign(rounds, 21)
	if err != nil {
		return nil, nil, err
	}
	return raw, dep, nil
}

// Fig06RefinedErrorHistogram reproduces Figure 6: the refined service's
// error histogram on the 46-node grass grid — a zero-mean ±30 cm core with
// rare large-magnitude outliers (paper: up to 11 m).
func Fig06RefinedErrorHistogram(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	raw, dep, err := grassCampaign(rng, 3)
	if err != nil {
		return nil, err
	}
	errs := signedErrors(raw, dep)
	r := &Result{
		ID:    "fig06",
		Title: "Refined ranging error histogram, 46-node grass grid (≤20 m)",
		PaperClaim: "approximately zero-mean bell-shaped core within ±30 cm; " +
			"several large-magnitude outliers (up to 11 m); smaller errors cluster right",
	}
	if err := addErrorStats(r, errs); err != nil {
		return nil, err
	}
	var core int
	for _, e := range errs {
		if math.Abs(e) <= 0.3 {
			core++
		}
	}
	r.Add("fraction within ±30 cm", float64(core)/float64(len(errs)), "")
	hist, err := histogramSeries(errs, -3, 3, 30)
	if err != nil {
		return nil, err
	}
	r.Series = append(r.Series, Series{Name: "error histogram (m, count)", Points: hist})
	return r, nil
}

// Fig07BidirectionalFilter reproduces Figure 7: restricting to pairs with
// consistent bidirectional measurements removes most large-magnitude
// outliers ("most of these errors are eliminated with the bidirectional
// consistency check").
func Fig07BidirectionalFilter(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	raw, dep, err := grassCampaign(rng, 3)
	if err != nil {
		return nil, err
	}
	allErrs := signedErrors(raw, dep)
	allSummary, err := stats.Summarize(allErrs)
	if err != nil {
		return nil, err
	}

	directed := raw.Filter(measure.FilterMedian, 0)
	opt := measure.DefaultMergeOptions()
	opt.RequireBidirectional = true
	set, err := measure.Merge(dep.N(), directed, opt)
	if err != nil {
		return nil, err
	}
	bidirErrs, err := set.Errors(dep)
	if err != nil {
		return nil, err
	}
	bidirSummary, err := stats.Summarize(bidirErrs)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:         "fig07",
		Title:      "Error histogram restricted to bidirectional-consistent pairs",
		PaperClaim: "the bidirectional consistency check eliminates most large-magnitude errors",
	}
	r.Add("all measurements", float64(allSummary.N), "")
	r.Add("bidirectional pairs", float64(bidirSummary.N), "")
	r.Add("all fraction |error| > 1 m", allSummary.Frac1m, "")
	r.Add("bidirectional fraction |error| > 1 m", bidirSummary.Frac1m, "")
	r.Add("all max |error|", math.Max(math.Abs(allSummary.Min), math.Abs(allSummary.Max)), "m")
	r.Add("bidirectional max |error|", math.Max(math.Abs(bidirSummary.Min), math.Abs(bidirSummary.Max)), "m")
	return r, nil
}

// Fig08ErrorVsDistance reproduces Figure 8: measured and filtered distance
// estimates versus actual distance — large-magnitude errors grow more
// frequent at longer range.
func Fig08ErrorVsDistance(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	raw, dep, err := grassCampaign(rng, 3)
	if err != nil {
		return nil, err
	}

	// Bucket raw errors by true distance (2 m bins to 20 m).
	const binW = 2.0
	type bucket struct {
		n, large int
		absSum   float64
	}
	buckets := make([]bucket, 10)
	for _, k := range raw.DirectedPairs() {
		truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
		bi := int(truth / binW)
		if bi >= len(buckets) {
			continue
		}
		for _, d := range raw.Readings(k[0], k[1]) {
			e := d - truth
			buckets[bi].n++
			buckets[bi].absSum += math.Abs(e)
			if math.Abs(e) > 0.5 {
				buckets[bi].large++
			}
		}
	}
	var fracSeries, meanAbsSeries []SeriesPoint
	for i, b := range buckets {
		if b.n == 0 {
			continue
		}
		x := (float64(i) + 0.5) * binW
		fracSeries = append(fracSeries, SeriesPoint{X: x, Y: float64(b.large) / float64(b.n)})
		meanAbsSeries = append(meanAbsSeries, SeriesPoint{X: x, Y: b.absSum / float64(b.n)})
	}

	r := &Result{
		ID:         "fig08",
		Title:      "Ranging error versus actual distance, grass grid",
		PaperClaim: "large-magnitude errors are more common at longer distances",
	}
	r.Series = append(r.Series,
		Series{Name: "fraction |error|>0.5m per 2m bin", Points: fracSeries},
		Series{Name: "mean |error| per 2m bin (m)", Points: meanAbsSeries},
	)
	if len(fracSeries) >= 2 {
		r.Add("large-error fraction, nearest bin", fracSeries[0].Y, "")
		r.Add("large-error fraction, farthest bin", fracSeries[len(fracSeries)-1].Y, "")
	}
	return r, nil
}

// Fig10DFTToneDetection reproduces Figure 10: the sliding-DFT software tone
// detector applied to a clean and a noisy four-chirp signal. The paper's
// noisy run detects three of the four chirps with no false positives.
func Fig10DFTToneDetection(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	det := signal.DefaultDFTDetector()

	count := func(noise float64) (matched, falsePos int, err error) {
		cfg := signal.DefaultSynth()
		cfg.NoiseStd = noise
		wave, err := cfg.Generate(rng)
		if err != nil {
			return 0, 0, err
		}
		hits := det.Detect(wave)
		starts := cfg.ChirpStarts()
		for _, h := range hits {
			ok := false
			for _, s := range starts {
				if h >= s-signal.SlidingDFTWindow && h <= s+cfg.ChirpLen {
					ok = true
					break
				}
			}
			if ok {
				matched++
			} else {
				falsePos++
			}
		}
		return matched, falsePos, nil
	}

	cleanHit, cleanFP, err := count(0)
	if err != nil {
		return nil, err
	}
	noisyHit, noisyFP, err := count(700)
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID:         "fig10",
		Title:      "Sliding-DFT software tone detection, clean vs noisy signal",
		PaperClaim: "noisy case: three of the four chirps are correctly detected, with no false positives",
	}
	r.Add("clean chirps detected (of 4)", float64(cleanHit), "")
	r.Add("clean false positives", float64(cleanFP), "")
	r.Add("noisy chirps detected (of 4)", float64(noisyHit), "")
	r.Add("noisy false positives", float64(noisyFP), "")
	return r, nil
}

// MaxRangeSweep reproduces the Section 3.6.2 maximum-range analysis:
// detection success rate versus distance for grass and pavement at the
// lowest and the calibrated detection thresholds. Each (environment,
// threshold) sweep runs as an engine scenario — one trial per distance
// point, executed concurrently — whose SeedFn reproduces the original
// serial seed arithmetic, so the figure's numbers are unchanged.
func MaxRangeSweep(seed int64) (*Result, error) {
	r := &Result{
		ID:    "maxrange",
		Title: "Detection success versus distance (grass vs pavement, threshold sweep)",
		PaperClaim: "grass: no detection beyond ~20 m, ~80-85% at 10 m; pavement: most chirps " +
			"to 35 m, some at 50 m, reliable ~25 m; higher thresholds cost little range",
	}
	distances := engine.DefaultMaxRangeDistances()
	const trials = 40
	// ShardSize 1 gives one worker per distance point; the figure reads
	// only TrialScalars, which are trial-indexed and shard-size
	// independent, so the output does not depend on this choice.
	runner, err := engine.NewRunner(engine.Config{Seed: seed, ShardSize: 1, KeepTrialValues: true})
	if err != nil {
		return nil, err
	}
	for _, env := range []acoustics.Environment{acoustics.Grass(), acoustics.Pavement()} {
		for _, thr := range []uint8{1, 2} {
			rep, err := runner.Run(engine.MaxRangeScenario(env, thr, distances, trials))
			if err != nil {
				return nil, err
			}
			rates := rep.TrialScalars["success_rate"]
			pts := make([]SeriesPoint, len(distances))
			for i, d := range distances {
				pts[i] = SeriesPoint{X: d, Y: rates[i]}
			}
			r.Series = append(r.Series, Series{
				Name:   fmt.Sprintf("%s T=%d success rate", env.Name, thr),
				Points: pts,
			})
		}
	}
	// Headline metrics: success at the paper's reliability anchors.
	for _, s := range r.Series {
		for _, p := range s.Points {
			switch {
			case s.Name == "grass T=2 success rate" && p.X == 10:
				r.Add("grass @10m (T=2)", p.Y, "")
			case s.Name == "grass T=2 success rate" && p.X == 25:
				r.Add("grass @25m (T=2)", p.Y, "")
			case s.Name == "pavement T=2 success rate" && p.X == 25:
				r.Add("pavement @25m (T=2)", p.Y, "")
			case s.Name == "pavement T=1 success rate" && p.X == 50:
				r.Add("pavement @50m (T=1)", p.Y, "")
			}
		}
	}
	return r, nil
}

// histogramSeries bins errs into a (bin center, count) series.
func histogramSeries(errs []float64, lo, hi float64, bins int) ([]SeriesPoint, error) {
	h, err := stats.NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.AddAll(errs)
	pts := make([]SeriesPoint, 0, bins)
	for i, c := range h.Counts {
		pts = append(pts, SeriesPoint{X: h.BinCenter(i), Y: float64(c)})
	}
	return pts, nil
}
