package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/deploy"
	"resilientloc/internal/engine"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/signal"
	"resilientloc/internal/stats"
)

// runFigure executes a campaign builder through the engine with default
// parallelism; the per-figure exported functions below are thin wrappers
// over their campaigns.
func runFigure(build func(int64) engine.Campaign[*Result], seed int64) (*Result, error) {
	return Experiment{Campaign: build}.Run(seed)
}

// urbanDeployment builds the 60-node urban evaluation layout of Section 3.3:
// nodes scattered over ~70×70 m with distances up to 30 m in play.
func urbanDeployment(rng *rand.Rand) (*deploy.Deployment, error) {
	return deploy.UniformRandom(60, 70, 70, 5, rng)
}

// grassGrid46 returns the 46-node offset-grid deployment of the grass
// campaign (Figure 5 minus the three unused positions).
func grassGrid46() *deploy.Deployment {
	d := deploy.PaperGrid()
	d.Positions = d.Positions[:46]
	d.Name = "grass-grid-46"
	return d
}

// Fig02BaselineRangingUrban reproduces Figure 2: baseline acoustic ranging
// on a 60-node urban deployment, distances up to 30 m. The paper's plot
// shows many >1 m errors, predominantly underestimates from echoes and
// noise picked up before the true chirp.
func Fig02BaselineRangingUrban(seed int64) (*Result, error) {
	return runFigure(fig02Campaign, seed)
}

func fig02Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig02", func(t *engine.T) (*Result, error) {
		dep, err := urbanDeployment(t.RNG)
		if err != nil {
			return nil, err
		}
		svc, err := ranging.NewService(ranging.BaselineConfig(acoustics.Urban()), dep, t.RNG)
		if err != nil {
			return nil, err
		}
		raw, err := svc.Campaign(1, 30)
		if err != nil {
			return nil, err
		}
		errs := raw.SignedErrors(dep)
		r := &Result{
			ID:    "fig02",
			Title: "Baseline ranging errors, urban 60-node deployment (≤30 m)",
			PaperClaim: "many measurements with >1 m error; most large errors are " +
				"underestimates from echoes/noise detected before the chirp",
		}
		if err := addErrorStats(r, errs); err != nil {
			return nil, err
		}
		hist, err := histogramSeries(errs, -12, 12, 24)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, Series{Name: "error histogram (m, count)", Points: hist})
		return r, nil
	})
}

// Fig04MedianFiltering reproduces Figure 4: the baseline service with median
// filtering over up to five repeated measurements per pair, which removes
// most uncorrelated large errors.
func Fig04MedianFiltering(seed int64) (*Result, error) {
	return runFigure(fig04Campaign, seed)
}

func fig04Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig04", func(t *engine.T) (*Result, error) {
		dep, err := urbanDeployment(t.RNG)
		if err != nil {
			return nil, err
		}
		svc, err := ranging.NewService(ranging.BaselineConfig(acoustics.Urban()), dep, t.RNG)
		if err != nil {
			return nil, err
		}
		raw, err := svc.Campaign(5, 30)
		if err != nil {
			return nil, err
		}

		rawErrs := raw.SignedErrors(dep)
		rawSummary, err := stats.Summarize(rawErrs)
		if err != nil {
			return nil, err
		}

		directed := raw.Filter(measure.FilterMedian, 0)
		var filtErrs []float64
		for k, d := range directed {
			truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
			filtErrs = append(filtErrs, d-truth)
		}
		filtSummary, err := stats.Summarize(filtErrs)
		if err != nil {
			return nil, err
		}

		r := &Result{
			ID:         "fig04",
			Title:      "Baseline ranging with median filtering of ≤5 measurements, urban",
			PaperClaim: "median filtering visibly thins the large-error population of Figure 2",
		}
		r.Add("raw fraction |error| > 1 m", rawSummary.Frac1m, "")
		r.Add("filtered fraction |error| > 1 m", filtSummary.Frac1m, "")
		r.Add("raw median |error|", rawSummary.AbsMed, "m")
		r.Add("filtered median |error|", filtSummary.AbsMed, "m")
		if filtSummary.Frac1m > rawSummary.Frac1m {
			r.Notes = "REGRESSION: filtering increased the large-error fraction"
		}
		return r, nil
	})
}

// grassCampaign runs the refined-service campaign of Section 3.6 and
// returns both the raw readings and the deployment.
func grassCampaign(rng *rand.Rand, rounds int) (*measure.Raw, *deploy.Deployment, error) {
	dep := grassGrid46()
	svc, err := ranging.NewService(ranging.DefaultConfig(acoustics.Grass()), dep, rng)
	if err != nil {
		return nil, nil, err
	}
	raw, err := svc.Campaign(rounds, 21)
	if err != nil {
		return nil, nil, err
	}
	return raw, dep, nil
}

// Fig06RefinedErrorHistogram reproduces Figure 6: the refined service's
// error histogram on the 46-node grass grid — a zero-mean ±30 cm core with
// rare large-magnitude outliers (paper: up to 11 m).
func Fig06RefinedErrorHistogram(seed int64) (*Result, error) {
	return runFigure(fig06Campaign, seed)
}

func fig06Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig06", func(t *engine.T) (*Result, error) {
		raw, dep, err := grassCampaign(t.RNG, 3)
		if err != nil {
			return nil, err
		}
		errs := raw.SignedErrors(dep)
		r := &Result{
			ID:    "fig06",
			Title: "Refined ranging error histogram, 46-node grass grid (≤20 m)",
			PaperClaim: "approximately zero-mean bell-shaped core within ±30 cm; " +
				"several large-magnitude outliers (up to 11 m); smaller errors cluster right",
		}
		if err := addErrorStats(r, errs); err != nil {
			return nil, err
		}
		var core int
		for _, e := range errs {
			if math.Abs(e) <= 0.3 {
				core++
			}
		}
		r.Add("fraction within ±30 cm", float64(core)/float64(len(errs)), "")
		hist, err := histogramSeries(errs, -3, 3, 30)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, Series{Name: "error histogram (m, count)", Points: hist})
		return r, nil
	})
}

// Fig07BidirectionalFilter reproduces Figure 7: restricting to pairs with
// consistent bidirectional measurements removes most large-magnitude
// outliers ("most of these errors are eliminated with the bidirectional
// consistency check").
func Fig07BidirectionalFilter(seed int64) (*Result, error) {
	return runFigure(fig07Campaign, seed)
}

func fig07Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig07", func(t *engine.T) (*Result, error) {
		raw, dep, err := grassCampaign(t.RNG, 3)
		if err != nil {
			return nil, err
		}
		allErrs := raw.SignedErrors(dep)
		allSummary, err := stats.Summarize(allErrs)
		if err != nil {
			return nil, err
		}

		directed := raw.Filter(measure.FilterMedian, 0)
		opt := measure.DefaultMergeOptions()
		opt.RequireBidirectional = true
		set, err := measure.Merge(dep.N(), directed, opt)
		if err != nil {
			return nil, err
		}
		bidirErrs, err := set.Errors(dep)
		if err != nil {
			return nil, err
		}
		bidirSummary, err := stats.Summarize(bidirErrs)
		if err != nil {
			return nil, err
		}

		r := &Result{
			ID:         "fig07",
			Title:      "Error histogram restricted to bidirectional-consistent pairs",
			PaperClaim: "the bidirectional consistency check eliminates most large-magnitude errors",
		}
		r.Add("all measurements", float64(allSummary.N), "")
		r.Add("bidirectional pairs", float64(bidirSummary.N), "")
		r.Add("all fraction |error| > 1 m", allSummary.Frac1m, "")
		r.Add("bidirectional fraction |error| > 1 m", bidirSummary.Frac1m, "")
		r.Add("all max |error|", math.Max(math.Abs(allSummary.Min), math.Abs(allSummary.Max)), "m")
		r.Add("bidirectional max |error|", math.Max(math.Abs(bidirSummary.Min), math.Abs(bidirSummary.Max)), "m")
		return r, nil
	})
}

// Fig08ErrorVsDistance reproduces Figure 8: measured and filtered distance
// estimates versus actual distance — large-magnitude errors grow more
// frequent at longer range.
func Fig08ErrorVsDistance(seed int64) (*Result, error) {
	return runFigure(fig08Campaign, seed)
}

func fig08Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig08", func(t *engine.T) (*Result, error) {
		raw, dep, err := grassCampaign(t.RNG, 3)
		if err != nil {
			return nil, err
		}

		// Bucket raw errors by true distance (2 m bins to 20 m).
		const binW = 2.0
		type bucket struct {
			n, large int
			absSum   float64
		}
		buckets := make([]bucket, 10)
		for _, k := range raw.DirectedPairs() {
			truth := dep.Positions[k[0]].Dist(dep.Positions[k[1]])
			bi := int(truth / binW)
			if bi >= len(buckets) {
				continue
			}
			for _, d := range raw.Readings(k[0], k[1]) {
				e := d - truth
				buckets[bi].n++
				buckets[bi].absSum += math.Abs(e)
				if math.Abs(e) > 0.5 {
					buckets[bi].large++
				}
			}
		}
		var fracSeries, meanAbsSeries []SeriesPoint
		for i, b := range buckets {
			if b.n == 0 {
				continue
			}
			x := (float64(i) + 0.5) * binW
			fracSeries = append(fracSeries, SeriesPoint{X: x, Y: float64(b.large) / float64(b.n)})
			meanAbsSeries = append(meanAbsSeries, SeriesPoint{X: x, Y: b.absSum / float64(b.n)})
		}

		r := &Result{
			ID:         "fig08",
			Title:      "Ranging error versus actual distance, grass grid",
			PaperClaim: "large-magnitude errors are more common at longer distances",
		}
		r.Series = append(r.Series,
			Series{Name: "fraction |error|>0.5m per 2m bin", Points: fracSeries},
			Series{Name: "mean |error| per 2m bin (m)", Points: meanAbsSeries},
		)
		if len(fracSeries) >= 2 {
			r.Add("large-error fraction, nearest bin", fracSeries[0].Y, "")
			r.Add("large-error fraction, farthest bin", fracSeries[len(fracSeries)-1].Y, "")
		}
		return r, nil
	})
}

// Fig10DFTToneDetection reproduces Figure 10: the sliding-DFT software tone
// detector applied to a clean and a noisy four-chirp signal. The paper's
// noisy run detects three of the four chirps with no false positives.
func Fig10DFTToneDetection(seed int64) (*Result, error) {
	return runFigure(fig10Campaign, seed)
}

func fig10Campaign(seed int64) engine.Campaign[*Result] {
	c := singleTrial("fig10", func(t *engine.T) (*Result, error) {
		det := signal.DefaultDFTDetector()

		count := func(noise float64) (matched, falsePos int, err error) {
			cfg := signal.DefaultSynth()
			cfg.NoiseStd = noise
			wave, err := synthWave(t, cfg)
			if err != nil {
				return 0, 0, err
			}
			hits := det.DetectIn(t.Scratch(), wave)
			starts := cfg.ChirpStarts()
			for _, h := range hits {
				ok := false
				for _, s := range starts {
					if h >= s-signal.SlidingDFTWindow && h <= s+cfg.ChirpLen {
						ok = true
						break
					}
				}
				if ok {
					matched++
				} else {
					falsePos++
				}
			}
			return matched, falsePos, nil
		}

		cleanHit, cleanFP, err := count(0)
		if err != nil {
			return nil, err
		}
		noisyHit, noisyFP, err := count(700)
		if err != nil {
			return nil, err
		}

		r := &Result{
			ID:         "fig10",
			Title:      "Sliding-DFT software tone detection, clean vs noisy signal",
			PaperClaim: "noisy case: three of the four chirps are correctly detected, with no false positives",
		}
		r.Add("clean chirps detected (of 4)", float64(cleanHit), "")
		r.Add("clean false positives", float64(cleanFP), "")
		r.Add("noisy chirps detected (of 4)", float64(noisyHit), "")
		r.Add("noisy false positives", float64(noisyFP), "")
		return r, nil
	})
	// The chirp template depends only on the synth layout — not the noise
	// level or trial RNG — so it is precomputed once per shard.
	c.Scenario.ShardInit = func() any {
		tmpl, err := signal.DefaultSynth().Template()
		if err != nil {
			return nil
		}
		return tmpl
	}
	return c
}

// synthWave synthesizes one waveform for a trial, reusing the shard's
// precomputed chirp template and the trial arena when available and falling
// back to plain Generate otherwise. Both paths consume the RNG identically
// and produce bit-identical samples.
func synthWave(t *engine.T, cfg signal.SynthConfig) ([]float64, error) {
	tmpl, _ := t.ShardData.([]float64)
	if tmpl == nil || len(tmpl) != cfg.TotalLen() {
		return cfg.Generate(t.RNG)
	}
	wave := t.Scratch().Float64s(cfg.TotalLen())
	if err := cfg.GenerateInto(wave, tmpl, t.RNG); err != nil {
		return nil, err
	}
	return wave, nil
}

// maxRangeSweepRounds is the number of measurement attempts per sweep point.
const maxRangeSweepRounds = 40

// MaxRangeSweep reproduces the Section 3.6.2 maximum-range analysis:
// detection success rate versus distance for grass and pavement at the
// lowest and the calibrated detection thresholds.
func MaxRangeSweep(seed int64) (*Result, error) {
	return runFigure(maxRangeCampaign, seed)
}

// maxRangeCampaign expresses the whole sweep as ONE campaign: trial t
// measures sweep point (environment t/18, threshold 1+(t/9)%2, distance
// t%9), so all 36 points run concurrently on the engine. The SeedFn
// reproduces the original serial experiment's per-point arithmetic
// (seed + 7·distance + threshold — note it never included the environment),
// so the figure's numbers are unchanged.
func maxRangeCampaign(seed int64) engine.Campaign[*Result] {
	return maxRangeCampaignRounds(seed, maxRangeSweepRounds)
}

// maxRangeCampaignRounds is maxRangeCampaign with the per-point attempt
// count as a parameter — the experiment's one swept axis beyond the seed
// (spec params select it via "rounds"; the default reproduces the paper
// figure byte-for-byte).
func maxRangeCampaignRounds(seed int64, rounds int) engine.Campaign[*Result] {
	distances := engine.DefaultMaxRangeDistances()
	envs := []acoustics.Environment{acoustics.Grass(), acoustics.Pavement()}
	thresholds := []uint8{1, 2}
	nTrials := len(envs) * len(thresholds) * len(distances)
	point := func(trial int) (acoustics.Environment, uint8, float64) {
		block := trial / len(distances)
		return envs[block/len(thresholds)], thresholds[block%len(thresholds)], distances[trial%len(distances)]
	}
	return engine.Campaign[*Result]{
		Scenario: engine.Scenario{
			Name:      "maxrange",
			Trials:    nTrials,
			MaxTrials: nTrials,
			SeedFn: func(s int64, trial int) int64 {
				_, thr, d := point(trial)
				return s + int64(d*7) + int64(thr)
			},
			Run: func(t *engine.T) error {
				env, thr, d := point(t.Trial)
				rate, err := engine.MaxRangePoint(env, thr, d, rounds, t.RNG)
				if err != nil {
					return err
				}
				t.Record("distance_m", d)
				t.Record("success_rate", rate)
				return nil
			},
		},
		// One trial per sweep point gets its own worker; the figure reads
		// only TrialScalars, which are shard-size independent. Trial indices
		// encode sweep points, so the count is structural.
		ShardSize:       1,
		KeepTrialValues: true,
		FixedTrials:     true,
		Finalize: func(rep *engine.Report) (*Result, error) {
			r := &Result{
				ID:    "maxrange",
				Title: "Detection success versus distance (grass vs pavement, threshold sweep)",
				PaperClaim: "grass: no detection beyond ~20 m, ~80-85% at 10 m; pavement: most chirps " +
					"to 35 m, some at 50 m, reliable ~25 m; higher thresholds cost little range",
			}
			rates := rep.TrialScalars["success_rate"]
			for block := 0; block*len(distances) < nTrials; block++ {
				env, thr, _ := point(block * len(distances))
				pts := make([]SeriesPoint, len(distances))
				for i, d := range distances {
					pts[i] = SeriesPoint{X: d, Y: rates[block*len(distances)+i]}
				}
				r.Series = append(r.Series, Series{
					Name:   fmt.Sprintf("%s T=%d success rate", env.Name, thr),
					Points: pts,
				})
			}
			// Headline metrics: success at the paper's reliability anchors.
			for _, s := range r.Series {
				for _, p := range s.Points {
					switch {
					case s.Name == "grass T=2 success rate" && p.X == 10:
						r.Add("grass @10m (T=2)", p.Y, "")
					case s.Name == "grass T=2 success rate" && p.X == 25:
						r.Add("grass @25m (T=2)", p.Y, "")
					case s.Name == "pavement T=2 success rate" && p.X == 25:
						r.Add("pavement @25m (T=2)", p.Y, "")
					case s.Name == "pavement T=1 success rate" && p.X == 50:
						r.Add("pavement @50m (T=1)", p.Y, "")
					}
				}
			}
			return r, nil
		},
	}
}
