package experiments

import (
	"math/rand"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/engine"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/scratch"
	"resilientloc/internal/stats"
)

// gridFieldSet generates the paper's grass-grid field measurement set by
// running the full ranging simulation: 46 nodes, refined service, 3 rounds,
// median filtering, bidirectional-tolerant merge. The merged set is then
// sparsified to 124 undirected pairs: the paper reports "only 247 total
// distance measurements between pairs ... for the 47 nodes", i.e. directed
// readings, ≈124 undirected pairs (that density also matches its reported
// 1.47 anchors per node) — our simulated channel yields roughly twice the
// paper's field success rate, so we subsample to the paper's density.
func gridFieldSet(seed int64) (*measure.Set, *deploy.Deployment, error) {
	rng := rand.New(rand.NewSource(seed))
	dep := grassGrid46()
	svc, err := ranging.NewService(ranging.DefaultConfig(acoustics.Grass()), dep, rng)
	if err != nil {
		return nil, nil, err
	}
	set, err := svc.CampaignSet(3, 21, measure.FilterMedian, measure.DefaultMergeOptions())
	if err != nil {
		return nil, nil, err
	}
	measure.Sparsify(set, 124, rng)
	return set, dep, nil
}

// gridAnchors picks the paper's 13 random anchors from the grid.
func gridAnchors(dep *deploy.Deployment, seed int64) (map[int]geom.Point, error) {
	rng := rand.New(rand.NewSource(seed))
	if err := dep.ChooseRandomAnchors(13, rng); err != nil {
		return nil, err
	}
	anchors := make(map[int]geom.Point, len(dep.Anchors))
	for _, a := range dep.Anchors {
		anchors[a] = dep.Positions[a]
	}
	return anchors, nil
}

// Fig11IntersectionConsistency reproduces Figure 11: a constructed scenario
// where one anchor is nearly collinear with another relative to the node
// being localized, so small distance errors displace its intersection
// points far from the true cluster and the consistency check drops it.
func Fig11IntersectionConsistency(seed int64) (*Result, error) {
	return runFigure(fig11Campaign, seed)
}

func fig11Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig11", func(t *engine.T) (*Result, error) {
		rng := t.RNG
		truth := geom.Pt(10, 9)
		anchorPos := []geom.Point{
			geom.Pt(0, 0), geom.Pt(21, 2), geom.Pt(3, 20), geom.Pt(19, 17),
			geom.Pt(45, 41), // the rogue: nearly collinear with the node
		}
		const rogueIdx = 4
		node := len(anchorPos)
		set, err := measure.NewSet(len(anchorPos) + 1)
		if err != nil {
			return nil, err
		}
		anchors := make(map[int]geom.Point, len(anchorPos))
		for i, a := range anchorPos {
			anchors[i] = a
			d := truth.Dist(a) + rng.NormFloat64()*0.2
			if i == rogueIdx {
				d = truth.Dist(a) + 9 // gross overestimate on the rogue anchor
			}
			if err := set.Add(node, i, d, 1); err != nil {
				return nil, err
			}
		}

		withCheck := core.DefaultMultilatConfig()
		noCheck := core.DefaultMultilatConfig()
		noCheck.ConsistencyRadius = 0

		resNo, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, noCheck)
		if err != nil {
			return nil, err
		}
		resYes, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, withCheck)
		if err != nil {
			return nil, err
		}

		r := &Result{
			ID:         "fig11",
			Title:      "Intersection consistency check versus a bad near-collinear anchor",
			PaperClaim: "the anchor with no intersection points near the cluster is discarded",
		}
		pNo, okNo := resNo.Positions[node]
		pYes, okYes := resYes.Positions[node]
		if okNo {
			r.Add("error without consistency check", pNo.Dist(truth), "m")
		}
		if okYes {
			r.Add("error with consistency check", pYes.Dist(truth), "m")
		}
		if okNo && okYes && pYes.Dist(truth) > pNo.Dist(truth) {
			r.Notes = "REGRESSION: the consistency check did not improve the fix"
		}
		return r, nil
	})
}

// Fig12MultilatParkingLot reproduces Figure 12: 15 nodes (5 loudspeaker
// anchors) in a 25×25 m parking lot, one-way measurements, median filter.
// Paper: average localization error 0.868 m.
func Fig12MultilatParkingLot(seed int64) (*Result, error) {
	return runFigure(fig12Campaign, seed)
}

func fig12Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig12", func(t *engine.T) (*Result, error) {
		rng := t.RNG
		dep := deploy.ParkingLot()
		cfg := ranging.DefaultConfig(acoustics.Pavement())
		// The parking-lot experiment predates the chirp pattern ("This
		// experiment was performed before we had incorporated the sound pattern
		// into the ranging service. As a result, individual range measurements
		// carried larger error magnitudes."): use a short pattern and extra
		// device jitter.
		cfg.Pattern.Chirps = 5
		cfg.Pattern.RandomDelay = 0
		cfg.DeviceJitterStd = 0.55
		cfg.CalibrationBias = 0.15 // pre-calibration constant offset (§3.6)
		svc, err := ranging.NewService(cfg, dep, rng)
		if err != nil {
			return nil, err
		}
		// One-way: only anchors have loudspeakers; measure anchor → node and
		// record under the node so multilateration can use it.
		raw, err := measure.NewRaw(dep.N())
		if err != nil {
			return nil, err
		}
		for round := 0; round < 5; round++ {
			for _, a := range dep.Anchors {
				for _, i := range dep.NonAnchors() {
					if d, ok := svc.MeasurePair(a, i); ok {
						if err := raw.Add(a, i, d); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		directed := raw.Filter(measure.FilterMedian, 0)
		set, err := measure.Merge(dep.N(), directed, measure.DefaultMergeOptions())
		if err != nil {
			return nil, err
		}
		anchors := make(map[int]geom.Point)
		for _, a := range dep.Anchors {
			anchors[a] = dep.Positions[a]
		}
		res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, core.DefaultMultilatConfig())
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig12",
			Title:      "Multilateration, 15 nodes (5 anchors), 25×25 m parking lot",
			PaperClaim: "average localization error 0.868 m",
		}
		r.Add("non-anchors localized", float64(len(res.Localized)), "")
		r.Add("of non-anchors", float64(len(dep.NonAnchors())), "")
		if len(res.Localized) > 0 {
			avg, worst, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
			if err != nil {
				return nil, err
			}
			r.Add("average localization error", avg, "m")
			r.Add("worst localization error", worst, "m")
		}
		return r, nil
	})
}

// Fig14MultilatSparseGrid reproduces Figures 13/14: multilateration on the
// sparse grass-grid field measurements with 13 random anchors. Paper: only
// 7 of 33 non-anchors localized (20%), 1.47 anchors per node, 0.653 m
// average error for those localized.
func Fig14MultilatSparseGrid(seed int64) (*Result, error) {
	return runFigure(fig14Campaign, seed)
}

func fig14Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig14", func(t *engine.T) (*Result, error) {
		set, dep, err := gridFieldSet(seed)
		if err != nil {
			return nil, err
		}
		anchors, err := gridAnchors(dep, seed+1)
		if err != nil {
			return nil, err
		}
		res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, core.DefaultMultilatConfig())
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:    "fig14",
			Title: "Multilateration on sparse grid field measurements, 13 anchors",
			PaperClaim: "only 7 of 33 non-anchors localized (20%); 1.47 anchors per node; " +
				"0.653 m average error for the localized nodes",
		}
		r.Add("measured pairs", float64(set.Len()), "")
		r.Add("anchors per node", res.AvgAnchorsPerNode, "")
		nonAnchors := float64(dep.N() - len(anchors))
		r.Add("localized fraction", float64(len(res.Localized))/nonAnchors, "")
		if len(res.Localized) > 0 {
			avg, _, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
			if err != nil {
				return nil, err
			}
			r.Add("average error of localized", avg, "m")
		}
		return r, nil
	})
}

// Fig16MultilatAugmentedGrid reproduces Figures 15/16: the same sparse set
// augmented with simulated distances (N(0, 0.33 m), 22 m cutoff), which
// raises anchor availability to 3.84 per node and localizes ~80% of nodes.
// Paper: 3.524 m average error, dominated by three badly localized nodes
// (0.9 m without them).
func Fig16MultilatAugmentedGrid(seed int64) (*Result, error) {
	return runFigure(fig16Campaign, seed)
}

func fig16Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig16", func(t *engine.T) (*Result, error) {
		set, dep, err := gridFieldSet(seed)
		if err != nil {
			return nil, err
		}
		anchors, err := gridAnchors(dep, seed+1)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 2))
		added, err := measure.Augment(set, dep, 22, measure.GaussianNoise, 1<<30, rng)
		if err != nil {
			return nil, err
		}
		// The paper omitted the intersection consistency check in this
		// simulation (its footnote 5).
		cfg := core.DefaultMultilatConfig()
		cfg.ConsistencyRadius = 0
		res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, cfg)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:    "fig16",
			Title: "Multilateration with simulated-distance augmentation",
			PaperClaim: "~80% of nodes localized; 3.84 anchors per node; 3.524 m average " +
				"(0.9 m without the three worst nodes)",
		}
		r.Add("simulated distances added", float64(added), "")
		r.Add("anchors per node", res.AvgAnchorsPerNode, "")
		nonAnchors := float64(dep.N() - len(anchors))
		r.Add("localized fraction", float64(len(res.Localized))/nonAnchors, "")
		if len(res.Localized) > 2 {
			avg, worst, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
			if err != nil {
				return nil, err
			}
			r.Add("average error of localized", avg, "m")
			r.Add("worst error", worst, "m")
			var errs []float64
			for i, p := range res.Positions {
				errs = append(errs, p.Dist(dep.Positions[i]))
			}
			trimmed, err := eval.TrimmedAvg(errs, 3)
			if err != nil {
				return nil, err
			}
			r.Add("average without worst 3", trimmed, "m")
		}
		return r, nil
	})
}

// lssGridExperiment runs centralized LSS on the grass-grid field set with
// the given dmin, using paper-faithful random seeding.
func lssGridExperiment(ws *scratch.Arena, seed int64, dmin float64) (*eval.Alignment, *core.LSSResult, *measure.Set, error) {
	set, dep, err := gridFieldSet(seed)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultLSSConfig(dmin)
	cfg.SeedMDSMap = false
	// The paper ran this minimization for hours; give the random-seeded
	// solver a correspondingly generous restart budget (~10 s of compute).
	// Note the 124-pair field graph is typically *disconnected*: classical
	// MDS cannot even start, and only the soft constraint ties the
	// components into a coherent layout.
	cfg.Restarts = 150
	cfg.MaxIters = 6000
	res, err := core.SolveLSSIn(ws, set, cfg, rand.New(rand.NewSource(seed+10)))
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, res, set, nil
}

// Fig18LSSGridConstrained reproduces Figures 17/18: centralized LSS with the
// 9.14 m minimum-spacing soft constraint (wij=1, wD=10) on the grass-grid
// field measurements. Paper: 2.229 m average error (1.5 m without the worst
// five nodes).
func Fig18LSSGridConstrained(seed int64) (*Result, error) {
	return runFigure(fig18Campaign, seed)
}

func fig18Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig18", func(t *engine.T) (*Result, error) {
		a, res, set, err := lssGridExperiment(t.Scratch(), seed, 9.14)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig18",
			Title:      "Centralized LSS with minimum-spacing soft constraint, grass grid",
			PaperClaim: "average localization error 2.229 m; 1.5 m without the largest five errors",
		}
		r.Add("measured pairs", float64(set.Len()), "")
		r.Add("average error", a.AvgError, "m")
		trimmed, err := eval.TrimmedAvg(a.Errors, 5)
		if err != nil {
			return nil, err
		}
		r.Add("average without worst 5", trimmed, "m")
		r.Add("final objective E", res.Error, "")
		return r, nil
	})
}

// Fig19LSSGridUnconstrained reproduces Figure 19: the same run without the
// soft constraint fails to converge anywhere near the actual positions.
// Paper: 16.609 m average error after a full day of minimization.
func Fig19LSSGridUnconstrained(seed int64) (*Result, error) {
	return runFigure(fig19Campaign, seed)
}

func fig19Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig19", func(t *engine.T) (*Result, error) {
		a, res, _, err := lssGridExperiment(t.Scratch(), seed, 0)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig19",
			Title:      "Centralized LSS without the soft constraint, grass grid",
			PaperClaim: "fails to converge: 16.609 m average error after a full day",
		}
		r.Add("average error", a.AvgError, "m")
		r.Add("final objective E", res.Error, "")
		return r, nil
	})
}

// townScenario builds the Figures 20–22 random-deployment simulation: the
// 59-position town map, 18 anchors, pairs within 22 m perturbed by
// N(0, 0.33 m).
func townScenario(seed int64) (*deploy.Deployment, *measure.Set, error) {
	rng := rand.New(rand.NewSource(seed))
	dep := deploy.Town(rng)
	set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
	if err != nil {
		return nil, nil, err
	}
	return dep, set, nil
}

// Fig20MultilatTown reproduces Figure 20: multilateration on the town
// scenario with 18 anchors. Paper: 35 nodes localized, 0.950 m average.
func Fig20MultilatTown(seed int64) (*Result, error) {
	return runFigure(fig20Campaign, seed)
}

func fig20Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig20", func(t *engine.T) (*Result, error) {
		dep, set, err := townScenario(seed)
		if err != nil {
			return nil, err
		}
		anchors := make(map[int]geom.Point)
		for _, a := range dep.Anchors {
			anchors[a] = dep.Positions[a]
		}
		// Footnote 5: intersection consistency checking omitted here.
		cfg := core.DefaultMultilatConfig()
		cfg.ConsistencyRadius = 0
		res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, cfg)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig20",
			Title:      "Multilateration on the town scenario (59 nodes, 18 anchors)",
			PaperClaim: "35 nodes localized with 0.950 m average error",
		}
		r.Add("pairs within 22 m", float64(set.Len()), "")
		r.Add("non-anchors localized", float64(len(res.Localized)), "")
		r.Add("of non-anchors", float64(len(dep.NonAnchors())), "")
		if len(res.Localized) > 0 {
			avg, _, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
			if err != nil {
				return nil, err
			}
			r.Add("average error of localized", avg, "m")
		}
		return r, nil
	})
}

// townDescent runs one independent single fixed-step descent (the paper's
// Eq. (1) optimizer, no restarts) on the town scenario, returning the
// descent's average localization error and its objective history padded to
// maxIters+1 points (an early-converged history is extended with its final
// value so pointwise ensemble means are defined at every iteration). The
// trial's RNG carries the paper-faithful seed·1000+k per-descent seeding via
// the campaign's SeedFn, so results are bit-identical to the former serial
// ensembles.
func townDescent(t *engine.T, seed int64, dmin float64, maxIters int) (float64, []float64, error) {
	dep, set, err := townScenario(seed)
	if err != nil {
		return 0, nil, err
	}
	cfg := core.DefaultLSSConfig(dmin)
	cfg.Mode = core.StepFixed
	cfg.Step = 0.002
	cfg.Restarts = 0
	cfg.MaxIters = maxIters
	cfg.SeedMDSMap = false
	// Compact initialization, matching the paper's Figure 23 starting
	// objective: the constraint then acts as an unfolding force.
	cfg.InitSpread = 20
	res, err := core.SolveLSSIn(t.Scratch(), set, cfg, t.RNG)
	if err != nil {
		return 0, nil, err
	}
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		return 0, nil, err
	}
	h := res.History
	padded := make([]float64, maxIters+1)
	for i := range padded {
		v := h[len(h)-1]
		if i < len(h) {
			v = h[i]
		}
		padded[i] = v
	}
	return a.AvgError, padded, nil
}

// townFullSolver runs the library's full adaptive solver (with restarts) on
// the town scenario.
func townFullSolver(ws *scratch.Arena, seed int64, dmin float64) (*eval.Alignment, *core.LSSResult, error) {
	dep, set, err := townScenario(seed)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultLSSConfig(dmin)
	res, err := core.SolveLSSIn(ws, set, cfg, rand.New(rand.NewSource(seed+20)))
	if err != nil {
		return nil, nil, err
	}
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		return nil, nil, err
	}
	return a, res, nil
}

// descentSeedFn is the ensemble figures' per-descent seeding: descents keep
// the original serial loops' seed·1000+k arithmetic, with k the descent's
// index within its ensemble of `perGroup` descents.
func descentSeedFn(perGroup int) func(seed int64, trial int) int64 {
	return func(seed int64, trial int) int64 {
		return seed*1000 + int64(trial%perGroup)
	}
}

// Fig21LSSTownConstrained reproduces Figure 21: centralized LSS with the
// 9 m constraint on the town scenario, no anchors used. Paper: all nodes
// localized, 0.548 m average error.
func Fig21LSSTownConstrained(seed int64) (*Result, error) {
	return runFigure(fig21Campaign, seed)
}

func fig21Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig21", func(t *engine.T) (*Result, error) {
		a, res, err := townFullSolver(t.Scratch(), seed, 9)
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig21",
			Title:      "Centralized LSS with constraint on the town scenario (no anchors)",
			PaperClaim: "all nodes localized with 0.548 m average error",
		}
		r.Add("average error", a.AvgError, "m")
		r.Add("max error", a.MaxError, "m")
		r.Add("final objective E", res.Error, "")
		return r, nil
	})
}

// Fig22LSSTownUnconstrained examines Figure 22: without the constraint the
// paper's minimization left most nodes mislocalized (13.606 m average).
// That failure is an optimizer artifact on this *dense* scenario: our full
// restart solver converges either way, so we report both the full-solver
// result (a documented deviation) and the paper-equivalent statistic — the
// mean error of independent single fixed-step descents, where the
// unconstrained objective routinely strands descents in folds.
func Fig22LSSTownUnconstrained(seed int64) (*Result, error) {
	return runFigure(fig22Campaign, seed)
}

// fig22Campaign is one campaign over 17 concurrent trials: descents 0–7 run
// constrained (dmin 9 m), descents 8–15 unconstrained, and trial 16 is the
// full restart solver (which seeds its own generator, seed+20, exactly as
// the serial code did).
func fig22Campaign(seed int64) engine.Campaign[*Result] {
	const nDescents, iters = 8, 6000
	const nTrials = 2*nDescents + 1
	return engine.Campaign[*Result]{
		Scenario: engine.Scenario{
			Name:      "fig22",
			Trials:    nTrials,
			MaxTrials: nTrials,
			SeedFn:    descentSeedFn(nDescents),
			Run: func(t *engine.T) error {
				switch {
				case t.Trial < nDescents: // constrained descent
					avg, _, err := townDescent(t, seed, 9, iters)
					if err != nil {
						return err
					}
					t.Record("avg_error_m", avg)
				case t.Trial < 2*nDescents: // unconstrained descent
					avg, _, err := townDescent(t, seed, 0, iters)
					if err != nil {
						return err
					}
					t.Record("avg_error_m", avg)
				default: // full restart solver
					aFull, _, err := townFullSolver(t.Scratch(), seed, 0)
					if err != nil {
						return err
					}
					t.Record("full_avg_error_m", aFull.AvgError)
				}
				return nil
			},
		},
		// One descent per worker; the figure reads only TrialScalars, which
		// are shard-size independent. Trial indices encode ensemble
		// membership, so the count is structural.
		ShardSize:       1,
		KeepTrialValues: true,
		FixedTrials:     true,
		Finalize: func(rep *engine.Report) (*Result, error) {
			errs := rep.TrialScalars["avg_error_m"]
			meanWith, err := stats.Mean(errs[:nDescents])
			if err != nil {
				return nil, err
			}
			meanWithout, err := stats.Mean(errs[nDescents : 2*nDescents])
			if err != nil {
				return nil, err
			}
			fullAvg := rep.TrialScalars["full_avg_error_m"][2*nDescents]
			r := &Result{
				ID:         "fig22",
				Title:      "Centralized LSS without constraint on the town scenario",
				PaperClaim: "most nodes not properly localized: 13.606 m average error",
			}
			r.Add("full-solver average error (deviation)", fullAvg, "m")
			r.Add("mean single-descent error, no constraint", meanWithout, "m")
			r.Add("mean single-descent error, constrained", meanWith, "m")
			if meanWithout <= meanWith {
				r.Notes = "REGRESSION: unconstrained descents did not fare worse"
			} else {
				r.Notes = "at the paper's fixed-step single-descent budget, unconstrained descents land near the " +
					"paper's 13.6 m while constrained ones land lower; our full restart solver converges either way " +
					"on this dense scenario (documented deviation — on sparse data, Figs 18/19, the constraint is " +
					"decisive regardless of budget)"
			}
			return r, nil
		},
	}
}

// Fig23ConvergenceCurves reproduces Figure 23: the objective versus epoch
// for constrained and unconstrained town minimizations under the paper's
// fixed-step rule, averaged over an ensemble of descents. The constrained
// objective includes extra non-negative penalty terms (so its floor is
// higher), yet it reaches its floor far sooner and its layouts are better.
func Fig23ConvergenceCurves(seed int64) (*Result, error) {
	return runFigure(fig23Campaign, seed)
}

// fig23Campaign runs both ensembles as one campaign over 16 concurrent
// trials: descents 0–7 constrained, 8–15 unconstrained, each recording its
// padded objective history.
func fig23Campaign(seed int64) engine.Campaign[*Result] {
	const nDescents, iters = 8, 2500
	return engine.Campaign[*Result]{
		Scenario: engine.Scenario{
			Name:      "fig23",
			Trials:    2 * nDescents,
			MaxTrials: 2 * nDescents,
			SeedFn:    descentSeedFn(nDescents),
			Run: func(t *engine.T) error {
				dmin := 9.0
				if t.Trial >= nDescents {
					dmin = 0
				}
				avg, hist, err := townDescent(t, seed, dmin, iters)
				if err != nil {
					return err
				}
				t.Record("avg_error_m", avg)
				t.RecordSeries("E", hist)
				return nil
			},
		},
		ShardSize:       1,
		KeepTrialValues: true,
		FixedTrials:     true,
		Finalize: func(rep *engine.Report) (*Result, error) {
			// Pointwise ensemble mean, accumulated in trial order exactly as
			// the serial generator did.
			meanHist := func(rows [][]float64) []float64 {
				mean := make([]float64, iters+1)
				for _, hist := range rows {
					for i, v := range hist {
						mean[i] += v / float64(nDescents)
					}
				}
				return mean
			}
			rows := rep.TrialSeries["E"]
			withHist := meanHist(rows[:nDescents])
			withoutHist := meanHist(rows[nDescents:])
			const epoch = 50 // gradient steps per plotted epoch
			sample := func(h []float64) []SeriesPoint {
				var pts []SeriesPoint
				for i := 0; i < len(h) && len(pts) <= 50; i += epoch {
					pts = append(pts, SeriesPoint{X: float64(i / epoch), Y: h[i]})
				}
				return pts
			}
			r := &Result{
				ID:         "fig23",
				Title:      "Mean objective vs epoch, with and without the soft constraint",
				PaperClaim: "the soft constraint greatly reduces the time to reach a global minimum",
			}
			r.Series = append(r.Series,
				Series{Name: "mean E with constraint", Points: sample(withHist)},
				Series{Name: "mean E without constraint", Points: sample(withoutHist)},
			)
			r.Add("final mean E with constraint", withHist[len(withHist)-1], "")
			r.Add("final mean E without constraint", withoutHist[len(withoutHist)-1], "")
			r.Notes = "the two objectives are not directly comparable (the constrained E carries extra " +
				"non-negative penalty terms); the paper's speed claim shows up as layout quality — see the " +
				"single-descent error means in fig22 — while both mean objectives plateau far above their " +
				"global minima at this budget, i.e. the unconstrained minimization 'fails to converge' as in Figure 19/22"
			return r, nil
		},
	}
}
