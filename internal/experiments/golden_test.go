package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden corpus pins every figure reproduction byte-for-byte: the files
// under testdata/golden were generated from the pre-engine serial generators
// (go test ./internal/experiments -run TestGolden -update), so this test
// proves two things at once — the campaign ports preserve each figure's
// exact output, and that output is identical at every engine worker count
// (the table sweeps seeds 1 and 5 at 1 and 8 workers).

var updateGolden = flag.Bool("update", false, "rewrite the golden figure outputs")

var goldenSeeds = []int64{1, 5}

// goldenWorkers are the engine worker counts every figure must agree across.
var goldenWorkers = []int{1, 8}

// slowFigs are skipped under -short; the full run covers them.
var slowFigs = map[string]bool{"fig18": true, "fig19": true, "fig22": true}

func goldenPath(id string, seed int64) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_seed%d.golden", id, seed))
}

func TestGoldenFigures(t *testing.T) {
	for _, seed := range goldenSeeds {
		for _, workers := range goldenWorkers {
			for _, e := range All() {
				e, seed, workers := e, seed, workers
				if *updateGolden && workers != 1 {
					continue // goldens are defined by the serial run
				}
				t.Run(fmt.Sprintf("%s/seed%d/workers%d", e.ID, seed, workers), func(t *testing.T) {
					if testing.Short() && slowFigs[e.ID] {
						t.Skip("slow figure; run without -short")
					}
					res, err := e.RunWorkers(seed, workers)
					if err != nil {
						t.Fatal(err)
					}
					got := res.Render()
					path := goldenPath(e.ID, seed)
					if *updateGolden {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file (regenerate with -update): %v", err)
					}
					if got != string(want) {
						t.Errorf("%s seed %d workers %d diverged from golden output\n--- got ---\n%s--- want ---\n%s",
							e.ID, seed, workers, got, want)
					}
				})
			}
		}
	}
}
