package experiments

import (
	"strings"
	"testing"

	"resilientloc/internal/engine"
)

// The experiment suite doubles as the integration test of the whole
// repository: each test runs a figure reproduction end-to-end and asserts
// the paper's qualitative claim (the "shape": who wins, by roughly what
// factor, where breakdowns happen).

const testSeed = 1

func mustGet(t *testing.T, r *Result, name string) float64 {
	t.Helper()
	v, ok := r.Get(name)
	if !ok {
		t.Fatalf("metric %q missing from %s: %+v", name, r.ID, r.Metrics)
	}
	return v
}

func TestAllRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Campaign == nil {
			t.Fatalf("malformed experiment entry %s", e.ID)
		}
		if c := e.Campaign(1); c.Scenario.Name != e.ID {
			t.Errorf("experiment %s: campaign scenario named %q, want the ID", e.ID, c.Scenario.Name)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{
		"fig02", "fig04", "fig06", "fig07", "fig08", "fig10", "maxrange",
		"fig11", "fig12", "fig14", "fig16", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%s) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find accepted unknown ID")
	}
}

// TestFixedTrialsIgnoreOverride pins that a runner-level trial override
// cannot truncate a figure campaign's structural trial count (which its
// Finalize hard-codes): the maxrange sweep must run all 36 points even under
// Config{Trials: 5}.
func TestFixedTrialsIgnoreOverride(t *testing.T) {
	runner, err := engine.NewRunner(engine.Config{Seed: 1, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := Find("maxrange")
	if !ok {
		t.Fatal("maxrange missing")
	}
	res, rep, err := engine.RunCampaign(runner, e.Campaign(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 36 {
		t.Errorf("ran %d trials, want the structural 36", rep.Trials)
	}
	if len(res.Series) != 4 {
		t.Errorf("got %d series, want 4", len(res.Series))
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "T", PaperClaim: "C", Notes: "N"}
	r.Add("m", 1.5, "m")
	r.Series = append(r.Series, Series{Name: "s", Points: []SeriesPoint{{1, 2}}})
	out := r.Render()
	for _, want := range []string{"x", "T", "C", "N", "m", "1.500", "series s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if _, ok := r.Get("absent"); ok {
		t.Error("Get found absent metric")
	}
}

func TestFig02Shape(t *testing.T) {
	r, err := Fig02BaselineRangingUrban(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if frac := mustGet(t, r, "fraction |error| > 1 m"); frac < 0.1 {
		t.Errorf("large-error fraction %.3f — baseline should be error-prone", frac)
	}
	if under := mustGet(t, r, "underestimate share of large errors"); under <= 0.5 {
		t.Errorf("underestimate share %.3f — Figure 2 shows mostly underestimates", under)
	}
}

func TestFig04Shape(t *testing.T) {
	r, err := Fig04MedianFiltering(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	raw := mustGet(t, r, "raw fraction |error| > 1 m")
	filt := mustGet(t, r, "filtered fraction |error| > 1 m")
	if filt >= raw {
		t.Errorf("median filtering did not reduce large errors: %.3f -> %.3f", raw, filt)
	}
}

func TestFig06Shape(t *testing.T) {
	r, err := Fig06RefinedErrorHistogram(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if core := mustGet(t, r, "fraction within ±30 cm"); core < 0.7 {
		t.Errorf("core fraction %.3f — most refined errors should fall within ±30 cm", core)
	}
	if med := mustGet(t, r, "median |error|"); med > 0.33 {
		t.Errorf("median |error| %.3f m — paper claims ≈1%% of max range (0.33 m)", med)
	}
}

func TestFig07Shape(t *testing.T) {
	r, err := Fig07BidirectionalFilter(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	all := mustGet(t, r, "all fraction |error| > 1 m")
	bidir := mustGet(t, r, "bidirectional fraction |error| > 1 m")
	if bidir > all {
		t.Errorf("bidirectional check increased large errors: %.4f -> %.4f", all, bidir)
	}
	if maxAll, maxBi := mustGet(t, r, "all max |error|"), mustGet(t, r, "bidirectional max |error|"); maxBi > maxAll {
		t.Errorf("bidirectional max error grew: %.2f -> %.2f", maxAll, maxBi)
	}
}

func TestFig08Shape(t *testing.T) {
	r, err := Fig08ErrorVsDistance(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	near := mustGet(t, r, "large-error fraction, nearest bin")
	far := mustGet(t, r, "large-error fraction, farthest bin")
	if far < near {
		t.Errorf("large-error fraction should grow with distance: near %.3f, far %.3f", near, far)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10DFTToneDetection(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, r, "clean chirps detected (of 4)"); got != 4 {
		t.Errorf("clean detections %.0f, want 4", got)
	}
	if got := mustGet(t, r, "noisy chirps detected (of 4)"); got < 3 {
		t.Errorf("noisy detections %.0f, want ≥3 (paper: 3)", got)
	}
	if fp := mustGet(t, r, "noisy false positives") + mustGet(t, r, "clean false positives"); fp != 0 {
		t.Errorf("false positives %.0f, want 0", fp)
	}
}

func TestMaxRangeShape(t *testing.T) {
	r, err := MaxRangeSweep(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if g10 := mustGet(t, r, "grass @10m (T=2)"); g10 < 0.8 {
		t.Errorf("grass @10m = %.2f, want ≥0.8 (paper: 80-85%%)", g10)
	}
	if g25 := mustGet(t, r, "grass @25m (T=2)"); g25 > 0.1 {
		t.Errorf("grass @25m = %.2f, want ≈0 (no detection beyond 20m)", g25)
	}
	if p25 := mustGet(t, r, "pavement @25m (T=2)"); p25 < 0.8 {
		t.Errorf("pavement @25m = %.2f, want ≥0.8 (reliable)", p25)
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11IntersectionConsistency(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	with := mustGet(t, r, "error with consistency check")
	without := mustGet(t, r, "error without consistency check")
	if with >= without {
		t.Errorf("consistency check did not help: %.2f vs %.2f", with, without)
	}
	if with > 1 {
		t.Errorf("checked fix error %.2f m, want sub-meter", with)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12MultilatParkingLot(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if frac := mustGet(t, r, "non-anchors localized"); frac < 9 {
		t.Errorf("localized %.0f of 10 — dense anchors should localize nearly all", frac)
	}
	if avg := mustGet(t, r, "average localization error"); avg > 1.0 {
		t.Errorf("avg error %.3f m, want ≤ 1 (paper: 0.868)", avg)
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14MultilatSparseGrid(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if frac := mustGet(t, r, "localized fraction"); frac > 0.5 {
		t.Errorf("localized fraction %.2f — sparse anchors should break multilateration (paper: 0.20)", frac)
	}
	if apn := mustGet(t, r, "anchors per node"); apn > 3 {
		t.Errorf("anchors per node %.2f, want sparse (paper: 1.47)", apn)
	}
}

func TestFig16Shape(t *testing.T) {
	r, err := Fig16MultilatAugmentedGrid(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if frac := mustGet(t, r, "localized fraction"); frac < 0.7 {
		t.Errorf("localized fraction %.2f, want ≈0.8 after augmentation", frac)
	}
	if apn := mustGet(t, r, "anchors per node"); apn < 3 {
		t.Errorf("anchors per node %.2f, want ≈3.84", apn)
	}
}

func TestFig18vs19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig18 uses a large restart budget")
	}
	r18, err := Fig18LSSGridConstrained(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	r19, err := Fig19LSSGridUnconstrained(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	with := mustGet(t, r18, "average error")
	without := mustGet(t, r19, "average error")
	if with > 3.5 {
		t.Errorf("constrained avg error %.2f m, want ≲ 2.2 (paper)", with)
	}
	if without < 3*with {
		t.Errorf("unconstrained %.2f m should be far worse than constrained %.2f m (paper: 16.6 vs 2.2)", without, with)
	}
}

func TestFig20Shape(t *testing.T) {
	r, err := Fig20MultilatTown(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	localized := mustGet(t, r, "non-anchors localized")
	total := mustGet(t, r, "of non-anchors")
	if localized < 0.7*total {
		t.Errorf("localized %.0f of %.0f — dense town should localize most", localized, total)
	}
	if avg := mustGet(t, r, "average error of localized"); avg > 1.0 {
		t.Errorf("avg error %.3f m, want ≤ 1 (paper: 0.95)", avg)
	}
}

func TestFig21vs22Shape(t *testing.T) {
	r21, err := Fig21LSSTownConstrained(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if avg := mustGet(t, r21, "average error"); avg > 1.0 {
		t.Errorf("constrained town avg %.2f m, want ≤ 1 (paper: 0.548)", avg)
	}
	r22, err := Fig22LSSTownUnconstrained(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	with := mustGet(t, r22, "mean single-descent error, constrained")
	without := mustGet(t, r22, "mean single-descent error, no constraint")
	if without <= with {
		t.Errorf("unconstrained single descents (%.2f m) should fare worse than constrained (%.2f m)", without, with)
	}
	if without < 5 {
		t.Errorf("unconstrained single-descent mean %.2f m, want >5 (paper: 13.6)", without)
	}
}

func TestFig23Shape(t *testing.T) {
	r, err := Fig23ConvergenceCurves(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) < 10 {
			t.Errorf("series %s too short: %d points", s.Name, len(s.Points))
		}
		// Mean objective must be non-increasing after the first epoch.
		for i := 2; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y*1.001 {
				t.Errorf("series %s increases at epoch %d", s.Name, i)
				break
			}
		}
	}
}

func TestFig24vs25Shape(t *testing.T) {
	r24, err := Fig24DistributedSparse(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	r25, err := Fig25DistributedExtended(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	sparseErr := mustGet(t, r24, "average error of aligned")
	denseErr := mustGet(t, r25, "average error of aligned")
	if sparseErr < 3*denseErr {
		t.Errorf("sparse distributed (%.2f m) should be far worse than extended (%.2f m) — paper: 9.5 vs 0.53", sparseErr, denseErr)
	}
	if denseErr > 1.5 {
		t.Errorf("extended distributed avg %.2f m, want ≤ 1.5 (paper: 0.534)", denseErr)
	}
	aligned := mustGet(t, r25, "nodes aligned")
	total := mustGet(t, r25, "of nodes")
	if aligned < total {
		t.Errorf("extended run aligned %.0f of %.0f, want all", aligned, total)
	}
}
