package experiments

import (
	"math/rand"

	"resilientloc/internal/core"
	"resilientloc/internal/engine"
	"resilientloc/internal/eval"
	"resilientloc/internal/measure"
)

// distributedGridRoot is the root node for the distributed runs: the node
// nearest the paper's (27, 36) root on the offset grid (row 4, column 2:
// x = 5 + 2·10 = 25, y = 36).
const distributedGridRoot = 30

// Fig24DistributedSparse reproduces Figure 24: distributed LSS on the
// sparse grass-grid field measurements. Paper: 9.494 m average error —
// about half the nodes have very large errors because a bad pairwise
// transform is amplified and propagated (only 247 measured pairs for 47
// nodes).
func Fig24DistributedSparse(seed int64) (*Result, error) {
	return runFigure(fig24Campaign, seed)
}

func fig24Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig24", func(t *engine.T) (*Result, error) {
		set, dep, err := gridFieldSet(seed)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultDistributedConfig(distributedGridRoot, 9.14)
		res, err := core.SolveDistributed(set, cfg, rand.New(rand.NewSource(seed+30)))
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:    "fig24",
			Title: "Distributed LSS on sparse grid field measurements",
			PaperClaim: "average error 9.494 m: bad transforms are amplified and propagated; " +
				"only 247 total distance measurements for 47 nodes",
		}
		r.Add("measured pairs", float64(set.Len()), "")
		r.Add("nodes aligned", float64(len(res.Localized)), "")
		r.Add("of nodes", float64(dep.N()), "")
		r.Add("pairwise transforms", float64(res.Transforms), "")
		r.Add("messages sent", float64(res.MessagesSent), "")
		if len(res.Localized) >= 2 {
			a, err := eval.FitSubset(res.Positions, dep.Positions, res.Localized)
			if err != nil {
				return nil, err
			}
			r.Add("average error of aligned", a.AvgError, "m")
			r.Add("max error of aligned", a.MaxError, "m")
		}
		return r, nil
	})
}

// Fig25DistributedExtended reproduces Figure 25: the same run after adding
// 370 simulated distances (N(0, 0.33 m), 22 m cutoff). Paper: all nodes
// localized with 0.534 m average error.
func Fig25DistributedExtended(seed int64) (*Result, error) {
	return runFigure(fig25Campaign, seed)
}

func fig25Campaign(seed int64) engine.Campaign[*Result] {
	return singleTrial("fig25", func(t *engine.T) (*Result, error) {
		set, dep, err := gridFieldSet(seed)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 31))
		added, err := measure.Augment(set, dep, 22, measure.GaussianNoise, 370, rng)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultDistributedConfig(distributedGridRoot, 9.14)
		res, err := core.SolveDistributed(set, cfg, rand.New(rand.NewSource(seed+32)))
		if err != nil {
			return nil, err
		}
		r := &Result{
			ID:         "fig25",
			Title:      "Distributed LSS with 370 additional simulated distances",
			PaperClaim: "all nodes localized with 0.534 m average error",
		}
		r.Add("simulated distances added", float64(added), "")
		r.Add("total pairs", float64(set.Len()), "")
		r.Add("nodes aligned", float64(len(res.Localized)), "")
		r.Add("of nodes", float64(dep.N()), "")
		if len(res.Localized) >= 2 {
			a, err := eval.FitSubset(res.Positions, dep.Positions, res.Localized)
			if err != nil {
				return nil, err
			}
			r.Add("average error of aligned", a.AvgError, "m")
		}
		return r, nil
	})
}
