package experiments

import (
	"encoding/json"
	"math/rand"
	"testing"

	"resilientloc/internal/engine"
)

// TestFigurePartialMergeMatchesGolden: the multi-trial figure campaigns —
// the ones a sharding coordinator actually splits — reproduce their golden
// output exactly when their trial space is partitioned into partial runs,
// shipped through the wire encoding, merged, and finalized. Partitions are
// random (seeded), including single-trial ranges; seeds 1 and 5 match the
// golden corpus pins.
func TestFigurePartialMergeMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, id := range []string{"maxrange", "fig22", "fig23"} {
		if testing.Short() && slowFigs[id] {
			continue
		}
		e, ok := Find(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		for _, seed := range goldenSeeds {
			c := e.Campaign(seed)
			runner, err := engine.NewRunner(engine.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			full, err := e.RunWorkers(seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(full)
			if err != nil {
				t.Fatal(err)
			}
			trials, _ := engine.CampaignConfig(runner, c)
			for iter := 0; iter < 3; iter++ {
				// 2..5 contiguous ranges with random cuts (dropping empties).
				cuts := map[int]bool{0: true, trials: true}
				for i := 0; i < 1+rng.Intn(4); i++ {
					cuts[rng.Intn(trials+1)] = true
				}
				var points []int
				for cp := range cuts {
					points = append(points, cp)
				}
				for i := range points {
					for j := i + 1; j < len(points); j++ {
						if points[j] < points[i] {
							points[i], points[j] = points[j], points[i]
						}
					}
				}
				var parts []*engine.Partial
				for i := 0; i+1 < len(points); i++ {
					p, err := engine.RunCampaignPartial(runner, c, points[i], points[i+1])
					if err != nil {
						t.Fatalf("%s seed %d range [%d,%d): %v", id, seed, points[i], points[i+1], err)
					}
					b, err := json.Marshal(p)
					if err != nil {
						t.Fatal(err)
					}
					var back engine.Partial
					if err := json.Unmarshal(b, &back); err != nil {
						t.Fatal(err)
					}
					parts = append(parts, &back)
				}
				rep, err := engine.MergePartials(parts)
				if err != nil {
					t.Fatalf("%s seed %d cuts %v: merge: %v", id, seed, points, err)
				}
				res, err := engine.FinalizeCampaign(c, rep)
				if err != nil {
					t.Fatalf("%s seed %d cuts %v: finalize: %v", id, seed, points, err)
				}
				if res.Render() != full.Render() {
					t.Fatalf("%s seed %d cuts %v: rendered output diverged from full run", id, seed, points)
				}
				gotJSON, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(wantJSON) {
					t.Fatalf("%s seed %d cuts %v: result JSON diverged", id, seed, points)
				}
			}
		}
	}
}
