package radio

import (
	"math"
	"math/rand"
	"testing"
)

func TestDelayModelValidate(t *testing.T) {
	if err := DefaultDelayModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	if err := (DelayModel{Base: -1}).Validate(); err == nil {
		t.Error("want error for negative base")
	}
	if err := (DelayModel{JitterStd: -1}).Validate(); err == nil {
		t.Error("want error for negative jitter")
	}
}

func TestDelaySampleDeterministic(t *testing.T) {
	m := DelayModel{Base: 2e-3}
	if got := m.Sample(nil); got != 2e-3 {
		t.Errorf("Sample = %v, want 2e-3", got)
	}
}

func TestDelaySampleNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := DelayModel{Base: 1e-6, JitterStd: 1e-3} // jitter dominates base
	for i := 0; i < 10000; i++ {
		if d := m.Sample(rng); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

func TestDelaySampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := DefaultDelayModel()
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += m.Sample(rng)
	}
	mean := sum / float64(n)
	if math.Abs(mean-m.Base) > 1e-6 {
		t.Errorf("mean = %v, want ≈%v", mean, m.Base)
	}
}

func TestLinkModelValidate(t *testing.T) {
	if err := (LinkModel{LossRate: 0.5, Retries: 2}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if err := (LinkModel{LossRate: 1.5}).Validate(); err == nil {
		t.Error("want error for loss > 1")
	}
	if err := (LinkModel{LossRate: -0.1}).Validate(); err == nil {
		t.Error("want error for negative loss")
	}
	if err := (LinkModel{Retries: -1}).Validate(); err == nil {
		t.Error("want error for negative retries")
	}
}

func TestLinkDeliveredEdgeCases(t *testing.T) {
	if !(LinkModel{LossRate: 0}).Delivered(nil) {
		t.Error("lossless link dropped a message")
	}
	rng := rand.New(rand.NewSource(7))
	if (LinkModel{LossRate: 1}).Delivered(rng) {
		t.Error("total-loss link delivered a message")
	}
}

func TestLinkDeliveredRetryImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 100000
	count := func(m LinkModel) float64 {
		ok := 0
		for i := 0; i < n; i++ {
			if m.Delivered(rng) {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}
	p0 := count(LinkModel{LossRate: 0.5, Retries: 0})
	p2 := count(LinkModel{LossRate: 0.5, Retries: 2})
	if math.Abs(p0-0.5) > 0.01 {
		t.Errorf("no-retry delivery = %v, want ≈0.5", p0)
	}
	// Retries+1 = 3 attempts: 1 - 0.5³ = 0.875.
	if math.Abs(p2-0.875) > 0.01 {
		t.Errorf("2-retry delivery = %v, want ≈0.875", p2)
	}
}
