// Package radio models the radio-channel behaviour that matters for TDoA
// acoustic ranging and for the distributed-localization message exchange:
// the non-deterministic transmit/receive delay δxmit (paper Section 3.1,
// "Non-deterministic Hardware Delays") and a loss-prone broadcast primitive
// used by the in-memory network simulator.
package radio

import (
	"errors"
	"math/rand"
)

// DelayModel describes δxmit: the combined sender-plus-receiver hardware
// delay between the radio send command and first-bit reception. MAC-layer
// timestamping removes most of it; a calibrated constant plus residual
// jitter remains.
type DelayModel struct {
	// Base is the deterministic component, seconds. It is folded into the
	// δconst calibration constant by the ranging service.
	Base float64
	// JitterStd is the standard deviation of the residual nondeterministic
	// delay, seconds.
	JitterStd float64
}

// DefaultDelayModel returns a MICA2-like δxmit model: ~1.5 ms base delay
// with ~10 µs residual jitter after MAC-layer timestamping.
func DefaultDelayModel() DelayModel {
	return DelayModel{Base: 1.5e-3, JitterStd: 10e-6}
}

// Validate checks the model parameters.
func (m DelayModel) Validate() error {
	if m.Base < 0 || m.JitterStd < 0 {
		return errors.New("radio: negative DelayModel parameter")
	}
	return nil
}

// Sample draws one realization of δxmit in seconds. rng may be nil when
// JitterStd is zero.
func (m DelayModel) Sample(rng *rand.Rand) float64 {
	d := m.Base
	if m.JitterStd > 0 {
		d += rng.NormFloat64() * m.JitterStd
	}
	if d < 0 {
		d = 0
	}
	return d
}

// LinkModel describes message delivery between two nodes for the network
// simulator: delivery probability as a function of nothing fancier than a
// flat loss rate (the localization protocol exchanges only a handful of
// small messages, so a flat model suffices).
type LinkModel struct {
	// LossRate is the probability an individual message is dropped.
	LossRate float64
	// Retries is how many times the sender retransmits on loss; the
	// effective delivery probability is 1-LossRate^(Retries+1).
	Retries int
}

// Validate checks the model parameters.
func (m LinkModel) Validate() error {
	if m.LossRate < 0 || m.LossRate > 1 {
		return errors.New("radio: LossRate out of [0,1]")
	}
	if m.Retries < 0 {
		return errors.New("radio: negative Retries")
	}
	return nil
}

// Delivered reports whether a message survives the link, accounting for
// retries. rng may be nil when LossRate is zero.
func (m LinkModel) Delivered(rng *rand.Rand) bool {
	if m.LossRate <= 0 {
		return true
	}
	if m.LossRate >= 1 {
		return false
	}
	for attempt := 0; attempt <= m.Retries; attempt++ {
		if rng.Float64() >= m.LossRate {
			return true
		}
	}
	return false
}
