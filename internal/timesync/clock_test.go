package timesync

import (
	"math"
	"math/rand"
	"testing"
)

func TestClockRoundTrip(t *testing.T) {
	c := NewClock(40e-6, 1.5)
	for _, trueT := range []float64{0, 1, 100, 12345.678} {
		local := c.Local(trueT)
		back := c.TrueFromLocal(local)
		if math.Abs(back-trueT) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", trueT, local, back)
		}
	}
}

func TestClockSkewDirection(t *testing.T) {
	fast := NewClock(50e-6, 0)
	slow := NewClock(-50e-6, 0)
	if fast.Local(1000) <= 1000 {
		t.Error("fast clock should run ahead")
	}
	if slow.Local(1000) >= 1000 {
		t.Error("slow clock should lag")
	}
}

func TestClockAccessors(t *testing.T) {
	c := NewClock(10e-6, 0.25)
	if c.Skew() != 10e-6 || c.Offset() != 0.25 {
		t.Errorf("accessors: skew=%v offset=%v", c.Skew(), c.Offset())
	}
}

func TestRandomClockWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		c := RandomClock(rng, 2.0)
		if math.Abs(c.Skew()) > MaxSkewPPM*1e-6 {
			t.Fatalf("skew %v out of bounds", c.Skew())
		}
		if math.Abs(c.Offset()) > 2.0 {
			t.Fatalf("offset %v out of bounds", c.Offset())
		}
	}
}

func TestSyncModelValidate(t *testing.T) {
	if err := DefaultSyncModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	if err := (SyncModel{JitterStd: -1}).Validate(); err == nil {
		t.Error("want error for negative jitter")
	}
	if err := (SyncModel{Interval: -1}).Validate(); err == nil {
		t.Error("want error for negative interval")
	}
}

// TestSyncErrorMagnitude validates the paper's claim (§3.1): the maximum
// skew-induced ranging error over the sync interval, converted at the speed
// of sound, is ~0.15 cm for 30 m ranging — time sync is not a significant
// error source.
func TestSyncErrorMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := DefaultSyncModel()
	src := NewClock(+50e-6, 0)
	dst := NewClock(-50e-6, 0)
	const speedOfSound = 340.0
	worst := 0.0
	for i := 0; i < 10000; i++ {
		e := math.Abs(m.SyncError(src, dst, rng)) * speedOfSound
		if e > worst {
			worst = e
		}
	}
	// 100 ppm relative skew × 0.1 s × 340 m/s = 3.4 mm, plus µs jitter.
	if worst > 0.01 {
		t.Errorf("worst sync-induced ranging error %.4f m, want < 1 cm", worst)
	}
}

func TestSyncErrorZeroJitterIsDeterministic(t *testing.T) {
	m := SyncModel{JitterStd: 0, Interval: 1}
	src := NewClock(10e-6, 0)
	dst := NewClock(30e-6, 0)
	got := m.SyncError(src, dst, nil) // nil rng must be safe with zero jitter
	want := 20e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("drift = %v, want %v", got, want)
	}
}

func TestSyncErrorStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := SyncModel{JitterStd: 5e-6, Interval: 0}
	src, dst := NewClock(0, 0), NewClock(0, 0)
	var sum, sumSq float64
	n := 50000
	for i := 0; i < n; i++ {
		e := m.SyncError(src, dst, rng)
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 1e-7 {
		t.Errorf("mean = %v, want ≈0", mean)
	}
	if math.Abs(sd-5e-6) > 5e-7 {
		t.Errorf("sd = %v, want ≈5e-6", sd)
	}
}
