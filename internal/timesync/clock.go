// Package timesync models the node clocks and the FTSP-style MAC-layer time
// synchronization the ranging service relies on (paper Section 3.1, "Clock
// Synchronization"). Physical motes drift relative to true time at up to
// ~50 µs/s; MAC-layer timestamping of the very ranging message removes most
// radio nondeterminism and leaves a small residual synchronization error.
//
// The simulation works in float64 seconds of "true" time; a Clock converts
// between true time and its own local time.
package timesync

import (
	"errors"
	"math/rand"
)

// MaxSkewPPM is the paper's bound on mote clock rate difference: 50 µs per
// second, i.e. 50 ppm.
const MaxSkewPPM = 50.0

// Clock models one node's oscillator: local = (1 + skew)·true + offset.
type Clock struct {
	skew   float64 // fractional rate error (e.g. 40e-6 for +40 ppm)
	offset float64 // seconds of constant offset
}

// NewClock creates a clock with the given fractional skew and offset.
func NewClock(skew, offset float64) Clock {
	return Clock{skew: skew, offset: offset}
}

// RandomClock draws a clock whose skew is uniform within ±MaxSkewPPM and
// whose offset is uniform within ±maxOffset seconds.
func RandomClock(rng *rand.Rand, maxOffset float64) Clock {
	return Clock{
		skew:   (rng.Float64()*2 - 1) * MaxSkewPPM * 1e-6,
		offset: (rng.Float64()*2 - 1) * maxOffset,
	}
}

// Local converts a true time to this clock's local time.
func (c Clock) Local(trueTime float64) float64 {
	return (1+c.skew)*trueTime + c.offset
}

// TrueFromLocal converts local time back to true time.
func (c Clock) TrueFromLocal(local float64) float64 {
	return (local - c.offset) / (1 + c.skew)
}

// Skew returns the fractional rate error.
func (c Clock) Skew() float64 { return c.skew }

// Offset returns the constant offset in seconds.
func (c Clock) Offset() float64 { return c.offset }

// SyncModel captures the residual error of MAC-layer timestamp exchange: a
// zero-mean jitter plus the skew-induced drift over the short measurement
// interval. With FTSP-style stamping the residual per-exchange jitter is a
// few microseconds.
type SyncModel struct {
	// JitterStd is the standard deviation of the residual timestamping
	// error per exchange, seconds. FTSP on MICA2 achieves a few µs.
	JitterStd float64
	// Interval is the elapsed time between synchronization and the acoustic
	// time-of-arrival measurement, seconds. Skew accumulates over it.
	Interval float64
}

// DefaultSyncModel returns the paper-calibrated model: ~2 µs residual jitter
// and a 100 ms sync-to-measurement interval (the radio message immediately
// precedes the chirp, §3.1).
func DefaultSyncModel() SyncModel {
	return SyncModel{JitterStd: 2e-6, Interval: 0.1}
}

// Validate checks the model parameters.
func (m SyncModel) Validate() error {
	if m.JitterStd < 0 || m.Interval < 0 {
		return errors.New("timesync: negative SyncModel parameter")
	}
	return nil
}

// SyncError draws the residual time error (seconds) between a source and
// destination clock after one MAC-layer timestamp exchange: timestamp jitter
// plus relative skew accumulated over the interval. Multiply by the speed of
// sound for the equivalent ranging error — at the paper's parameters it is
// ≈0.15 cm over 30 m, negligible versus acoustic effects (§3.1).
func (m SyncModel) SyncError(src, dst Clock, rng *rand.Rand) float64 {
	drift := (dst.skew - src.skew) * m.Interval
	jitter := 0.0
	if m.JitterStd > 0 {
		jitter = rng.NormFloat64() * m.JitterStd
	}
	return drift + jitter
}
