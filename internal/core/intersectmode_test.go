package core

import (
	"math/rand"
	"testing"

	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func TestSolveNodeIntersectionModeExact(t *testing.T) {
	truth := geom.Pt(12, 7)
	anchorPos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(25, 0), geom.Pt(0, 20), geom.Pt(25, 20), geom.Pt(12, -5),
	}
	obs := make([]anchorObs, len(anchorPos))
	for i, a := range anchorPos {
		obs[i] = anchorObs{pos: a, d: truth.Dist(a), weight: 1}
	}
	p, err := solveNodeIntersectionMode(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(truth) > 0.05 {
		t.Errorf("mode estimate %v off truth %v by %.3f m", p, truth, p.Dist(truth))
	}
}

func TestSolveNodeIntersectionModeNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := geom.Pt(10, 10)
	anchorPos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(0, 20), geom.Pt(20, 20),
		geom.Pt(10, -4), geom.Pt(-4, 10),
	}
	obs := make([]anchorObs, len(anchorPos))
	for i, a := range anchorPos {
		obs[i] = anchorObs{pos: a, d: truth.Dist(a) + rng.NormFloat64()*0.2, weight: 1}
	}
	p, err := solveNodeIntersectionMode(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(truth) > 0.6 {
		t.Errorf("mode estimate off by %.3f m with 0.2 m noise", p.Dist(truth))
	}
}

func TestSolveNodeIntersectionModeFailures(t *testing.T) {
	// Too few anchors.
	if _, err := solveNodeIntersectionMode([]anchorObs{
		{pos: geom.Pt(0, 0), d: 5}, {pos: geom.Pt(10, 0), d: 5},
	}, 1); err == nil {
		t.Error("want error for <3 anchors")
	}
	// Circles that never intersect.
	if _, err := solveNodeIntersectionMode([]anchorObs{
		{pos: geom.Pt(0, 0), d: 1},
		{pos: geom.Pt(100, 0), d: 1},
		{pos: geom.Pt(0, 100), d: 1},
	}, 1); err == nil {
		t.Error("want error for disjoint circles")
	}
}

// TestIntersectionModeEndToEnd runs the full multilateration with the mode
// estimator enabled and checks it matches least squares on clean data.
func TestIntersectionModeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 0), geom.Pt(0, 30), geom.Pt(30, 30), geom.Pt(15, -5),
		geom.Pt(10, 12), geom.Pt(22, 8), geom.Pt(6, 21),
	}
	s, err := measure.NewSet(len(truth))
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[int]geom.Point{0: truth[0], 1: truth[1], 2: truth[2], 3: truth[3], 4: truth[4]}
	for i := 5; i < len(truth); i++ {
		for a := 0; a < 5; a++ {
			d := truth[i].Dist(truth[a]) + rng.NormFloat64()*0.15
			if err := s.Add(i, a, d, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := DefaultMultilatConfig()
	cfg.UseIntersectionMode = true
	res, err := SolveMultilateration(s, anchors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 3 {
		t.Fatalf("localized %v, want 3 nodes", res.Localized)
	}
	avg, _, err := eval.AvgErrorAbsolute(res.Positions, truth)
	if err != nil {
		t.Fatal(err)
	}
	if avg > 0.5 {
		t.Errorf("intersection-mode avg error %.3f m, want < 0.5", avg)
	}

	// Invalid configuration is rejected.
	bad := DefaultMultilatConfig()
	bad.UseIntersectionMode = true
	bad.MinModeAnchors = 2
	if err := bad.Validate(); err == nil {
		t.Error("want error for MinModeAnchors < 3")
	}
}
