package core

import (
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func TestMultilatConfigValidate(t *testing.T) {
	if err := DefaultMultilatConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := []MultilatConfig{
		{MinAnchors: 2, MaxIters: 10},
		{MinAnchors: 3, ConsistencyRadius: -1, MaxIters: 10},
		{MinAnchors: 3, MaxIters: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

// buildAnchoredSet creates a measurement set with exact distances from each
// non-anchor to every anchor within maxRange.
func buildAnchoredSet(t *testing.T, truth []geom.Point, anchorIdx []int, maxRange float64, noise float64, rng *rand.Rand) (*measure.Set, map[int]geom.Point) {
	t.Helper()
	s, err := measure.NewSet(len(truth))
	if err != nil {
		t.Fatal(err)
	}
	anchors := make(map[int]geom.Point)
	for _, a := range anchorIdx {
		anchors[a] = truth[a]
	}
	for i := range truth {
		if _, isA := anchors[i]; isA {
			continue
		}
		for _, a := range anchorIdx {
			d := truth[i].Dist(truth[a])
			if d > maxRange {
				continue
			}
			if noise > 0 {
				d += rng.NormFloat64() * noise
				if d <= 0.01 {
					d = 0.01
				}
			}
			if err := s.Add(i, a, d, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s, anchors
}

func TestMultilatExact(t *testing.T) {
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(0, 20), geom.Pt(20, 20), // anchors
		geom.Pt(7, 9), geom.Pt(13, 4), geom.Pt(4, 16),
	}
	s, anchors := buildAnchoredSet(t, truth, []int{0, 1, 2, 3}, 1000, 0, nil)
	res, err := SolveMultilateration(s, anchors, DefaultMultilatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 3 {
		t.Fatalf("localized %v, want all 3 non-anchors", res.Localized)
	}
	for _, i := range res.Localized {
		if e := res.Positions[i].Dist(truth[i]); e > 1e-6 {
			t.Errorf("node %d error %g on exact data", i, e)
		}
	}
	if res.AvgAnchorsPerNode != 4 {
		t.Errorf("AvgAnchorsPerNode = %v, want 4", res.AvgAnchorsPerNode)
	}
}

func TestMultilatNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(25, 0), geom.Pt(0, 25), geom.Pt(25, 25), geom.Pt(12, -3),
		geom.Pt(7, 9), geom.Pt(13, 4), geom.Pt(4, 16), geom.Pt(18, 18), geom.Pt(10, 21),
	}
	s, anchors := buildAnchoredSet(t, truth, []int{0, 1, 2, 3, 4}, 1000, 0.33, rng)
	res, err := SolveMultilateration(s, anchors, DefaultMultilatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 5 {
		t.Fatalf("localized %v, want all 5 non-anchors", res.Localized)
	}
	avg, _, err := eval.AvgErrorAbsolute(res.Positions, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 12: 0.868 m average with real (worse) measurements; with
	// 0.33 m Gaussian noise and 5 anchors we expect well under that.
	if avg > 0.8 {
		t.Errorf("avg error %.3f m, want < 0.8", avg)
	}
}

// TestMultilatSparseBreakdown reproduces the Figure 14 phenomenon: with few
// anchors in range, most nodes cannot be localized.
func TestMultilatSparseBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dep := deploy.PaperGrid()
	if err := dep.ChooseRandomAnchors(13, rng); err != nil {
		t.Fatal(err)
	}
	anchors := make(map[int]geom.Point)
	for _, a := range dep.Anchors {
		anchors[a] = dep.Positions[a]
	}
	// Short-range measurements only (12 m): each node reaches ~0-2 anchors.
	s, err := measure.NewSet(dep.N())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dep.N(); i++ {
		for j := i + 1; j < dep.N(); j++ {
			d := dep.Positions[i].Dist(dep.Positions[j])
			if d <= 12 {
				_ = s.Add(i, j, d+rng.NormFloat64()*0.33, 1)
			}
		}
	}
	res, err := SolveMultilateration(s, anchors, DefaultMultilatConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(res.Localized)) / float64(len(dep.NonAnchors()))
	if frac > 0.5 {
		t.Errorf("localized fraction %.2f with sparse anchors, expected breakdown (<0.5)", frac)
	}
}

// TestIntersectionConsistencyDropsOutlier: an anchor with a wildly wrong
// distance must be filtered by the intersection consistency check, improving
// the fix.
func TestIntersectionConsistencyDropsOutlier(t *testing.T) {
	truth := geom.Pt(10, 10)
	anchorPos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(0, 20), geom.Pt(22, 18),
	}
	obs := make([]anchorObs, 0, len(anchorPos)+1)
	for _, a := range anchorPos {
		obs = append(obs, anchorObs{pos: a, d: truth.Dist(a), weight: 1})
	}
	// A rogue anchor with a hugely overestimated distance.
	rogue := geom.Pt(40, 40)
	obs = append(obs, anchorObs{pos: rogue, d: truth.Dist(rogue) + 15, weight: 1})

	filtered := filterConsistent(obs, 1.0)
	for _, o := range filtered {
		if o.pos == rogue {
			t.Fatal("rogue anchor survived the consistency check")
		}
	}
	if len(filtered) != len(anchorPos) {
		t.Fatalf("filtered %d anchors, want %d", len(filtered), len(anchorPos))
	}

	// The filtered fix must beat the unfiltered one.
	pFiltered, err := solveNode(nil, filtered, 100)
	if err != nil {
		t.Fatal(err)
	}
	pAll, err := solveNode(nil, obs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pFiltered.Dist(truth) > pAll.Dist(truth) {
		t.Errorf("filtered error %.3f worse than unfiltered %.3f",
			pFiltered.Dist(truth), pAll.Dist(truth))
	}
	if pFiltered.Dist(truth) > 0.01 {
		t.Errorf("filtered fix error %.4f, want ≈0 on otherwise exact data", pFiltered.Dist(truth))
	}
}

func TestFilterConsistentFewAnchors(t *testing.T) {
	obs := []anchorObs{
		{pos: geom.Pt(0, 0), d: 5, weight: 1},
		{pos: geom.Pt(10, 0), d: 5, weight: 1},
	}
	if got := filterConsistent(obs, 1); len(got) != 2 {
		t.Errorf("check with <3 anchors must be vacuous, got %d", len(got))
	}
}

func TestFilterConsistentAllInconsistentFallsBack(t *testing.T) {
	// Three anchors whose circles never come near each other: no cluster at
	// all; the filter must fall back to the original set rather than drop
	// every anchor.
	obs := []anchorObs{
		{pos: geom.Pt(0, 0), d: 1, weight: 1},
		{pos: geom.Pt(100, 0), d: 1, weight: 1},
		{pos: geom.Pt(0, 100), d: 1, weight: 1},
	}
	if got := filterConsistent(obs, 1); len(got) != 3 {
		t.Errorf("expected fallback to all anchors, got %d", len(got))
	}
}

func TestMultilatProgressive(t *testing.T) {
	// Chain topology: node 4 sees only anchors; node 5 sees node 4 plus two
	// anchors — localizable only if node 4 is promoted.
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(10, 18), // anchors 0-2
		geom.Pt(40, 10), // anchor 3 (far side)
		geom.Pt(10, 6),  // node 4: sees anchors 0,1,2
		geom.Pt(24, 8),  // node 5: sees 1, 3, and node 4
	}
	s, err := measure.NewSet(6)
	if err != nil {
		t.Fatal(err)
	}
	add := func(i, j int) {
		if err := s.Add(i, j, truth[i].Dist(truth[j]), 1); err != nil {
			t.Fatal(err)
		}
	}
	add(4, 0)
	add(4, 1)
	add(4, 2)
	add(5, 1)
	add(5, 3)
	add(5, 4)
	anchors := map[int]geom.Point{0: truth[0], 1: truth[1], 2: truth[2], 3: truth[3]}

	plain := DefaultMultilatConfig()
	res, err := SolveMultilateration(s, anchors, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 1 || res.Localized[0] != 4 {
		t.Fatalf("non-progressive localized %v, want [4]", res.Localized)
	}

	prog := DefaultMultilatConfig()
	prog.Progressive = true
	res, err = SolveMultilateration(s, anchors, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 2 {
		t.Fatalf("progressive localized %v, want [4 5]", res.Localized)
	}
	if e := res.Positions[5].Dist(truth[5]); e > 1e-5 {
		t.Errorf("progressive node 5 error %g", e)
	}
}

func TestMultilatInputErrors(t *testing.T) {
	s, _ := measure.NewSet(3)
	_ = s.Add(0, 1, 5, 1)
	if _, err := SolveMultilateration(s, nil, DefaultMultilatConfig()); err == nil {
		t.Error("want error for no anchors")
	}
	if _, err := SolveMultilateration(s, map[int]geom.Point{9: {}}, DefaultMultilatConfig()); err == nil {
		t.Error("want error for out-of-range anchor")
	}
	bad := DefaultMultilatConfig()
	bad.MinAnchors = 1
	if _, err := SolveMultilateration(s, map[int]geom.Point{0: {}}, bad); err == nil {
		t.Error("want error for invalid config")
	}
}

// TestGaussNewtonCollinearAnchors: perfectly collinear anchors make the
// normal equations singular; the node must be left unlocalized, not placed
// wildly.
func TestGaussNewtonCollinearAnchors(t *testing.T) {
	obs := []anchorObs{
		{pos: geom.Pt(0, 0), d: 10, weight: 1},
		{pos: geom.Pt(10, 0), d: 10, weight: 1},
		{pos: geom.Pt(20, 0), d: 10, weight: 1},
	}
	// The linear seed degenerates too; solveNode may fail or return a
	// finite point — it must not return NaN.
	p, err := solveNode(nil, obs, 50)
	if err == nil && !p.IsFinite() {
		t.Errorf("non-finite solution %v without error", p)
	}
}

func TestLinearSeedErrors(t *testing.T) {
	if _, err := linearSeed([]anchorObs{{pos: geom.Pt(0, 0), d: 1, weight: 1}}); err == nil {
		t.Error("want error for too few observations")
	}
}

func TestMultilatHandlesAnchorOnNode(t *testing.T) {
	// Node exactly on an anchor position: the Gauss-Newton nudge must keep
	// the solve finite.
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(0, 20), geom.Pt(0, 0)}
	s, err := measure.NewSet(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Add(3, 0, 0.01, 1) // nearly zero distance to anchor 0
	_ = s.Add(3, 1, 20, 1)
	_ = s.Add(3, 2, 20, 1)
	anchors := map[int]geom.Point{0: truth[0], 1: truth[1], 2: truth[2]}
	cfg := DefaultMultilatConfig()
	cfg.ConsistencyRadius = 0 // keep all three observations
	res, err := SolveMultilateration(s, anchors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) == 1 {
		p := res.Positions[3]
		if !p.IsFinite() {
			t.Errorf("non-finite position %v", p)
		}
		if p.Dist(truth[3]) > 0.5 {
			t.Errorf("node on anchor localized %.3f m away", p.Dist(truth[3]))
		}
	}
}

func TestMultilatLocalMinimumVictims(t *testing.T) {
	// The paper observes gradient descent falling into local minima for
	// nodes outside the anchor hull (Figure 16's discussion). With anchors
	// nearly collinear and the node far off-axis, the reflected position is
	// a local minimum. We only require: the result is finite and the
	// residual is locally small.
	rng := rand.New(rand.NewSource(7))
	obs := []anchorObs{
		{pos: geom.Pt(0, 0), d: 0, weight: 1},
		{pos: geom.Pt(10, 0.1), d: 0, weight: 1},
		{pos: geom.Pt(20, -0.1), d: 0, weight: 1},
	}
	truthPt := geom.Pt(10, -14)
	for i := range obs {
		obs[i].d = truthPt.Dist(obs[i].pos) + rng.NormFloat64()*0.3
	}
	p, err := solveNode(nil, obs, 100)
	if err != nil {
		t.Skip("degenerate geometry rejected — acceptable")
	}
	if !p.IsFinite() {
		t.Fatalf("non-finite solution %v", p)
	}
	// Either the true position or its reflection across the anchor line.
	refl := geom.Pt(truthPt.X, -truthPt.Y)
	if p.Dist(truthPt) > 1.5 && p.Dist(refl) > 1.5 {
		t.Errorf("solution %v is neither truth %v nor its reflection %v", p, truthPt, refl)
	}
}
