package core

import (
	"errors"
	"fmt"
	"math"

	"resilientloc/internal/geom"
	"resilientloc/internal/mat"
	"resilientloc/internal/measure"
	"resilientloc/internal/scratch"
)

// SolveClassicalMDS runs classical (Torgerson) multidimensional scaling on a
// *complete* distance matrix: double-center the squared distances and take
// the top-2 eigenpairs (Section 4.2.1: "the input distance matrix is
// transformed to a quadratic matrix of coordinates via double averaging.
// Then, singular value decomposition is applied..."). It fails if any pair
// is missing — the "one critical requirement" that motivates LSS.
func SolveClassicalMDS(set *measure.Set) ([]geom.Point, error) {
	n := set.N()
	if n < 3 {
		return nil, fmt.Errorf("core: SolveClassicalMDS: need at least 3 nodes, have %d", n)
	}
	d, err := fullDistanceMatrix(set)
	if err != nil {
		return nil, err
	}
	return mdsFromMatrix(nil, d)
}

// SolveMDSMap runs the MDS-MAP variant (Shang et al., referenced in Section
// 2): missing pairwise distances are completed with shortest-path distances
// through the measurement graph before classical MDS. The graph must be
// connected.
func SolveMDSMap(set *measure.Set) ([]geom.Point, error) {
	return SolveMDSMapIn(nil, set)
}

// SolveMDSMapIn is SolveMDSMap with the distance matrix and MDS workspaces
// borrowed from ws (nil ws allocates). The returned points are arena-owned:
// valid only until ws's next Release.
func SolveMDSMapIn(ws *scratch.Arena, set *measure.Set) ([]geom.Point, error) {
	n := set.N()
	if n < 3 {
		return nil, fmt.Errorf("core: SolveMDSMap: need at least 3 nodes, have %d", n)
	}
	if !set.Connected() {
		return nil, errors.New("core: SolveMDSMap: measurement graph is disconnected")
	}
	d := shortestPaths(ws, set)
	return mdsFromMatrix(ws, d)
}

// fullDistanceMatrix extracts the complete n×n distance matrix or fails on
// the first missing pair.
func fullDistanceMatrix(set *measure.Set) (*mat.Dense, error) {
	n := set.N()
	d := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m, ok := set.Get(i, j)
			if !ok {
				return nil, fmt.Errorf("core: classical MDS requires all pairs; (%d,%d) missing", i, j)
			}
			d.Set(i, j, m.Distance)
			d.Set(j, i, m.Distance)
		}
	}
	return d, nil
}

// shortestPaths runs Floyd–Warshall over the measurement graph. The O(n³)
// relaxation works on flat row views — same comparisons in the same order as
// the At/Set formulation, minus the per-element bounds checks.
func shortestPaths(ws *scratch.Arena, set *measure.Set) *mat.Dense {
	n := set.N()
	d := mat.NewDenseIn(ws, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, math.Inf(1))
			}
		}
	}
	for _, m := range set.All() {
		d.Set(m.Pair.Lo, m.Pair.Hi, m.Distance)
		d.Set(m.Pair.Hi, m.Pair.Lo, m.Distance)
	}
	for k := 0; k < n; k++ {
		dk := d.RowView(k)
		for i := 0; i < n; i++ {
			di := d.RowView(i)
			dik := di[k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dik + dk[j]; alt < di[j] {
					di[j] = alt
				}
			}
		}
	}
	return d
}

// mdsFromMatrix applies double centering and eigendecomposition to a
// complete symmetric distance matrix, borrowing workspaces from ws (nil ws
// allocates).
func mdsFromMatrix(ws *scratch.Arena, d *mat.Dense) ([]geom.Point, error) {
	n, _ := d.Dims()
	// B = -1/2 · J·D²·J with J = I - (1/n)·11ᵀ.
	sq := mat.NewDenseIn(ws, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := d.At(i, j)
			sq.Set(i, j, v*v)
		}
	}
	rowMean := ws.Float64s(n)
	var grand float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowMean[i] += sq.At(i, j)
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	b := mat.NewDenseIn(ws, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(sq.At(i, j)-rowMean[i]-rowMean[j]+grand))
		}
	}
	vals, vecs, err := mat.EigenSymIn(ws, b)
	if err != nil {
		return nil, fmt.Errorf("core: MDS eigendecomposition: %w", err)
	}
	if vals[0] <= 0 || vals[1] <= 0 {
		return nil, errors.New("core: MDS: top-2 eigenvalues not positive; distances are not 2-D Euclidean-like")
	}
	s0 := math.Sqrt(vals[0])
	s1 := math.Sqrt(vals[1])
	pts := ws.Points(n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Pt(vecs.At(i, 0)*s0, vecs.At(i, 1)*s1)
	}
	return pts, nil
}
