package core

import (
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/radio"
)

func TestDistributedConfigValidate(t *testing.T) {
	if err := DefaultDistributedConfig(0, 9).Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := DefaultDistributedConfig(0, 9)
	bad.Root = -1
	if err := bad.Validate(); err == nil {
		t.Error("want error for negative root")
	}
	bad = DefaultDistributedConfig(0, 9)
	bad.MinShared = 2
	if err := bad.Validate(); err == nil {
		t.Error("want error for MinShared < 3")
	}
	bad = DefaultDistributedConfig(0, 9)
	bad.Local.Step = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for invalid local config")
	}
	bad = DefaultDistributedConfig(0, 9)
	bad.Link.LossRate = 2
	if err := bad.Validate(); err == nil {
		t.Error("want error for invalid link model")
	}
}

func TestDistributedInputErrors(t *testing.T) {
	s, _ := measure.NewSet(4)
	_ = s.Add(0, 1, 5, 1)
	rng := rand.New(rand.NewSource(3))
	if _, err := SolveDistributed(s, DefaultDistributedConfig(0, 9), nil); err == nil {
		t.Error("want error for nil rng")
	}
	if _, err := SolveDistributed(s, DefaultDistributedConfig(99, 9), rng); err == nil {
		t.Error("want error for out-of-range root")
	}
}

// TestDistributedDenseGraph reproduces the Figure 25 result: with rich
// distance measurements the distributed algorithm localizes everyone with
// sub-meter error.
func TestDistributedDenseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:47]
	s, err := measure.Generate(dep, 22, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDistributedConfig(24, 9) // a central node as root
	res, err := SolveDistributed(s, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) < 45 {
		t.Fatalf("localized %d of 47, want ≥45", len(res.Localized))
	}
	a, err := eval.FitSubset(res.Positions, dep.Positions, res.Localized)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 25: 0.534 m with the same augmented density.
	if a.AvgError > 1.5 {
		t.Errorf("avg error %.2f m on dense graph, want ≤ 1.5 (paper: 0.53)", a.AvgError)
	}
	if res.MessagesSent == 0 {
		t.Error("no messages accounted")
	}
	if res.Transforms == 0 {
		t.Error("no transforms computed")
	}
}

// TestDistributedSparseGraphDegrades reproduces the Figure 24 phenomenon:
// on the sparse field-like graph (247 pairs over 47 nodes) the distributed
// algorithm's error is far worse than the centralized one — bad local
// transforms are amplified and propagated.
func TestDistributedSparseGraphDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:47]
	s, err := measure.Generate(dep, 22, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	measure.Sparsify(s, 247, rng)

	// Paper-faithful local solving (random seeding only): local maps over
	// sparse neighborhoods then come out poor, and transform errors
	// propagate — the Figure 24 failure mode.
	distCfg := DefaultDistributedConfig(24, 9)
	distCfg.Local.SeedMDSMap = false
	distRes, err := SolveDistributed(s, distCfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}

	centRes, err := SolveLSS(s, DefaultLSSConfig(9.14), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	aCent, err := eval.Fit(centRes.Positions, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}

	// Some nodes fail to align at all, and/or the aligned ones are much
	// worse than centralized — either form of degradation is acceptable.
	if len(distRes.Localized) >= 2 {
		aDist, err := eval.FitSubset(distRes.Positions, dep.Positions, distRes.Localized)
		if err != nil {
			t.Fatal(err)
		}
		degraded := len(distRes.Localized) < 40 || aDist.AvgError > 2*aCent.AvgError
		if !degraded {
			t.Errorf("distributed on sparse data (%.2f m over %d nodes) did not degrade vs centralized (%.2f m)",
				aDist.AvgError, len(distRes.Localized), aCent.AvgError)
		}
	}
}

// TestDistributedMessageLossReducesCoverage: heavy link loss must reduce the
// set of aligned nodes.
func TestDistributedMessageLossReducesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dep, err := deploy.OffsetGrid(4, 4, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := measure.Generate(dep, 22, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	clean := DefaultDistributedConfig(5, 9)
	resClean, err := SolveDistributed(s, clean, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	lossy := DefaultDistributedConfig(5, 9)
	lossy.Link = radio.LinkModel{LossRate: 0.7}
	resLossy, err := SolveDistributed(s, lossy, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if len(resLossy.Localized) >= len(resClean.Localized) {
		t.Errorf("lossy links localized %d ≥ clean %d", len(resLossy.Localized), len(resClean.Localized))
	}
}

// TestDistributedRootWithoutMapReturnsEmpty: a root with no local map (too
// few neighbors) cannot start alignment.
func TestDistributedRootWithoutMap(t *testing.T) {
	s, _ := measure.NewSet(5)
	// Node 4 has a single neighbor: no local map possible.
	_ = s.Add(4, 0, 5, 1)
	_ = s.Add(0, 1, 5, 1)
	_ = s.Add(1, 2, 5, 1)
	_ = s.Add(0, 2, 5, 1)
	cfg := DefaultDistributedConfig(4, 0)
	res, err := SolveDistributed(s, cfg, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) != 0 {
		t.Errorf("root without local map aligned %v", res.Localized)
	}
}

func TestSolveLocalMapTooSparse(t *testing.T) {
	s, _ := measure.NewSet(4)
	_ = s.Add(0, 1, 5, 1)
	rng := rand.New(rand.NewSource(19))
	if m := solveLocalMap(s, 0, DefaultLSSConfig(0), rng); m != nil {
		t.Error("local map from a single measurement should fail")
	}
}

func TestFitFramesMinShared(t *testing.T) {
	src := map[int]geom.Point{1: geom.Pt(0, 0), 2: geom.Pt(1, 0), 3: geom.Pt(0, 1)}
	tr := geom.Transform{Theta: 0.5, Tx: 2, Ty: -1}
	dst := map[int]geom.Point{1: tr.Apply(src[1]), 2: tr.Apply(src[2]), 3: tr.Apply(src[3])}

	got, ok := fitFrames(src, dst, 3)
	if !ok {
		t.Fatal("fitFrames failed on 3 shared exact points")
	}
	for id, p := range src {
		if got.Apply(p).Dist(dst[id]) > 1e-9 {
			t.Errorf("node %d maps to %v, want %v", id, got.Apply(p), dst[id])
		}
	}

	// Too few shared nodes: must refuse.
	delete(src, 3)
	if _, ok := fitFrames(src, dst, 3); ok {
		t.Error("fitFrames accepted 2 shared points with MinShared=3")
	}
}
