package core

import (
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func completeSet(t *testing.T, truth []geom.Point, noise float64, rng *rand.Rand) *measure.Set {
	t.Helper()
	s, err := measure.NewSet(len(truth))
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			d := truth[i].Dist(truth[j])
			if noise > 0 {
				d += rng.NormFloat64() * noise
				if d <= 0.01 {
					d = 0.01
				}
			}
			if err := s.Add(i, j, d, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestClassicalMDSExact(t *testing.T) {
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10), geom.Pt(5, 3),
	}
	s := completeSet(t, truth, 0, nil)
	pts, err := SolveClassicalMDS(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eval.Fit(pts, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgError > 1e-6 {
		t.Errorf("avg error %g on exact complete distances", a.AvgError)
	}
}

func TestClassicalMDSNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dep, _ := deploy.OffsetGrid(4, 4, 9, 10)
	s := completeSet(t, dep.Positions, 0.33, rng)
	pts, err := SolveClassicalMDS(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eval.Fit(pts, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgError > 0.5 {
		t.Errorf("avg error %.3f m with complete noisy distances", a.AvgError)
	}
}

func TestClassicalMDSRequiresCompleteMatrix(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	s := completeSet(t, truth, 0, nil)
	s.Remove(0, 2)
	if _, err := SolveClassicalMDS(s); err == nil {
		t.Error("want error for missing pair — the LSS motivation")
	}
}

func TestClassicalMDSTooFewNodes(t *testing.T) {
	s, _ := measure.NewSet(2)
	_ = s.Add(0, 1, 5, 1)
	if _, err := SolveClassicalMDS(s); err == nil {
		t.Error("want error for n < 3")
	}
}

func TestMDSMapSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dep, _ := deploy.OffsetGrid(4, 4, 9, 10)
	s, err := measure.Generate(dep, 15, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Connected() {
		t.Fatal("test graph disconnected")
	}
	pts, err := SolveMDSMap(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eval.Fit(pts, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	// Shortest-path completion distorts long distances; MDS-MAP is a rough
	// initializer, not a precision localizer.
	if a.AvgError > 5 {
		t.Errorf("MDS-MAP avg error %.2f m, want < 5 on a well-connected grid", a.AvgError)
	}
}

func TestMDSMapDisconnected(t *testing.T) {
	s, _ := measure.NewSet(4)
	_ = s.Add(0, 1, 5, 1)
	_ = s.Add(2, 3, 5, 1)
	if _, err := SolveMDSMap(s); err == nil {
		t.Error("want error for disconnected graph")
	}
}

// TestLSSBeatsMDSMapOnSparseData: the paper's motivation for LSS over
// MDS-style approaches on sparse range-limited data.
func TestLSSBeatsMDSMapOnSparseData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dep := deploy.PaperGrid()
	s, err := measure.Generate(dep, 15, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Connected() {
		t.Fatal("test graph disconnected")
	}
	mdsPts, err := SolveMDSMap(s)
	if err != nil {
		t.Fatal(err)
	}
	aMDS, err := eval.Fit(mdsPts, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	lss, err := SolveLSS(s, DefaultLSSConfig(9), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	aLSS, err := eval.Fit(lss.Positions, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	if aLSS.AvgError >= aMDS.AvgError {
		t.Errorf("LSS (%.2f m) should beat MDS-MAP (%.2f m) on sparse data", aLSS.AvgError, aMDS.AvgError)
	}
}
