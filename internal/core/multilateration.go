package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"resilientloc/internal/geom"
	"resilientloc/internal/mat"
	"resilientloc/internal/measure"
	"resilientloc/internal/scratch"
)

// MultilatConfig parameterizes anchor-based multilateration (Section 4.1).
type MultilatConfig struct {
	// MinAnchors is the minimum number of anchors with consistent distance
	// measurements required to localize a node (≥3 for an unambiguous
	// planar fix).
	MinAnchors int
	// ConsistencyRadius enables the intersection consistency check of
	// Section 4.1.2 when positive: anchors whose range circles have no
	// intersection point within this radius of another pair's intersection
	// point are discarded (paper example: 1 m).
	ConsistencyRadius float64
	// Progressive, when true, promotes localized nodes to anchors and
	// iterates, the Section 4.1.1 extension ("Once localized, they become
	// anchor nodes and are used to localize the remaining non-anchors").
	Progressive bool
	// MaxIters bounds the per-node Gauss-Newton refinement iterations.
	MaxIters int
	// UseIntersectionMode estimates positions as the mode (densest
	// cluster centroid) of the range-circle intersection points instead of
	// least squares when enough anchors are available — the paper's §4.1.2
	// alternative ("we may take the mode of the intersection points of the
	// remaining anchors instead of minimizing the error if the number of
	// anchors is large enough"). With fewer than MinModeAnchors anchors the
	// solver falls back to least squares.
	UseIntersectionMode bool
	// MinModeAnchors is the anchor count required before the intersection
	// mode is used (default 4).
	MinModeAnchors int
}

// DefaultMultilatConfig returns the configuration of the paper's
// experiments: 3-anchor minimum, 1 m consistency radius, no progressive
// promotion ("we used the original set of anchors only").
func DefaultMultilatConfig() MultilatConfig {
	return MultilatConfig{
		MinAnchors:        3,
		ConsistencyRadius: 1.0,
		Progressive:       false,
		MaxIters:          100,
		MinModeAnchors:    4,
	}
}

// Validate checks the configuration.
func (c MultilatConfig) Validate() error {
	switch {
	case c.MinAnchors < 3:
		return errors.New("core: MinAnchors must be at least 3")
	case c.ConsistencyRadius < 0:
		return errors.New("core: negative ConsistencyRadius")
	case c.MaxIters <= 0:
		return errors.New("core: non-positive MaxIters")
	case c.UseIntersectionMode && c.MinModeAnchors < 3:
		return errors.New("core: MinModeAnchors must be at least 3")
	}
	return nil
}

// MultilatResult is the output of a multilateration run.
type MultilatResult struct {
	// Positions maps localized node index → estimated position, in the
	// anchors' absolute frame. Non-localized nodes are absent (the paper's
	// "boxes with no corresponding cross").
	Positions map[int]geom.Point
	// Localized lists localized non-anchor node indices, ascending.
	Localized []int
	// AvgAnchorsPerNode is the mean number of anchor measurements available
	// per non-anchor node before consistency filtering (paper: 1.47 on the
	// sparse grid, 3.84 augmented).
	AvgAnchorsPerNode float64
}

// anchorObs is one anchor-distance observation for a node being localized.
type anchorObs struct {
	pos    geom.Point
	d      float64
	weight float64
}

// nbr is one precomputed adjacency entry: a neighbor node together with the
// distance and weight of the connecting measurement. Precomputing the
// adjacency once per solve replaces a Neighbors allocation plus a map lookup
// per edge per pass.
type nbr struct {
	node int
	d, w float64
}

// ipt is a range-circle intersection point tagged with the indices of the
// two circles that produced it.
type ipt struct {
	p    geom.Point
	a, b int
}

// mlWorkspace holds the reusable buffers of a multilateration solve. It is
// stashed in the trial arena (surviving Release) so repeated trials on one
// shard reuse the same storage. The zero value is ready to use.
type mlWorkspace struct {
	adj  []nbr // CSR-style flat adjacency, segments sorted by neighbor
	obs  []anchorObs
	pts  []ipt
	seen []int // generation stamps replacing filterConsistent's per-point map
	gen  int
	keep []bool
}

func multilatWS(ws *scratch.Arena) *mlWorkspace {
	// A nil arena builds a fresh workspace per call (Stash's fallback).
	return ws.Stash("core.multilat", func() any { return &mlWorkspace{} }).(*mlWorkspace)
}

// SolveMultilateration localizes every non-anchor node that has distance
// measurements to at least MinAnchors anchors, by least squares over
//
//	argmin Σ_a w(c_a)·(‖p − p_a‖ − d_a)²
//
// (Section 4.1.1). anchors maps node index → known position. With
// Progressive set, newly localized nodes join the anchor set (at reduced
// weight) and localization repeats until a fixpoint.
func SolveMultilateration(set *measure.Set, anchors map[int]geom.Point, cfg MultilatConfig) (*MultilatResult, error) {
	return SolveMultilaterationIn(nil, set, anchors, cfg)
}

// SolveMultilaterationIn is SolveMultilateration with all per-solve working
// storage — the flattened adjacency, observation and consistency-filter
// buffers, and the linear-seed matrices — borrowed from ws (nil ws
// allocates). The returned result is heap-allocated and safe to retain.
func SolveMultilaterationIn(ws *scratch.Arena, set *measure.Set, anchors map[int]geom.Point, cfg MultilatConfig) (*MultilatResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: SolveMultilateration: %w", err)
	}
	if len(anchors) == 0 {
		return nil, errors.New("core: SolveMultilateration: no anchors")
	}
	n := set.N()
	for a := range anchors {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("core: SolveMultilateration: anchor %d out of range", a)
		}
	}

	known := make(map[int]geom.Point, len(anchors))
	weight := make(map[int]float64, len(anchors))
	for a, p := range anchors {
		known[a] = p
		weight[a] = 1
	}

	res := &MultilatResult{Positions: make(map[int]geom.Point)}

	// Flatten the measurement graph into CSR form once: off[i]..off[i+1]
	// delimits node i's entries in w.adj. Each segment is sorted ascending by
	// neighbor index so the passes below visit observations in exactly the
	// order set.Neighbors would have produced.
	w := multilatWS(ws)
	all := set.All()
	off := ws.Ints(n + 1)
	for _, m := range all {
		off[m.Pair.Lo+1]++
		off[m.Pair.Hi+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	if cap(w.adj) < 2*len(all) {
		w.adj = make([]nbr, 2*len(all))
	}
	adj := w.adj[:2*len(all)]
	cur := ws.Ints(n)
	copy(cur, off[:n])
	for _, m := range all {
		adj[cur[m.Pair.Lo]] = nbr{node: m.Pair.Hi, d: m.Distance, w: m.Weight}
		cur[m.Pair.Lo]++
		adj[cur[m.Pair.Hi]] = nbr{node: m.Pair.Lo, d: m.Distance, w: m.Weight}
		cur[m.Pair.Hi]++
	}
	for i := 0; i < n; i++ {
		seg := adj[off[i]:off[i+1]]
		// Insertion sort: node degrees are small and the segments are nearly
		// sorted already (measurements are added in index order).
		for a := 1; a < len(seg); a++ {
			for b := a; b > 0 && seg[b].node < seg[b-1].node; b-- {
				seg[b], seg[b-1] = seg[b-1], seg[b]
			}
		}
	}

	// Count original-anchor availability for the AvgAnchorsPerNode metric.
	nonAnchors := 0
	totalAnchorMeas := 0
	for i := 0; i < n; i++ {
		if _, isAnchor := anchors[i]; isAnchor {
			continue
		}
		nonAnchors++
		for _, nb := range adj[off[i]:off[i+1]] {
			if _, ok := anchors[nb.node]; ok {
				totalAnchorMeas++
			}
		}
	}
	if nonAnchors > 0 {
		res.AvgAnchorsPerNode = float64(totalAnchorMeas) / float64(nonAnchors)
	}

	for {
		// Each pass works from a snapshot of the anchor set: without the
		// Progressive extension, only the original anchors are ever used
		// ("we used the original set of anchors only").
		type fix struct {
			node int
			pos  geom.Point
		}
		var fixes []fix
		for i := 0; i < n; i++ {
			if _, done := known[i]; done {
				continue
			}
			obs := w.obs[:0]
			for _, nb := range adj[off[i]:off[i+1]] {
				ap, ok := known[nb.node]
				if !ok {
					continue
				}
				obs = append(obs, anchorObs{pos: ap, d: nb.d, weight: weight[nb.node] * nb.w})
			}
			w.obs = obs // retain grown capacity for the next node
			if cfg.ConsistencyRadius > 0 {
				obs = filterConsistentIn(w, obs, cfg.ConsistencyRadius)
			}
			if len(obs) < cfg.MinAnchors {
				continue
			}
			var p geom.Point
			var err error
			if cfg.UseIntersectionMode && len(obs) >= cfg.MinModeAnchors {
				p, err = solveNodeIntersectionMode(obs, cfg.ConsistencyRadius)
				if err != nil {
					p, err = solveNode(ws, obs, cfg.MaxIters) // fall back
				}
			} else {
				p, err = solveNode(ws, obs, cfg.MaxIters)
			}
			if err != nil {
				continue // degenerate geometry: leave unlocalized
			}
			fixes = append(fixes, fix{node: i, pos: p})
		}
		for _, f := range fixes {
			known[f.node] = f.pos
			weight[f.node] = 0.5 // localized nodes carry less confidence than surveyed anchors
			res.Positions[f.node] = f.pos
			res.Localized = append(res.Localized, f.node)
		}
		if !cfg.Progressive || len(fixes) == 0 {
			break
		}
	}

	sort.Ints(res.Localized)
	return res, nil
}

// filterConsistent implements the Section 4.1.2 intersection consistency
// check with freshly allocated working storage. See filterConsistentIn.
func filterConsistent(obs []anchorObs, radius float64) []anchorObs {
	return filterConsistentIn(&mlWorkspace{}, obs, radius)
}

// filterConsistentIn implements the Section 4.1.2 intersection consistency
// check. The intersection points of consistent anchors' range circles "form
// a cluster around the node being localized"; we find the largest cluster
// of pairwise circle-intersection points and keep the anchors that
// contribute a point to it. Anchors whose circles have no intersection
// point near the cluster (e.g. the near-collinear anchor of Figure 11) are
// discarded. With fewer than 3 anchors the check is vacuous and obs is
// returned unchanged.
//
// Working storage comes from w, and the surviving observations are
// compacted in place, so the returned slice aliases obs (the write index
// never passes the read index, making the compaction value-identical to
// appending into a fresh slice).
func filterConsistentIn(w *mlWorkspace, obs []anchorObs, radius float64) []anchorObs {
	if len(obs) < 3 {
		return obs
	}
	pts := w.pts[:0]
	for i := 0; i < len(obs); i++ {
		ci := geom.Circle{Center: obs[i].pos, R: obs[i].d}
		for j := i + 1; j < len(obs); j++ {
			cj := geom.Circle{Center: obs[j].pos, R: obs[j].d}
			// Allow near-miss circles to produce a midpoint: measurement
			// error often separates circles that should intersect.
			for _, p := range ci.Intersect(cj, radius/2) {
				pts = append(pts, ipt{p: p, a: i, b: j})
			}
		}
	}
	w.pts = pts
	if len(pts) == 0 {
		// Degenerate: no circles intersect at all; fall back to the
		// unfiltered set rather than discarding everything (the paper keeps
		// suspicious measurements when data is scarce).
		return obs
	}

	// Find the intersection point with the most support: the number of
	// distinct circle pairs contributing a point within radius (the "mode
	// of the intersection points" the paper mentions). The per-point map of
	// contributing pairs is replaced by a generation-stamped array — the
	// stamp is checked before the distance test, exactly where the map
	// membership test sat, so the dedup semantics are unchanged.
	if need := len(obs) * len(obs); cap(w.seen) < need {
		w.seen = make([]int, need)
		w.gen = 0
	}
	seen := w.seen[:len(obs)*len(obs)]
	gen := w.gen
	bestIdx, bestSupport := 0, -1
	for x := range pts {
		support := 0
		gen++
		for y := range pts {
			key := pts[y].a*len(obs) + pts[y].b
			if seen[key] == gen {
				continue
			}
			if pts[x].p.Dist(pts[y].p) <= radius {
				seen[key] = gen
				support++
			}
		}
		if support > bestSupport {
			bestSupport = support
			bestIdx = x
		}
	}
	w.gen = gen
	center := pts[bestIdx].p

	if cap(w.keep) < len(obs) {
		w.keep = make([]bool, len(obs))
	}
	keep := w.keep[:len(obs)]
	clear(keep)
	for _, pt := range pts {
		if pt.p.Dist(center) <= radius {
			keep[pt.a] = true
			keep[pt.b] = true
		}
	}
	out := obs[:0]
	for i, o := range obs {
		if keep[i] {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return obs
	}
	return out
}

// solveNodeIntersectionMode estimates a node's position as the centroid of
// the densest cluster of range-circle intersection points (the paper's
// §4.1.2 "mode of the intersection points" alternative). radius is the
// cluster radius; non-positive values default to 1 m.
func solveNodeIntersectionMode(obs []anchorObs, radius float64) (geom.Point, error) {
	if len(obs) < 3 {
		return geom.Point{}, errors.New("core: intersection mode needs ≥3 anchors")
	}
	if radius <= 0 {
		radius = 1
	}
	circles := make([]geom.Circle, len(obs))
	for i, o := range obs {
		circles[i] = geom.Circle{Center: o.pos, R: o.d}
	}
	pts := geom.IntersectAllPairs(circles, radius/2)
	if len(pts) == 0 {
		return geom.Point{}, errors.New("core: intersection mode: no circle intersections")
	}
	// Densest point: the one with the most neighbors within radius.
	bestIdx, bestCount := 0, -1
	for i, p := range pts {
		count := 0
		for _, q := range pts {
			if p.Dist(q) <= radius {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			bestIdx = i
		}
	}
	if bestCount < 3 {
		return geom.Point{}, errors.New("core: intersection mode: no supporting cluster")
	}
	var c geom.Point
	n := 0
	for _, q := range pts {
		if pts[bestIdx].Dist(q) <= radius {
			c = c.Add(q)
			n++
		}
	}
	return c.Scale(1 / float64(n)), nil
}

// solveNode estimates one node's position from anchor observations: a
// linearized least-squares seed followed by Gauss-Newton refinement of the
// nonlinear range objective. The seed's matrices are borrowed from ws (nil
// ws allocates).
func solveNode(ws *scratch.Arena, obs []anchorObs, maxIters int) (geom.Point, error) {
	seed, err := linearSeedIn(ws, obs)
	if err != nil {
		// Fall back to the weighted centroid of anchors.
		var c geom.Point
		var w float64
		for _, o := range obs {
			c = c.Add(o.pos.Scale(o.weight))
			w += o.weight
		}
		if w == 0 {
			return geom.Point{}, errors.New("core: solveNode: zero total weight")
		}
		seed = c.Scale(1 / w)
	}
	return gaussNewton(obs, seed, maxIters)
}

// linearSeed linearizes the circle equations by subtracting the first:
// ‖p−pa‖² − d_a² = ‖p−p0‖² − d_0² reduces to a linear system in (x, y).
func linearSeed(obs []anchorObs) (geom.Point, error) { return linearSeedIn(nil, obs) }

// linearSeedIn is linearSeed with the design matrix, right-hand side, and
// least-squares intermediates borrowed from ws (nil ws allocates). The rows
// are written straight into the matrix backing — the same values FromRows
// would have copied.
func linearSeedIn(ws *scratch.Arena, obs []anchorObs) (geom.Point, error) {
	if len(obs) < 3 {
		return geom.Point{}, errors.New("core: linearSeed: need 3 observations")
	}
	ref := obs[0]
	a := mat.NewDenseIn(ws, len(obs)-1, 2)
	rhs := ws.Float64s(len(obs) - 1)
	for k, o := range obs[1:] {
		row := a.RowView(k)
		row[0] = 2 * (o.pos.X - ref.pos.X)
		row[1] = 2 * (o.pos.Y - ref.pos.Y)
		rhs[k] = ref.d*ref.d - o.d*o.d +
			o.pos.NormSq() - ref.pos.NormSq()
	}
	x, err := mat.LeastSquaresIn(ws, a, rhs)
	if err != nil {
		return geom.Point{}, err
	}
	p := geom.Pt(x[0], x[1])
	if !p.IsFinite() {
		return geom.Point{}, errors.New("core: linearSeed: non-finite solution")
	}
	return p, nil
}

// gaussNewton refines the weighted nonlinear range least squares from seed.
func gaussNewton(obs []anchorObs, seed geom.Point, maxIters int) (geom.Point, error) {
	p := seed
	for it := 0; it < maxIters; it++ {
		// Normal equations for the 2-unknown Gauss-Newton step.
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for _, o := range obs {
			diff := p.Sub(o.pos)
			dist := diff.Norm()
			if dist < minSeparation {
				// Sitting on an anchor: nudge off to restore a gradient.
				diff = geom.Pt(1e-6, 1e-6)
				dist = diff.Norm()
			}
			r := dist - o.d
			jx := diff.X / dist
			jy := diff.Y / dist
			w := o.weight
			jtj00 += w * jx * jx
			jtj01 += w * jx * jy
			jtj11 += w * jy * jy
			jtr0 += w * jx * r
			jtr1 += w * jy * r
		}
		det := jtj00*jtj11 - jtj01*jtj01
		if math.Abs(det) < 1e-14 {
			return geom.Point{}, errors.New("core: gaussNewton: singular normal equations (collinear anchors)")
		}
		dx := (jtj11*jtr0 - jtj01*jtr1) / det
		dy := (jtj00*jtr1 - jtj01*jtr0) / det
		p = geom.Pt(p.X-dx, p.Y-dy)
		if !p.IsFinite() {
			return geom.Point{}, errors.New("core: gaussNewton: diverged")
		}
		if math.Hypot(dx, dy) < 1e-10 {
			break
		}
	}
	return p, nil
}
