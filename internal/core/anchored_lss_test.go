package core

import (
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

// TestAnchoredLSSAbsoluteFrame: with anchors pinned, the LSS output is in
// the anchors' absolute frame — no alignment needed.
func TestAnchoredLSSAbsoluteFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dep, err := deploy.OffsetGrid(4, 4, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := measure.Generate(dep, 25, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLSSConfig(9)
	cfg.Anchors = map[int]geom.Point{
		0:  dep.Positions[0],
		3:  dep.Positions[3],
		12: dep.Positions[12],
	}
	res, err := SolveLSS(set, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Anchors must be exactly where they were pinned.
	for a, want := range cfg.Anchors {
		if res.Positions[a] != want {
			t.Errorf("anchor %d moved: %v != %v", a, res.Positions[a], want)
		}
	}
	// Non-anchors must be near truth in the absolute frame (no Fit).
	avg, worst, err := eval.AvgErrorAbsolute(positionsToMap(res.Positions), dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	if avg > 0.5 {
		t.Errorf("anchored LSS absolute avg error %.3f m, want < 0.5 (worst %.3f)", avg, worst)
	}
}

func positionsToMap(pts []geom.Point) map[int]geom.Point {
	m := make(map[int]geom.Point, len(pts))
	for i, p := range pts {
		m[i] = p
	}
	return m
}

func TestAnchoredLSSOutOfRangeAnchor(t *testing.T) {
	s, _ := measure.NewSet(4)
	_ = s.Add(0, 1, 5, 1)
	cfg := DefaultLSSConfig(0)
	cfg.Anchors = map[int]geom.Point{9: geom.Pt(0, 0)}
	if _, err := SolveLSS(s, cfg, rand.New(rand.NewSource(5))); err == nil {
		t.Error("want error for out-of-range anchor")
	}
}

// TestAnchoredLSSResolvesReflection: distances alone cannot distinguish a
// configuration from its mirror image; three non-collinear anchors do.
func TestAnchoredLSSResolvesReflection(t *testing.T) {
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(12, 0), geom.Pt(0, 12), // anchors
		geom.Pt(9, 9), geom.Pt(4, 7),
	}
	s, err := measure.NewSet(len(truth))
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			if err := s.Add(i, j, truth[i].Dist(truth[j]), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := DefaultLSSConfig(0)
	cfg.Anchors = map[int]geom.Point{0: truth[0], 1: truth[1], 2: truth[2]}
	res, err := SolveLSS(s, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < len(truth); i++ {
		if d := res.Positions[i].Dist(truth[i]); d > 0.01 {
			t.Errorf("node %d at %v, want %v (err %.4f) — reflection not resolved?",
				i, res.Positions[i], truth[i], d)
		}
	}
}

// TestAnchoredLSSWithMDSSeed exercises the anchor-registration path of the
// MDS-MAP seeding.
func TestAnchoredLSSWithMDSSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dep, err := deploy.OffsetGrid(3, 3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := measure.Generate(dep, 25, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLSSConfig(9)
	cfg.SeedMDSMap = true
	cfg.Anchors = map[int]geom.Point{0: dep.Positions[0], 2: dep.Positions[2], 6: dep.Positions[6]}
	res, err := SolveLSS(set, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	avg, _, err := eval.AvgErrorAbsolute(positionsToMap(res.Positions), dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	if avg > 0.5 {
		t.Errorf("anchored+seeded LSS avg error %.3f m, want < 0.5", avg)
	}
}
