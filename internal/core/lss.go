// Package core implements the paper's localization algorithms: centralized
// least squares scaling (LSS) with a minimum node-spacing soft constraint
// (Section 4.2 — the paper's primary contribution), multilateration with the
// intersection consistency check (Section 4.1), a classical-MDS baseline
// (Section 2/4.2.1), and the distributed LSS variant (Section 4.3).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/scratch"
)

// StepMode selects the gradient-descent stepping rule.
type StepMode int

const (
	// StepAdaptive backtracks when a step would increase the objective and
	// grows the step on success — this library's default, far more robust
	// than a hand-tuned constant.
	StepAdaptive StepMode = iota + 1
	// StepFixed is the paper's literal Eq. (1): x ← x − α·∇E with constant
	// α. Convergence then depends heavily on the soft constraint shaping
	// the landscape, which is exactly the Figure 23 comparison; a small
	// stabilizer halves α only if the objective diverges to non-finite
	// values.
	StepFixed
)

// LSSConfig parameterizes the centralized LSS solver.
type LSSConfig struct {
	// DMin is the minimum node spacing for the soft constraint, meters.
	// Zero disables the constraint (the Figure 19/22 ablation).
	DMin float64
	// WD is the soft-constraint weight (paper Section 4.2.2: wD = 10 with
	// wij = 1).
	WD float64
	// Mode selects the stepping rule; the zero value means StepAdaptive.
	Mode StepMode
	// Step is the gradient-descent step size α of Eq. (1): the initial step
	// in adaptive mode, the constant step in fixed mode.
	Step float64
	// MaxIters bounds the gradient iterations per descent run.
	MaxIters int
	// Restarts is the number of restart rounds after the initial descent.
	// Odd rounds restart from the best configuration so far perturbed by
	// Gaussian noise — the paper's local-minimum escape strategy ("the
	// gradient descent starts each round of minimization with seed
	// positions obtained by perturbing the best results so far") — while
	// even rounds use a fresh random configuration, which escapes deep
	// reflection folds that small perturbations cannot.
	Restarts int
	// PerturbStd is the standard deviation of the restart perturbation,
	// meters. Zero scales it automatically to the measured-distance scale.
	PerturbStd float64
	// Tol ends a descent run once the relative per-iteration improvement
	// stays below it for a sustained stretch (a plateau), rather than on
	// the first small step.
	Tol float64
	// InitSpread is the half-width of the uniform random initial
	// configuration, meters. Zero derives it from the measured distances.
	InitSpread float64
	// SeedMDSMap, when true, additionally tries an MDS-MAP configuration
	// (shortest-path-completed classical MDS) as one descent start and
	// keeps whichever start reaches the lowest objective. This is this
	// library's robustness improvement over the paper's random-only
	// seeding; disable it for paper-faithful ablations (Figures 19/22/23).
	SeedMDSMap bool
	// Anchors optionally pins node positions during minimization: anchored
	// nodes keep their given coordinates exactly, and the solution comes
	// out in the anchors' absolute frame instead of an arbitrary relative
	// one. This extends the paper's anchor-free LSS with the hybrid
	// anchor usage its Section 2 surveys; leave nil for the paper-faithful
	// anchor-free behaviour.
	Anchors map[int]geom.Point
}

// DefaultLSSConfig returns the solver configuration used throughout the
// experiments: the paper's weights (wij=1, wD=10), dmin from the deployment.
func DefaultLSSConfig(dmin float64) LSSConfig {
	return LSSConfig{
		DMin:       dmin,
		WD:         10,
		Step:       0.02,
		MaxIters:   4000,
		Restarts:   14,
		PerturbStd: 0, // auto-scale to the measurement scale
		Tol:        1e-10,
		SeedMDSMap: true,
	}
}

// Validate checks the configuration.
func (c LSSConfig) Validate() error {
	switch {
	case c.DMin < 0:
		return errors.New("core: negative DMin")
	case c.DMin > 0 && c.WD <= 0:
		return errors.New("core: soft constraint enabled with non-positive WD")
	case c.Mode != 0 && c.Mode != StepAdaptive && c.Mode != StepFixed:
		return errors.New("core: invalid StepMode")
	case c.Step <= 0:
		return errors.New("core: non-positive Step")
	case c.MaxIters <= 0:
		return errors.New("core: non-positive MaxIters")
	case c.Restarts < 0:
		return errors.New("core: negative Restarts")
	case c.PerturbStd < 0:
		return errors.New("core: negative PerturbStd")
	case c.Tol < 0:
		return errors.New("core: negative Tol")
	}
	return nil
}

// LSSResult is the output of the centralized LSS solver. Coordinates are in
// an arbitrary rigid frame (translation/rotation/reflection are not
// observable from distances alone); align to ground truth with eval.Fit.
type LSSResult struct {
	Positions []geom.Point
	// Error is the final value of the full objective E (Ew + soft terms).
	Error float64
	// UnconstrainedError is the final Ew alone (comparable across
	// with/without-constraint runs, cf. Figure 23's caption discussion).
	UnconstrainedError float64
	// Iterations is the total number of gradient steps across restarts.
	Iterations int
	// History records the objective at each gradient step of the best
	// descent trajectory (Figure 23's error-vs-epoch curves).
	History []float64
}

// SolveLSS runs centralized least squares scaling over a measurement set:
// minimize
//
//	E = Σ_{dij∈D} wij (‖pi−pj‖ − dij)²
//	  + Σ_{dij∉D} wD (min(‖pi−pj‖, dmin) − dmin)²
//
// by gradient descent with perturbation restarts. The rng seeds the initial
// configuration and restart perturbations.
func SolveLSS(set *measure.Set, cfg LSSConfig, rng *rand.Rand) (*LSSResult, error) {
	return SolveLSSIn(nil, set, cfg, rng)
}

// SolveLSSIn is SolveLSS with every solver workspace — the problem's
// measured/fixed tables, descent point and gradient buffers, objective
// histories, and the MDS-MAP seed path — borrowed from ws (nil ws
// allocates). The returned result's Positions and History are arena-owned:
// valid only until ws's next Release; copy them out to keep them longer.
func SolveLSSIn(ws *scratch.Arena, set *measure.Set, cfg LSSConfig, rng *rand.Rand) (*LSSResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: SolveLSS: %w", err)
	}
	if rng == nil {
		return nil, errors.New("core: SolveLSS: nil rng")
	}
	n := set.N()
	if n < 3 {
		return nil, fmt.Errorf("core: SolveLSS: need at least 3 nodes, have %d", n)
	}
	if set.Len() == 0 {
		return nil, errors.New("core: SolveLSS: empty measurement set")
	}
	for a := range cfg.Anchors {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("core: SolveLSS: anchor %d out of range (n=%d)", a, n)
		}
	}

	prob := newLSSProblem(ws, set, cfg)

	spread := cfg.InitSpread
	if spread <= 0 {
		spread = prob.distanceScale() * math.Sqrt(float64(n))
	}
	perturb := cfg.PerturbStd
	if perturb <= 0 {
		perturb = 0.3 * prob.distanceScale()
	}
	pinAnchors := func(dst []geom.Point) {
		for a, p := range cfg.Anchors {
			dst[a] = p
		}
	}
	randomConfig := func(dst []geom.Point) {
		for i := range dst {
			dst[i] = geom.Pt(rng.Float64()*spread, rng.Float64()*spread)
		}
		pinAnchors(dst)
	}

	cur := ws.Points(n)
	randomConfig(cur)

	best := ws.Points(n)
	copy(best, cur)
	bestErr := prob.objective(best)
	var bestHistory []float64
	totalIters := 0

	if cfg.SeedMDSMap && set.Connected() {
		if seed, err := SolveMDSMapIn(ws, set); err == nil {
			if len(cfg.Anchors) >= 2 {
				// Register the relative MDS map onto the anchor frame so
				// pinning doesn't tear the configuration apart.
				var src, dst []geom.Point
				for a, p := range cfg.Anchors {
					src = append(src, seed[a])
					dst = append(dst, p)
				}
				if tr, _, err := geom.FitRigid(src, dst); err == nil {
					seed = tr.ApplyAll(seed)
				}
			}
			pinAnchors(seed)
			final, history, iters := prob.descend(ws, seed, cfg)
			totalIters += iters
			if e := prob.objective(final); e < bestErr {
				bestErr = e
				copy(best, final)
				bestHistory = history
			}
		}
	}

	for round := 0; round <= cfg.Restarts; round++ {
		switch {
		case round == 0:
			// descend from the initial random configuration
		case round%2 == 1:
			// Perturb the best configuration so far (the paper's rule).
			for i := range cur {
				cur[i] = geom.Pt(
					best[i].X+rng.NormFloat64()*perturb,
					best[i].Y+rng.NormFloat64()*perturb,
				)
			}
			pinAnchors(cur)
		default:
			// Fresh random configuration: escapes reflection folds.
			randomConfig(cur)
		}
		final, history, iters := prob.descend(ws, cur, cfg)
		totalIters += iters
		if e := prob.objective(final); e < bestErr {
			bestErr = e
			copy(best, final)
			bestHistory = history
		}
	}

	return &LSSResult{
		Positions:          best,
		Error:              bestErr,
		UnconstrainedError: prob.weightedStress(best),
		Iterations:         totalIters,
		History:            bestHistory,
	}, nil
}

// lssProblem holds the preprocessed measurement data for fast gradient
// evaluation.
type lssProblem struct {
	n     int
	pairs []measure.Measurement
	// measured[i*n+j] marks pairs with a distance measurement; the soft
	// constraint applies only to unmeasured pairs.
	measured []bool
	// soft lists the unmeasured (i, j) pairs flat — soft[k], soft[k+1] —
	// in the same i-major, j-ascending order the constraint loops used to
	// scan measured in, so objective/gradient walk a precomputed list
	// instead of re-deriving it O(n²) per evaluation.
	soft []int
	// fixed marks anchored nodes whose coordinates never move.
	fixed []bool
	dmin  float64
	wd    float64
}

func newLSSProblem(ws *scratch.Arena, set *measure.Set, cfg LSSConfig) *lssProblem {
	n := set.N()
	p := &lssProblem{
		n:        n,
		pairs:    set.All(),
		measured: ws.Bools(n * n),
		fixed:    ws.Bools(n),
		dmin:     cfg.DMin,
		wd:       cfg.WD,
	}
	for _, m := range p.pairs {
		p.measured[m.Pair.Lo*n+m.Pair.Hi] = true
		p.measured[m.Pair.Hi*n+m.Pair.Lo] = true
	}
	for a := range cfg.Anchors {
		if a >= 0 && a < n {
			p.fixed[a] = true
		}
	}
	if p.dmin > 0 {
		p.soft = ws.IntCap(n * (n - 1))
		for i := 0; i < n; i++ {
			mrow := p.measured[i*n : i*n+n]
			for j := i + 1; j < n; j++ {
				if !mrow[j] {
					p.soft = append(p.soft, i, j)
				}
			}
		}
	}
	return p
}

// distanceScale returns the mean measured distance, used to size the random
// initial configuration.
func (p *lssProblem) distanceScale() float64 {
	if len(p.pairs) == 0 {
		return 1
	}
	var s float64
	for _, m := range p.pairs {
		s += m.Distance
	}
	return s / float64(len(p.pairs))
}

// minSeparation guards divisions by near-zero computed distances.
const minSeparation = 1e-9

// weightedStress computes Ew = Σ wij (‖pi−pj‖ − dij)².
func (p *lssProblem) weightedStress(pos []geom.Point) float64 {
	var e float64
	for _, m := range p.pairs {
		d := pos[m.Pair.Lo].Dist(pos[m.Pair.Hi])
		r := d - m.Distance
		e += m.Weight * r * r
	}
	return e
}

// objective computes the full E including soft-constraint terms.
func (p *lssProblem) objective(pos []geom.Point) float64 {
	e := p.weightedStress(pos)
	if p.dmin <= 0 {
		return e
	}
	for k := 0; k < len(p.soft); k += 2 {
		d := pos[p.soft[k]].Dist(pos[p.soft[k+1]])
		if d < p.dmin {
			r := d - p.dmin
			e += p.wd * r * r
		}
	}
	return e
}

// gradient writes ∇E into grad (len 2n: x components then y components).
func (p *lssProblem) gradient(pos []geom.Point, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	n := p.n
	for _, m := range p.pairs {
		i, j := m.Pair.Lo, m.Pair.Hi
		dx := pos[i].X - pos[j].X
		dy := pos[i].Y - pos[j].Y
		d := math.Hypot(dx, dy)
		if d < minSeparation {
			continue // coincident points: zero gradient direction, skip
		}
		g := 2 * m.Weight * (d - m.Distance) / d
		grad[i] += g * dx
		grad[j] -= g * dx
		grad[n+i] += g * dy
		grad[n+j] -= g * dy
	}
	if p.dmin <= 0 {
		p.zeroFixed(grad)
		return
	}
	for k := 0; k < len(p.soft); k += 2 {
		i, j := p.soft[k], p.soft[k+1]
		dx := pos[i].X - pos[j].X
		dy := pos[i].Y - pos[j].Y
		d := math.Hypot(dx, dy)
		if d >= p.dmin || d < minSeparation {
			continue
		}
		g := 2 * p.wd * (d - p.dmin) / d
		grad[i] += g * dx
		grad[j] -= g * dx
		grad[n+i] += g * dy
		grad[n+j] -= g * dy
	}
	p.zeroFixed(grad)
}

// zeroFixed clears gradient components of anchored nodes so descent never
// moves them.
func (p *lssProblem) zeroFixed(grad []float64) {
	for i, fixed := range p.fixed {
		if fixed {
			grad[i] = 0
			grad[p.n+i] = 0
		}
	}
}

// descend runs one gradient-descent trajectory from start and returns the
// final configuration, the per-iteration objective history, and the number
// of iterations performed. In adaptive mode the step halves when it would
// increase the objective (retrying the step) and grows on success; in fixed
// mode the paper's constant-α rule applies verbatim.
func (p *lssProblem) descend(ws *scratch.Arena, start []geom.Point, cfg LSSConfig) ([]geom.Point, []float64, int) {
	if cfg.Mode == StepFixed {
		return p.descendFixed(ws, start, cfg)
	}
	n := p.n
	cur := ws.Points(n)
	copy(cur, start)
	next := ws.Points(n)
	grad := ws.Float64s(2 * n)
	// +1 so the final append(history, e) below stays in place.
	history := ws.Float64Cap(cfg.MaxIters + 1)

	e := p.objective(cur)
	step := cfg.Step
	plateau := 0
	iters := 0
	for it := 0; it < cfg.MaxIters; it++ {
		iters++
		history = append(history, e)
		p.gradient(cur, grad)

		improved := false
		for attempt := 0; attempt < 40; attempt++ {
			for i := 0; i < n; i++ {
				next[i] = geom.Pt(cur[i].X-step*grad[i], cur[i].Y-step*grad[n+i])
			}
			ne := p.objective(next)
			if ne < e {
				improved = true
				relDrop := (e - ne) / (math.Abs(e) + 1e-30)
				cur, next = next, cur
				e = ne
				step *= 1.5
				if relDrop < cfg.Tol {
					plateau++
				} else {
					plateau = 0
				}
				break
			}
			step /= 2
			if step < 1e-16 {
				break
			}
		}
		if !improved || plateau >= 25 {
			break // converged or stuck on a plateau at every step size
		}
	}
	return cur, append(history, e), iters
}

// descendFixed is the paper's Eq. (1) verbatim: constant-step gradient
// descent. The only concession to float safety is halving the step when the
// objective stops being finite (a divergence the paper's hand-tuned α
// avoided by construction).
func (p *lssProblem) descendFixed(ws *scratch.Arena, start []geom.Point, cfg LSSConfig) ([]geom.Point, []float64, int) {
	n := p.n
	cur := ws.Points(n)
	copy(cur, start)
	grad := ws.Float64s(2 * n)
	// +1 so the final append(history, e) below stays in place.
	history := ws.Float64Cap(cfg.MaxIters + 1)

	step := cfg.Step
	e := p.objective(cur)
	iters := 0
	for it := 0; it < cfg.MaxIters; it++ {
		iters++
		history = append(history, e)
		p.gradient(cur, grad)
		for i := 0; i < n; i++ {
			cur[i] = geom.Pt(cur[i].X-step*grad[i], cur[i].Y-step*grad[n+i])
		}
		e = p.objective(cur)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			// Diverged: rewind the step and continue more cautiously.
			for i := 0; i < n; i++ {
				cur[i] = geom.Pt(cur[i].X+step*grad[i], cur[i].Y+step*grad[n+i])
			}
			step /= 2
			e = p.objective(cur)
			if step < 1e-15 {
				break
			}
		}
	}
	return cur, append(history, e), iters
}
