package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/network"
	"resilientloc/internal/radio"
)

// DistributedConfig parameterizes the distributed LSS algorithm of Section
// 4.3: local localization, pairwise coordinate-system transforms, and
// flooding alignment.
type DistributedConfig struct {
	// Root is the node whose local frame becomes the global frame (the
	// paper's Figure 24 uses the node at (27, 36)).
	Root int
	// Local is the LSS configuration for per-node local maps. Restarts and
	// MaxIters should be modest: local problems are tiny.
	Local LSSConfig
	// MinShared is the minimum number of shared neighbors required to
	// compute the transform between two nodes' local frames. It must be at
	// least 3: two shared points cannot disambiguate the reflection factor.
	MinShared int
	// Link models message loss during the data exchanges and the alignment
	// flood.
	Link radio.LinkModel
}

// DefaultDistributedConfig returns the configuration used by the Figure
// 24/25 experiments.
func DefaultDistributedConfig(root int, dmin float64) DistributedConfig {
	local := DefaultLSSConfig(dmin)
	local.MaxIters = 600
	local.Restarts = 6
	return DistributedConfig{
		Root:      root,
		Local:     local,
		MinShared: 3,
	}
}

// Validate checks the configuration.
func (c DistributedConfig) Validate() error {
	if c.Root < 0 {
		return errors.New("core: negative Root")
	}
	if c.MinShared < 3 {
		return errors.New("core: MinShared must be at least 3 (reflection ambiguity)")
	}
	if err := c.Local.Validate(); err != nil {
		return err
	}
	return c.Link.Validate()
}

// DistributedResult is the output of the distributed algorithm.
type DistributedResult struct {
	// Positions maps node → estimated position in the root's local frame.
	// Nodes that never aligned (no local map, no usable transform chain, or
	// lost flood messages) are absent.
	Positions map[int]geom.Point
	// Localized lists the aligned nodes, ascending.
	Localized []int
	// LocalMapSizes records, per node, how many nodes its local map placed
	// (diagnostic for sparse neighborhoods).
	LocalMapSizes map[int]int
	// Transforms counts the node pairs for which a frame transform could be
	// computed.
	Transforms int
	// MessagesSent is the total transmissions attempted on the simulated
	// network (two local exchanges plus the alignment flood).
	MessagesSent int
}

// alignPayload is what the flood carries: the global frame (origin and axis
// vectors) expressed in the *sender's* local coordinate system, per the
// paper's alignment step.
type alignPayload struct {
	origin geom.Point
	ex     geom.Point
	ey     geom.Point
}

// SolveDistributed runs the three-step distributed LSS algorithm over a
// measurement set. The rng drives local-solver seeding and link loss.
func SolveDistributed(set *measure.Set, cfg DistributedConfig, rng *rand.Rand) (*DistributedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: SolveDistributed: %w", err)
	}
	if rng == nil {
		return nil, errors.New("core: SolveDistributed: nil rng")
	}
	n := set.N()
	if cfg.Root >= n {
		return nil, fmt.Errorf("core: SolveDistributed: root %d out of range (n=%d)", cfg.Root, n)
	}

	// The communication topology is the ranging graph: nodes exchange data
	// with the neighbors they have distance measurements to.
	var edges [][2]int
	for _, m := range set.All() {
		edges = append(edges, [2]int{m.Pair.Lo, m.Pair.Hi})
	}
	nw, err := network.New(n, edges, cfg.Link, rng)
	if err != nil {
		return nil, err
	}

	// Step 0 (first local exchange): each node broadcasts its measurement
	// list so neighbors know the distances among their shared neighborhood.
	// In this simulation the set is global, so the exchange only costs
	// messages; lost messages are modeled at the map/transform level by the
	// second exchange below.
	network.LocalExchange(nw, func(i int) struct{} { return struct{}{} })

	// Step 1: local localization. Each node solves LSS over itself and its
	// neighbors.
	localMaps := make(map[int]map[int]geom.Point, n)
	for i := 0; i < n; i++ {
		m := solveLocalMap(set, i, cfg.Local, rng)
		if m != nil {
			localMaps[i] = m
		}
	}

	// Second local exchange: nodes broadcast their local maps. A lost
	// message means the receiver cannot compute a transform for that edge.
	heard := network.LocalExchange(nw, func(i int) map[int]geom.Point { return localMaps[i] })

	// Step 2: pairwise transforms. For each topology edge (i, j) compute
	// T(j→i): the transform from j's local frame into i's, via shared
	// neighbors present in both maps.
	type edgeKey struct{ from, to int }
	transforms := make(map[edgeKey]geom.Transform)
	for i := 0; i < n; i++ {
		mi := localMaps[i]
		if mi == nil {
			continue
		}
		for j, mj := range heard[i] {
			if mj == nil {
				continue
			}
			t, ok := fitFrames(mj, mi, cfg.MinShared)
			if !ok {
				continue
			}
			transforms[edgeKey{from: j, to: i}] = t
		}
	}

	res := &DistributedResult{
		Positions:     make(map[int]geom.Point),
		LocalMapSizes: make(map[int]int, len(localMaps)),
		Transforms:    len(transforms),
	}
	for i, m := range localMaps {
		res.LocalMapSizes[i] = len(m)
	}

	// Step 3: alignment flood from the root. The payload is the global
	// frame (origin + axes) expressed in the sender's local frame; each
	// receiver re-expresses it in its own frame via the pairwise transform,
	// computes its own global position, and forwards.
	if localMaps[cfg.Root] == nil {
		return res, nil // root cannot start the flood
	}
	frames := make(map[int]alignPayload, n)
	_, err = network.Flood(nw, cfg.Root, func(node, from int, in alignPayload) (alignPayload, bool) {
		var frame alignPayload
		if from < 0 {
			// Root: the global frame is its local frame.
			frame = alignPayload{origin: geom.Pt(0, 0), ex: geom.Pt(1, 0), ey: geom.Pt(0, 1)}
		} else {
			t, ok := transforms[edgeKey{from: from, to: node}]
			if !ok {
				return alignPayload{}, false // no transform: cannot align or forward
			}
			frame = alignPayload{
				origin: t.Apply(in.origin),
				ex:     t.ApplyVector(in.ex),
				ey:     t.ApplyVector(in.ey),
			}
		}
		self, ok := localMaps[node][node]
		if !ok {
			return alignPayload{}, false
		}
		rel := self.Sub(frame.origin)
		res.Positions[node] = geom.Pt(rel.Dot(frame.ex), rel.Dot(frame.ey))
		frames[node] = frame
		return frame, true
	})
	if err != nil {
		return nil, err
	}

	res.MessagesSent = nw.MessagesSent()
	for i := range res.Positions {
		res.Localized = append(res.Localized, i)
	}
	sort.Ints(res.Localized)
	return res, nil
}

// solveLocalMap builds node i's local relative map: LSS over i and its
// neighbors using every measurement among them. It returns nil when the
// neighborhood is too small or the local solve fails.
func solveLocalMap(set *measure.Set, i int, cfg LSSConfig, rng *rand.Rand) map[int]geom.Point {
	members := append([]int{i}, set.Neighbors(i)...)
	if len(members) < 3 {
		return nil
	}
	index := make(map[int]int, len(members))
	for k, id := range members {
		index[id] = k
	}
	sub, err := measure.NewSet(len(members))
	if err != nil {
		return nil
	}
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			if m, ok := set.Get(members[a], members[b]); ok {
				if err := sub.Add(a, b, m.Distance, m.Weight); err != nil {
					return nil
				}
			}
		}
	}
	if sub.Len() < len(members) { // fewer measurements than nodes: hopeless
		return nil
	}
	sol, err := SolveLSS(sub, cfg, rng)
	if err != nil {
		return nil
	}
	out := make(map[int]geom.Point, len(members))
	for k, id := range members {
		out[id] = sol.Positions[k]
	}
	return out
}

// fitFrames computes the rigid transform mapping src-frame coordinates to
// dst-frame coordinates using the nodes present in both maps (the shared
// neighbors C of Section 4.3.1). It reports failure when fewer than
// minShared nodes are shared.
func fitFrames(src, dst map[int]geom.Point, minShared int) (geom.Transform, bool) {
	var from, to []geom.Point
	for id, p := range src {
		if q, ok := dst[id]; ok {
			from = append(from, p)
			to = append(to, q)
		}
	}
	if len(from) < minShared {
		return geom.Transform{}, false
	}
	t, _, err := geom.FitRigid(from, to)
	if err != nil {
		return geom.Transform{}, false
	}
	return t, true
}
