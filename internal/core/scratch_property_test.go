package core

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/scratch"
)

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
			math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) {
			return false
		}
	}
	return true
}

// TestSolveLSSInMatchesFresh: the arena-backed solver must reproduce the
// allocating solver bit for bit — positions, objective, and descent history
// — across randomized deployments, with the arena reused between solves.
func TestSolveLSSInMatchesFresh(t *testing.T) {
	ws := scratch.New()
	for iter := 0; iter < 4; iter++ {
		rng := rand.New(rand.NewSource(int64(900 + iter)))
		dep := deploy.Town(rng)
		set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultLSSConfig(9)
		cfg.Restarts = 1
		cfg.MaxIters = 300
		want, err := SolveLSS(set, cfg, rand.New(rand.NewSource(int64(7000+iter))))
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveLSSIn(ws, set, cfg, rand.New(rand.NewSource(int64(7000+iter))))
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want.Positions, got.Positions) {
			t.Fatalf("iter %d: arena positions differ from fresh", iter)
		}
		if math.Float64bits(want.Error) != math.Float64bits(got.Error) {
			t.Fatalf("iter %d: final E %v != %v", iter, got.Error, want.Error)
		}
		if len(want.History) != len(got.History) {
			t.Fatalf("iter %d: history length %d != %d", iter, len(got.History), len(want.History))
		}
		for i := range want.History {
			if math.Float64bits(want.History[i]) != math.Float64bits(got.History[i]) {
				t.Fatalf("iter %d: history[%d] differs", iter, i)
			}
		}
		ws.Release()
	}
}

// TestSolveMultilaterationInMatchesFresh: precomputed adjacency, reused
// observation buffers, and the stamp-based consistency filter must leave
// every localized position bit-identical to the fresh-allocation solver.
func TestSolveMultilaterationInMatchesFresh(t *testing.T) {
	ws := scratch.New()
	for iter := 0; iter < 8; iter++ {
		rng := rand.New(rand.NewSource(int64(1100 + iter)))
		dep := deploy.Town(rng)
		set, err := measure.Generate(dep, 22, measure.GaussianNoise, rng)
		if err != nil {
			t.Fatal(err)
		}
		anchors := make(map[int]geom.Point, len(dep.Anchors))
		for _, a := range dep.Anchors {
			anchors[a] = dep.Positions[a]
		}
		cfg := DefaultMultilatConfig()
		cfg.Progressive = iter%2 == 0
		want, err := SolveMultilateration(set, anchors, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMultilaterationIn(ws, set, anchors, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Localized) != len(got.Localized) {
			t.Fatalf("iter %d: localized %d != %d", iter, len(got.Localized), len(want.Localized))
		}
		for i := range want.Localized {
			if want.Localized[i] != got.Localized[i] {
				t.Fatalf("iter %d: localized[%d] %d != %d", iter, i, got.Localized[i], want.Localized[i])
			}
		}
		for n, wp := range want.Positions {
			gp, ok := got.Positions[n]
			if !ok {
				t.Fatalf("iter %d: node %d missing from arena result", iter, n)
			}
			if math.Float64bits(wp.X) != math.Float64bits(gp.X) ||
				math.Float64bits(wp.Y) != math.Float64bits(gp.Y) {
				t.Fatalf("iter %d: node %d position %v != %v", iter, n, gp, wp)
			}
		}
		if math.Float64bits(want.AvgAnchorsPerNode) != math.Float64bits(got.AvgAnchorsPerNode) {
			t.Fatalf("iter %d: AvgAnchorsPerNode differs", iter)
		}
		ws.Release()
	}
}

// TestSolveMDSMapInMatchesFresh covers the shortest-path completion and the
// double-centered eigendecomposition on arena workspaces.
func TestSolveMDSMapInMatchesFresh(t *testing.T) {
	ws := scratch.New()
	for iter := 0; iter < 6; iter++ {
		rng := rand.New(rand.NewSource(int64(1300 + iter)))
		dep := deploy.PaperGrid()
		set, err := measure.Generate(dep, 15, 0.33, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Connected() {
			continue
		}
		want, err := SolveMDSMap(set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMDSMapIn(ws, set)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(want, got) {
			t.Fatalf("iter %d: arena MDS-MAP differs from fresh", iter)
		}
		ws.Release()
	}
}
