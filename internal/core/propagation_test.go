package core

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

// TestTransformErrorGrowsWithHopCount verifies the Figure 24 mechanism
// quantitatively: in a long chain of local frames with slightly noisy
// pairwise transforms, the alignment error of a node grows with its hop
// distance from the root ("large localization errors which were amplified
// and propagated").
func TestTransformErrorGrowsWithHopCount(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	// A long, narrow strip: 2×12 grid so the flood forms long chains.
	dep, err := deploy.OffsetGrid(2, 12, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Noisy short-range measurements keep local maps imperfect.
	set, err := measure.Generate(dep, 15, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDistributedConfig(0, 9) // root at the west end
	cfg.Local.SeedMDSMap = false
	res, err := SolveDistributed(set, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Localized) < dep.N()/2 {
		t.Skipf("only %d nodes aligned; chain too broken for the gradient test", len(res.Localized))
	}
	// The distributed output is in the root's local frame, which is itself
	// an arbitrary rigid frame. Register the root's neighborhood (the first
	// few columns) onto truth, then measure how the residual grows with
	// column index.
	var nearIdx []int
	for _, i := range res.Localized {
		if dep.Positions[i].X <= 30 {
			nearIdx = append(nearIdx, i)
		}
	}
	if len(nearIdx) < 3 {
		t.Skip("not enough near-root nodes aligned")
	}
	var src, dst []geom.Point
	for _, i := range nearIdx {
		src = append(src, res.Positions[i])
		dst = append(dst, dep.Positions[i])
	}
	tr, _, err := geom.FitRigid(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Mean error near the root (x ≤ 30) vs far from it (x ≥ 80).
	var nearErr, farErr float64
	var nearN, farN int
	for _, i := range res.Localized {
		e := tr.Apply(res.Positions[i]).Dist(dep.Positions[i])
		switch {
		case dep.Positions[i].X <= 30:
			nearErr += e
			nearN++
		case dep.Positions[i].X >= 80:
			farErr += e
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("insufficient coverage at both ends")
	}
	nearErr /= float64(nearN)
	farErr /= float64(farN)
	if farErr < nearErr {
		t.Errorf("alignment error should grow along the chain: near %.3f m vs far %.3f m", nearErr, farErr)
	}
}

// TestDistributedMatchesCentralizedOnDenseData: with rich measurements the
// distributed result approaches the centralized one (the paper's goal state
// for future work, demonstrated by Figure 25).
func TestDistributedMatchesCentralizedOnDenseData(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	dep, err := deploy.OffsetGrid(4, 4, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := measure.Generate(dep, 25, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := SolveLSS(set, DefaultLSSConfig(9), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(set, DefaultDistributedConfig(5, 9), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Localized) != dep.N() {
		t.Fatalf("distributed aligned %d of %d on dense data", len(dist.Localized), dep.N())
	}
	// Compare internal consistency: per-pair distance residuals of both
	// solutions against the measurements.
	stress := func(pos func(i int) geom.Point) float64 {
		var s float64
		for _, m := range set.All() {
			r := pos(m.Pair.Lo).Dist(pos(m.Pair.Hi)) - m.Distance
			s += r * r
		}
		return math.Sqrt(s / float64(set.Len()))
	}
	centStress := stress(func(i int) geom.Point { return cent.Positions[i] })
	distStress := stress(func(i int) geom.Point { return dist.Positions[i] })
	if distStress > 3*centStress+0.5 {
		t.Errorf("distributed RMS stress %.3f m far above centralized %.3f m on dense data", distStress, centStress)
	}
}
