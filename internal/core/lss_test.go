package core

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

func TestLSSConfigValidate(t *testing.T) {
	if err := DefaultLSSConfig(9).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []LSSConfig{
		{DMin: -1, Step: 0.1, MaxIters: 10},
		{DMin: 9, WD: 0, Step: 0.1, MaxIters: 10},
		{Step: 0, MaxIters: 10},
		{Step: 0.1, MaxIters: 0},
		{Step: 0.1, MaxIters: 10, Restarts: -1},
		{Step: 0.1, MaxIters: 10, PerturbStd: -1},
		{Step: 0.1, MaxIters: 10, Tol: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSolveLSSInputErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := measure.NewSet(5)
	_ = s.Add(0, 1, 5, 1)
	if _, err := SolveLSS(s, DefaultLSSConfig(0), nil); err == nil {
		t.Error("want error for nil rng")
	}
	tiny, _ := measure.NewSet(2)
	_ = tiny.Add(0, 1, 5, 1)
	if _, err := SolveLSS(tiny, DefaultLSSConfig(0), rng); err == nil {
		t.Error("want error for n < 3")
	}
	empty, _ := measure.NewSet(5)
	if _, err := SolveLSS(empty, DefaultLSSConfig(0), rng); err == nil {
		t.Error("want error for empty set")
	}
	badCfg := DefaultLSSConfig(0)
	badCfg.Step = 0
	if _, err := SolveLSS(s, badCfg, rng); err == nil {
		t.Error("want error for invalid config")
	}
}

// TestLSSExactSquare: four nodes in a square with all six exact distances
// must be recovered to machine-ish precision (up to rigid motion).
func TestLSSExactSquare(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}
	s, _ := measure.NewSet(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = s.Add(i, j, truth[i].Dist(truth[j]), 1)
		}
	}
	cfg := DefaultLSSConfig(0)
	rng := rand.New(rand.NewSource(5))
	res, err := SolveLSS(s, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eval.Fit(res.Positions, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgError > 0.01 {
		t.Errorf("avg error %.4f m on exact data, want ≈0", a.AvgError)
	}
	if res.Error > 1e-3 {
		t.Errorf("final stress %.6f, want ≈0", res.Error)
	}
}

// TestLSSNoisyCompleteGraph: a 4x4 grid with complete noisy measurements
// should localize to well under the noise scale per node.
func TestLSSNoisyCompleteGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dep, err := deploy.OffsetGrid(4, 4, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := measure.Generate(dep, 1000, 0.33, rng) // no cutoff: complete graph
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveLSS(s, DefaultLSSConfig(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eval.Fit(res.Positions, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgError > 0.3 {
		t.Errorf("avg error %.3f m with complete noisy graph, want < 0.3", a.AvgError)
	}
}

// TestLSSSoftConstraintHelpsOnSparseData reproduces the paper's central
// ablation on *sparse* measurements (Figures 18 vs 19): with ~5 measured
// neighbors per node, LSS with the minimum-spacing soft constraint converges
// near truth while the unconstrained solver collapses into folds.
func TestLSSSoftConstraintHelpsOnSparseData(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dep := deploy.PaperGrid()
	dep.Positions = dep.Positions[:47]
	s, err := measure.Generate(dep, 22, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	measure.Sparsify(s, 247, rng) // the paper's 247 measured pairs
	if !s.Connected() {
		t.Skip("sparsified graph disconnected for this seed")
	}

	// Paper-faithful seeding (random-only) isolates the constraint's effect.
	cfgWith := DefaultLSSConfig(9.14)
	cfgWith.SeedMDSMap = false
	cfgWithout := DefaultLSSConfig(0)
	cfgWithout.SeedMDSMap = false
	resWith, err := SolveLSS(s, cfgWith, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := SolveLSS(s, cfgWithout, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}

	aWith, err := eval.Fit(resWith.Positions, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}
	aWithout, err := eval.Fit(resWithout.Positions, dep.Positions)
	if err != nil {
		t.Fatal(err)
	}

	if aWith.AvgError > 2.5 {
		t.Errorf("constrained avg error %.2f m, want ≤ 2.5 (paper: 2.2)", aWith.AvgError)
	}
	if aWithout.AvgError < 3*aWith.AvgError {
		t.Errorf("unconstrained (%.2f m) should be far worse than constrained (%.2f m) — paper: 16.6 vs 2.2",
			aWithout.AvgError, aWith.AvgError)
	}
}

// TestLSSFixedStepConstraintSpeedsConvergence reproduces the Figure 22/23
// phenomenon on the dense town: under the paper's literal fixed-step rule
// the soft constraint lets descent reach the global structure while the
// unconstrained objective stalls in a fold.
func TestLSSFixedStepConstraintSpeedsConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dep := deploy.Town(rng)
	s, err := measure.Generate(dep, 22, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(dmin float64) float64 {
		cfg := DefaultLSSConfig(dmin)
		cfg.Mode = StepFixed
		cfg.Step = 0.008
		cfg.Restarts = 4
		cfg.MaxIters = 3000
		cfg.SeedMDSMap = false // paper-faithful random seeding
		res, err := SolveLSS(s, cfg, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		a, err := eval.Fit(res.Positions, dep.Positions)
		if err != nil {
			t.Fatal(err)
		}
		return a.AvgError
	}
	with := run(9)
	without := run(0)
	if with > 1.0 {
		t.Errorf("fixed-step constrained avg error %.2f m, want ≤ 1 (paper: 0.55)", with)
	}
	if without < 3*with {
		t.Errorf("fixed-step unconstrained (%.2f m) should be far worse than constrained (%.2f m) — paper: 13.6 vs 0.55",
			without, with)
	}
}

// TestLSSWeightsDownweightBadMeasurement: an outlier distance with low
// weight must distort the solution less than the same outlier at full
// weight.
func TestLSSWeightsDownweightBadMeasurement(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10), geom.Pt(5, 5)}
	build := func(outlierWeight float64) *measure.Set {
		s, _ := measure.NewSet(5)
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				d := truth[i].Dist(truth[j])
				w := 1.0
				if i == 0 && j == 4 {
					d += 6 // gross outlier on one measurement
					w = outlierWeight
				}
				_ = s.Add(i, j, d, w)
			}
		}
		return s
	}
	run := func(s *measure.Set) float64 {
		res, err := SolveLSS(s, DefaultLSSConfig(0), rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		a, err := eval.Fit(res.Positions, truth)
		if err != nil {
			t.Fatal(err)
		}
		return a.AvgError
	}
	full := run(build(1))
	down := run(build(0.05))
	if down >= full {
		t.Errorf("downweighted outlier error %.3f not better than full-weight %.3f", down, full)
	}
}

// TestLSSHistoryMonotone: within the best descent trajectory the recorded
// objective must be non-increasing (the adaptive step never accepts an
// uphill move).
func TestLSSHistoryMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dep, _ := deploy.OffsetGrid(3, 3, 9, 10)
	s, err := measure.Generate(dep, 15, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveLSS(s, DefaultLSSConfig(9), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Fatalf("history too short: %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-9 {
			t.Fatalf("history increased at step %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
	if res.Iterations <= 0 {
		t.Error("no iterations recorded")
	}
}

// TestLSSDeterminism: identical seeds yield identical results.
func TestLSSDeterminism(t *testing.T) {
	dep, _ := deploy.OffsetGrid(3, 3, 9, 10)
	s, err := measure.Generate(dep, 15, 0.33, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := SolveLSS(s, DefaultLSSConfig(9), rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveLSS(s, DefaultLSSConfig(9), rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Error != r2.Error {
		t.Errorf("errors differ: %v vs %v", r1.Error, r2.Error)
	}
	for i := range r1.Positions {
		if r1.Positions[i] != r2.Positions[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

// TestLSSUnconstrainedErrorIsSubsetOfTotal: E ≥ Ew always (soft terms are
// squares), per the paper's Figure 23 discussion.
func TestLSSUnconstrainedErrorIsSubsetOfTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dep, _ := deploy.OffsetGrid(3, 3, 9, 10)
	s, err := measure.Generate(dep, 15, 0.33, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveLSS(s, DefaultLSSConfig(9), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnconstrainedError > res.Error+1e-9 {
		t.Errorf("Ew=%v > E=%v — soft terms must be non-negative", res.UnconstrainedError, res.Error)
	}
}

// TestLSSScaleInvarianceOfGradientGuard: coincident initial points must not
// produce NaNs (division-by-zero guard).
func TestLSSCoincidentStartIsSafe(t *testing.T) {
	s, _ := measure.NewSet(3)
	_ = s.Add(0, 1, 5, 1)
	_ = s.Add(1, 2, 5, 1)
	_ = s.Add(0, 2, 5, 1)
	cfg := DefaultLSSConfig(2)
	cfg.InitSpread = 1e-12 // all points effectively coincident at start
	res, err := SolveLSS(s, cfg, rand.New(rand.NewSource(37)))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Positions {
		if !p.IsFinite() {
			t.Fatalf("position %d is not finite: %v", i, p)
		}
	}
	if math.IsNaN(res.Error) {
		t.Error("objective is NaN")
	}
}
