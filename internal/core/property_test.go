package core

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
)

// Property: the LSS objective is invariant under rigid motion of the
// configuration (distances are all that matter), so the reported final
// objective must match a recomputation after transforming the output.
func TestPropertyLSSObjectiveRigidInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dep, err := deploy.OffsetGrid(3, 3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := measure.Generate(dep, 20, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLSSConfig(9)
	prob := newLSSProblem(nil, set, cfg)
	for trial := 0; trial < 50; trial++ {
		pts := make([]geom.Point, dep.N())
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64()*30, rng.NormFloat64()*30)
		}
		e := prob.objective(pts)
		tr := geom.Transform{
			Theta: rng.Float64() * 2 * math.Pi,
			Tx:    rng.NormFloat64() * 100,
			Ty:    rng.NormFloat64() * 100,
			Flip:  rng.Intn(2) == 1,
		}
		e2 := prob.objective(tr.ApplyAll(pts))
		if math.Abs(e-e2) > 1e-6*(1+e) {
			t.Fatalf("objective not rigid-invariant: %g vs %g", e, e2)
		}
	}
}

// Property: the objective is non-negative and zero exactly on a
// configuration realizing all measured distances with no constraint
// violations.
func TestPropertyLSSObjectiveNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	dep, err := deploy.OffsetGrid(3, 3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Exact distances: the ground-truth configuration has zero stress.
	set, err := measure.Generate(dep, 1000, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	prob := newLSSProblem(nil, set, DefaultLSSConfig(8))
	if e := prob.objective(dep.Positions); e > 1e-9 {
		t.Errorf("objective at truth = %g, want 0", e)
	}
	for trial := 0; trial < 50; trial++ {
		pts := make([]geom.Point, dep.N())
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64()*30, rng.NormFloat64()*30)
		}
		if e := prob.objective(pts); e < 0 {
			t.Fatalf("negative objective %g", e)
		}
	}
}

// Property: the analytic gradient matches finite differences at random
// configurations (with and without the soft constraint).
func TestPropertyLSSGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	dep, err := deploy.OffsetGrid(2, 3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := measure.Generate(dep, 15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, dmin := range []float64{0, 9} {
		prob := newLSSProblem(nil, set, DefaultLSSConfig(dmin))
		n := dep.N()
		for trial := 0; trial < 20; trial++ {
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.NormFloat64()*20, rng.NormFloat64()*20)
			}
			grad := make([]float64, 2*n)
			prob.gradient(pts, grad)
			const h = 1e-6
			for i := 0; i < n; i++ {
				for _, axis := range []int{0, 1} {
					bump := func(delta float64) float64 {
						q := append([]geom.Point(nil), pts...)
						if axis == 0 {
							q[i] = geom.Pt(pts[i].X+delta, pts[i].Y)
						} else {
							q[i] = geom.Pt(pts[i].X, pts[i].Y+delta)
						}
						return prob.objective(q)
					}
					fd := (bump(h) - bump(-h)) / (2 * h)
					got := grad[i]
					if axis == 1 {
						got = grad[n+i]
					}
					if math.Abs(fd-got) > 1e-3*(1+math.Abs(fd)) {
						t.Fatalf("dmin=%v node %d axis %d: grad %g vs FD %g", dmin, i, axis, got, fd)
					}
				}
			}
		}
	}
}

// Property: eval.Fit error is invariant when the estimates are pre-mangled
// by an arbitrary rigid transform (alignment must undo it).
func TestPropertyFitUndoesRigidMangling(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	truth := make([]geom.Point, 12)
	for i := range truth {
		truth[i] = geom.Pt(rng.NormFloat64()*40, rng.NormFloat64()*40)
	}
	est := make([]geom.Point, len(truth))
	for i := range est {
		est[i] = truth[i].Add(geom.Pt(rng.NormFloat64()*0.5, rng.NormFloat64()*0.5))
	}
	base, err := eval.Fit(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		tr := geom.Transform{
			Theta: rng.Float64() * 2 * math.Pi,
			Tx:    rng.NormFloat64() * 200,
			Ty:    rng.NormFloat64() * 200,
			Flip:  rng.Intn(2) == 1,
		}
		mangled, err := eval.Fit(tr.ApplyAll(est), truth)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mangled.AvgError-base.AvgError) > 1e-6*(1+base.AvgError) {
			t.Fatalf("trial %d: avg error changed under rigid mangling: %g vs %g",
				trial, mangled.AvgError, base.AvgError)
		}
	}
}
