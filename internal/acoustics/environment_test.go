package acoustics

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnvironmentPresetsValid(t *testing.T) {
	for _, e := range []Environment{Grass(), Pavement(), Urban(), Wooded(), OriginalBuzzer(Grass())} {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestEnvironmentValidateRejectsBad(t *testing.T) {
	base := Grass()
	mutations := []func(*Environment){
		func(e *Environment) { e.RefDistance = 0 },
		func(e *Environment) { e.DetectSlope = 0 },
		func(e *Environment) { e.PFalse = 1.5 },
		func(e *Environment) { e.EchoProb = -0.1 },
		func(e *Environment) { e.DirectBlockedProb = 2 },
		func(e *Environment) { e.ExcessAttenuation = -1 },
		func(e *Environment) { e.EchoExtraPathMean = -1 },
	}
	for i, mut := range mutations {
		e := base
		mut(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}

func TestReceivedLevelMonotonicallyDecreasing(t *testing.T) {
	for _, e := range []Environment{Grass(), Pavement(), Urban(), Wooded()} {
		prev := math.Inf(1)
		for d := 0.1; d <= 60; d += 0.5 {
			l := e.ReceivedLevel(d)
			if l > prev {
				t.Fatalf("%s: level increased at %.1f m", e.Name, d)
			}
			prev = l
		}
	}
}

func TestReceivedLevelClampsBelowRef(t *testing.T) {
	e := Grass()
	if e.ReceivedLevel(0.01) != e.SourceLevel {
		t.Error("level below reference distance should equal source level")
	}
	if e.ReceivedLevel(e.RefDistance) != e.SourceLevel {
		t.Error("level at reference distance should equal source level")
	}
}

func TestPDetectLogistic(t *testing.T) {
	e := Grass()
	mid := e.PDetect(e.DetectMidSNR)
	if math.Abs(mid-0.5) > 1e-9 {
		t.Errorf("PDetect(mid) = %v, want 0.5", mid)
	}
	if hi := e.PDetect(e.DetectMidSNR + 20); hi < 0.99 {
		t.Errorf("PDetect(high SNR) = %v, want ≈1", hi)
	}
	// Floor at PFalse: a tone never reduces detection below noise alone.
	if lo := e.PDetect(-100); lo != e.PFalse {
		t.Errorf("PDetect(-100) = %v, want PFalse=%v", lo, e.PFalse)
	}
}

// TestGrassVsPavementRange verifies the paper's §3.6.2 range separation:
// grass attenuates far more than pavement, so its usable detection range is
// far shorter.
func TestGrassVsPavementRange(t *testing.T) {
	grass, pave := Grass(), Pavement()

	// Reliable detection (per-sample p ≥ 0.5): ~10 m on grass, ~25 m on
	// pavement.
	pd := func(e Environment, d float64) float64 { return e.PDetect(e.SNR(d, 0, 0)) }
	if p := pd(grass, 10); p < 0.5 {
		t.Errorf("grass @10m: p=%v, want ≥0.5", p)
	}
	if p := pd(grass, 25); p > 0.10 {
		t.Errorf("grass @25m: p=%v, want <0.10 (virtually no detection beyond 20m)", p)
	}
	if p := pd(pave, 25); p < 0.5 {
		t.Errorf("pavement @25m: p=%v, want ≥0.5", p)
	}
	if p := pd(pave, 50); p < 0.02 || p > 0.5 {
		t.Errorf("pavement @50m: p=%v, want occasional detection (0.02..0.5)", p)
	}
}

// TestOriginalBuzzerShortRange verifies the stock 88 dB sounder yields the
// <3 m usable grass range that motivated the hardware extension.
func TestOriginalBuzzerShortRange(t *testing.T) {
	e := OriginalBuzzer(Grass())
	if p := e.PDetect(e.SNR(3, 0, 0)); p > 0.7 {
		t.Errorf("stock buzzer @3m: p=%v — range should be marginal at 3m", p)
	}
	if p := e.PDetect(e.SNR(10, 0, 0)); p > 0.1 {
		t.Errorf("stock buzzer @10m: p=%v, want near zero", p)
	}
	// The extended board must beat the stock one everywhere.
	ext := Grass()
	for d := 1.0; d <= 30; d += 1 {
		if ext.PDetect(ext.SNR(d, 0, 0)) < e.PDetect(e.SNR(d, 0, 0))-1e-12 {
			t.Fatalf("extended board worse than stock at %v m", d)
		}
	}
}

func TestUnitVariationValidate(t *testing.T) {
	if err := DefaultUnitVariation().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if err := (UnitVariationModel{SpeakerStdDB: -1}).Validate(); err == nil {
		t.Error("want error for negative std")
	}
	if err := (UnitVariationModel{FaultProb: 2}).Validate(); err == nil {
		t.Error("want error for FaultProb > 1")
	}
}

func TestUnitVariationDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := DefaultUnitVariation()
	var spkSum, spkSq float64
	faults := 0
	n := 20000
	for i := 0; i < n; i++ {
		u := m.Draw(rng)
		spkSum += u.SpeakerDB
		spkSq += u.SpeakerDB * u.SpeakerDB
		if u.Faulty {
			faults++
		}
	}
	mean := spkSum / float64(n)
	sd := math.Sqrt(spkSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("speaker offset mean = %v, want ≈0", mean)
	}
	if math.Abs(sd-m.SpeakerStdDB) > 0.1 {
		t.Errorf("speaker offset sd = %v, want ≈%v", sd, m.SpeakerStdDB)
	}
	frac := float64(faults) / float64(n)
	if math.Abs(frac-m.FaultProb) > 0.005 {
		t.Errorf("fault fraction = %v, want ≈%v", frac, m.FaultProb)
	}
}

func TestChannelPlanBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ch := Channel{Env: Grass()}
	r := ch.Plan(5, UnitOffsets{}, UnitOffsets{}, rng)
	if r.PDetect < 0.9 {
		t.Errorf("close-range PDetect = %v, want ≈1", r.PDetect)
	}
	if r.PFalse != Grass().PFalse {
		t.Errorf("PFalse = %v, want %v", r.PFalse, Grass().PFalse)
	}
}

func TestChannelPlanFaultyHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ch := Channel{Env: Grass()}
	r := ch.Plan(5, UnitOffsets{Faulty: true}, UnitOffsets{}, rng)
	if r.PDetect > ch.Env.PFalse {
		t.Errorf("faulty pair PDetect = %v, want ≤ PFalse", r.PDetect)
	}
	if r.PFalse <= ch.Env.PFalse {
		t.Errorf("faulty pair PFalse = %v, want elevated", r.PFalse)
	}
}

func TestChannelPlanEchoesInUrban(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ch := Channel{Env: Urban()}
	echoes, blocked := 0, 0
	n := 5000
	for i := 0; i < n; i++ {
		r := ch.Plan(10, UnitOffsets{}, UnitOffsets{}, rng)
		if len(r.Echoes) > 0 {
			echoes++
			if r.Echoes[0].ExtraPath < 1 {
				t.Fatal("echo extra path below 1 m floor")
			}
		}
		if r.DirectBlocked {
			blocked++
			if r.PDetect != 0 {
				t.Fatal("blocked direct path must have zero PDetect")
			}
			if len(r.Echoes) == 0 {
				t.Fatal("blocked reception must carry an echo")
			}
		}
	}
	fracEcho := float64(echoes) / float64(n)
	if fracEcho < 0.3 || fracEcho > 0.55 {
		t.Errorf("urban echo fraction = %v, want ≈0.40", fracEcho)
	}
	fracBlocked := float64(blocked) / float64(n)
	if math.Abs(fracBlocked-0.05) > 0.02 {
		t.Errorf("blocked fraction = %v, want ≈0.05", fracBlocked)
	}
}

// TestEchoWeakerThanDirect checks echoes are attenuated relative to the
// direct path at the same distance.
func TestEchoWeakerThanDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ch := Channel{Env: Urban()}
	for i := 0; i < 2000; i++ {
		r := ch.Plan(8, UnitOffsets{}, UnitOffsets{}, rng)
		if r.DirectBlocked || len(r.Echoes) == 0 {
			continue
		}
		if r.Echoes[0].PDetect > r.PDetect+1e-12 {
			t.Fatalf("echo louder than direct path: %v > %v", r.Echoes[0].PDetect, r.PDetect)
		}
	}
}
