package acoustics

import (
	"errors"
	"math/rand"
)

// UnitOffsets captures unit-to-unit hardware variation of one mote (paper
// §3.4 source 3 and §3.6.2: microphones rated ±3 dB, loudspeakers observed
// varying up to 5 dB; "some speaker-microphone pairs have ranges that are
// consistently much shorter or much longer than the typical values").
type UnitOffsets struct {
	SpeakerDB float64 // output-power offset of this node's speaker, dB
	MicDB     float64 // sensitivity offset of this node's microphone, dB
	Faulty    bool    // extreme case: faulty hardware producing garbage
}

// UnitVariationModel draws per-node hardware offsets.
type UnitVariationModel struct {
	SpeakerStdDB float64 // σ of speaker output power, dB (paper: up to 5 dB observed)
	MicStdDB     float64 // σ of microphone sensitivity, dB (rated ±3 dB)
	FaultProb    float64 // probability a node's acoustic hardware is faulty
}

// DefaultUnitVariation returns the paper-motivated variation model.
func DefaultUnitVariation() UnitVariationModel {
	return UnitVariationModel{SpeakerStdDB: 2.0, MicStdDB: 1.2, FaultProb: 0.02}
}

// Validate checks the model parameters.
func (m UnitVariationModel) Validate() error {
	if m.SpeakerStdDB < 0 || m.MicStdDB < 0 {
		return errors.New("acoustics: negative unit-variation std")
	}
	if m.FaultProb < 0 || m.FaultProb > 1 {
		return errors.New("acoustics: FaultProb out of [0,1]")
	}
	return nil
}

// Draw samples one node's hardware offsets.
func (m UnitVariationModel) Draw(rng *rand.Rand) UnitOffsets {
	return UnitOffsets{
		SpeakerDB: rng.NormFloat64() * m.SpeakerStdDB,
		MicDB:     rng.NormFloat64() * m.MicStdDB,
		Faulty:    rng.Float64() < m.FaultProb,
	}
}

// Echo is one resolvable multi-path arrival.
type Echo struct {
	ExtraPath float64 // extra path length relative to the direct path, meters
	PDetect   float64 // per-sample detection probability while the echo sounds
}

// Reception is the channel's plan for how one chirp transmission sounds at a
// receiver: per-sample probabilities the ranging simulator turns into the
// binary tone-detector time series.
type Reception struct {
	// PDetect is the per-sample detection probability while the direct
	// signal is present. Zero when the direct path is blocked.
	PDetect float64
	// PFalse is the per-sample false-positive probability at all other
	// times.
	PFalse float64
	// Echoes lists resolvable multi-path arrivals (possibly empty).
	Echoes []Echo
	// DirectBlocked reports that the receiver hears only echoes.
	DirectBlocked bool
}

// Channel couples an Environment with the unit offsets of a specific
// speaker/microphone pair.
type Channel struct {
	Env Environment
}

// Plan computes the Reception for one chirp over distance d between a
// source with offsets src and a destination with offsets dst. rng drives
// the echo and blockage draws; it must not be nil.
func (c Channel) Plan(d float64, src, dst UnitOffsets, rng *rand.Rand) Reception {
	snr := c.Env.SNR(d, src.SpeakerDB, dst.MicDB)
	r := Reception{
		PDetect: c.Env.PDetect(snr),
		PFalse:  c.Env.PFalse,
	}
	if src.Faulty || dst.Faulty {
		// Faulty hardware: the speaker barely sounds or the microphone is
		// deaf, while a noisy detector fires spuriously more often (§3.4:
		// "In extreme cases, faulty hardware may result in very large
		// errors").
		r.PDetect = c.Env.PFalse
		r.PFalse = c.Env.PFalse * 4
	}
	if rng.Float64() < c.Env.DirectBlockedProb {
		r.DirectBlocked = true
		r.PDetect = 0
	}
	if rng.Float64() < c.Env.EchoProb || r.DirectBlocked {
		extra := rng.ExpFloat64()*c.Env.EchoExtraPathMean + 1 // ≥1 m of extra path
		echoSNR := c.Env.SNR(d+extra, src.SpeakerDB, dst.MicDB) - c.Env.EchoLevelLossDB
		r.Echoes = append(r.Echoes, Echo{
			ExtraPath: extra,
			PDetect:   c.Env.PDetect(echoSNR),
		})
	}
	return r
}
