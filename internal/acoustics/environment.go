// Package acoustics models the physical acoustic channel between a mote's
// loudspeaker and another mote's microphone + tone detector: spherical
// spreading plus environment-dependent excess attenuation, ambient noise,
// echoes, unit-to-unit hardware variation, and the Bernoulli tone-detector
// response of paper Section 3.5:
//
//	P[b(t)=1 | signal present] >> P[b(t)=1 | no signal present]
//
// This package is the substitution substrate for the paper's field hardware
// (MICA2 + MTS310 + 105 dB piezo buzzer): its parameters are calibrated so
// that the detection-range and error statistics of the simulated ranging
// service match the campaign numbers the paper reports (≈20 m max on grass,
// 35–50 m on pavement, echoes common in urban settings).
package acoustics

import (
	"errors"
	"fmt"
	"math"
)

// SpeedOfSound is the paper's working value, m/s.
const SpeedOfSound = 340.0

// Environment describes one deployment setting's acoustic propagation.
type Environment struct {
	Name string

	// SourceLevel is the speaker output in dB SPL at RefDistance. The
	// paper's loudspeaker extension provides 105 dB at 10 cm (the original
	// MTS310 buzzer: 88 dB).
	SourceLevel float64
	// RefDistance is the reference distance for SourceLevel, meters.
	RefDistance float64
	// NoiseFloor is the ambient noise level in dB SPL within the detector's
	// band.
	NoiseFloor float64
	// ExcessAttenuation is attenuation beyond spherical spreading, dB per
	// meter — the dominant difference between grass and pavement.
	ExcessAttenuation float64

	// DetectMidSNR is the SNR (dB) at which the tone detector fires on 50%
	// of samples while the tone is present.
	DetectMidSNR float64
	// DetectSlope is the logistic slope (dB) of the detector response.
	DetectSlope float64
	// PFalse is the per-sample probability of a false positive with no
	// signal present (background noise triggering the detector).
	PFalse float64

	// EchoProb is the probability that a given receiver hears a resolvable
	// echo of a chirp (multi-path, §3.4 source 6).
	EchoProb float64
	// EchoExtraPathMean is the mean extra path length of an echo, meters
	// (exponentially distributed).
	EchoExtraPathMean float64
	// EchoLevelLossDB is the additional attenuation an echo suffers
	// relative to the direct path, dB.
	EchoLevelLossDB float64
	// DirectBlockedProb is the probability the direct path is fully
	// obstructed so the receiver hears only echoes (§3.4: "some sensors can
	// only hear echoes of the original signal").
	DirectBlockedProb float64
}

// Validate checks environment parameters.
func (e Environment) Validate() error {
	switch {
	case e.RefDistance <= 0:
		return errors.New("acoustics: RefDistance must be positive")
	case e.DetectSlope <= 0:
		return errors.New("acoustics: DetectSlope must be positive")
	case e.PFalse < 0 || e.PFalse > 1:
		return errors.New("acoustics: PFalse out of [0,1]")
	case e.EchoProb < 0 || e.EchoProb > 1:
		return errors.New("acoustics: EchoProb out of [0,1]")
	case e.DirectBlockedProb < 0 || e.DirectBlockedProb > 1:
		return errors.New("acoustics: DirectBlockedProb out of [0,1]")
	case e.ExcessAttenuation < 0:
		return errors.New("acoustics: negative ExcessAttenuation")
	case e.EchoExtraPathMean < 0:
		return errors.New("acoustics: negative EchoExtraPathMean")
	}
	return nil
}

// ReceivedLevel returns the direct-path signal level (dB SPL) at distance d
// meters: source level minus spherical spreading minus excess attenuation.
func (e Environment) ReceivedLevel(d float64) float64 {
	if d < e.RefDistance {
		d = e.RefDistance
	}
	spreading := 20 * math.Log10(d/e.RefDistance)
	return e.SourceLevel - spreading - e.ExcessAttenuation*(d-e.RefDistance)
}

// SNR returns the signal-to-noise ratio in dB at distance d, adjusted by
// per-unit speaker and microphone offsets (dB).
func (e Environment) SNR(d, speakerAdjDB, micAdjDB float64) float64 {
	return e.ReceivedLevel(d) + speakerAdjDB + micAdjDB - e.NoiseFloor
}

// PDetect maps an SNR (dB) to the per-sample probability that the tone
// detector reports the tone while it is present, via a logistic response
// floored at PFalse (a tone can never make detection less likely than
// noise alone).
func (e Environment) PDetect(snr float64) float64 {
	p := 1 / (1 + math.Exp(-(snr-e.DetectMidSNR)/e.DetectSlope))
	if p < e.PFalse {
		return e.PFalse
	}
	return p
}

// String implements fmt.Stringer.
func (e Environment) String() string {
	return fmt.Sprintf("Environment(%s)", e.Name)
}

// Grass returns the flat grassy-field environment of the paper's main
// campaign (Section 3.6): 10–15 cm grass absorbs strongly; virtually no
// detections beyond 20 m; ~80–85%% chirp detection at 10 m; occasional loud
// aircraft noise raises the false-positive floor slightly.
func Grass() Environment {
	return Environment{
		Name:              "grass",
		SourceLevel:       105,
		RefDistance:       0.1,
		NoiseFloor:        40,
		ExcessAttenuation: 1.0,
		DetectMidSNR:      8,
		DetectSlope:       2,
		PFalse:            0.004,
		EchoProb:          0.02,
		EchoExtraPathMean: 6,
		EchoLevelLossDB:   10,
		DirectBlockedProb: 0.01,
	}
}

// Pavement returns the paved parking-lot environment: low attenuation, most
// chirps detected to 35 m and some to 50 m (Section 3.6.2).
func Pavement() Environment {
	return Environment{
		Name:              "pavement",
		SourceLevel:       105,
		RefDistance:       0.1,
		NoiseFloor:        40,
		ExcessAttenuation: 0.18,
		DetectMidSNR:      8,
		DetectSlope:       2,
		PFalse:            0.003,
		EchoProb:          0.10,
		EchoExtraPathMean: 8,
		EchoLevelLossDB:   12,
		DirectBlockedProb: 0.005,
	}
}

// Urban returns the urban environment of the baseline evaluation (Section
// 3.3): buildings, pavement, gravel and short grass; echoes are particularly
// common and background noise triggers more false detections.
func Urban() Environment {
	return Environment{
		Name:              "urban",
		SourceLevel:       105,
		RefDistance:       0.1,
		NoiseFloor:        44,
		ExcessAttenuation: 0.25,
		DetectMidSNR:      8,
		DetectSlope:       2,
		PFalse:            0.010,
		EchoProb:          0.40,
		EchoExtraPathMean: 12,
		EchoLevelLossDB:   6,
		DirectBlockedProb: 0.05,
	}
}

// Wooded returns the wooded area with >20 cm grass and scattered trees
// (Section 3.6): the highest attenuation of the four presets.
func Wooded() Environment {
	return Environment{
		Name:              "wooded",
		SourceLevel:       105,
		RefDistance:       0.1,
		NoiseFloor:        40,
		ExcessAttenuation: 1.6,
		DetectMidSNR:      8,
		DetectSlope:       2,
		PFalse:            0.004,
		EchoProb:          0.08,
		EchoExtraPathMean: 5,
		EchoLevelLossDB:   8,
		DirectBlockedProb: 0.05,
	}
}

// OriginalBuzzer derates an environment to the stock MTS310 acoustic chain:
// the 88 dB Ario sounder (vs the 105 dB extension) and the unmatched
// stock detector path, which together yield the <3 m grass detection range
// that motivated the paper's hardware extension (Sections 1 and 3.2). The
// detector derating is folded into DetectMidSNR.
func OriginalBuzzer(e Environment) Environment {
	e.Name = e.Name + "+stock-buzzer"
	e.SourceLevel = 88
	e.DetectMidSNR += 10
	return e
}
