package ranging

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/measure"
)

// Failure-injection tests: the ranging pipeline must degrade gracefully —
// not crash, not fabricate precision — under hostile hardware and channel
// conditions.

// TestAllFaultyHardware: with every node's acoustic hardware faulty, the
// service should produce (almost) no measurements rather than garbage.
func TestAllFaultyHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cfg := DefaultConfig(acoustics.Grass())
	cfg.Units.FaultProb = 1
	cfg.AutoCalibrate = false // calibration itself uses nominal hardware
	svc, err := NewService(cfg, twoNodeDeployment(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if _, ok := svc.MeasurePair(0, 1); ok {
			hits++
		}
	}
	if hits > 5 {
		t.Errorf("faulty hardware produced %d/100 measurements, want ≈0", hits)
	}
}

// TestExtremeNoiseFloor: with the noise floor at the signal level, the
// refined detector must reject (k-of-m fails or pattern verification
// fails) far more often than it hallucinates a confident wrong distance.
func TestExtremeNoiseFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	env := acoustics.Grass()
	env.PFalse = 0.15 // pathological detector chatter
	cfg := DefaultConfig(env)
	cfg.Units.FaultProb = 0
	svc, err := NewService(cfg, twoNodeDeployment(12), rng)
	if err != nil {
		t.Fatal(err)
	}
	grossErrors, total := 0, 0
	for i := 0; i < 200; i++ {
		d, ok := svc.MeasurePair(0, 1)
		if !ok {
			continue
		}
		total++
		if math.Abs(d-12) > 5 {
			grossErrors++
		}
	}
	if total > 0 && float64(grossErrors)/float64(total) > 0.5 {
		t.Errorf("under extreme noise %d/%d accepted measurements are grossly wrong", grossErrors, total)
	}
}

// TestBlockedDirectPath: with the direct path always blocked, every
// accepted measurement comes from an echo and must overestimate.
func TestBlockedDirectPath(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	env := acoustics.Grass()
	env.DirectBlockedProb = 1
	env.EchoLevelLossDB = 2 // strong echoes so something is detectable
	cfg := DefaultConfig(env)
	cfg.Units.FaultProb = 0
	cfg.AutoCalibrate = false // calibration would be echo-biased too
	svc, err := NewService(cfg, twoNodeDeployment(8), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d, ok := svc.MeasurePair(0, 1)
		if !ok {
			continue
		}
		// Echo paths are strictly longer than the direct 8 m.
		if d < 8-0.5 {
			t.Fatalf("echo-only measurement %v shorter than the direct path", d)
		}
	}
}

// TestZeroRoundCampaignRejected and empty-deployment handling.
func TestCampaignDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	svc, err := NewService(DefaultConfig(acoustics.Grass()), twoNodeDeployment(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Campaign(0, 20); err == nil {
		t.Error("want error for zero rounds")
	}
	if _, err := svc.Campaign(-3, 20); err == nil {
		t.Error("want error for negative rounds")
	}
	// A campaign with an unreachable max distance yields an empty Raw, not
	// an error.
	raw, err := svc.Campaign(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if raw.TotalReadings() != 0 {
		t.Errorf("campaign below min distance produced %d readings", raw.TotalReadings())
	}
}

// TestCampaignSetSurvivesEmptyCampaign: merging an empty campaign produces
// an empty set, not a failure.
func TestCampaignSetSurvivesEmptyCampaign(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	svc, err := NewService(DefaultConfig(acoustics.Grass()), twoNodeDeployment(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := svc.CampaignSet(1, 0.5, measure.FilterMedian, measure.DefaultMergeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("empty campaign produced %d pairs", set.Len())
	}
}

// TestCalibrationOffsetReasonable: auto-calibration should land within a
// few tens of centimeters (the ramp + device delays it compensates).
func TestCalibrationOffsetReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	svc, err := NewService(DefaultConfig(acoustics.Grass()), twoNodeDeployment(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	off := svc.CalibrationOffset()
	if math.Abs(off) > 0.6 {
		t.Errorf("calibration offset %.3f m outside ±0.6 m", off)
	}
	// Disabling auto-calibration yields zero offset.
	cfg := DefaultConfig(acoustics.Grass())
	cfg.AutoCalibrate = false
	svc2, err := NewService(cfg, twoNodeDeployment(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.CalibrationOffset() != 0 {
		t.Errorf("offset %v with AutoCalibrate off", svc2.CalibrationOffset())
	}
}
