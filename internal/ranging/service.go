// Package ranging simulates the paper's Section 3 acoustic ranging service
// end-to-end: a source node emits a radio message followed by a pattern of
// acoustic chirps; a destination node's tone detector produces a binary time
// series which the Figure 3 record/detect algorithm turns into a
// time-difference-of-arrival and hence a distance.
//
// Two service generations are modeled:
//
//   - Baseline (Section 3.3): a single long chirp and naive first-run
//     detection on the raw tone-detector output — the configuration whose
//     urban-deployment errors Figure 2 shows.
//   - Refined (Section 3.5): multi-chirp accumulation, k-of-m windowed
//     threshold detection, chirp-pattern verification, statistical filtering
//     over rounds, and consistency checking — the service of Figures 6–8.
//
// The physical channel (attenuation, noise, echoes, unit variation) comes
// from internal/acoustics; clocks and radio delays from internal/timesync
// and internal/radio.
package ranging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/deploy"
	"resilientloc/internal/measure"
	"resilientloc/internal/radio"
	"resilientloc/internal/signal"
	"resilientloc/internal/stats"
	"resilientloc/internal/timesync"
)

// Config parameterizes the simulated ranging service.
type Config struct {
	Env        acoustics.Environment
	SampleRate float64 // tone-detector sampling rate, Hz (paper: 16 kHz)

	// MaxBufferRange bounds the measurable distance via buffer sizing,
	// meters: the mote allocates SampleRate·MaxBufferRange/SpeedOfSound
	// cells (paper: <500 bytes at 4 bits/offset for 20 m).
	MaxBufferRange float64

	// Pattern is the chirp pattern (refined service only).
	Pattern signal.Pattern

	// DetectT, DetectK, DetectM are the Figure 3 thresholds: an accumulated
	// cell fires at ≥ DetectT, and DetectK of DetectM consecutive cells must
	// fire (paper calibration: T=2, 6 of 32).
	DetectT uint8
	DetectK int
	DetectM int

	// Baseline switches to the Section 3.3 baseline service: one long chirp,
	// first-run-of-3 detection directly on the tone detector output.
	Baseline bool
	// BaselineChirpLen is the baseline chirp length in samples (64 ms at
	// 16 kHz = 1024; the long chirp is itself an error source, §3.6).
	BaselineChirpLen int
	// PreArrivalBurstProb is the per-measurement probability that residual
	// echoes of earlier chirps or correlated noise produce a short burst of
	// detector positives before the true arrival — the dominant cause of
	// the baseline underestimates in Figure 2.
	PreArrivalBurstProb float64

	Sync  timesync.SyncModel
	Radio radio.DelayModel
	Units acoustics.UnitVariationModel

	// CalibrationBias is the residual δconst calibration error, meters
	// (paper §3.6: an uncalibrated service adds a constant 10–20 cm).
	CalibrationBias float64
	// DeviceJitterStd is the per-measurement jitter of speaker power-up and
	// detector pick-up delays, meters (§3.4 source 2).
	DeviceJitterStd float64
	// SpeakerRampSamples is the length of the piezo speaker's power-up ramp
	// in samples; detection probability scales linearly from 0 to full over
	// the ramp. This is the paper's stated cause of late-detection
	// overestimates with long chirps and of failures with chirps shorter
	// than 8 ms ("the speaker did not have enough time to fully power up",
	// §3.6).
	SpeakerRampSamples int
	// AutoCalibrate reproduces the paper's field procedure: before a
	// campaign, the service measures a reference pair at a known distance
	// and folds the median error into δconst ("we performed additional
	// calibration for the offset compensating for the constant delay
	// incurred in sensing and actuation", §3.6). Because the ramp-induced
	// delay grows with distance, one-point calibration leaves the residual
	// right-skew at long range the paper observes.
	AutoCalibrate bool
	// CalibrationDistance is the reference distance for AutoCalibrate,
	// meters (default 8).
	CalibrationDistance float64
}

// DefaultConfig returns the refined-service configuration of the grassy
// field campaign (Section 3.6).
func DefaultConfig(env acoustics.Environment) Config {
	return Config{
		Env:                 env,
		SampleRate:          16000,
		MaxBufferRange:      25,
		Pattern:             signal.DefaultPattern(),
		DetectT:             2,
		DetectK:             6,
		DetectM:             32,
		Sync:                timesync.DefaultSyncModel(),
		Radio:               radio.DefaultDelayModel(),
		Units:               acoustics.DefaultUnitVariation(),
		CalibrationBias:     0,
		DeviceJitterStd:     0.05,
		SpeakerRampSamples:  64, // 4 ms power-up at 16 kHz
		AutoCalibrate:       true,
		CalibrationDistance: 8,
	}
}

// BaselineConfig returns the Section 3.3 baseline service configuration for
// the urban 60-node evaluation (Figure 2): single 64 ms chirp, naive
// detection, echo-rich environment.
func BaselineConfig(env acoustics.Environment) Config {
	cfg := DefaultConfig(env)
	cfg.Baseline = true
	cfg.BaselineChirpLen = 1024 // 64 ms
	cfg.MaxBufferRange = 35
	cfg.PreArrivalBurstProb = 0.18
	cfg.CalibrationBias = 0.05
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Env.Validate(); err != nil {
		return err
	}
	switch {
	case c.SampleRate <= 0:
		return errors.New("ranging: non-positive sample rate")
	case c.MaxBufferRange <= 0:
		return errors.New("ranging: non-positive buffer range")
	case c.DetectT == 0 || c.DetectK <= 0 || c.DetectM <= 0 || c.DetectK > c.DetectM:
		return errors.New("ranging: invalid detection thresholds")
	case c.PreArrivalBurstProb < 0 || c.PreArrivalBurstProb > 1:
		return errors.New("ranging: PreArrivalBurstProb out of [0,1]")
	case c.DeviceJitterStd < 0:
		return errors.New("ranging: negative DeviceJitterStd")
	case c.SpeakerRampSamples < 0:
		return errors.New("ranging: negative SpeakerRampSamples")
	}
	if c.Baseline {
		if c.BaselineChirpLen <= 0 {
			return errors.New("ranging: baseline needs positive chirp length")
		}
	} else if err := c.Pattern.Validate(); err != nil {
		return err
	}
	if err := c.Sync.Validate(); err != nil {
		return err
	}
	if err := c.Radio.Validate(); err != nil {
		return err
	}
	return c.Units.Validate()
}

// BufferLen returns the accumulation buffer length in samples.
func (c Config) BufferLen() int {
	return int(math.Ceil(c.MaxBufferRange/acoustics.SpeedOfSound*c.SampleRate)) + 64
}

// Service simulates the ranging service over a fixed deployment: each node
// gets a clock and per-unit hardware offsets drawn once at construction
// (unit variation is persistent, §3.4 source 3).
type Service struct {
	cfg         Config
	dep         *deploy.Deployment
	rng         *rand.Rand
	units       []acoustics.UnitOffsets
	clocks      []timesync.Clock
	chn         acoustics.Channel
	calibOffset float64 // meters subtracted from every estimate (δconst calibration)

	// Measurement scratch, reused across MeasurePair calls. Both buffers are
	// fully rewritten per measurement (fillRecording overwrites every rec
	// element; acc is Reset to the NewAccumulator state), so reuse changes no
	// observable behaviour.
	acc *signal.Accumulator
	rec []bool
}

// recBuf returns the cached recording buffer resized to n samples.
func (s *Service) recBuf(n int) []bool {
	if cap(s.rec) < n {
		s.rec = make([]bool, n)
	}
	return s.rec[:n]
}

// accBuf returns the cached accumulator reset for n samples, rebuilding it
// only if the buffer length changed.
func (s *Service) accBuf(n int) (*signal.Accumulator, error) {
	if s.acc != nil && len(s.acc.Samples()) == n {
		s.acc.Reset()
		return s.acc, nil
	}
	acc, err := signal.NewAccumulator(n)
	if err != nil {
		return nil, err
	}
	s.acc = acc
	return acc, nil
}

// NewService builds a ranging service simulation for a deployment. The rng
// drives all stochastic behaviour; the same seed reproduces the same
// campaign.
func NewService(cfg Config, dep *deploy.Deployment, rng *rand.Rand) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("ranging: invalid config: %w", err)
	}
	if err := dep.Validate(); err != nil {
		return nil, fmt.Errorf("ranging: invalid deployment: %w", err)
	}
	if rng == nil {
		return nil, errors.New("ranging: nil rng")
	}
	s := &Service{
		cfg: cfg,
		dep: dep,
		rng: rng,
		chn: acoustics.Channel{Env: cfg.Env},
	}
	s.units = make([]acoustics.UnitOffsets, dep.N())
	s.clocks = make([]timesync.Clock, dep.N())
	for i := range s.units {
		s.units[i] = cfg.Units.Draw(rng)
		s.clocks[i] = timesync.RandomClock(rng, 1.0)
	}
	if cfg.AutoCalibrate {
		s.calibrate()
	}
	return s, nil
}

// calibrate measures a nominal reference pair at a known distance and folds
// the median error into the per-measurement offset, mirroring the paper's
// field procedure. The reference pair uses nominal (zero-offset) hardware.
func (s *Service) calibrate() {
	d := s.cfg.CalibrationDistance
	if d <= 0 {
		d = 8
	}
	if d > s.cfg.MaxBufferRange {
		d = s.cfg.MaxBufferRange / 2
	}
	nominal := acoustics.UnitOffsets{}
	savedUnits := s.units
	savedClocks := s.clocks
	// Temporarily point the service at a virtual nominal pair sharing node
	// indices 0 and 1.
	s.units = []acoustics.UnitOffsets{nominal, nominal}
	s.clocks = []timesync.Clock{timesync.NewClock(0, 0), timesync.NewClock(0, 0)}
	var errs []float64
	for i := 0; i < 20; i++ {
		var m float64
		var ok bool
		if s.cfg.Baseline {
			m, ok = s.measureBaseline(0, 1, d)
		} else {
			m, ok = s.measureRefined(0, 1, d)
		}
		if ok {
			errs = append(errs, m-d)
		}
	}
	s.units = savedUnits
	s.clocks = savedClocks
	if med, err := stats.Median(errs); err == nil {
		s.calibOffset = med
	}
}

// CalibrationOffset reports the δconst offset established at construction.
func (s *Service) CalibrationOffset() float64 { return s.calibOffset }

// Units exposes the drawn per-node hardware offsets (read-only; for tests
// and diagnostics).
func (s *Service) Units() []acoustics.UnitOffsets { return s.units }

// MeasurePair simulates one complete ranging attempt from src to dst and
// returns the estimated distance in meters. ok is false when no acoustic
// signal was detected.
func (s *Service) MeasurePair(src, dst int) (d float64, ok bool) {
	if src == dst || src < 0 || dst < 0 || src >= s.dep.N() || dst >= s.dep.N() {
		return 0, false
	}
	truth := s.dep.Positions[src].Dist(s.dep.Positions[dst])
	if s.cfg.Baseline {
		return s.measureBaseline(src, dst, truth)
	}
	return s.measureRefined(src, dst, truth)
}

// timingErrorMeters draws the combined non-acoustic timing error for one
// measurement, expressed in meters: residual clock sync, radio delay jitter,
// device response jitter, and the calibration bias.
func (s *Service) timingErrorMeters(src, dst int) float64 {
	syncErr := s.cfg.Sync.SyncError(s.clocks[src], s.clocks[dst], s.rng)
	radioJitter := s.cfg.Radio.Sample(s.rng) - s.cfg.Radio.Base // jitter only: base is calibrated out
	e := (syncErr + radioJitter) * acoustics.SpeedOfSound
	e += s.cfg.CalibrationBias
	if s.cfg.DeviceJitterStd > 0 {
		e += s.rng.NormFloat64() * s.cfg.DeviceJitterStd
	}
	return e
}

// arrivalSample converts a distance (plus timing error) to a buffer offset.
func (s *Service) arrivalSample(truth, timingErr float64) int {
	t := truth/acoustics.SpeedOfSound + timingErr/acoustics.SpeedOfSound
	return int(math.Round(t * s.cfg.SampleRate))
}

// sampleToDistance converts a detected buffer offset back to meters,
// applying the δconst calibration offset.
func (s *Service) sampleToDistance(idx int) float64 {
	return float64(idx)/s.cfg.SampleRate*acoustics.SpeedOfSound - s.calibOffset
}

// fillRecording writes one chirp's binary tone-detector series into rec:
// background false positives everywhere, direct-path detections over
// [arr, arr+chirpLen) scaled by the speaker power-up ramp, echo detections
// over their delayed windows.
func (s *Service) fillRecording(rec []bool, r acoustics.Reception, arr, chirpLen int) {
	for i := range rec {
		rec[i] = s.rng.Float64() < r.PFalse
	}
	ramp := s.cfg.SpeakerRampSamples
	if !r.DirectBlocked {
		for i := arr; i < arr+chirpLen && i < len(rec); i++ {
			if i < 0 {
				continue
			}
			p := r.PDetect
			if ramp > 0 && i-arr < ramp {
				p *= float64(i-arr+1) / float64(ramp)
			}
			if s.rng.Float64() < p {
				rec[i] = true
			}
		}
	}
	for _, e := range r.Echoes {
		off := arr + int(math.Round(e.ExtraPath/acoustics.SpeedOfSound*s.cfg.SampleRate))
		for i := off; i < off+chirpLen && i < len(rec); i++ {
			if i < 0 {
				continue
			}
			p := e.PDetect
			if ramp > 0 && i-off < ramp {
				p *= float64(i-off+1) / float64(ramp)
			}
			if s.rng.Float64() < p {
				rec[i] = true
			}
		}
	}
}

// measureRefined runs the Section 3.5 service: accumulate the pattern's
// chirps, detect with k-of-m thresholding, verify the preceding silence.
func (s *Service) measureRefined(src, dst int, truth float64) (float64, bool) {
	bufLen := s.cfg.BufferLen()
	acc, err := s.accBuf(bufLen)
	if err != nil {
		return 0, false
	}
	timingErr := s.timingErrorMeters(src, dst)
	arr := s.arrivalSample(truth, timingErr)
	chirpLen := s.cfg.Pattern.ChirpLen

	chirps := s.cfg.Pattern.Chirps
	if chirps > signal.MaxAccumulated {
		chirps = signal.MaxAccumulated
	}
	rec := s.recBuf(bufLen)
	for c := 0; c < chirps; c++ {
		// Each chirp is re-synchronized by its own radio message, so the
		// arrival offset is stable across chirps up to sub-sample jitter;
		// echoes re-draw per chirp, and the pattern's random delays decouple
		// them from the accumulation grid (modeled by fresh echo draws).
		reception := s.chn.Plan(truth, s.units[src], s.units[dst], s.rng)
		s.fillRecording(rec, reception, arr, chirpLen)
		if err := acc.AddRecording(rec); err != nil {
			break
		}
	}

	idx := signal.DetectSignal(acc.Samples(), s.cfg.DetectK, s.cfg.DetectM, s.cfg.DetectT)
	if idx < 0 {
		return 0, false
	}
	if !s.cfg.Pattern.VerifyAt(acc.Samples(), idx, s.cfg.DetectT) {
		return 0, false
	}
	d := s.sampleToDistance(idx)
	if d <= 0.01 {
		return 0, false
	}
	return d, true
}

// measureBaseline runs the Section 3.3 baseline service: a single long
// chirp and detection at the first run of three consecutive positives of
// the raw tone-detector output.
func (s *Service) measureBaseline(src, dst int, truth float64) (float64, bool) {
	bufLen := s.cfg.BufferLen()
	rec := s.recBuf(bufLen)
	timingErr := s.timingErrorMeters(src, dst)
	arr := s.arrivalSample(truth, timingErr)

	reception := s.chn.Plan(truth, s.units[src], s.units[dst], s.rng)
	s.fillRecording(rec, reception, arr, s.cfg.BaselineChirpLen)

	// Residual echoes of earlier chirps / correlated urban noise: a short
	// burst of positives at a random pre-arrival offset (§3.3: "The
	// underestimates were primarily due to a tone detector's picking up
	// noises or echoes from earlier chirps as the acoustic signal").
	if arr > 8 && s.rng.Float64() < s.cfg.PreArrivalBurstProb {
		off := s.rng.Intn(arr - 4)
		for i := off; i < off+4+s.rng.Intn(8) && i < len(rec); i++ {
			rec[i] = true
		}
	}

	idx := firstRun(rec, 3)
	if idx < 0 {
		return 0, false
	}
	d := s.sampleToDistance(idx)
	if d <= 0.01 {
		return 0, false
	}
	return d, true
}

// firstRun returns the index of the first run of at least r consecutive
// true values, or -1.
func firstRun(rec []bool, r int) int {
	run := 0
	for i, b := range rec {
		if b {
			run++
			if run == r {
				return i - r + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// Campaign runs rounds of measurements over every ordered pair whose true
// distance is within maxPairDist and collects the raw directed readings.
// It mirrors the field procedure of Section 3.6 ("three rounds of
// measurements, with each sensor node emitting one sequence of 10 chirps
// per round").
func (s *Service) Campaign(rounds int, maxPairDist float64) (*measure.Raw, error) {
	if rounds <= 0 {
		return nil, errors.New("ranging: Campaign: need positive rounds")
	}
	raw, err := measure.NewRaw(s.dep.N())
	if err != nil {
		return nil, err
	}
	for round := 0; round < rounds; round++ {
		for src := 0; src < s.dep.N(); src++ {
			for dst := 0; dst < s.dep.N(); dst++ {
				if src == dst {
					continue
				}
				if s.dep.Positions[src].Dist(s.dep.Positions[dst]) > maxPairDist {
					continue
				}
				if d, ok := s.MeasurePair(src, dst); ok {
					if err := raw.Add(src, dst, d); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return raw, nil
}

// CampaignSet runs a Campaign and reduces it with the given statistical
// filter and merge policy — the full pipeline from chirps to the
// measurement set localization consumes.
func (s *Service) CampaignSet(rounds int, maxPairDist float64, filter measure.FilterKind, opt measure.MergeOptions) (*measure.Set, error) {
	raw, err := s.Campaign(rounds, maxPairDist)
	if err != nil {
		return nil, err
	}
	directed := raw.Filter(filter, 5)
	return measure.Merge(s.dep.N(), directed, opt)
}
