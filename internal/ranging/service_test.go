package ranging

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/deploy"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/stats"
)

// twoNodeDeployment returns two nodes d meters apart.
func twoNodeDeployment(d float64) *deploy.Deployment {
	return &deploy.Deployment{
		Name:      "pair",
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(d, 0)},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(acoustics.Grass()).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := BaselineConfig(acoustics.Urban()).Validate(); err != nil {
		t.Errorf("baseline config invalid: %v", err)
	}
	bad := DefaultConfig(acoustics.Grass())
	bad.SampleRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero sample rate")
	}
	bad = DefaultConfig(acoustics.Grass())
	bad.DetectK = 40 // > DetectM
	if err := bad.Validate(); err == nil {
		t.Error("want error for k > m")
	}
	bad = DefaultConfig(acoustics.Grass())
	bad.Pattern.Chirps = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for invalid pattern")
	}
	bad = BaselineConfig(acoustics.Urban())
	bad.BaselineChirpLen = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero baseline chirp")
	}
}

func TestBufferLen(t *testing.T) {
	cfg := DefaultConfig(acoustics.Grass())
	// 25 m at 340 m/s and 16 kHz ≈ 1176 samples + margin.
	n := cfg.BufferLen()
	if n < 1176 || n > 1400 {
		t.Errorf("BufferLen = %d, want ≈1240", n)
	}
}

func TestNewServiceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dep := twoNodeDeployment(10)
	if _, err := NewService(DefaultConfig(acoustics.Grass()), dep, nil); err == nil {
		t.Error("want error for nil rng")
	}
	bad := DefaultConfig(acoustics.Grass())
	bad.SampleRate = -1
	if _, err := NewService(bad, dep, rng); err == nil {
		t.Error("want error for invalid config")
	}
	if _, err := NewService(DefaultConfig(acoustics.Grass()), &deploy.Deployment{}, rng); err == nil {
		t.Error("want error for empty deployment")
	}
}

// TestRefinedAccuracyShortRange checks the headline accuracy claim: at
// close range on grass, the refined service's median |error| is on the
// order of tens of centimeters (paper: ≈33 cm median at 1% of max range).
func TestRefinedAccuracyShortRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dep := twoNodeDeployment(8)
	cfg := DefaultConfig(acoustics.Grass())
	cfg.Units.FaultProb = 0 // isolate the accuracy path from fault outliers
	svc, err := NewService(cfg, dep, rng)
	if err != nil {
		t.Fatal(err)
	}
	var errsAbs []float64
	attempts, successes := 0, 0
	for i := 0; i < 200; i++ {
		attempts++
		d, ok := svc.MeasurePair(0, 1)
		if !ok {
			continue
		}
		successes++
		errsAbs = append(errsAbs, math.Abs(d-8))
	}
	if successes < attempts*8/10 {
		t.Fatalf("detection rate %d/%d too low at 8 m on grass", successes, attempts)
	}
	med, err := stats.Median(errsAbs)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.5 {
		t.Errorf("median |error| = %.3f m at 8 m, want ≤ 0.5 m", med)
	}
}

// TestRefinedRangeLimits verifies the §3.6.2 detection-range structure on
// grass: high success ≤10 m, virtually none at 25 m.
func TestRefinedRangeLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig(acoustics.Grass())
	cfg.Units.FaultProb = 0

	rate := func(d float64) float64 {
		dep := twoNodeDeployment(d)
		svc, err := NewService(cfg, dep, rng)
		if err != nil {
			t.Fatal(err)
		}
		ok := 0
		const n = 60
		for i := 0; i < n; i++ {
			if _, hit := svc.MeasurePair(0, 1); hit {
				ok++
			}
		}
		return float64(ok) / n
	}

	if r := rate(9); r < 0.8 {
		t.Errorf("grass @9m: success %.2f, want ≥0.8", r)
	}
	if r := rate(25); r > 0.15 {
		t.Errorf("grass @25m: success %.2f, want ≈0 beyond max range", r)
	}
}

// TestPavementOutranges grass at equal distances (§3.6.2).
func TestPavementOutrangesGrass(t *testing.T) {
	cfg := func(env acoustics.Environment) Config {
		c := DefaultConfig(env)
		c.MaxBufferRange = 40
		c.Units.FaultProb = 0
		return c
	}
	rate := func(c Config, d float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		svc, err := NewService(c, twoNodeDeployment(d), rng)
		if err != nil {
			t.Fatal(err)
		}
		ok := 0
		const n = 50
		for i := 0; i < n; i++ {
			if _, hit := svc.MeasurePair(0, 1); hit {
				ok++
			}
		}
		return float64(ok) / n
	}
	pave := rate(cfg(acoustics.Pavement()), 22, 11)
	grass := rate(cfg(acoustics.Grass()), 22, 11)
	if pave <= grass {
		t.Errorf("pavement success %.2f not better than grass %.2f at 22 m", pave, grass)
	}
	if pave < 0.7 {
		t.Errorf("pavement @22m: success %.2f, want ≥0.7 (reliable to 25m)", pave)
	}
}

// TestBaselineUnderestimates reproduces the Figure 2 signature: in the
// echo-rich urban environment the baseline service produces a meaningful
// population of >1 m errors, most of them underestimates.
func TestBaselineUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := BaselineConfig(acoustics.Urban())
	dep := twoNodeDeployment(15)
	svc, err := NewService(cfg, dep, rng)
	if err != nil {
		t.Fatal(err)
	}
	var under, over, large int
	n := 400
	for i := 0; i < n; i++ {
		d, ok := svc.MeasurePair(0, 1)
		if !ok {
			continue
		}
		e := d - 15
		if e < -1 {
			under++
			large++
		} else if e > 1 {
			over++
			large++
		}
	}
	if large < n/20 {
		t.Errorf("baseline produced only %d large errors out of %d, want a meaningful population", large, n)
	}
	if under <= over {
		t.Errorf("large errors: %d under vs %d over — Figure 2 shows mostly underestimates", under, over)
	}
}

// TestRefinedBeatsBaseline: the refined service must produce far fewer
// large-magnitude errors than the baseline under identical conditions.
func TestRefinedBeatsBaseline(t *testing.T) {
	largeFrac := func(cfg Config, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		svc, err := NewService(cfg, twoNodeDeployment(12), rng)
		if err != nil {
			t.Fatal(err)
		}
		large, total := 0, 0
		for i := 0; i < 300; i++ {
			d, ok := svc.MeasurePair(0, 1)
			if !ok {
				continue
			}
			total++
			if math.Abs(d-12) > 1 {
				large++
			}
		}
		if total == 0 {
			t.Fatal("no successful measurements")
		}
		return float64(large) / float64(total)
	}
	base := largeFrac(BaselineConfig(acoustics.Urban()), 13)
	refined := largeFrac(func() Config {
		c := DefaultConfig(acoustics.Urban())
		c.MaxBufferRange = 35
		return c
	}(), 13)
	if refined >= base {
		t.Errorf("refined large-error rate %.3f not better than baseline %.3f", refined, base)
	}
}

// TestErrorGrowsWithDistance reproduces the Figure 8 trend: large-magnitude
// errors are more common at longer distances.
func TestErrorGrowsWithDistance(t *testing.T) {
	cfg := DefaultConfig(acoustics.Grass())
	cfg.Units.FaultProb = 0
	frac := func(d float64) float64 {
		rng := rand.New(rand.NewSource(17))
		svc, err := NewService(cfg, twoNodeDeployment(d), rng)
		if err != nil {
			t.Fatal(err)
		}
		large, total := 0, 0
		for i := 0; i < 200; i++ {
			m, ok := svc.MeasurePair(0, 1)
			if !ok {
				continue
			}
			total++
			if math.Abs(m-d) > 0.5 {
				large++
			}
		}
		if total == 0 {
			return 1
		}
		return float64(large) / float64(total)
	}
	near, far := frac(5), frac(16)
	if far < near {
		t.Errorf("large-error fraction near=%.3f far=%.3f — should grow with distance", near, far)
	}
}

func TestMeasurePairInvalidIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	svc, err := NewService(DefaultConfig(acoustics.Grass()), twoNodeDeployment(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{0, 0}, {-1, 1}, {0, 5}} {
		if _, ok := svc.MeasurePair(tc[0], tc[1]); ok {
			t.Errorf("MeasurePair(%d,%d) succeeded, want failure", tc[0], tc[1])
		}
	}
}

func TestCampaignProducesSparseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dep, err := deploy.OffsetGrid(4, 4, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(acoustics.Grass())
	svc, err := NewService(cfg, dep, rng)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := svc.Campaign(2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if raw.TotalReadings() == 0 {
		t.Fatal("campaign produced no readings")
	}
	// Nearest neighbors (9–10 m apart) should nearly all be measured; the
	// far corners (>25 m) never attempted.
	if len(raw.Readings(0, 1)) == 0 {
		t.Error("adjacent pair unmeasured")
	}
	if len(raw.Readings(0, 15)) != 0 {
		t.Error("beyond-range pair has readings")
	}
	if _, err := svc.Campaign(0, 25); err == nil {
		t.Error("want error for zero rounds")
	}
}

func TestCampaignSetPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dep, err := deploy.OffsetGrid(3, 3, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(acoustics.Grass())
	cfg.Units.FaultProb = 0
	svc, err := NewService(cfg, dep, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := svc.CampaignSet(3, 25, measure.FilterMedian, measure.DefaultMergeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("empty measurement set")
	}
	// Filtered estimates for adjacent pairs should be within ~1 m of truth.
	errs, err := set.Errors(dep)
	if err != nil {
		t.Fatal(err)
	}
	med, err := stats.MedianAbs(errs)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.6 {
		t.Errorf("median |error| after filtering = %.3f m, want ≤ 0.6", med)
	}
}

func TestFirstRun(t *testing.T) {
	tests := []struct {
		name string
		rec  []bool
		r    int
		want int
	}{
		{"simple", []bool{false, true, true, true, false}, 3, 1},
		{"none", []bool{true, false, true, false}, 2, -1},
		{"at start", []bool{true, true}, 2, 0},
		{"empty", nil, 1, -1},
	}
	for _, tc := range tests {
		if got := firstRun(tc.rec, tc.r); got != tc.want {
			t.Errorf("%s: firstRun = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestServiceDeterminism(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(42))
		svc, err := NewService(DefaultConfig(acoustics.Grass()), twoNodeDeployment(10), rng)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 20; i++ {
			d, ok := svc.MeasurePair(0, 1)
			if ok {
				out = append(out, d)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different success counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("measurement %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
