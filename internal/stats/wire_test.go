package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestF64RoundTrip: every float64 — finite (exact bits), NaN, ±Inf, signed
// zero — survives the wire encoding.
func TestF64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := []float64{0, math.Copysign(0, -1), 1, -1, math.Pi, 1e-300, -1e300,
		math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for i := 0; i < 200; i++ {
		vals = append(vals, math.Float64frombits(rng.Uint64()))
	}
	for _, v := range vals {
		if math.IsNaN(v) && rng.Intn(2) == 0 {
			v = math.NaN()
		}
		b, err := json.Marshal(F64(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got F64
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(float64(got)) {
				t.Errorf("NaN round-tripped to %v", got)
			}
			continue
		}
		if math.Float64bits(float64(got)) != math.Float64bits(v) {
			t.Errorf("%v (bits %x) round-tripped to %v (bits %x) via %s",
				v, math.Float64bits(v), got, math.Float64bits(float64(got)), b)
		}
	}

	var f F64
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Error("unknown sentinel accepted")
	}
}

// TestOnlineWireRoundTrip: a decoded accumulator carries the exact state —
// continuing to Add and Merge produces bit-identical results to the
// original.
func TestOnlineWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var o Online
	for i := 0; i < 137; i++ {
		o.Add(rng.NormFloat64() * 10)
	}
	b, err := json.Marshal(&o)
	if err != nil {
		t.Fatal(err)
	}
	var back Online
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Fatalf("state changed over the wire: %+v vs %+v", back, o)
	}

	// Merging the decoded copy behaves identically to merging the original.
	var other Online
	for i := 0; i < 41; i++ {
		other.Add(rng.ExpFloat64())
	}
	a, c := other, other
	a.Merge(&o)
	c.Merge(&back)
	if a != c {
		t.Fatalf("merge diverged after round trip: %+v vs %+v", a, c)
	}

	// The zero accumulator survives too.
	var zero, zback Online
	b, _ = json.Marshal(&zero)
	if err := json.Unmarshal(b, &zback); err != nil || zback != zero {
		t.Fatalf("zero accumulator round trip: %+v, %v", zback, err)
	}
}

// TestSketchWireRoundTrip: a decoded sketch reports the same count and the
// same quantiles, and merges exactly like the original (bucket counts are
// integers; gamma round-trips bit-exactly).
func TestSketchWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, err := NewQuantileSketch(DefaultSketchAlpha)
	if err != nil {
		t.Fatal(err)
	}
	q.Add(0)
	for i := 0; i < 211; i++ {
		q.Add(rng.NormFloat64() * 3)
	}
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != q.Count() {
		t.Fatalf("count %d, want %d", back.Count(), q.Count())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		want, err1 := q.Quantile(p)
		got, err2 := back.Quantile(p)
		if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("p=%g: %v (%v) vs %v (%v)", p, got, err2, want, err1)
		}
	}

	// Merge into a fresh default-alpha sketch works on both and agrees.
	m1, _ := NewQuantileSketch(DefaultSketchAlpha)
	m2, _ := NewQuantileSketch(DefaultSketchAlpha)
	if err := m1.Merge(q); err != nil {
		t.Fatal(err)
	}
	if err := m2.Merge(&back); err != nil {
		t.Fatal(err)
	}
	p1, _ := m1.Quantile(0.5)
	p2, _ := m2.Quantile(0.5)
	if math.Float64bits(p1) != math.Float64bits(p2) {
		t.Errorf("post-merge medians diverge: %v vs %v", p1, p2)
	}

	// The wire encoding of a given state is deterministic (map keys are
	// ordered by encoding/json), so encodings can be compared byte-wise.
	b2, _ := json.Marshal(q)
	if string(b) != string(b2) {
		t.Error("sketch encoding is not deterministic")
	}

	var bad QuantileSketch
	if err := json.Unmarshal([]byte(`{"gamma":0.5,"count":0}`), &bad); err == nil {
		t.Error("invalid gamma accepted")
	}
}
