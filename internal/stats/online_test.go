package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10001)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if o.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", o.N(), len(xs))
	}
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Errorf("online mean %.12f, batch %.12f", o.Mean(), mean)
	}
	if math.Abs(o.StdDev()-sd) > 1e-9 {
		t.Errorf("online std %.12f, batch %.12f", o.StdDev(), sd)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if o.Min() != lo || o.Max() != hi {
		t.Errorf("extrema (%g, %g), want (%g, %g)", o.Min(), o.Max(), lo, hi)
	}
}

func TestOnlineMergeMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 2
	}
	// Split into uneven shards, accumulate each, merge in order.
	var merged Online
	for _, bounds := range [][2]int{{0, 13}, {13, 13}, {13, 1700}, {1700, 5000}} {
		var shard Online
		for _, x := range xs[bounds[0]:bounds[1]] {
			shard.Add(x)
		}
		merged.Merge(&shard)
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(merged.Mean()-mean) > 1e-9 {
		t.Errorf("merged mean %.12f, batch %.12f", merged.Mean(), mean)
	}
	if math.Abs(merged.StdDev()-sd) > 1e-9 {
		t.Errorf("merged std %.12f, batch %.12f", merged.StdDev(), sd)
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.StdDev() != 0 || o.N() != 0 {
		t.Error("empty accumulator not zero-valued")
	}
	o.Add(4.5)
	if o.Mean() != 4.5 || o.Variance() != 0 || o.Min() != 4.5 || o.Max() != 4.5 {
		t.Errorf("single-sample stats wrong: %+v", o)
	}
}

func TestQuantileSketchAccuracy(t *testing.T) {
	q, err := NewQuantileSketch(DefaultSketchAlpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 20000)
	for i := range xs {
		// Mixed-sign heavy-ish tail, plus exact zeros.
		switch i % 5 {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = -rng.ExpFloat64() * 4
		default:
			xs[i] = rng.ExpFloat64() * 10
		}
		q.Add(xs[i])
	}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9, 0.99} {
		want, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Relative error bound plus a small absolute slack near zero.
		tol := 0.03*math.Abs(want) + 0.02
		if math.Abs(got-want) > tol {
			t.Errorf("p=%.2f: sketch %.4f, exact %.4f (tol %.4f)", p, got, want, tol)
		}
	}
}

func TestQuantileSketchMergeIsExact(t *testing.T) {
	whole, _ := NewQuantileSketch(DefaultSketchAlpha)
	a, _ := NewQuantileSketch(DefaultSketchAlpha)
	b, _ := NewQuantileSketch(DefaultSketchAlpha)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		x := rng.NormFloat64() * 5
		whole.Add(x)
		if i < 1500 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		ga, _ := a.Quantile(p)
		gw, _ := whole.Quantile(p)
		if ga != gw {
			t.Errorf("p=%.1f: merged %.6f != whole %.6f (merge must be exact)", p, ga, gw)
		}
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	if _, err := NewQuantileSketch(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	q, _ := NewQuantileSketch(0.01)
	if _, err := q.Quantile(0.5); err == nil {
		t.Error("empty sketch quantile succeeded")
	}
	q.Add(math.NaN())
	if q.Count() != 0 {
		t.Error("NaN counted")
	}
	q.Add(-2)
	if _, err := q.Quantile(-0.1); err == nil {
		t.Error("p < 0 accepted")
	}
	v, err := q.Quantile(0.5)
	if err != nil || math.Abs(v+2) > 0.05 {
		t.Errorf("single negative sample median %v (err %v), want ≈ -2", v, err)
	}
	other, _ := NewQuantileSketch(0.1)
	if err := q.Merge(other); err == nil {
		t.Error("mismatched-alpha merge accepted")
	}
}
