// Package stats provides the descriptive statistics, robust estimators, and
// random variate generators used by the ranging and localization pipelines:
// mean/median/mode filtering of repeated distance measurements (paper §3.5),
// error histograms (Figures 2–8), and the Gaussian + outlier-mixture noise
// models used to regenerate the paper's measurement datasets.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or an error for an empty slice.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs (divides by n). It returns
// an error for an empty slice; a single sample has variance 0.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs without modifying the input. For an even
// number of samples it returns the mean of the two central order statistics.
// This is the statistical filter the ranging service applies to repeated
// measurements (paper §3.5, Figure 4).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], nil
	}
	// Average without overflow for extreme magnitudes.
	return tmp[n/2-1]/2 + tmp[n/2]/2, nil
}

// Mode returns the center of the densest window of width binWidth over xs —
// a continuous analogue of the mode, which the paper prefers over the median
// when enough repeated measurements are available (§3.5: "The mode operation
// is more resistant to the effects of uncorrelated outliers than the median,
// but it needs more measurements to be effective").
//
// The estimator slides a window of binWidth over the sorted samples, finds
// the window containing the most samples (ties broken toward the earliest
// window), and returns the mean of the samples inside it.
func Mode(xs []float64, binWidth float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if binWidth <= 0 {
		return 0, errors.New("stats: Mode: binWidth must be positive")
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)

	bestLo, bestHi := 0, 1
	lo := 0
	for hi := 1; hi <= len(tmp); hi++ {
		for tmp[hi-1]-tmp[lo] > binWidth {
			lo++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	m, _ := Mean(tmp[bestLo:bestHi])
	return m, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics, without modifying the input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: Percentile: p out of [0,1]")
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0], nil
	}
	pos := p * float64(len(tmp)-1)
	i := int(math.Floor(pos))
	if i >= len(tmp)-1 {
		return tmp[len(tmp)-1], nil
	}
	frac := pos - float64(i)
	return tmp[i]*(1-frac) + tmp[i+1]*frac, nil
}

// MedianAbs returns the median of the absolute values of xs. Used for the
// paper's headline "median measurement error ≈ 1% of maximum range" metric.
func MedianAbs(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	abs := make([]float64, len(xs))
	for i, x := range xs {
		abs[i] = math.Abs(x)
	}
	return Median(abs)
}

// Summary bundles the descriptive statistics the experiment harness reports
// for an error sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	P90      float64 // 90th percentile
	AbsMed   float64 // median of |x|
	Frac1m   float64 // fraction of samples with |x| > 1 m
	FracHalf float64 // fraction of samples with |x| > 0.5 m
}

// Summarize computes a Summary of xs, or an error for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	med, _ := Median(xs)
	p90, _ := Percentile(xs, 0.9)
	absMed, _ := MedianAbs(xs)
	s := Summary{
		N: len(xs), Mean: mean, StdDev: sd,
		Min: xs[0], Max: xs[0], Median: med, P90: p90, AbsMed: absMed,
	}
	var over1, overHalf int
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
		if math.Abs(x) > 1 {
			over1++
		}
		if math.Abs(x) > 0.5 {
			overHalf++
		}
	}
	s.Frac1m = float64(over1) / float64(len(xs))
	s.FracHalf = float64(overHalf) / float64(len(xs))
	return s, nil
}
