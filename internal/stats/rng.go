package stats

import (
	"math/rand"
)

// Sampler draws random variates for the measurement-noise models. All
// randomness in the repository flows through explicitly seeded *rand.Rand
// instances so that every experiment is reproducible run-to-run.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a Sampler backed by rng. rng must not be nil.
func NewSampler(rng *rand.Rand) *Sampler {
	if rng == nil {
		panic("stats: NewSampler: nil rng")
	}
	return &Sampler{rng: rng}
}

// Gaussian draws from N(mu, sigma²).
func (s *Sampler) Gaussian(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// Uniform draws uniformly from [lo, hi).
func (s *Sampler) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bernoulli returns true with probability p.
func (s *Sampler) Bernoulli(p float64) bool {
	return s.rng.Float64() < p
}

// Exponential draws from an exponential distribution with the given mean.
func (s *Sampler) Exponential(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Intn draws uniformly from {0, ..., n-1}.
func (s *Sampler) Intn(n int) int { return s.rng.Intn(n) }

// Rand exposes the underlying generator for callers that need raw access
// (e.g. rand.Shuffle).
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// OutlierMixture models the paper's ranging-error distribution: a zero-mean
// Gaussian core (timing, hardware delays, unit variation — §3.4 sources 1–3)
// plus rare large-magnitude outliers from noise, echoes and faulty hardware
// (§3.4 sources 5–7; Figure 6 shows outliers to 11 m).
type OutlierMixture struct {
	CoreSigma    float64 // σ of the Gaussian core, meters (paper: ≈0.1–0.15 m within ±30 cm)
	POutlier     float64 // probability a sample is an outlier
	OutlierLo    float64 // minimum |outlier| magnitude, meters
	OutlierHi    float64 // maximum |outlier| magnitude, meters
	PUnder       float64 // probability an outlier is an underestimate (negative); Figure 2: most large urban errors are underestimates
	OverSkew     float64 // mean of a small positive skew component (late detections, §3.6.1); 0 disables
	POverSkew    float64 // probability the positive skew applies to a core sample
	OverSkewGain float64 // multiplier converting skew mean into an exponential tail draw
}

// Sample draws one ranging-error value (meters) from the mixture.
func (m OutlierMixture) Sample(s *Sampler) float64 {
	if s.Bernoulli(m.POutlier) {
		mag := s.Uniform(m.OutlierLo, m.OutlierHi)
		if s.Bernoulli(m.PUnder) {
			return -mag
		}
		return mag
	}
	e := s.Gaussian(0, m.CoreSigma)
	if m.OverSkew > 0 && s.Bernoulli(m.POverSkew) {
		gain := m.OverSkewGain
		if gain == 0 {
			gain = 1
		}
		e += s.Exponential(m.OverSkew) * gain
	}
	return e
}
