package stats

import (
	"errors"
	"math"
	"sort"
)

// Online accumulates count, mean, variance (Welford), and extrema of a
// stream of samples in O(1) memory. Two Online accumulators can be combined
// with Merge (Chan et al.'s parallel formula), which lets the scenario
// engine aggregate sharded Monte Carlo trials without buffering them: each
// shard accumulates independently and the shards are merged in a fixed
// order, so the combined result is identical at any worker count.
//
// The zero value is an empty accumulator ready for use.
type Online struct {
	n          int64
	mean, m2   float64
	minV, maxV float64
}

// Add folds one sample into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.minV, o.maxV = x, x
	} else {
		o.minV = math.Min(o.minV, x)
		o.maxV = math.Max(o.maxV, x)
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds accumulator b into o. Merging the same sequence of
// accumulators in the same order always produces the same result.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.mean += d * float64(b.n) / float64(n)
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.minV = math.Min(o.minV, b.minV)
	o.maxV = math.Max(o.maxV, b.maxV)
	o.n = n
}

// N returns the number of samples seen.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the population variance (divides by n, matching
// Variance), or 0 for fewer than two samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample (0 for an empty accumulator).
func (o *Online) Min() float64 { return o.minV }

// Max returns the largest sample (0 for an empty accumulator).
func (o *Online) Max() float64 { return o.maxV }

// DefaultSketchAlpha is the relative accuracy QuantileSketch guarantees by
// default: quantile estimates are within ±1% of the true sample value.
const DefaultSketchAlpha = 0.01

// QuantileSketch is a mergeable streaming quantile estimator with bounded
// relative error (a DDSketch-style log-bucketed histogram). Samples are
// binned by magnitude into buckets whose boundaries grow geometrically, so
// any quantile is recovered to within a factor of (1+alpha)/(1-alpha) of the
// true value using O(log range) memory. Bucket counts are integers, so Merge
// is exact and order-independent — combined with Online this gives the
// scenario engine deterministic parallel aggregation.
type QuantileSketch struct {
	gamma    float64
	logGamma float64
	pos, neg map[int]int64 // bucket index -> count, keyed on |v|
	zero     int64
	count    int64
}

// NewQuantileSketch returns a sketch with relative accuracy alpha in (0, 1).
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("stats: NewQuantileSketch: alpha must be in (0, 1)")
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		gamma:    gamma,
		logGamma: math.Log(gamma),
		pos:      make(map[int]int64),
		neg:      make(map[int]int64),
	}, nil
}

// bucket returns the bucket index for a strictly positive magnitude.
func (q *QuantileSketch) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) / q.logGamma))
}

// value returns the representative value of bucket i: the midpoint estimate
// of the bucket interval (gamma^(i-1), gamma^i].
func (q *QuantileSketch) value(i int) float64 {
	return 2 * math.Pow(q.gamma, float64(i)) / (q.gamma + 1)
}

// Add folds one sample into the sketch. NaN samples are rejected silently
// (they carry no order information).
func (q *QuantileSketch) Add(v float64) {
	switch {
	case math.IsNaN(v):
		return
	case v == 0:
		q.zero++
	case v > 0:
		q.pos[q.bucket(v)]++
	default:
		q.neg[q.bucket(-v)]++
	}
	q.count++
}

// Count returns the number of samples folded in.
func (q *QuantileSketch) Count() int64 { return q.count }

// Merge folds sketch b into q. Both must share the same alpha.
func (q *QuantileSketch) Merge(b *QuantileSketch) error {
	if b.gamma != q.gamma {
		return errors.New("stats: QuantileSketch.Merge: mismatched accuracy")
	}
	for i, c := range b.pos {
		q.pos[i] += c
	}
	for i, c := range b.neg {
		q.neg[i] += c
	}
	q.zero += b.zero
	q.count += b.count
	return nil
}

// Quantile returns the p-quantile (0 <= p <= 1) estimate, accurate to the
// sketch's relative error. It returns an error for an empty sketch.
func (q *QuantileSketch) Quantile(p float64) (float64, error) {
	if q.count == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: QuantileSketch.Quantile: p out of [0,1]")
	}
	rank := int64(p * float64(q.count-1))
	var cum int64
	// Walk buckets in ascending value order: negatives (descending index =
	// ascending value), the zero bucket, then positives (ascending index).
	for _, i := range sortedKeys(q.neg, true) {
		cum += q.neg[i]
		if cum > rank {
			return -q.value(i), nil
		}
	}
	cum += q.zero
	if cum > rank {
		return 0, nil
	}
	for _, i := range sortedKeys(q.pos, false) {
		cum += q.pos[i]
		if cum > rank {
			return q.value(i), nil
		}
	}
	// Unreachable: cumulative counts sum to q.count > rank.
	return 0, errors.New("stats: QuantileSketch.Quantile: internal rank overflow")
}

func sortedKeys(m map[int]int64, descending bool) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	if descending {
		for l, r := 0, len(ks)-1; l < r; l, r = l+1, r-1 {
			ks[l], ks[r] = ks[r], ks[l]
		}
	}
	return ks
}
