package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
)

// This file is the wire layer of the mergeable aggregators: exact JSON
// encodings for Online and QuantileSketch, so a partial Monte Carlo run can
// ship its shard aggregates to another process and the receiver can merge
// them into byte-for-byte the same result a single-process run computes.
//
// Exactness is the entire point. Finite float64 values round-trip exactly
// through JSON (Go emits the shortest decimal that parses back to the same
// bits), sketch bucket counts are integers, and the only values JSON cannot
// represent — NaN and the infinities — are carried by F64 as quoted
// sentinels instead of failing to encode.

// F64 is a float64 that survives JSON exactly: finite values use the normal
// number encoding (shortest round-trip form), while NaN and ±Inf — which
// encoding/json rejects — are encoded as the quoted strings "NaN", "+Inf",
// and "-Inf". Aggregate wire types use it for every field a sample value
// can reach.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = F64(math.NaN())
		case "+Inf", "Inf":
			*f = F64(math.Inf(1))
		case "-Inf":
			*f = F64(math.Inf(-1))
		default:
			return fmt.Errorf("stats: F64: unknown sentinel %q", s)
		}
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("stats: F64: %w", err)
	}
	*f = F64(v)
	return nil
}

// ToF64 converts a float64 slice to its wire form.
func ToF64(vs []float64) []F64 {
	if vs == nil {
		return nil
	}
	out := make([]F64, len(vs))
	for i, v := range vs {
		out[i] = F64(v)
	}
	return out
}

// FromF64 converts a wire slice back to float64.
func FromF64(vs []F64) []float64 {
	if vs == nil {
		return nil
	}
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

// onlineWire is Online's stored form: the exact accumulator state, not the
// derived statistics, so a decoded accumulator continues (and merges)
// bit-identically to the original.
type onlineWire struct {
	N    int64 `json:"n"`
	Mean F64   `json:"mean"`
	M2   F64   `json:"m2"`
	Min  F64   `json:"min"`
	Max  F64   `json:"max"`
}

// MarshalJSON encodes the accumulator's exact state.
func (o Online) MarshalJSON() ([]byte, error) {
	return json.Marshal(onlineWire{
		N: o.n, Mean: F64(o.mean), M2: F64(o.m2), Min: F64(o.minV), Max: F64(o.maxV),
	})
}

// UnmarshalJSON restores an accumulator to the exact encoded state.
func (o *Online) UnmarshalJSON(b []byte) error {
	var w onlineWire
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("stats: Online: %w", err)
	}
	if w.N < 0 {
		return errors.New("stats: Online: negative sample count")
	}
	o.n = w.N
	o.mean = float64(w.Mean)
	o.m2 = float64(w.M2)
	o.minV = float64(w.Min)
	o.maxV = float64(w.Max)
	return nil
}

// sketchWire is QuantileSketch's stored form. Bucket maps marshal with
// sorted keys (encoding/json orders map keys), so the encoding of a given
// sketch state is deterministic. logGamma is derived, not stored: it is
// recomputed from the exact gamma on decode.
type sketchWire struct {
	Gamma F64           `json:"gamma"`
	Pos   map[int]int64 `json:"pos,omitempty"`
	Neg   map[int]int64 `json:"neg,omitempty"`
	Zero  int64         `json:"zero,omitempty"`
	Count int64         `json:"count"`
}

// MarshalJSON encodes the sketch's exact bucket state.
func (q QuantileSketch) MarshalJSON() ([]byte, error) {
	w := sketchWire{Gamma: F64(q.gamma), Zero: q.zero, Count: q.count}
	if len(q.pos) > 0 {
		w.Pos = q.pos
	}
	if len(q.neg) > 0 {
		w.Neg = q.neg
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores the sketch to the exact encoded state. A decoded
// sketch merges with (and quantiles identically to) the sketch it was
// encoded from: bucket counts are integers and gamma round-trips exactly.
func (q *QuantileSketch) UnmarshalJSON(b []byte) error {
	var w sketchWire
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("stats: QuantileSketch: %w", err)
	}
	gamma := float64(w.Gamma)
	if !(gamma > 1) || math.IsInf(gamma, 1) {
		return fmt.Errorf("stats: QuantileSketch: invalid gamma %g", gamma)
	}
	if w.Count < 0 || w.Zero < 0 {
		return errors.New("stats: QuantileSketch: negative count")
	}
	q.gamma = gamma
	q.logGamma = math.Log(gamma)
	q.pos = w.Pos
	q.neg = w.Neg
	if q.pos == nil {
		q.pos = make(map[int]int64)
	}
	if q.neg == nil {
		q.neg = make(map[int]int64)
	}
	q.zero = w.Zero
	q.count = w.Count
	return nil
}
