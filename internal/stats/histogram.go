package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned count of samples over [Lo, Hi). Samples
// outside the range are tallied in Under/Over. It regenerates the paper's
// error histograms (Figures 2, 4, 6, 7).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, errors.New("stats: NewHistogram: need at least one bin")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: NewHistogram: invalid range [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Add tallies one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		h.Over++ // NaN is treated as an out-of-range artifact
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard the x ≈ Hi float edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll tallies every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Render draws the histogram as a fixed-width ASCII bar chart, one bin per
// line, for the experiment harness output.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxC := h.MaxCount()
	if maxC == 0 {
		maxC = 1
	}
	var b strings.Builder
	if h.Under > 0 {
		fmt.Fprintf(&b, "%9s | %d\n", fmt.Sprintf("< %.2f", h.Lo), h.Under)
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%9.2f | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%9s | %d\n", fmt.Sprintf(">= %.2f", h.Hi), h.Over)
	}
	return b.String()
}
