package stats

import (
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(2, 1, 10); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := NewHistogram(1, 1, 10); err == nil {
		t.Error("want error for empty range")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 0.5, 1.5, 9.99, -3, 10, 25})
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Errorf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[9] != 1 {
		t.Errorf("bin 9 = %d, want 1", h.Counts[9])
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (10 and 25)", h.Over)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramEdgeNearHi(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	h.Add(0.9999999999999999) // rounds into the top bin, not out of range
	if h.Over != 0 && h.Counts[2] != 1 {
		t.Errorf("top-edge sample mishandled: %+v", h)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(-1, 1, 4)
	if got := h.BinWidth(); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("BinWidth = %v, want 0.5", got)
	}
	if got := h.BinCenter(0); !almostEq(got, -0.75, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want -0.75", got)
	}
	if got := h.BinCenter(3); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("BinCenter(3) = %v, want 0.75", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.1, 0.2, 1.5, -1, 5})
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Error("render missing bars")
	}
	if !strings.Contains(out, "< 0.00") {
		t.Error("render missing underflow row")
	}
	if !strings.Contains(out, ">= 2.00") {
		t.Error("render missing overflow row")
	}
	// Default width path.
	if out := h.Render(0); out == "" {
		t.Error("render with default width empty")
	}
}

func TestHistogramMaxCount(t *testing.T) {
	h, _ := NewHistogram(0, 3, 3)
	if h.MaxCount() != 0 {
		t.Error("empty histogram max count should be 0")
	}
	h.AddAll([]float64{0.5, 0.6, 2.5})
	if h.MaxCount() != 2 {
		t.Errorf("MaxCount = %d, want 2", h.MaxCount())
	}
}
