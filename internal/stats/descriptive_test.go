package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	one, _ := Variance([]float64{42})
	if one != 0 {
		t.Errorf("Variance single = %v, want 0", one)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
		{"outlier resistant", []float64{1, 1, 1, 1, 100}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Median(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	want := append([]float64(nil), in...)
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

func TestMode(t *testing.T) {
	// Cluster at ~10 with outliers; the mode should sit in the cluster even
	// though the median would drift with more outliers.
	xs := []float64{9.9, 10.0, 10.1, 10.05, 3.0, 25.0}
	got, err := Mode(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 0.2 {
		t.Errorf("Mode = %v, want ≈10", got)
	}
	if _, err := Mode(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	if _, err := Mode(xs, 0); err == nil {
		t.Error("want error for non-positive bin width")
	}
}

func TestModeBeatsMedianWithManyOutliers(t *testing.T) {
	// Paper §3.5: mode is more outlier-resistant than median but needs more
	// samples. 5 good readings near 12 m, 4 coordinated-looking outliers.
	xs := []float64{11.9, 12.0, 12.1, 12.0, 11.95, 2.0, 2.1, 30.0, 30.2}
	mode, _ := Mode(xs, 0.5)
	if math.Abs(mode-12) > 0.2 {
		t.Errorf("Mode = %v, want ≈12", mode)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Error("want error for p > 1")
	}
	if _, err := Percentile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	single, _ := Percentile([]float64{9}, 0.7)
	if single != 9 {
		t.Errorf("single-sample percentile = %v, want 9", single)
	}
}

func TestMedianAbs(t *testing.T) {
	got, err := MedianAbs([]float64{-3, 1, -2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2, 1e-12) {
		t.Errorf("MedianAbs = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{-2, -0.6, 0, 0.6, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != -2 || s.Max != 2 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if !almostEq(s.Frac1m, 0.4, 1e-12) {
		t.Errorf("Frac1m = %v, want 0.4", s.Frac1m)
	}
	if !almostEq(s.FracHalf, 0.8, 1e-12) {
		t.Errorf("FracHalf = %v, want 0.8", s.FracHalf)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
}

// Property: the median is always between min and max, and for sorted input
// equals the central order statistic.
func TestMedianProperties(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3))}
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, err := Median(xs)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return m >= sorted[0] && m <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGaussianSamplerMoments(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(5)))
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Gaussian(1.5, 0.33)
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(m-1.5) > 0.01 {
		t.Errorf("sample mean = %v, want ≈1.5", m)
	}
	if math.Abs(sd-0.33) > 0.01 {
		t.Errorf("sample sd = %v, want ≈0.33", sd)
	}
}

func TestOutlierMixtureShape(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(9)))
	m := OutlierMixture{
		CoreSigma: 0.12,
		POutlier:  0.05,
		OutlierLo: 1, OutlierHi: 11,
		PUnder: 0.7,
	}
	n := 100000
	var outliers, under int
	var core []float64
	for i := 0; i < n; i++ {
		e := m.Sample(s)
		if math.Abs(e) > 1 {
			outliers++
			if e < 0 {
				under++
			}
		} else {
			core = append(core, e)
		}
	}
	frac := float64(outliers) / float64(n)
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("outlier fraction = %v, want ≈0.05", frac)
	}
	uf := float64(under) / float64(outliers)
	if math.Abs(uf-0.7) > 0.05 {
		t.Errorf("underestimate fraction = %v, want ≈0.7", uf)
	}
	sd, _ := StdDev(core)
	if math.Abs(sd-0.12) > 0.02 {
		t.Errorf("core sd = %v, want ≈0.12", sd)
	}
}

func TestSamplerPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on nil rng")
		}
	}()
	NewSampler(nil)
}
