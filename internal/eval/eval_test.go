package eval

import (
	"math"
	"math/rand"
	"testing"

	"resilientloc/internal/geom"
)

func TestFitRecoversRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10), geom.Pt(4, 7),
	}
	tr := geom.Transform{Theta: 1.2, Tx: -30, Ty: 12, Flip: true}
	est := tr.ApplyAll(truth)
	// Shuffle-free: est[i] corresponds to truth[i].
	a, err := Fit(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgError > 1e-9 {
		t.Errorf("AvgError = %g on pure rigid motion", a.AvgError)
	}
	if a.MaxError > 1e-9 {
		t.Errorf("MaxError = %g on pure rigid motion", a.MaxError)
	}
	_ = rng
}

func TestFitWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := make([]geom.Point, 30)
	for i := range truth {
		truth[i] = geom.Pt(rng.Float64()*60, rng.Float64()*60)
	}
	tr := geom.Transform{Theta: -0.7, Tx: 5, Ty: 5}
	est := tr.ApplyAll(truth)
	for i := range est {
		est[i] = est[i].Add(geom.Pt(rng.NormFloat64()*0.5, rng.NormFloat64()*0.5))
	}
	a, err := Fit(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Noise std 0.5 per axis → expected positional error ≈ 0.6; alignment
	// cannot remove it but also must not inflate it.
	if a.AvgError > 1.0 {
		t.Errorf("AvgError = %.3f, want ≈0.6", a.AvgError)
	}
	if len(a.Errors) != 30 {
		t.Errorf("Errors length %d", len(a.Errors))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]geom.Point{{}}, []geom.Point{{}, {}}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := Fit([]geom.Point{{}}, []geom.Point{{}}); err == nil {
		t.Error("want error for single point")
	}
}

func TestFitSubset(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(10, 10)}
	est := map[int]geom.Point{
		0: geom.Pt(1, 1), 2: geom.Pt(1, 11), 3: geom.Pt(11, 11),
	}
	a, err := FitSubset(est, truth, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// est is truth translated by (1,1): perfect after alignment.
	if a.AvgError > 1e-9 {
		t.Errorf("AvgError = %g", a.AvgError)
	}
	if _, err := FitSubset(est, truth, []int{0}); err == nil {
		t.Error("want error for <2 nodes")
	}
	if _, err := FitSubset(est, truth, []int{0, 1}); err == nil {
		t.Error("want error for missing estimate")
	}
	if _, err := FitSubset(map[int]geom.Point{0: {}, 9: {}}, truth, []int{0, 9}); err == nil {
		t.Error("want error for out-of-range node")
	}
}

func TestAvgErrorAbsolute(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	est := map[int]geom.Point{0: geom.Pt(0, 1), 1: geom.Pt(10, 3)}
	avg, worst, err := AvgErrorAbsolute(est, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-2) > 1e-12 {
		t.Errorf("avg = %v, want 2", avg)
	}
	if math.Abs(worst-3) > 1e-12 {
		t.Errorf("worst = %v, want 3", worst)
	}
	if _, _, err := AvgErrorAbsolute(nil, truth); err == nil {
		t.Error("want error for empty estimates")
	}
	if _, _, err := AvgErrorAbsolute(map[int]geom.Point{7: {}}, truth); err == nil {
		t.Error("want error for out-of-range node")
	}
}

func TestTrimmedAvg(t *testing.T) {
	errs := []float64{1, 1, 1, 1, 10}
	full, err := TrimmedAvg(errs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-2.8) > 1e-12 {
		t.Errorf("untrimmed = %v, want 2.8", full)
	}
	trimmed, err := TrimmedAvg(errs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trimmed-1) > 1e-12 {
		t.Errorf("trimmed = %v, want 1", trimmed)
	}
	if _, err := TrimmedAvg(nil, 0); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := TrimmedAvg(errs, 5); err == nil {
		t.Error("want error for trimming everything")
	}
	if _, err := TrimmedAvg(errs, -1); err == nil {
		t.Error("want error for negative k")
	}
}
