// Package eval computes the evaluation metrics of the paper's Section 4:
// average localization error after best-fit alignment. Because LSS produces
// coordinates in an arbitrary rigid frame, "the computed coordinates were
// translated, rotated and flipped to achieve a best-fit match with the
// actual node coordinates" (Figure 18) before errors are measured.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"resilientloc/internal/geom"
)

// Alignment is the result of registering estimated positions onto ground
// truth.
type Alignment struct {
	Transform geom.Transform
	// Aligned are the estimated positions after the best-fit transform.
	Aligned []geom.Point
	// Errors are per-node distances between aligned estimates and truth.
	Errors []float64
	// AvgError is the paper's headline metric: the mean of Errors.
	AvgError float64
	// MaxError is the largest single-node error.
	MaxError float64
}

// Fit registers est onto truth with the best rigid transform (translation,
// rotation, optional reflection) and returns the per-node and average
// errors. The slices must be equal-length with at least 2 points.
func Fit(est, truth []geom.Point) (*Alignment, error) {
	if len(est) != len(truth) {
		return nil, fmt.Errorf("eval: Fit: length mismatch %d != %d", len(est), len(truth))
	}
	tr, _, err := geom.FitRigid(est, truth)
	if err != nil {
		return nil, err
	}
	a := &Alignment{Transform: tr, Aligned: tr.ApplyAll(est)}
	a.Errors = make([]float64, len(est))
	for i := range a.Aligned {
		e := a.Aligned[i].Dist(truth[i])
		a.Errors[i] = e
		a.AvgError += e
		a.MaxError = math.Max(a.MaxError, e)
	}
	a.AvgError /= float64(len(est))
	return a, nil
}

// FitSubset aligns only the listed node indices (e.g. the localized subset
// of a multilateration run) and returns their alignment.
func FitSubset(est map[int]geom.Point, truth []geom.Point, nodes []int) (*Alignment, error) {
	if len(nodes) < 2 {
		return nil, errors.New("eval: FitSubset: need at least 2 nodes")
	}
	e := make([]geom.Point, 0, len(nodes))
	tr := make([]geom.Point, 0, len(nodes))
	for _, i := range nodes {
		p, ok := est[i]
		if !ok {
			return nil, fmt.Errorf("eval: FitSubset: node %d missing from estimates", i)
		}
		if i < 0 || i >= len(truth) {
			return nil, fmt.Errorf("eval: FitSubset: node %d outside truth", i)
		}
		e = append(e, p)
		tr = append(tr, truth[i])
	}
	return Fit(e, tr)
}

// AvgErrorAbsolute computes the mean error of positions already expressed in
// the truth frame (multilateration outputs are absolute because anchors pin
// the frame — no alignment is applied, matching the paper's multilateration
// figures).
func AvgErrorAbsolute(est map[int]geom.Point, truth []geom.Point) (avg float64, worst float64, err error) {
	if len(est) == 0 {
		return 0, 0, errors.New("eval: AvgErrorAbsolute: no estimates")
	}
	// Accumulate in sorted node order: summing in Go's randomized map
	// iteration order makes the result differ in the last ulp from run to
	// run, which breaks the bit-exact reproducibility the scenario engine
	// guarantees.
	nodes := make([]int, 0, len(est))
	for i := range est {
		nodes = append(nodes, i)
	}
	sort.Ints(nodes)
	for _, i := range nodes {
		if i < 0 || i >= len(truth) {
			return 0, 0, fmt.Errorf("eval: AvgErrorAbsolute: node %d outside truth", i)
		}
		e := est[i].Dist(truth[i])
		avg += e
		worst = math.Max(worst, e)
	}
	return avg / float64(len(est)), worst, nil
}

// TrimmedAvg returns the average of errs after dropping the k largest — the
// paper repeatedly reports both forms ("Without the largest 5 errors, the
// average improves to 1.5m").
func TrimmedAvg(errs []float64, k int) (float64, error) {
	if len(errs) == 0 {
		return 0, errors.New("eval: TrimmedAvg: empty input")
	}
	if k < 0 || k >= len(errs) {
		return 0, fmt.Errorf("eval: TrimmedAvg: cannot trim %d of %d", k, len(errs))
	}
	sorted := append([]float64(nil), errs...)
	// Insertion sort is fine for evaluation-sized inputs.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	keep := sorted[:len(sorted)-k]
	var s float64
	for _, e := range keep {
		s += e
	}
	return s / float64(len(keep)), nil
}
