// Package geom provides the small amount of 2-D computational geometry the
// localization algorithms need: points and vectors, rigid transforms in
// homogeneous coordinates, and circle intersection.
//
// Everything works in meters in a right-handed plane. The package is
// allocation-free on hot paths; Point is a value type.
package geom

import (
	"fmt"
	"math"
)

// Point is a position (or free vector) in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the 3-D cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// NormSq returns the squared Euclidean length of p. It avoids the sqrt when
// only comparisons are needed.
func (p Point) NormSq() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged, so callers dividing by a near-zero distance must guard
// themselves.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Rotate returns p rotated counterclockwise by theta radians about the
// origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// Angle returns the angle of p from the positive x-axis in (-pi, pi].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Perp returns p rotated by +90 degrees.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Centroid returns the arithmetic mean of pts. It returns the zero point for
// an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// BoundingBox returns the axis-aligned bounding box of pts as (min, max)
// corners. It returns zero points for an empty slice.
func BoundingBox(pts []Point) (minPt, maxPt Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	minPt, maxPt = pts[0], pts[0]
	for _, p := range pts[1:] {
		minPt.X = math.Min(minPt.X, p.X)
		minPt.Y = math.Min(minPt.Y, p.Y)
		maxPt.X = math.Max(maxPt.X, p.X)
		maxPt.Y = math.Max(maxPt.Y, p.Y)
	}
	return minPt, maxPt
}

// Collinear reports whether points a, b, c are collinear within tolerance
// tol, measured as the normalized triangle area. Degenerate (coincident)
// points count as collinear.
func Collinear(a, b, c Point, tol float64) bool {
	ab := b.Sub(a)
	ac := c.Sub(a)
	area := math.Abs(ab.Cross(ac))
	scale := ab.Norm() * ac.Norm()
	if scale == 0 {
		return true
	}
	return area/scale < tol
}
