package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pointsAlmostEq(a, b Point, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol)
}

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -4)), Pt(4, -2)},
		{"sub", Pt(1, 2).Sub(Pt(3, -4)), Pt(-2, 6)},
		{"scale", Pt(1, -2).Scale(2.5), Pt(2.5, -5)},
		{"perp", Pt(1, 0).Perp(), Pt(0, 1)},
		{"unit", Pt(3, 4).Unit(), Pt(0.6, 0.8)},
		{"unit zero", Pt(0, 0).Unit(), Pt(0, 0)},
		{"rotate 90", Pt(1, 0).Rotate(math.Pi / 2), Pt(0, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !pointsAlmostEq(tc.got, tc.want, eps) {
				t.Errorf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestPointScalars(t *testing.T) {
	if got := Pt(3, 4).Norm(); !almostEq(got, 5, eps) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(3, 4).NormSq(); !almostEq(got, 25, eps) {
		t.Errorf("NormSq = %v, want 25", got)
	}
	if got := Pt(1, 1).Dist(Pt(4, 5)); !almostEq(got, 5, eps) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Pt(1, 1).DistSq(Pt(4, 5)); !almostEq(got, 25, eps) {
		t.Errorf("DistSq = %v, want 25", got)
	}
	if got := Pt(1, 2).Dot(Pt(3, 4)); !almostEq(got, 11, eps) {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Pt(1, 0).Cross(Pt(0, 1)); !almostEq(got, 1, eps) {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := Pt(0, 1).Angle(); !almostEq(got, math.Pi/2, eps) {
		t.Errorf("Angle = %v, want pi/2", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want origin", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !pointsAlmostEq(got, Pt(1, 1), eps) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestBoundingBox(t *testing.T) {
	lo, hi := BoundingBox([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if !pointsAlmostEq(lo, Pt(-2, -1), eps) || !pointsAlmostEq(hi, Pt(4, 5), eps) {
		t.Errorf("BoundingBox = %v, %v", lo, hi)
	}
	lo, hi = BoundingBox(nil)
	if lo != (Point{}) || hi != (Point{}) {
		t.Errorf("BoundingBox(nil) = %v, %v, want origins", lo, hi)
	}
}

func TestCollinear(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		want    bool
	}{
		{"exactly collinear", Pt(0, 0), Pt(1, 1), Pt(2, 2), true},
		{"coincident points", Pt(1, 1), Pt(1, 1), Pt(5, 5), true},
		{"right angle", Pt(0, 0), Pt(1, 0), Pt(0, 1), false},
		{"nearly collinear", Pt(0, 0), Pt(10, 0), Pt(20, 1e-6), true},
		{"clearly off-line", Pt(0, 0), Pt(10, 0), Pt(5, 3), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Collinear(tc.a, tc.b, tc.c, 1e-3); got != tc.want {
				t.Errorf("Collinear = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1))}
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		p := Pt(x, y)
		q := p.Rotate(theta)
		return almostEq(p.Norm(), q.Norm(), 1e-6*(1+p.Norm()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
