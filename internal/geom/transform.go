package geom

import (
	"fmt"
	"math"
)

// Transform is a rigid (isometric) transform of the plane: an optional
// reflection about the x-axis, followed by a counterclockwise rotation,
// followed by a translation:
//
//	q = R(θ) · F · p + t,  F = diag(1, f),  f ∈ {+1, -1}
//
// This is the transform family of the paper's Section 4.3.1 (translation,
// rotation, and reflection between two nodes' local coordinate systems). The
// paper writes it as a 3×3 homogeneous matrix; we store the four parameters
// (θ, tx, ty, f) directly.
type Transform struct {
	Theta float64 // rotation angle, radians, counterclockwise
	Tx    float64 // translation x, meters
	Ty    float64 // translation y, meters
	Flip  bool    // true when the transform includes a reflection (f = -1)
}

// Identity returns the identity transform.
func Identity() Transform { return Transform{} }

// Translation returns the pure translation by (tx, ty).
func Translation(tx, ty float64) Transform { return Transform{Tx: tx, Ty: ty} }

// Rotation returns the pure counterclockwise rotation by theta radians about
// the origin.
func Rotation(theta float64) Transform { return Transform{Theta: theta} }

// Apply maps point p through the transform.
func (t Transform) Apply(p Point) Point {
	v := t.ApplyVector(p)
	return Point{v.X + t.Tx, v.Y + t.Ty}
}

// ApplyVector maps a free vector through the linear part only (reflection
// then rotation, no translation). Use this for axis vectors during the
// distributed alignment step.
func (t Transform) ApplyVector(p Point) Point {
	s, c := math.Sincos(t.Theta)
	y := p.Y
	if t.Flip {
		y = -y
	}
	return Point{c*p.X - s*y, s*p.X + c*y}
}

// ApplyAll maps every point in pts and returns a new slice.
func (t Transform) ApplyAll(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = t.Apply(p)
	}
	return out
}

// Compose returns the transform equivalent to applying t first, then u:
// Compose(t, u)(p) = u(t(p)).
func (t Transform) Compose(u Transform) Transform {
	// Linear parts: Lu·Lt = R(θu)Fu·R(θt)Ft. A reflection conjugates a
	// rotation into its inverse (F·R(α) = R(-α)·F), so the combined angle is
	// θu + θt when u preserves orientation and θu - θt when u reflects.
	eps := 1.0
	if u.Flip {
		eps = -1
	}
	theta := u.Theta + eps*t.Theta
	trans := u.Apply(Point{t.Tx, t.Ty})
	return Transform{
		Theta: math.Atan2(math.Sin(theta), math.Cos(theta)), // normalize to (-pi, pi]
		Tx:    trans.X,
		Ty:    trans.Y,
		Flip:  t.Flip != u.Flip,
	}
}

// Invert returns the inverse transform such that
// t.Invert().Apply(t.Apply(p)) == p (up to floating-point error).
func (t Transform) Invert() Transform {
	// L = R(θ)F. For a reflection L is an involution (L⁻¹ = L); for a pure
	// rotation L⁻¹ = R(-θ).
	inv := Transform{Flip: t.Flip}
	if t.Flip {
		inv.Theta = t.Theta
	} else {
		inv.Theta = -t.Theta
	}
	it := inv.ApplyVector(Point{t.Tx, t.Ty})
	inv.Tx, inv.Ty = -it.X, -it.Y
	return inv
}

// String implements fmt.Stringer.
func (t Transform) String() string {
	f := "+"
	if t.Flip {
		f = "-"
	}
	return fmt.Sprintf("Transform{θ=%.4f rad, t=(%.3f, %.3f), f=%s1}", t.Theta, t.Tx, t.Ty, f)
}

// FitRigid computes the rigid transform (rotation + optional reflection +
// translation) that best maps src onto dst in the least-squares sense,
// together with the residual sum of squared errors. The slices must have
// equal length n >= 2. This solves the paper's Section 4.3.1 minimization
//
//	argmin_{θ,tx,ty,f} Σ_n ||T(src_n) - dst_n||²
//
// in closed form via the covariance method (the paper's "alternate method",
// which is in fact the exact optimum of the centered problem): translation
// maps the centroid of src to the centroid of dst, and the rotation angle
// satisfies the paper's normal equation
//
//	[Cxu + Cyv, Cxv - Cyu] · [sinθ, cosθ]^T = 0
//
// with the error-minimizing branch of the two solutions (θ, θ+π) selected.
// Both reflection factors f = ±1 are tried and the smaller-error fit wins.
func FitRigid(src, dst []Point) (Transform, float64, error) {
	if len(src) != len(dst) {
		return Transform{}, 0, fmt.Errorf("geom: FitRigid: length mismatch %d != %d", len(src), len(dst))
	}
	if len(src) < 2 {
		return Transform{}, 0, fmt.Errorf("geom: FitRigid: need at least 2 point pairs, got %d", len(src))
	}
	best, bestErr := fitWithFlip(src, dst, false)
	cand, candErr := fitWithFlip(src, dst, true)
	if candErr < bestErr {
		best, bestErr = cand, candErr
	}
	return best, bestErr, nil
}

// fitWithFlip solves the centered least-squares rotation for a fixed
// reflection factor and returns the assembled transform plus residual SSE.
func fitWithFlip(src, dst []Point, flip bool) (Transform, float64) {
	mu := Centroid(src)
	mx := Centroid(dst)

	// Covariances per the paper: C_ab = Σ (a_n - µ_a)(b_n - µ_b)/|C|, with
	// the reflection applied to the centered source y-coordinate up front.
	var cxu, cyv, cxv, cyu float64
	for i := range src {
		u := src[i].X - mu.X
		v := src[i].Y - mu.Y
		if flip {
			v = -v
		}
		x := dst[i].X - mx.X
		y := dst[i].Y - mx.Y
		cxu += x * u
		cyv += y * v
		cxv += x * v
		cyu += y * u
	}

	// Minimizing Σ ||R(θ)p' - q||² maximizes Σ q·R(θ)p' =
	// cosθ(Cxu + Cyv) + sinθ(Cyu - Cxv); atan2 picks the maximizing branch,
	// which is the error-minimizing one of the two roots of the paper's
	// normal equation.
	theta := math.Atan2(cyu-cxv, cxu+cyv)

	// Assemble: translate(-µ), rotate/flip, translate(+µ_dst). The composed
	// translation is t = µ_dst - L·µ_src.
	lin := Transform{Theta: theta, Flip: flip}
	lmu := lin.ApplyVector(mu)
	t := Transform{
		Theta: theta,
		Tx:    mx.X - lmu.X,
		Ty:    mx.Y - lmu.Y,
		Flip:  flip,
	}

	var sse float64
	for i := range src {
		sse += t.Apply(src[i]).DistSq(dst[i])
	}
	return t, sse
}
