package geom

import "math"

// Circle is a circle in the plane: the locus of points at distance R from
// Center. Range circles around anchors are the geometric primitive of the
// multilateration intersection consistency check (paper Section 4.1.2).
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool {
	return c.Center.DistSq(p) <= c.R*c.R
}

// Intersect computes the intersection points of two circles.
// It returns:
//   - 0 points when the circles are disjoint (too far apart or nested) or
//     coincident,
//   - 1 point when they are tangent (within tol of tangency),
//   - 2 points otherwise.
//
// tol is an absolute tolerance in meters on the tangency test; pass 0 for
// exact arithmetic behaviour.
func (c Circle) Intersect(o Circle, tol float64) []Point {
	d := c.Center.Dist(o.Center)
	if d == 0 {
		return nil // concentric: coincident or nested, no discrete points
	}
	// No intersection when separated or nested beyond tolerance.
	if d > c.R+o.R+tol || d < math.Abs(c.R-o.R)-tol {
		return nil
	}
	// Distance from c.Center to the radical line along the center line.
	a := (d*d + c.R*c.R - o.R*o.R) / (2 * d)
	h2 := c.R*c.R - a*a
	u := o.Center.Sub(c.Center).Scale(1 / d) // unit vector c → o
	mid := c.Center.Add(u.Scale(a))
	if h2 <= tol*tol {
		// Tangent (or within tolerance of it): single point.
		return []Point{mid}
	}
	h := math.Sqrt(h2)
	perp := u.Perp().Scale(h)
	return []Point{mid.Add(perp), mid.Sub(perp)}
}

// IntersectAllPairs returns the intersection points of every unordered pair
// of circles, using tolerance tol for near-tangency. The result aggregates
// candidate position evidence for the consistency check.
func IntersectAllPairs(circles []Circle, tol float64) []Point {
	var pts []Point
	for i := 0; i < len(circles); i++ {
		for j := i + 1; j < len(circles); j++ {
			pts = append(pts, circles[i].Intersect(circles[j], tol)...)
		}
	}
	return pts
}
