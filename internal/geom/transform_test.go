package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randTransform draws a random rigid transform with bounded translation.
func randTransform(rng *rand.Rand) Transform {
	return Transform{
		Theta: rng.Float64()*2*math.Pi - math.Pi,
		Tx:    rng.Float64()*200 - 100,
		Ty:    rng.Float64()*200 - 100,
		Flip:  rng.Intn(2) == 1,
	}
}

func randPoint(rng *rand.Rand) Point {
	return Pt(rng.Float64()*100-50, rng.Float64()*100-50)
}

func TestTransformIdentity(t *testing.T) {
	id := Identity()
	p := Pt(3.5, -2.25)
	if got := id.Apply(p); !pointsAlmostEq(got, p, eps) {
		t.Errorf("Identity.Apply = %v, want %v", got, p)
	}
}

func TestTransformBasics(t *testing.T) {
	tests := []struct {
		name string
		tr   Transform
		in   Point
		want Point
	}{
		{"translation", Translation(2, 3), Pt(1, 1), Pt(3, 4)},
		{"rotation 90", Rotation(math.Pi / 2), Pt(1, 0), Pt(0, 1)},
		{"rotation -90", Rotation(-math.Pi / 2), Pt(1, 0), Pt(0, -1)},
		{"flip only", Transform{Flip: true}, Pt(1, 2), Pt(1, -2)},
		{"flip then rotate 90", Transform{Theta: math.Pi / 2, Flip: true}, Pt(1, 2), Pt(2, 1)},
		{"rotate+translate", Transform{Theta: math.Pi, Tx: 1, Ty: 1}, Pt(1, 0), Pt(0, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.tr.Apply(tc.in); !pointsAlmostEq(got, tc.want, eps) {
				t.Errorf("Apply(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTransformIsIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tr := randTransform(rng)
		p, q := randPoint(rng), randPoint(rng)
		before := p.Dist(q)
		after := tr.Apply(p).Dist(tr.Apply(q))
		if !almostEq(before, after, 1e-9*(1+before)) {
			t.Fatalf("transform %v not an isometry: %v vs %v", tr, before, after)
		}
	}
}

func TestTransformInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		tr := randTransform(rng)
		inv := tr.Invert()
		p := randPoint(rng)
		if got := inv.Apply(tr.Apply(p)); !pointsAlmostEq(got, p, 1e-8) {
			t.Fatalf("round trip failed for %v: %v -> %v", tr, p, got)
		}
		if got := tr.Apply(inv.Apply(p)); !pointsAlmostEq(got, p, 1e-8) {
			t.Fatalf("reverse round trip failed for %v: %v -> %v", tr, p, got)
		}
	}
}

func TestTransformCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		a, b := randTransform(rng), randTransform(rng)
		c := a.Compose(b)
		p := randPoint(rng)
		want := b.Apply(a.Apply(p))
		if got := c.Apply(p); !pointsAlmostEq(got, want, 1e-7) {
			t.Fatalf("compose mismatch: a=%v b=%v p=%v got=%v want=%v", a, b, p, got, want)
		}
	}
}

func TestTransformComposeWithInverseIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		tr := randTransform(rng)
		id := tr.Compose(tr.Invert())
		p := randPoint(rng)
		if got := id.Apply(p); !pointsAlmostEq(got, p, 1e-7) {
			t.Fatalf("t∘t⁻¹ not identity for %v: %v -> %v", tr, p, got)
		}
	}
}

func TestFitRigidRecoversExactTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		tr := randTransform(rng)
		n := 3 + rng.Intn(8)
		src := make([]Point, n)
		dst := make([]Point, n)
		for j := range src {
			src[j] = randPoint(rng)
			dst[j] = tr.Apply(src[j])
		}
		got, sse, err := FitRigid(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if sse > 1e-12*float64(n) {
			t.Fatalf("residual %g too large for exact recovery of %v", sse, tr)
		}
		// Check by action rather than parameter equality (θ and flip can
		// combine into equivalent parameterizations only via action).
		for j := range src {
			if !pointsAlmostEq(got.Apply(src[j]), dst[j], 1e-6) {
				t.Fatalf("fitted transform does not map src to dst: %v vs %v",
					got.Apply(src[j]), dst[j])
			}
		}
	}
}

func TestFitRigidRecoversReflection(t *testing.T) {
	tr := Transform{Theta: 0.7, Tx: 5, Ty: -3, Flip: true}
	src := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(2, 3)}
	dst := tr.ApplyAll(src)
	got, sse, err := FitRigid(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Flip {
		t.Error("reflection not detected")
	}
	if sse > 1e-12 {
		t.Errorf("residual %g, want ~0", sse)
	}
}

func TestFitRigidNoisyIsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := Transform{Theta: 1.1, Tx: 10, Ty: 20}
	n := 30
	src := make([]Point, n)
	dst := make([]Point, n)
	for j := range src {
		src[j] = randPoint(rng)
		d := tr.Apply(src[j])
		dst[j] = d.Add(Pt(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1))
	}
	got, sse, err := FitRigid(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Expected residual ~ n * 2 * 0.01; allow generous headroom.
	if sse > float64(n)*0.1 {
		t.Errorf("noisy fit residual %g too large", sse)
	}
	if math.Abs(got.Theta-tr.Theta) > 0.05 {
		t.Errorf("recovered θ=%v, want ≈%v", got.Theta, tr.Theta)
	}
}

// TestFitRigidMatchesGridSearch cross-checks the closed-form covariance
// solution against brute-force search over the rotation angle, validating the
// paper's normal-equation derivation.
func TestFitRigidMatchesGridSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5)
		src := make([]Point, n)
		dst := make([]Point, n)
		for j := range src {
			src[j] = randPoint(rng)
			dst[j] = randPoint(rng) // unrelated: a genuinely hard fit
		}
		got, sse, err := FitRigid(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		_ = got
		best := math.Inf(1)
		mu, mx := Centroid(src), Centroid(dst)
		for _, flip := range []bool{false, true} {
			for k := 0; k < 3600; k++ {
				theta := float64(k) / 3600 * 2 * math.Pi
				lin := Transform{Theta: theta, Flip: flip}
				l := lin.ApplyVector(mu)
				cand := Transform{Theta: theta, Tx: mx.X - l.X, Ty: mx.Y - l.Y, Flip: flip}
				var s float64
				for j := range src {
					s += cand.Apply(src[j]).DistSq(dst[j])
				}
				if s < best {
					best = s
				}
			}
		}
		if sse > best+1e-6*(1+best) {
			t.Fatalf("closed form sse %g worse than grid search %g", sse, best)
		}
	}
}

func TestFitRigidErrors(t *testing.T) {
	if _, _, err := FitRigid([]Point{Pt(0, 0)}, []Point{Pt(0, 0), Pt(1, 1)}); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, _, err := FitRigid([]Point{Pt(0, 0)}, []Point{Pt(0, 0)}); err == nil {
		t.Error("want error on single pair")
	}
}
