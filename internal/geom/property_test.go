package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedPoint clamps arbitrary quick-generated floats into a sane range.
func boundedPoint(x, y float64) (Point, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return Point{}, false
	}
	return Pt(math.Mod(x, 1e4), math.Mod(y, 1e4)), true
}

func boundedTransform(theta, tx, ty float64, flip bool) (Transform, bool) {
	if math.IsNaN(theta) || math.IsInf(theta, 0) ||
		math.IsNaN(tx) || math.IsInf(tx, 0) ||
		math.IsNaN(ty) || math.IsInf(ty, 0) {
		return Transform{}, false
	}
	return Transform{
		Theta: math.Mod(theta, 2*math.Pi),
		Tx:    math.Mod(tx, 1e4),
		Ty:    math.Mod(ty, 1e4),
		Flip:  flip,
	}, true
}

// Property: transforms preserve pairwise distances (isometry) for arbitrary
// parameters and points.
func TestPropertyTransformIsometry(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 500}
	f := func(theta, tx, ty float64, flip bool, x1, y1, x2, y2 float64) bool {
		tr, ok := boundedTransform(theta, tx, ty, flip)
		if !ok {
			return true
		}
		p, ok1 := boundedPoint(x1, y1)
		q, ok2 := boundedPoint(x2, y2)
		if !ok1 || !ok2 {
			return true
		}
		before := p.Dist(q)
		after := tr.Apply(p).Dist(tr.Apply(q))
		return math.Abs(before-after) <= 1e-6*(1+before)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Invert is a true inverse for arbitrary transforms and points.
func TestPropertyTransformInverse(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 500}
	f := func(theta, tx, ty float64, flip bool, x, y float64) bool {
		tr, ok := boundedTransform(theta, tx, ty, flip)
		if !ok {
			return true
		}
		p, ok := boundedPoint(x, y)
		if !ok {
			return true
		}
		back := tr.Invert().Apply(tr.Apply(p))
		return back.Dist(p) <= 1e-5*(1+p.Norm()+math.Abs(tx)+math.Abs(ty))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: composition acts like sequential application for arbitrary
// transform pairs.
func TestPropertyTransformCompose(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 500}
	f := func(t1, x1, y1 float64, f1 bool, t2, x2, y2 float64, f2 bool, px, py float64) bool {
		a, ok1 := boundedTransform(t1, x1, y1, f1)
		b, ok2 := boundedTransform(t2, x2, y2, f2)
		p, ok3 := boundedPoint(px, py)
		if !ok1 || !ok2 || !ok3 {
			return true
		}
		want := b.Apply(a.Apply(p))
		got := a.Compose(b).Apply(p)
		scale := 1 + want.Norm()
		return got.Dist(want) <= 1e-5*scale
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: FitRigid residual is zero (to float tolerance) whenever dst is
// an exact rigid image of src, regardless of the transform.
func TestPropertyFitRigidExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		tr := Transform{
			Theta: rng.Float64() * 2 * math.Pi,
			Tx:    rng.NormFloat64() * 50,
			Ty:    rng.NormFloat64() * 50,
			Flip:  rng.Intn(2) == 1,
		}
		n := 2 + rng.Intn(10)
		src := make([]Point, n)
		for i := range src {
			src[i] = Pt(rng.NormFloat64()*30, rng.NormFloat64()*30)
		}
		dst := tr.ApplyAll(src)
		_, sse, err := FitRigid(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if sse > 1e-9*float64(n) {
			t.Fatalf("trial %d: residual %g for exact rigid image", trial, sse)
		}
	}
}

// Property: the FitRigid residual never exceeds the residual of the
// identity transform (it is a minimizer).
func TestPropertyFitRigidIsMinimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		src := make([]Point, n)
		dst := make([]Point, n)
		for i := range src {
			src[i] = Pt(rng.NormFloat64()*20, rng.NormFloat64()*20)
			dst[i] = Pt(rng.NormFloat64()*20, rng.NormFloat64()*20)
		}
		_, sse, err := FitRigid(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		var idSSE float64
		for i := range src {
			idSSE += src[i].DistSq(dst[i])
		}
		if sse > idSSE+1e-9 {
			t.Fatalf("trial %d: fit residual %g exceeds identity residual %g", trial, sse, idSSE)
		}
	}
}

// Property: circle intersection points lie on both circles, for arbitrary
// circle pairs.
func TestPropertyCircleIntersection(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(6)), MaxCount: 1000}
	f := func(cx1, cy1, r1, cx2, cy2, r2 float64) bool {
		c1, ok1 := boundedPoint(cx1, cy1)
		c2, ok2 := boundedPoint(cx2, cy2)
		if !ok1 || !ok2 || math.IsNaN(r1) || math.IsNaN(r2) || math.IsInf(r1, 0) || math.IsInf(r2, 0) {
			return true
		}
		a := Circle{Center: c1, R: math.Abs(math.Mod(r1, 100)) + 0.01}
		b := Circle{Center: c2, R: math.Abs(math.Mod(r2, 100)) + 0.01}
		for _, p := range a.Intersect(b, 0) {
			scale := 1 + a.R + b.R + c1.Norm() + c2.Norm()
			if math.Abs(p.Dist(a.Center)-a.R) > 1e-6*scale ||
				math.Abs(p.Dist(b.Center)-b.R) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
