package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestCircleContains(t *testing.T) {
	c := Circle{Center: Pt(1, 1), R: 2}
	if !c.Contains(Pt(1, 1)) {
		t.Error("center not contained")
	}
	if !c.Contains(Pt(3, 1)) {
		t.Error("boundary point not contained")
	}
	if c.Contains(Pt(3.1, 1)) {
		t.Error("outside point contained")
	}
}

func TestCircleIntersectTwoPoints(t *testing.T) {
	a := Circle{Center: Pt(0, 0), R: 5}
	b := Circle{Center: Pt(8, 0), R: 5}
	pts := a.Intersect(b, 0)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
	if !pointsAlmostEq(pts[0], Pt(4, -3), 1e-9) || !pointsAlmostEq(pts[1], Pt(4, 3), 1e-9) {
		t.Errorf("points = %v, want (4,±3)", pts)
	}
}

func TestCircleIntersectTangent(t *testing.T) {
	a := Circle{Center: Pt(0, 0), R: 2}
	b := Circle{Center: Pt(4, 0), R: 2}
	pts := a.Intersect(b, 1e-9)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1 (external tangency)", len(pts))
	}
	if !pointsAlmostEq(pts[0], Pt(2, 0), 1e-9) {
		t.Errorf("tangent point = %v, want (2,0)", pts[0])
	}

	// Internal tangency.
	c := Circle{Center: Pt(0, 0), R: 4}
	d := Circle{Center: Pt(2, 0), R: 2}
	pts = c.Intersect(d, 1e-9)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1 (internal tangency)", len(pts))
	}
	if !pointsAlmostEq(pts[0], Pt(4, 0), 1e-9) {
		t.Errorf("tangent point = %v, want (4,0)", pts[0])
	}
}

func TestCircleIntersectNone(t *testing.T) {
	tests := []struct {
		name string
		a, b Circle
	}{
		{"disjoint", Circle{Pt(0, 0), 1}, Circle{Pt(10, 0), 1}},
		{"nested", Circle{Pt(0, 0), 10}, Circle{Pt(1, 0), 1}},
		{"concentric", Circle{Pt(0, 0), 2}, Circle{Pt(0, 0), 3}},
		{"coincident", Circle{Pt(0, 0), 2}, Circle{Pt(0, 0), 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if pts := tc.a.Intersect(tc.b, 0); len(pts) != 0 {
				t.Errorf("got %d points, want 0", len(pts))
			}
		})
	}
}

// TestCircleIntersectPointsOnBothCircles property-checks that every returned
// intersection point actually lies on both circles.
func TestCircleIntersectPointsOnBothCircles(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		a := Circle{Center: randPoint(rng), R: rng.Float64()*20 + 0.1}
		b := Circle{Center: randPoint(rng), R: rng.Float64()*20 + 0.1}
		for _, p := range a.Intersect(b, 0) {
			da := math.Abs(p.Dist(a.Center) - a.R)
			db := math.Abs(p.Dist(b.Center) - b.R)
			if da > 1e-6 || db > 1e-6 {
				t.Fatalf("intersection point %v off circles by %g, %g (a=%v b=%v)", p, da, db, a, b)
			}
		}
	}
}

func TestIntersectAllPairs(t *testing.T) {
	// Three circles through a common point (1, 0): each pair contributes
	// that point (plus possibly another).
	circles := []Circle{
		{Center: Pt(0, 0), R: 1},
		{Center: Pt(2, 0), R: 1},
		{Center: Pt(1, 1), R: 1},
	}
	pts := IntersectAllPairs(circles, 1e-9)
	// Pair (0,1) is tangent at (1,0); pairs (0,2) and (1,2) each give two
	// points, one of which is (1,0).
	var near int
	for _, p := range pts {
		if p.Dist(Pt(1, 0)) < 1e-6 {
			near++
		}
	}
	if near < 3 {
		t.Errorf("expected ≥3 intersection points at the common point, got %d (all: %v)", near, pts)
	}
}
