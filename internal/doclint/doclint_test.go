// Package doclint enforces the repository's documentation contract on the
// packages that form the public seam between the engine and its front-ends:
// every exported symbol carries a doc comment, and function/type comments
// open with the symbol's name, so godoc reads as a reference manual. CI
// additionally runs staticcheck's ST1020/ST1021/ST1022; this in-repo test
// keeps the same contract enforceable with nothing but the go toolchain.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// packages under the documentation contract, relative to the repo root.
var packages = []string{
	"internal/engine",
	"internal/engine/cache",
	"internal/engine/coord",
	"internal/engine/spec",
}

// TestExportedSymbolsAreDocumented parses each contract package (tests
// excluded, as staticcheck excludes them) and reports every exported
// function, method, type, constant, and variable that lacks a doc comment —
// and every function or type whose comment does not open with its name.
func TestExportedSymbolsAreDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range packages {
		pkg := pkg
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			for _, problem := range lintPackage(t, filepath.Join(root, pkg)) {
				t.Error(problem)
			}
		})
	}
}

// repoRoot walks up from the test's working directory (the package dir) to
// the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := filepath.Glob(filepath.Join(dir, "go.mod")); err == nil {
			if m, _ := filepath.Glob(filepath.Join(dir, "go.mod")); len(m) == 1 {
				return dir
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// lintPackage returns one message per documentation violation in dir.
func lintPackage(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var problems []string
	at := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					problems = append(problems, lintFunc(d, at(d))...)
				case *ast.GenDecl:
					problems = append(problems, lintGen(d, at)...)
				}
			}
		}
	}
	return problems
}

// lintFunc checks one function or method declaration. Methods on unexported
// receivers are unreachable outside the package and exempt, matching
// staticcheck.
func lintFunc(d *ast.FuncDecl, pos string) []string {
	if !d.Name.IsExported() {
		return nil
	}
	if d.Recv != nil && !receiverExported(d.Recv) {
		return nil
	}
	if d.Doc == nil {
		return []string{fmt.Sprintf("%s: exported %s %s has no doc comment", pos, funcKind(d), d.Name.Name)}
	}
	if !strings.HasPrefix(firstWords(d.Doc), d.Name.Name+" ") &&
		!strings.HasPrefix(firstWords(d.Doc), d.Name.Name+"\n") {
		return []string{fmt.Sprintf("%s: doc comment of %s %s should start with %q",
			pos, funcKind(d), d.Name.Name, d.Name.Name)}
	}
	return nil
}

// lintGen checks a type/const/var declaration group: each exported name
// needs a comment on either its own spec or the enclosing group, and type
// comments must open with the type's name (a leading article is allowed,
// as in godoc convention).
func lintGen(d *ast.GenDecl, at func(ast.Node) string) []string {
	var problems []string
	for _, sp := range d.Specs {
		switch s := sp.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = d.Doc
			}
			if doc == nil {
				problems = append(problems,
					fmt.Sprintf("%s: exported type %s has no doc comment", at(s), s.Name.Name))
				continue
			}
			if !typeDocOK(firstWords(doc), s.Name.Name) {
				problems = append(problems,
					fmt.Sprintf("%s: doc comment of type %s should start with %q", at(s), s.Name.Name, s.Name.Name))
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					problems = append(problems,
						fmt.Sprintf("%s: exported %s %s has no doc comment", at(s), d.Tok, name.Name))
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver names an exported
// type.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// funcKind labels a declaration "function" or "method" for messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// firstWords flattens a doc comment's text for the starts-with check.
func firstWords(doc *ast.CommentGroup) string {
	return strings.TrimSpace(doc.Text())
}

// typeDocOK allows "Name ..." and the godoc article forms "A Name ..." /
// "An Name ..." / "The Name ...".
func typeDocOK(text, name string) bool {
	for _, prefix := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(text, prefix+name+" ") || strings.HasPrefix(text, prefix+name+"\n") || text == prefix+name {
			return true
		}
	}
	return false
}
