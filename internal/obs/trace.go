package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer collects completed spans for one run. It is safe for concurrent
// use; spans are recorded when they End. A Tracer reaches code through a
// context (WithTracer), and code creates spans with Start — which is a
// no-op returning a nil *Span when the context carries no tracer, so
// instrumented hot paths cost nothing in untraced runs.
type Tracer struct {
	mu     sync.Mutex
	nextID int64
	spans  []SpanRecord
	now    func() time.Time
}

// NewTracer returns an empty tracer using the wall clock.
func NewTracer() *Tracer { return &Tracer{now: time.Now} }

// SetClock replaces the tracer's clock — for deterministic tests only.
// Must be called before any span starts.
func (t *Tracer) SetClock(now func() time.Time) { t.now = now }

// SpanRecord is one completed span: the serialized, wire-portable form —
// what a locd worker returns to the coordinator and what the Chrome trace
// export renders. Times are microseconds since the Unix epoch.
type SpanRecord struct {
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"` // 0 = a root span
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one in-flight traced operation. A nil *Span is the disabled
// form: every method is a no-op, so call sites need no tracing-enabled
// branches except around attribute computation they want to skip.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying the tracer; Start on the returned
// context (and its descendants) records spans into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the context's tracer, or nil when tracing is off.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start begins a span named name as a child of the context's current span.
// When the context carries no tracer it returns (ctx, nil) without
// allocating — the zero-cost disabled path — and the nil span's methods
// are all no-ops.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	var parentID int64
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		parentID = p.id
	}
	s := t.startSpan(name, parentID)
	return context.WithValue(ctx, spanKey, s), s
}

func (t *Tracer) startSpan(name string, parent int64) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tracer: t, id: id, parent: parent, name: name, start: t.now()}
}

// SetAttr attaches a key/value attribute; nil-safe. Callers on
// allocation-sensitive paths should guard attribute computation with a nil
// check, because boxing the value into any allocates before the no-op.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
	return s
}

// End completes the span and records it on the tracer; nil-safe and
// idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	end := s.tracer.now()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   attrs,
	}
	s.tracer.mu.Lock()
	s.tracer.spans = append(s.tracer.spans, rec)
	s.tracer.mu.Unlock()
}

// Export snapshots the completed spans, ordered by start time (ties by
// id), which makes exports deterministic for a deterministic clock.
func (t *Tracer) Export() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Import grafts externally produced span records (a locd worker's job
// subtree, say) under parent: IDs are remapped into this tracer's space,
// records whose parent is outside the imported set hang off the given
// parent span, and timestamps are kept as-is — cross-machine clock skew
// shows up as offset, not corruption. A nil parent imports them as roots.
func (t *Tracer) Import(parent *Span, recs []SpanRecord) {
	if t == nil || len(recs) == 0 {
		return
	}
	var parentID int64
	if parent != nil {
		parentID = parent.id
	}
	idMap := make(map[int64]int64, len(recs))
	t.mu.Lock()
	for _, r := range recs {
		t.nextID++
		idMap[r.ID] = t.nextID
	}
	for _, r := range recs {
		nr := r
		nr.ID = idMap[r.ID]
		if mapped, ok := idMap[r.Parent]; ok && r.Parent != 0 {
			nr.Parent = mapped
		} else {
			nr.Parent = parentID
		}
		t.spans = append(t.spans, nr)
	}
	t.mu.Unlock()
}

// Subtree filters records to the spans rooted at those matching root —
// the matches plus all their descendants — preserving input order.
func Subtree(recs []SpanRecord, root func(SpanRecord) bool) []SpanRecord {
	in := make(map[int64]bool)
	// Parents precede children in recorded order often, but not always
	// (a parent ends after its children). Iterate to a fixed point.
	for {
		grew := false
		for _, r := range recs {
			if in[r.ID] {
				continue
			}
			if root(r) || (r.Parent != 0 && in[r.Parent]) {
				in[r.ID] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	var out []SpanRecord
	for _, r := range recs {
		if in[r.ID] {
			out = append(out, r)
		}
	}
	return out
}

// WriteChromeTraceFile writes the Chrome trace_event export to path — the
// backing for the CLIs' -trace flag.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chromeEvent is one Chrome trace_event "complete" (ph "X") event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the completed spans as a Chrome trace_event
// JSON array (loadable in chrome://tracing and Perfetto): one complete
// ("X") event per span, timestamps in microseconds. Each span's tid is its
// root ancestor's id, so every top-level operation gets its own track and
// nested children stack beneath it; span id and parent ride along in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	recs := t.Export()
	parentOf := make(map[int64]int64, len(recs))
	for _, r := range recs {
		parentOf[r.ID] = r.Parent
	}
	rootOf := func(id int64) int64 {
		for i := 0; i < len(recs); i++ { // bounded walk; cycles cannot happen
			p := parentOf[id]
			if p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, r := range recs {
		args := make(map[string]any, len(r.Attrs)+2)
		for k, v := range r.Attrs {
			args[k] = v
		}
		args["span_id"] = r.ID
		if r.Parent != 0 {
			args["parent_id"] = r.Parent
		}
		ev := chromeEvent{
			Name: r.Name, Cat: "obs", Ph: "X",
			TS: r.StartUS, Dur: r.DurUS,
			PID: 1, TID: rootOf(r.ID), Args: args,
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(recs)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
