package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammering: many goroutines hammering one registry's
// counters, gauges, and histograms — the per-shard usage pattern of a big
// engine run — must be race-free (run under -race) and lose no updates.
func TestRegistryConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("trials_total")
			gg := r.Gauge("inflight")
			h := r.Histogram("latency_seconds", DefLatencyBuckets)
			for i := 0; i < perG; i++ {
				c.Inc()
				c.Add(2)
				gg.Add(1)
				gg.Add(-1)
				h.Observe(float64(i%7) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if got, want := r.Counter("trials_total").Value(), int64(goroutines*perG*3); got != want {
		t.Errorf("counter lost updates: got %d, want %d", got, want)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge should balance to zero, got %d", got)
	}
	h := r.Histogram("latency_seconds", nil)
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Errorf("histogram count %d, want %d", got, want)
	}
	// Sum of i%7 over perG iterations, times 1ms, times goroutines.
	var per float64
	for i := 0; i < perG; i++ {
		per += float64(i%7) * 0.001
	}
	if got, want := h.Sum(), per*goroutines; math.Abs(got-want) > 1e-6*want {
		t.Errorf("histogram sum %g, want %g", got, want)
	}
}

// TestWritePrometheus pins the exposition format: typed families, sorted
// names, cumulative histogram buckets with a +Inf terminator.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Counter("a_total").Add(1)
	r.Gauge("queue_depth").Set(5)
	h := r.Histogram("op_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_total counter",
		"a_total 1",
		"# TYPE b_total counter",
		"b_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 5",
		"# TYPE op_seconds histogram",
		`op_seconds_bucket{le="0.1"} 1`,
		`op_seconds_bucket{le="1"} 2`,
		`op_seconds_bucket{le="+Inf"} 3`,
		"op_seconds_sum 2.55",
		"op_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSON: the JSON snapshot round-trips and carries the same
// values the typed accessors report.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(7)
	r.Gauge("inflight").Set(2)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.Counters["jobs_total"] != 7 || snap.Gauges["inflight"] != 2 {
		t.Errorf("snapshot values: %+v", snap)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Errorf("snapshot histograms: %+v", snap.Histograms)
	}
}

// TestHistogramBucketEdges: a sample exactly on a bound lands in that
// bound's bucket (Prometheus le semantics), and NaN is dropped.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	h.Observe(math.NaN())
	if got := []int64{h.buckets[0].Load(), h.buckets[1].Load(), h.buckets[2].Load()}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("bucket counts %v, want [1 1 1]", got)
	}
	if h.Count() != 3 {
		t.Errorf("count %d, want 3 (NaN dropped)", h.Count())
	}
}
