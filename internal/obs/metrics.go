// Package obs is the repo's dependency-free telemetry substrate: a
// race-safe metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms, snapshot-able to Prometheus text format and JSON) and
// lightweight span tracing (obs.Start child spans over context) that can
// export a run's span tree as Chrome trace_event JSON.
//
// Two properties govern every design choice:
//
//   - Instrumentation must never change what the system computes or prints:
//     metrics and spans live entirely off the result path, so golden
//     byte-identical output is unaffected by telemetry being on or off.
//   - Disabled instrumentation must cost (almost) nothing: obs.Start on a
//     context without a tracer performs no allocation and returns a nil
//     *Span whose methods are no-ops, and metric handles are resolved once
//     into package-level variables so the hot path touches only an atomic.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; counters only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for operation
// latencies in seconds: 100µs to 60s, roughly logarithmic — wide enough for
// both a cache Get and a multi-second campaign shard.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations ≤ bounds[i]; an implicit +Inf bucket counts
// everything). Observations are lock-free atomics.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. NaN samples are dropped (they would poison
// the sum without being attributable to any bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; handle lookups (Counter/Gauge/Histogram) get-or-create
// under a lock, so callers on hot paths should resolve their handles once
// (package-level variables) and hit only the atomic afterwards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every layer's package-level
// metric handles resolve against; locd's /metrics endpoint serves it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the existing buckets regardless of
// the bounds argument — one name, one layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // per-bound counts plus the +Inf bucket
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64), Gauges: make(map[string]int64)}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	names := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.histograms[name]
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum(), Bounds: h.bounds}
		hs.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count series. Families are sorted by name so
// the output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	names := sortedKeys(snap.Counters)
	for _, name := range names {
		p("# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name])
	}
	names = sortedKeys(snap.Gauges)
	for _, name := range names {
		p("# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[name])
	}
	for _, h := range snap.Histograms {
		p("# TYPE %s histogram\n", h.Name)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			p("%s_bucket{le=%q} %d\n", h.Name, formatFloat(b), cum)
		}
		cum += h.Buckets[len(h.Buckets)-1]
		p("%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		p("%s_sum %s\n", h.Name, formatFloat(h.Sum))
		p("%s_count %d\n", h.Name, h.Count)
	}
	return err
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
