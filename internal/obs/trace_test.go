package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock ticks one millisecond per reading from a fixed epoch, making
// span timestamps (and therefore exports) fully deterministic.
func fakeClock() func() time.Time {
	base := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// buildTree constructs the three-layer span shape the distributed stack
// records — coordinator range → (imported) worker job → engine shards —
// entirely through the public context API.
func buildTree(t *testing.T) *Tracer {
	t.Helper()

	// The "worker side": a job span with two shard children.
	wt := NewTracer()
	wt.SetClock(fakeClock())
	wctx := WithTracer(context.Background(), wt)
	jctx, job := Start(wctx, "run.job")
	job.SetAttr("job", "abc123").SetAttr("scenario", "multilat-town")
	_, sh0 := Start(jctx, "engine.shard")
	sh0.SetAttr("shard", 0)
	sh0.End()
	_, sh1 := Start(jctx, "engine.shard")
	sh1.SetAttr("shard", 1)
	sh1.End()
	job.End()

	// The "coordinator side": a job span, a range span, an attempt span —
	// with the worker's exported subtree grafted under the range.
	ct := NewTracer()
	ct.SetClock(fakeClock())
	cctx := WithTracer(context.Background(), ct)
	ecctx, exec := Start(cctx, "coord.job")
	exec.SetAttr("id", "multilat-town")
	rctx, rng := Start(ecctx, "coord.range")
	rng.SetAttr("lo", 0).SetAttr("hi", 4)
	_, att := Start(rctx, "coord.attempt")
	att.SetAttr("worker", "http://w1")
	att.End()
	ct.Import(rng, wt.Export())
	rng.End()
	exec.End()
	return ct
}

// TestChromeTraceGolden pins the Chrome trace_event export of a
// deterministic three-layer span tree byte-for-byte.
func TestChromeTraceGolden(t *testing.T) {
	ct := buildTree(t)
	var buf bytes.Buffer
	if err := ct.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The export must parse as a JSON array of events regardless of the
	// golden bytes — the property external trace viewers depend on.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		for _, field := range []string{"ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %v missing %q", ev["name"], field)
			}
		}
	}
	for _, want := range []string{"coord.job", "coord.range", "coord.attempt", "run.job", "engine.shard"} {
		if !names[want] {
			t.Errorf("exported trace lacks a %q span", want)
		}
	}
}

// TestImportRemapsUnderParent: imported records get fresh IDs, internal
// parent links survive the remap, and orphans attach to the graft point.
func TestImportRemapsUnderParent(t *testing.T) {
	ct := buildTree(t)
	recs := ct.Export()
	byName := func(name string) []SpanRecord {
		var out []SpanRecord
		for _, r := range recs {
			if r.Name == name {
				out = append(out, r)
			}
		}
		return out
	}
	jobs := byName("run.job")
	if len(jobs) != 1 {
		t.Fatalf("want 1 imported run.job span, got %d", len(jobs))
	}
	rng := byName("coord.range")[0]
	if jobs[0].Parent != rng.ID {
		t.Errorf("imported job's parent = %d, want the coord.range span %d", jobs[0].Parent, rng.ID)
	}
	for _, sh := range byName("engine.shard") {
		if sh.Parent != jobs[0].ID {
			t.Errorf("imported shard's parent = %d, want the imported job %d", sh.Parent, jobs[0].ID)
		}
	}
}

// TestSubtree: extracting a job's spans from a batch tracer keeps exactly
// the root match and its descendants.
func TestSubtree(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock())
	ctx := WithTracer(context.Background(), tr)
	j1ctx, j1 := Start(ctx, "run.job")
	j1.SetAttr("job", "one")
	_, s1 := Start(j1ctx, "engine.shard")
	s1.End()
	j1.End()
	j2ctx, j2 := Start(ctx, "run.job")
	j2.SetAttr("job", "two")
	_, s2 := Start(j2ctx, "engine.shard")
	s2.End()
	j2.End()

	sub := Subtree(tr.Export(), func(r SpanRecord) bool {
		return r.Name == "run.job" && r.Attrs["job"] == "one"
	})
	if len(sub) != 2 {
		t.Fatalf("subtree has %d spans, want 2 (job + shard): %+v", len(sub), sub)
	}
	for _, r := range sub {
		if r.Attrs["job"] == "two" {
			t.Errorf("subtree leaked a span of the other job: %+v", r)
		}
	}
}

// TestDisabledTracingZeroAlloc: Start on a tracer-less context must not
// allocate, and the nil span's methods must be no-ops — the guarantee that
// lets the engine's per-shard hot path stay instrumented unconditionally.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "engine.shard")
		if sp != nil || c2 != ctx {
			t.Fatal("disabled Start must return the same ctx and a nil span")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled Start allocates %.1f times per call, want 0", allocs)
	}
	var nilSpan *Span
	nilSpan.SetAttr("k", "v") // must not panic
	nilSpan.End()
}

// TestNestedSpansParentage: context nesting produces the parent links.
func TestNestedSpansParentage(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	c1, root := Start(ctx, "root")
	c2, mid := Start(c1, "mid")
	_, leaf := Start(c2, "leaf")
	leaf.End()
	mid.End()
	root.End()
	recs := tr.Export()
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d", byName["root"].Parent)
	}
	if byName["mid"].Parent != byName["root"].ID || byName["leaf"].Parent != byName["mid"].ID {
		t.Errorf("parent chain broken: %+v", recs)
	}
}
