package coord_test

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resilientloc/internal/engine/coord"
	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// subRange returns the spec restricted to [lo, hi) — how a predecessor
// coordinator's sub-jobs bank range-keyed cache entries.
func subRange(sp spec.JobSpec, lo, hi int) spec.JobSpec {
	sp.TrialRange = &spec.Range{Lo: lo, Hi: hi}
	return sp
}

// TestDynamicStealingByteIdentity: in dynamic mode an idle fast worker
// steals unsubmitted work from a slow worker's assignment, and the merged
// result is still byte-identical to the local run — stealing moves only
// work that never started, so no trial is computed twice.
func TestDynamicStealingByteIdentity(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 2, Trials: 16, ShardSize: 1}
	want := normalized(t, localValue(t, sp))

	fast := newWorker(t, run.Options{NoCache: true})
	slow := slowEventsProxy(t, newWorker(t, run.Options{NoCache: true}), 400*time.Millisecond)

	var last []coord.WorkerScore
	val, st, err := coord.Execute(context.Background(), sp, coord.Options{
		Workers:      []string{slow, fast},
		StallTimeout: -1, // isolate stealing from hedging
		Warnings:     io.Discard,
		OnScoreboard: func(ws []coord.WorkerScore) { last = ws },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("stolen-work result diverged\n got %s\nwant %s", got, want)
	}
	if st.Steals == 0 {
		t.Errorf("fast worker never stole from the slow assignment: %+v", st)
	}
	if st.Retries != 0 || st.Hedges != 0 || st.DedupLosses != 0 {
		t.Errorf("stealing should not show up as retries/hedges: %+v", st)
	}
	stealRows := 0
	for _, ws := range last {
		if ws.Steals > 0 {
			stealRows++
			if ws.Worker != fast {
				t.Errorf("steals credited to %s, want the fast worker %s", ws.Worker, fast)
			}
		}
	}
	if stealRows == 0 {
		t.Errorf("scoreboard shows no steals: %+v", last)
	}
}

// TestDynamicMidRunJoin: the coordinator discovers its fleet from a
// registry and keeps polling it, so a worker announced while the job runs
// is put to work by stealing — and the result stays byte-identical.
func TestDynamicMidRunJoin(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 3, Trials: 16, ShardSize: 1}
	want := normalized(t, localValue(t, sp))

	registry := newWorker(t, run.Options{NoCache: true}) // any locd serves the registry
	slow := slowEventsProxy(t, registry, 400*time.Millisecond)
	joiner := newWorker(t, run.Options{NoCache: true})

	ctx := context.Background()
	if err := fleet.PostAnnounce(ctx, nil, registry, fleet.Announce{URL: slow, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = fleet.PostAnnounce(ctx, nil, registry, fleet.Announce{URL: joiner, Capacity: 1})
	}()

	var warnings strings.Builder
	val, st, err := coord.Execute(ctx, sp, coord.Options{
		Discover:         registry,
		DiscoverInterval: 50 * time.Millisecond,
		StallTimeout:     -1,
		Warnings:         &warnings,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("mid-run-join result diverged\n got %s\nwant %s", got, want)
	}
	if st.Joined == 0 {
		t.Errorf("joiner was never discovered: %+v\nwarnings:\n%s", st, warnings.String())
	}
	if st.Steals == 0 {
		t.Errorf("joiner arrived with no assignment and should have stolen work: %+v", st)
	}
	if !strings.Contains(warnings.String(), "joined the fleet mid-run") {
		t.Errorf("no join diagnostic in warnings:\n%s", warnings.String())
	}
}

// TestCrashResumeProperty is the crash-recovery acceptance property: for
// any subset of the range-keyed cache entries a dead coordinator's workers
// banked, a resuming coordinator merges the surviving entries, re-executes
// only the gaps, and produces bytes identical to an uninterrupted run — at
// seeds 1 and 5.
func TestCrashResumeProperty(t *testing.T) {
	tiling := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 12}}
	subsets := [][]int{
		{},           // nothing survived: plain dynamic run
		{0},          // prefix only
		{3},          // suffix only
		{1, 3},       // disjoint islands: every gap boundary mid-space
		{0, 1, 2, 3}, // everything survived: no re-execution at all
	}
	for _, seed := range []int64{1, 5} {
		sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: seed, Trials: 12, ShardSize: 2}
		want := normalized(t, localValue(t, sp))
		for _, subset := range subsets {
			name := fmt.Sprintf("seed%d_subset%v", seed, subset)
			// The worker and the populating session share one cache dir —
			// and, being the same binary, one cache fingerprint — exactly
			// like a worker that outlived its coordinator.
			dir := filepath.Join(t.TempDir(), "cache")
			sess, err := run.NewSession(run.Options{CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			wantResumed := 0
			for _, idx := range subset {
				rg := tiling[idx]
				if _, _, err := run.ExecuteSpec(sess, subRange(sp, rg[0], rg[1])); err != nil {
					t.Fatalf("%s: banking [%d, %d): %v", name, rg[0], rg[1], err)
				}
				wantResumed += rg[1] - rg[0]
			}
			worker := newWorker(t, run.Options{CacheDir: dir})

			val, st, err := coord.Execute(context.Background(), sp, coord.Options{
				Workers:  []string{worker},
				Resume:   true,
				Warnings: io.Discard,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := normalized(t, val); got != want {
				t.Errorf("%s: resumed result diverged\n got %s\nwant %s", name, got, want)
			}
			if st.ResumedTrials != wantResumed || st.ResumedRanges != len(subset) {
				t.Errorf("%s: resumed %d trials in %d ranges, want %d in %d",
					name, st.ResumedTrials, st.ResumedRanges, wantResumed, len(subset))
			}
		}
	}
}

// TestResumeFullEntry: when some worker's cache already holds the finished
// full result, resume returns it without submitting any work.
func TestResumeFullEntry(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8, ShardSize: 2}
	want := normalized(t, localValue(t, sp))

	dir := filepath.Join(t.TempDir(), "cache")
	sess, err := run.NewSession(run.Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.ExecuteSpec(sess, sp); err != nil {
		t.Fatal(err)
	}
	worker := newWorker(t, run.Options{CacheDir: dir})

	var warnings strings.Builder
	val, st, err := coord.Execute(context.Background(), sp, coord.Options{
		Workers:  []string{worker},
		Resume:   true,
		Warnings: &warnings,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("full-entry resume diverged\n got %s\nwant %s", got, want)
	}
	if st.ResumedTrials != 8 {
		t.Errorf("stats %+v, want the full 8 trials resumed", st)
	}
	if !strings.Contains(warnings.String(), "resumed the complete result") {
		t.Errorf("no full-resume diagnostic:\n%s", warnings.String())
	}
}

// TestResumeOffIgnoresCaches: without Options.Resume the coordinator
// executes everything even when range entries exist (resume is an explicit
// crash-recovery action, not an ambient cache behavior).
func TestResumeOffIgnoresCaches(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 4, Trials: 8, ShardSize: 2}
	dir := filepath.Join(t.TempDir(), "cache")
	sess, err := run.NewSession(run.Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.ExecuteSpec(sess, subRange(sp, 0, 4)); err != nil {
		t.Fatal(err)
	}
	worker := newWorker(t, run.Options{CacheDir: dir})
	_, st, err := coord.Execute(context.Background(), sp,
		coord.Options{Workers: []string{worker}, Warnings: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedTrials != 0 || st.ResumedRanges != 0 {
		t.Errorf("resume ran without being asked: %+v", st)
	}
}
