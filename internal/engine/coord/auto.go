package coord

// CI-driven stopping across the fleet: the distributed twin of the local
// runner's auto-trials loop. Each round is an ordinary fixed-N coordinated
// execution whose range results land in the workers' caches, so with
// Options.Reuse on, the next (doubled) round adopts the previous round's
// ranges and computes only the extension.

import (
	"context"
	"fmt"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/spec"
)

// ExecuteAuto drives an auto-trials spec across the worker fleet: run the
// scenario's default trial count, then keep doubling — each round an
// ordinary coordinated Execute of a fixed-N spec — until the 95% CI
// half-width of the stopping metric reaches the spec's target, the trial
// cap is hit, or the scenario's own ceiling stops growth. The returned
// Stats sums the additive counters (retries, hedges, steals, resumed and
// reused trials, ...) across rounds and takes the final round's shape
// (Trials, Ranges, Workers). A fixed-count spec just delegates to Execute.
func ExecuteAuto(ctx context.Context, sp spec.JobSpec, opts Options) (*spec.Value, Stats, error) {
	if sp.AutoTrials == nil {
		return Execute(ctx, sp, opts)
	}
	if err := sp.Validate(); err != nil {
		return nil, Stats{}, err
	}
	auto := sp.AutoTrials
	base := sp
	base.AutoTrials = nil
	job, err := spec.Resolve(base)
	if err != nil {
		return nil, Stats{}, err
	}
	n := job.TotalTrials
	if c := auto.Cap(); n > c {
		n = c
	}
	start := time.Now()
	var acc Stats
	prevEffective := 0
	for {
		rs := base
		rs.Trials = n
		val, st, err := Execute(ctx, rs, opts)
		if err != nil {
			return nil, acc, err
		}
		acc.Retries += st.Retries
		acc.Hedges += st.Hedges
		acc.DedupLosses += st.DedupLosses
		acc.Steals += st.Steals
		acc.Joined += st.Joined
		acc.Left += st.Left
		acc.ResumedTrials += st.ResumedTrials
		acc.ResumedRanges += st.ResumedRanges
		acc.ReusedTrials += st.ReusedTrials
		acc.ReusedRanges += st.ReusedRanges
		acc.Trials, acc.Ranges, acc.Workers = st.Trials, st.Ranges, st.Workers
		rep := val.Report
		if rep == nil {
			return nil, acc, fmt.Errorf("coord: %s: auto-trials round produced no report", base.ID)
		}
		effective := rep.Trials
		hw, err := engine.CIHalfWidth(rep, auto.Metric)
		if err != nil {
			return nil, acc, fmt.Errorf("coord: %s: auto-trials: %w", base.ID, err)
		}
		done := hw <= auto.CITarget
		plateau := effective == prevEffective
		capped := effective >= auto.Cap()
		if done || plateau || capped {
			if !done {
				warnTo(opts.Warnings,
					"coord: %s: auto-trials stopped at %d trials with CI half-width %.6g above target %.6g\n",
					base.ID, effective, hw, auto.CITarget)
			}
			val.SetExecutionMeta(st.Workers, time.Since(start).Seconds())
			return val, acc, nil
		}
		prevEffective = effective
		n = auto.NextTrials(effective)
	}
}
