package coord

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Scoreboard renders the coordinator's live fleet view for one job: an
// aggregate trial counter plus one row per worker (ranges won, trials/sec,
// retries, stall hedges). On an interactive terminal the block repaints in
// place (ANSI cursor movement) as ranges complete; on any other writer —
// CI logs, pipes — Progress falls back to the quarter-milestone lines of
// MilestoneProgress and the per-worker rows appear once, at Final. Wire
// Progress to Options.OnProgress and Update to Options.OnScoreboard; both
// are safe for the coordinator's serialized callbacks plus a concurrent
// Final.
type Scoreboard struct {
	w   io.Writer
	tty bool
	id  string

	mu          sync.Mutex
	scores      []WorkerScore
	done, total int
	drawn       int // lines the TTY block currently occupies
	lastQuarter int
	finished    bool
}

// NewScoreboard returns a renderer for one job's coordinated execution,
// writing to w (normally stderr) and labeling the counter line with id.
func NewScoreboard(w io.Writer, id string) *Scoreboard {
	return &Scoreboard{w: w, tty: isTTY(w), id: id, lastQuarter: -1}
}

// isTTY reports whether w is an interactive terminal (only an *os.File can
// be; the character-device check needs no platform dependencies).
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// Progress records the aggregate trial counter (Options.OnProgress).
// Nil-safe, like every Scoreboard method, so front-ends can hold a nil
// *Scoreboard when progress is off.
func (s *Scoreboard) Progress(done, total int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done, s.total = done, total
	if !s.tty {
		if total <= 0 {
			return
		}
		if q := 4 * done / total; q > s.lastQuarter {
			s.lastQuarter = q
			fmt.Fprintf(s.w, "%s: %d/%d trials\n", s.id, done, total)
		}
		return
	}
	s.redrawLocked()
}

// Update records a fresh per-worker snapshot (Options.OnScoreboard).
func (s *Scoreboard) Update(scores []WorkerScore) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scores = scores
	if s.tty {
		s.redrawLocked()
	}
}

// Final renders the closing state: on a TTY the block repaints once more
// and stays (subsequent output flows below it); elsewhere it prints one
// summary line per worker that did anything, so log readers still get the
// fleet attribution the live block would have shown.
func (s *Scoreboard) Final() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.finished = true
	if s.tty {
		s.redrawLocked()
		s.drawn = 0 // leave the final block in place
		return
	}
	for _, ws := range s.scores {
		if ws.Ranges == 0 && ws.Retries == 0 && ws.Hedges == 0 && ws.Steals == 0 &&
			ws.ResumedTrials == 0 && ws.ReusedTrials == 0 {
			continue
		}
		fmt.Fprintf(s.w, "%s: worker %s: ranges=%d trials=%d trials/s=%.1f retries=%d hedges=%d steals=%d resumed=%d reused=%d\n",
			s.id, ws.Worker, ws.Ranges, ws.Trials, ws.TrialsPerSec, ws.Retries, ws.Hedges, ws.Steals,
			ws.ResumedTrials, ws.ReusedTrials)
	}
}

// redrawLocked repaints the TTY block: the job's counter line plus one row
// per worker. The caller holds s.mu.
func (s *Scoreboard) redrawLocked() {
	var b strings.Builder
	if s.drawn > 0 {
		fmt.Fprintf(&b, "\r\x1b[%dA\x1b[J", s.drawn)
	}
	fmt.Fprintf(&b, "%-28s %4d/%d trials\n", s.id, s.done, s.total)
	lines := 1
	if len(s.scores) > 0 {
		fmt.Fprintf(&b, "  %-36s %6s %9s %8s %7s %7s %8s %7s\n",
			"worker", "ranges", "trials/s", "retries", "hedges", "steals", "resumed", "reused")
		lines++
		for _, ws := range s.scores {
			fmt.Fprintf(&b, "  %-36s %6d %9.1f %8d %7d %7d %8d %7d\n",
				ws.Worker, ws.Ranges, ws.TrialsPerSec, ws.Retries, ws.Hedges, ws.Steals,
				ws.ResumedTrials, ws.ReusedTrials)
			lines++
		}
	}
	s.drawn = lines
	io.WriteString(s.w, b.String())
}
