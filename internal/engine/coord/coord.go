// Package coord is the distributed trial-range coordinator: it splits one
// declarative job (spec.JobSpec) into contiguous trial_range sub-jobs, fans
// them out to a fleet of locd workers over the service's own wire API
// (POST /v1/jobs + NDJSON event streams), retries failed or stalled ranges
// on surviving workers, and merges the returned partial aggregates
// (engine.Partial) into the job's full result — byte-identical to a
// single-process run, for any partition of the trial space and any worker
// topology.
//
// Determinism rests on the engine's partial-execution contract
// (engine.MergePartials): each sub-range's aggregate restores or replays
// the exact shard states the full run computes, so the coordinator only
// has to guarantee coverage — every range completed exactly once in the
// merge set. Each sub-job is content-addressed (the spec hash is the job
// ID, and the range-extended cache key is the on-disk coordination
// record), which makes duplicate completions harmless: a range retried or
// hedged onto a second worker yields the same job ID and the same bytes,
// and the coordinator keeps whichever copy arrives first.
//
// Partitioning has two modes. With Options.Ranges set, the trial space is
// split up front into that many fixed ranges — the fully reproducible
// scheduling older callers pin. With Ranges zero (the default), the
// coordinator schedules elastically: each worker draws chunks — roughly
// half its remaining assignment at a time, shard-sized at the tail — and
// an idle worker steals the tail half of the largest unsubmitted
// assignment in the fleet. Because only *unsubmitted* work moves, stealing
// never duplicates a trial, and the chunks still tile the trial space
// exactly, so the merged bytes are unchanged. Dynamic mode can also
// discover its fleet from a membership registry (Options.Discover,
// internal/engine/fleet) — re-polled during the run, so a worker that
// joins mid-run is put to work by stealing — and resume a predecessor's
// half-finished job (Options.Resume) by probing each worker's range-keyed
// cache entries and re-executing only the gaps.
package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// Coordinator telemetry: fleet-level counters for the range lifecycle. A
// range completes exactly once (coord_ranges_total); extra submissions show
// up as retries (worker failed) or hedges (worker stalled), and a hedge that
// loses the completion race increments coord_dedup_losses_total — the cost
// of the hedging policy, distinct from its benefit. Dynamic mode adds
// steals (unsubmitted work moved to an idle worker — free by construction),
// resumed trials (this job's own prior ranges recovered from a dead
// predecessor's range-keyed cache entries — Options.Resume), and reused
// trials (a different trial count's surviving ranges adapted in by the
// prefix-reuse planner — Options.Reuse).
var (
	obsRanges    = obs.Default().Counter("coord_ranges_total")
	obsRetries   = obs.Default().Counter("coord_retries_total")
	obsHedges    = obs.Default().Counter("coord_hedges_total")
	obsDedupLoss = obs.Default().Counter("coord_dedup_losses_total")
	obsSteals    = obs.Default().Counter("coord_steals_total")
	obsResumed   = obs.Default().Counter("coord_resumed_trials_total")
	obsReused    = obs.Default().Counter("coord_reused_trials_total")
)

// DefaultStallTimeout is how long a range may go without any event-stream
// activity before the coordinator hedges it onto another worker. Progress
// events arrive per completed shard, so this must comfortably exceed one
// shard's compute time.
const DefaultStallTimeout = 5 * time.Minute

// DefaultDiscoverInterval is how often dynamic mode re-polls the fleet
// registry for workers that joined or left mid-run.
const DefaultDiscoverInterval = 2 * time.Second

// Options configures a coordinated execution.
type Options struct {
	// Workers are the locd base URLs (e.g. "http://127.0.0.1:8090") the
	// trial ranges are distributed across. At least one is required unless
	// Discover names a registry to find them in.
	Workers []string
	// Ranges selects the partitioning mode. Positive: split the trial space
	// up front into exactly that many contiguous ranges (clamped to the
	// trial count; with a single range the job is submitted whole, so even
	// single-trial campaigns coordinate). Zero (the default): dynamic mode —
	// workers draw shard-aligned chunks from per-worker assignments, idle
	// workers steal unsubmitted work from the busiest assignment, and
	// mid-run joiners from Discover participate.
	Ranges int
	// Discover is a fleet-registry base URL (any locd serves one; see
	// internal/engine/fleet). When set, the registry's live members are
	// merged into Workers before execution, and dynamic mode keeps polling
	// it during the run so workers that join mid-run are put to work.
	Discover string
	// DiscoverInterval is the registry re-poll period in dynamic mode;
	// 0 means DefaultDiscoverInterval.
	DiscoverInterval time.Duration
	// Resume, in dynamic mode, probes every worker's range-keyed result
	// cache for sub-ranges of this job a dead predecessor's run already
	// completed (POST /v1/cache/ranges), merges those entries in, and
	// executes only the gaps — the coordinator crash-recovery path. The
	// resumed result is byte-identical to an uninterrupted run.
	Resume bool
	// Reuse, in dynamic mode, additionally accepts workers' range-keyed
	// entries banked under a *different* full trial count (the prefix-reuse
	// planner's cross-N extension): a worker holding ranges of a cached
	// 1024-trial run lets a 4096-trial job compute only [1024, 4096). Every
	// adopted entry is geometry-checked (engine.AdaptPartial) before it
	// joins the merge set, so the result stays byte-identical to a cold
	// run. Distinct from Resume, which replays this job's own interrupted
	// ranges; the CLIs default Reuse on and keep Resume opt-in.
	Reuse bool
	// Client is the HTTP client; nil means http.DefaultClient. Do not set
	// a global Client.Timeout — event streams live as long as their jobs;
	// stall detection is the liveness bound.
	Client *http.Client
	// StallTimeout is the per-attempt event-stream liveness bound: a range
	// whose stream delivers nothing for this long is hedged onto another
	// worker (the stalled attempt keeps running and may still win).
	// 0 means DefaultStallTimeout; negative disables stall detection.
	StallTimeout time.Duration
	// MaxAttempts caps submissions per range (initial + retries + hedges).
	// 0 means 2×len(Workers), minimum 4.
	MaxAttempts int
	// OnProgress, when non-nil, receives the aggregate trials-completed
	// counter across all ranges. Calls are serialized; done is
	// non-decreasing.
	OnProgress func(done, total int)
	// OnScoreboard, when non-nil, receives a fresh per-worker scoreboard
	// snapshot whenever a range completes or an attempt is retried or
	// hedged. Calls are serialized; the slice is the callback's to keep.
	OnScoreboard func([]WorkerScore)
	// Warnings receives retry/hedge diagnostics; nil means os.Stderr.
	Warnings io.Writer
}

// WorkerScore is one worker's row in the fleet scoreboard.
type WorkerScore struct {
	// Worker is the locd base URL.
	Worker string
	// Ranges counts the ranges this worker won (its result was merged).
	Ranges int
	// Trials is the total trial count of those won ranges.
	Trials int
	// Retries counts attempts on this worker that failed and were retried
	// elsewhere.
	Retries int
	// Hedges counts attempts on this worker that stalled long enough for the
	// coordinator to hedge the range onto another worker.
	Hedges int
	// Steals counts the times this worker, idle, took unsubmitted work from
	// another worker's assignment (dynamic mode only).
	Steals int
	// ResumedTrials counts trials recovered from this worker's cache by
	// crash-resume (entries of this job's own trial count).
	ResumedTrials int
	// ReusedTrials counts trials adopted from this worker's cache by the
	// prefix-reuse planner (entries banked under a different trial count).
	ReusedTrials int
	// TrialsPerSec is Trials divided by the worker's cumulative winning-
	// attempt wall time; 0 until the worker wins a range.
	TrialsPerSec float64
}

// Stats summarizes one coordinated execution.
type Stats struct {
	// Trials is the job's full trial count.
	Trials int
	// Ranges is how many sub-ranges the job was split into.
	Ranges int
	// Retries counts extra submissions beyond one per range (failures
	// retried plus stalls hedged).
	Retries int
	// Hedges counts the subset of Retries caused by stall hedging: the
	// original attempt was still running (just silent) when a duplicate was
	// launched.
	Hedges int
	// DedupLosses counts duplicate attempts whose work was discarded because
	// a sibling attempt won the range first — the duplicated work hedging
	// paid for. Always 0 without hedges.
	DedupLosses int
	// Workers is how many distinct workers completed at least one range.
	Workers int
	// Steals counts unsubmitted-work transfers to idle workers (dynamic
	// mode). A steal moves work that had not started anywhere, so it never
	// duplicates a trial.
	Steals int
	// Joined and Left count mid-run fleet membership changes observed from
	// the registry (dynamic mode with Discover set).
	Joined int
	Left   int
	// ResumedTrials and ResumedRanges describe this job's own prior work
	// recovered from the fleet's range-keyed caches instead of recomputed
	// (Options.Resume): entries banked under the job's exact trial count.
	ResumedTrials int
	ResumedRanges int
	// ReusedTrials and ReusedRanges describe work the prefix-reuse planner
	// adopted from a *different* trial count's surviving cache entries
	// (Options.Reuse) — incremental extension rather than crash recovery.
	// The two counters never overlap: each merged cache entry is counted as
	// exactly one of resumed or reused.
	ReusedTrials int
	ReusedRanges int
}

// Execute runs one job across the worker fleet and returns its full result
// — exactly what a local run.ExecuteSpec of the same spec returns, with
// execution metadata describing the coordinated run (workers = distinct
// workers used, elapsed = coordination wall time).
func Execute(ctx context.Context, sp spec.JobSpec, opts Options) (*spec.Value, Stats, error) {
	start := time.Now()
	if sp.TrialRange != nil {
		return nil, Stats{}, fmt.Errorf("coord: spec %s already carries a trial range; the coordinator owns the split", sp.ID)
	}
	job, err := spec.Resolve(sp)
	if err != nil {
		return nil, Stats{}, err
	}
	if opts.Discover != "" {
		view, derr := fleet.Discover(ctx, opts.Client, opts.Discover)
		if derr != nil {
			// With a static fallback list the run can proceed; without one
			// the registry was the only source of workers.
			if len(opts.Workers) == 0 {
				return nil, Stats{}, fmt.Errorf("coord: discovering fleet: %w", derr)
			}
			warnTo(opts.Warnings, "coord: fleet discovery from %s failed (%v); using the static worker list\n",
				opts.Discover, derr)
		} else {
			opts.Workers = mergeWorkerURLs(opts.Workers, view.URLs())
		}
	}
	c, err := newCoordinator(job, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	ctx, jobSpan := obs.Start(ctx, "coord.job")
	if jobSpan != nil {
		jobSpan.SetAttr("job", sp.Hash()).SetAttr("scenario", job.Campaign.Scenario.Name).
			SetAttr("trials", job.TotalTrials).SetAttr("dynamic", c.dynamic).
			SetAttr("workers", len(c.workers))
	}
	defer jobSpan.End()
	val, err := c.run(ctx)
	if err != nil {
		return nil, c.stats(), err
	}
	val.ClearExecutionMeta()
	st := c.stats()
	val.SetExecutionMeta(st.Workers, time.Since(start).Seconds())
	return val, st, nil
}

// warnTo writes a diagnostic to w, defaulting to stderr like every other
// coordinator warning.
func warnTo(w io.Writer, format string, args ...any) {
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

// mergeWorkerURLs unions the static worker list with discovered members,
// normalized and deduplicated, static entries first.
func mergeWorkerURLs(static, discovered []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, w := range append(append([]string{}, static...), discovered...) {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// ParseWorkers splits a comma-separated -workers flag value into base
// URLs, dropping empty entries — the one parser every coordinator
// front-end shares.
func ParseWorkers(v string) []string {
	var out []string
	for _, w := range strings.Split(v, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// MilestoneProgress returns an OnProgress callback printing
// newline-delimited quarter-milestone lines ("id: done/total trials") to w
// — the non-TTY convention of the local runner, shared by the coordinator
// CLIs.
func MilestoneProgress(w io.Writer, id string) func(done, total int) {
	lastQuarter := -1
	return func(done, total int) {
		if total <= 0 {
			return
		}
		if q := 4 * done / total; q > lastQuarter {
			lastQuarter = q
			fmt.Fprintf(w, "%s: %d/%d trials\n", id, done, total)
		}
	}
}

// SplitRanges cuts [0, trials) into k contiguous, non-empty, near-equal
// ranges (k is clamped to trials; the first trials%k ranges get the extra
// trial).
func SplitRanges(trials, k int) []spec.Range {
	if k > trials {
		k = trials
	}
	if k < 1 {
		k = 1
	}
	base, rem := trials/k, trials%k
	out := make([]spec.Range, k)
	lo := 0
	for i := range out {
		n := base
		if i < rem {
			n++
		}
		out[i] = spec.Range{Lo: lo, Hi: lo + n}
		lo += n
	}
	return out
}

type coordinator struct {
	job      spec.Resolved
	client   *http.Client
	stall    time.Duration
	maxTry   int
	dynamic  bool // Ranges == 0: chunked assignments, stealing, discovery, resume
	minChunk int  // smallest chunk dynamic mode carves: one effective shard
	discover string
	poll     time.Duration
	resumeOn bool
	reuseOn  bool
	onProg   func(done, total int)
	warn     io.Writer

	onScore func([]WorkerScore)

	mu      sync.Mutex
	workers []string
	// ranges/parts/rangeDone are parallel slices: the sub-ranges of the
	// trial space, each slot's winning result, and its progress counter.
	// Static mode fixes them up front; dynamic mode appends a slot per
	// carved chunk (and per resumed cache entry), still tiling
	// [0, TotalTrials) exactly.
	ranges    []spec.Range
	parts     []*spec.Value
	rangeDone []int
	// assign holds each worker's contiguous unsubmitted assignment; spare
	// holds assignment intervals beyond the worker count (resume gaps,
	// departed workers' leftovers). departed marks registry members that
	// left mid-run; only workers in discovered (registry-sourced or
	// registry-confirmed) are ever marked departed.
	assign     map[string]*spec.Range
	spare      []spec.Range
	departed   map[string]bool
	discovered map[string]bool
	// drainCh closes when the assignment pool empties for good — the
	// registry poller's cue that no joiner can be put to work anymore.
	drainCh chan struct{}

	retries       int
	hedges        int
	dedupLosses   int
	steals        int
	joined        int
	left          int
	resumedTrials int
	resumedRanges int
	reusedTrials  int
	reusedRanges  int
	workersUsed   map[string]bool
	scores        map[string]*workerTally

	// scoreMu serializes OnScoreboard invocations outside c.mu, so a slow
	// renderer never blocks range completions.
	scoreMu sync.Mutex
}

// workerTally is the mutable accumulator behind one WorkerScore row.
type workerTally struct {
	ranges  int
	trials  int
	retries int
	hedges  int
	steals  int
	resumed int           // trials crash-resume recovered from this worker's cache
	reused  int           // trials the prefix-reuse planner adopted from this worker's cache
	busy    time.Duration // wall time of winning attempts
}

func newCoordinator(job spec.Resolved, opts Options) (*coordinator, error) {
	if len(opts.Workers) == 0 {
		if opts.Discover != "" {
			return nil, fmt.Errorf("coord: no workers registered at %s", opts.Discover)
		}
		return nil, fmt.Errorf("coord: no workers configured")
	}
	workers := make([]string, len(opts.Workers))
	for i, w := range opts.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" {
			return nil, fmt.Errorf("coord: empty worker URL")
		}
		workers[i] = w
	}
	if opts.Ranges < 0 {
		return nil, fmt.Errorf("coord: negative range count %d", opts.Ranges)
	}
	stall := opts.StallTimeout
	switch {
	case stall == 0:
		stall = DefaultStallTimeout
	case stall < 0:
		stall = 0 // disabled
	}
	maxTry := opts.MaxAttempts
	if maxTry <= 0 {
		maxTry = 2 * len(workers)
		if maxTry < 4 {
			maxTry = 4
		}
	}
	warn := opts.Warnings
	if warn == nil {
		warn = os.Stderr
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	poll := opts.DiscoverInterval
	if poll <= 0 {
		poll = DefaultDiscoverInterval
	}
	minChunk := job.ShardSize
	if minChunk < 1 {
		minChunk = 1
	}
	c := &coordinator{
		job:         job,
		workers:     workers,
		client:      client,
		stall:       stall,
		maxTry:      maxTry,
		dynamic:     opts.Ranges == 0,
		minChunk:    minChunk,
		discover:    opts.Discover,
		poll:        poll,
		resumeOn:    opts.Resume,
		reuseOn:     opts.Reuse,
		onProg:      opts.OnProgress,
		onScore:     opts.OnScoreboard,
		warn:        warn,
		assign:      make(map[string]*spec.Range),
		departed:    make(map[string]bool),
		discovered:  make(map[string]bool),
		workersUsed: make(map[string]bool),
		scores:      make(map[string]*workerTally),
	}
	if c.dynamic {
		c.drainCh = make(chan struct{})
	} else {
		c.ranges = SplitRanges(job.Trials, opts.Ranges)
		c.parts = make([]*spec.Value, len(c.ranges))
		c.rangeDone = make([]int, len(c.ranges))
	}
	return c, nil
}

// rangeAt reads one range slot under the lock — in dynamic mode the slice
// grows (and may reallocate) while other ranges run.
func (c *coordinator) rangeAt(i int) spec.Range {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ranges[i]
}

// tallyLocked returns the worker's score accumulator; the caller holds c.mu.
func (c *coordinator) tallyLocked(worker string) *workerTally {
	t, ok := c.scores[worker]
	if !ok {
		t = &workerTally{}
		c.scores[worker] = t
	}
	return t
}

// Scoreboard snapshots the per-worker fleet scoreboard in the coordinator's
// worker order (workers with no activity yet included, all-zero).
func (c *coordinator) scoreboard() []WorkerScore {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerScore, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerScore{Worker: w}
		if t, ok := c.scores[w]; ok {
			out[i].Ranges = t.ranges
			out[i].Trials = t.trials
			out[i].Retries = t.retries
			out[i].Hedges = t.hedges
			out[i].Steals = t.steals
			out[i].ResumedTrials = t.resumed
			out[i].ReusedTrials = t.reused
			if secs := t.busy.Seconds(); secs > 0 {
				out[i].TrialsPerSec = float64(t.trials) / secs
			}
		}
	}
	return out
}

// notifyScore pushes a fresh scoreboard snapshot to the OnScoreboard hook.
func (c *coordinator) notifyScore() {
	if c.onScore == nil {
		return
	}
	sb := c.scoreboard()
	c.scoreMu.Lock()
	c.onScore(sb)
	c.scoreMu.Unlock()
}

func (c *coordinator) stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Trials:        c.job.TotalTrials,
		Ranges:        len(c.ranges),
		Retries:       c.retries,
		Hedges:        c.hedges,
		DedupLosses:   c.dedupLosses,
		Workers:       len(c.workersUsed),
		Steals:        c.steals,
		Joined:        c.joined,
		Left:          c.left,
		ResumedTrials: c.resumedTrials,
		ResumedRanges: c.resumedRanges,
		ReusedTrials:  c.reusedTrials,
		ReusedRanges:  c.reusedRanges,
	}
}

// subSpecFor builds the content-addressed sub-job for one range. A range
// covering the whole trial space submits the original spec whole, so the
// worker finalizes the result itself (this is also what makes single-trial
// campaigns — which cannot run partially — coordinate).
func (c *coordinator) subSpecFor(rg spec.Range) spec.JobSpec {
	sub := c.job.Spec
	if rg.Lo == 0 && rg.Hi == c.job.Trials {
		return sub
	}
	sub.TrialRange = &spec.Range{Lo: rg.Lo, Hi: rg.Hi}
	return sub
}

// run executes every range and merges the results. The first range to fail
// cancels its siblings: a range failure is fatal to the whole job, so
// letting long sibling ranges run to completion would only delay the
// inevitable error.
func (c *coordinator) run(ctx context.Context) (*spec.Value, error) {
	if c.dynamic {
		return c.runDynamic(ctx)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i := range c.ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.runRange(ctx, i, ""); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return c.merge()
}

// merge assembles the completed range slots into the job's full value. A
// single whole-space slot is already finalized by its worker; any true
// partition goes through the engine's order-independent partial merge.
func (c *coordinator) merge() (*spec.Value, error) {
	c.mu.Lock()
	ranges := append([]spec.Range(nil), c.ranges...)
	parts := append([]*spec.Value(nil), c.parts...)
	c.mu.Unlock()
	if len(parts) == 1 && parts[0].Partial == nil {
		return parts[0], nil
	}
	// Dynamic slots complete in carve order, not trial order.
	idx := make([]int, len(parts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranges[idx[a]].Lo < ranges[idx[b]].Lo })
	partials := make([]*engine.Partial, len(parts))
	for i, j := range idx {
		partials[i] = parts[j].Partial
	}
	rep, err := engine.MergePartials(partials)
	if err != nil {
		return nil, fmt.Errorf("coord: %s: %w", c.job.Spec.ID, err)
	}
	val, err := engine.FinalizeCampaign(c.job.Campaign, rep)
	if err != nil {
		return nil, err
	}
	return val, nil
}

// complete records a range result; the first completion wins (a hedged
// duplicate delivers identical bytes and is dropped as a dedup loss). The
// report says whether this completion won, and dur is the winning attempt's
// wall time, credited to the worker's throughput score.
func (c *coordinator) complete(i int, val *spec.Value, worker string, dur time.Duration) bool {
	c.mu.Lock()
	rg := c.ranges[i]
	won := c.parts[i] == nil
	if won {
		c.parts[i] = val
		c.workersUsed[worker] = true
		c.rangeDone[i] = rg.Hi - rg.Lo
		t := c.tallyLocked(worker)
		t.ranges++
		t.trials += rg.Hi - rg.Lo
		t.busy += dur
		if c.onProg != nil {
			done := 0
			for _, d := range c.rangeDone {
				done += d
			}
			c.onProg(done, c.job.TotalTrials)
		}
	} else {
		c.dedupLosses++
	}
	c.mu.Unlock()
	if won {
		obsRanges.Inc()
	} else {
		obsDedupLoss.Inc()
	}
	c.notifyScore()
	return won
}

// addDedupLosses records n duplicate attempts abandoned because a sibling
// won the range first.
func (c *coordinator) addDedupLosses(n int) {
	c.mu.Lock()
	c.dedupLosses += n
	c.mu.Unlock()
	obsDedupLoss.Add(int64(n))
}

// progress records a range's trial counter from its event stream.
func (c *coordinator) progress(i, done int) {
	c.mu.Lock()
	if c.parts[i] == nil && done > c.rangeDone[i] {
		c.rangeDone[i] = done
		if c.onProg != nil {
			sum := 0
			for _, d := range c.rangeDone {
				sum += d
			}
			c.onProg(sum, c.job.TotalTrials)
		}
	}
	c.mu.Unlock()
}

// runRange drives one range to completion: submit to a worker, watch its
// event stream, and on failure retry — or on stall hedge, leaving the slow
// attempt racing — on the least-tried surviving worker, up to the attempt
// budget. In dynamic mode preferred names the worker whose assignment the
// chunk was carved from; it gets the first attempt unless it departed.
func (c *coordinator) runRange(ctx context.Context, i int, preferred string) error {
	rg := c.rangeAt(i)
	ctx, rangeSpan := obs.Start(ctx, "coord.range")
	if rangeSpan != nil {
		rangeSpan.SetAttr("range", i).SetAttr("lo", rg.Lo).SetAttr("hi", rg.Hi)
	}
	defer rangeSpan.End()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sub := c.subSpecFor(rg)

	type result struct {
		val    *spec.Value
		trace  []obs.SpanRecord
		err    error
		worker string
		dur    time.Duration
	}
	results := make(chan result)
	stalls := make(chan string)
	tried := make(map[string]int)
	attempts, pending := 0, 0

	launch := func() {
		worker := ""
		if attempts == 0 && preferred != "" && !c.hasDeparted(preferred) {
			worker = preferred
		} else {
			worker = c.pickWorker(i, attempts, tried)
		}
		attempt := attempts
		attempts++
		tried[worker]++
		pending++
		go func() {
			_, span := obs.Start(rctx, "coord.attempt")
			if span != nil {
				span.SetAttr("worker", worker).SetAttr("attempt", attempt)
			}
			start := time.Now()
			val, trace, err := c.runAttempt(rctx, worker, sub, i, stalls)
			dur := time.Since(start)
			if span != nil {
				if err != nil {
					span.SetAttr("outcome", "error").SetAttr("error", err.Error())
				} else {
					span.SetAttr("outcome", "ok")
				}
			}
			span.End()
			select {
			case results <- result{val, trace, err, worker, dur}:
			case <-rctx.Done():
			}
		}()
	}
	launch()

	var lastErr error
	for {
		var timeout <-chan time.Time
		if attempts >= c.maxTry && pending > 0 && c.stall > 0 {
			// Out of attempts: give the in-flight stragglers one more stall
			// window, then give up on the range.
			t := time.NewTimer(c.stall)
			defer t.Stop()
			timeout = t.C
		}
		if pending == 0 {
			return fmt.Errorf("coord: %s range [%d, %d): all %d attempts failed: %w",
				c.job.Spec.ID, rg.Lo, rg.Hi, attempts, lastErr)
		}
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				if c.complete(i, r.val, r.worker, r.dur) {
					// Graft the worker's execution timeline (run.job and the
					// engine spans beneath it) under this range's span.
					if tr := obs.FromContext(ctx); tr != nil && len(r.trace) > 0 {
						tr.Import(rangeSpan, r.trace)
					}
				}
				if pending > 0 {
					// The attempts still racing are now pure duplicates; their
					// work is discarded when rctx is cancelled below.
					c.addDedupLosses(pending)
				}
				return nil
			}
			if errors.Is(r.err, errPermanent) {
				// The sub-job itself failed. Its result is a deterministic
				// function of the spec, so every other worker would compute
				// the same failure — retrying only multiplies the waste.
				return fmt.Errorf("coord: %s range [%d, %d): %w", c.job.Spec.ID, rg.Lo, rg.Hi, r.err)
			}
			lastErr = r.err
			c.mu.Lock()
			c.retries++
			c.tallyLocked(r.worker).retries++
			c.mu.Unlock()
			obsRetries.Inc()
			c.notifyScore()
			if attempts < c.maxTry {
				fmt.Fprintf(c.warn, "coord: %s range [%d, %d): worker %s failed (%v); retrying\n",
					c.job.Spec.ID, rg.Lo, rg.Hi, r.worker, r.err)
				launch()
			} else if pending == 0 {
				return fmt.Errorf("coord: %s range [%d, %d): all %d attempts failed: %w",
					c.job.Spec.ID, rg.Lo, rg.Hi, attempts, lastErr)
			}
		case w := <-stalls:
			if attempts < c.maxTry {
				c.mu.Lock()
				c.retries++
				c.hedges++
				c.tallyLocked(w).hedges++
				c.mu.Unlock()
				obsRetries.Inc()
				obsHedges.Inc()
				c.notifyScore()
				fmt.Fprintf(c.warn, "coord: %s range [%d, %d): worker %s stalled; hedging on another worker\n",
					c.job.Spec.ID, rg.Lo, rg.Hi, w)
				launch()
			}
		case <-timeout:
			return fmt.Errorf("coord: %s range [%d, %d): gave up after %d attempts: %w",
				c.job.Spec.ID, rg.Lo, rg.Hi, attempts, orStalled(lastErr))
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func orStalled(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("every attempt stalled")
}

// pickWorker spreads attempts: least-tried first, rotated by range index so
// the initial assignment round-robins the fleet. Departed workers are
// skipped unless every worker has departed (then any target beats none).
func (c *coordinator) pickWorker(rangeIdx, attempt int, tried map[string]int) string {
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	live := workers[:0:0]
	for _, w := range workers {
		if !c.departed[w] {
			live = append(live, w)
		}
	}
	c.mu.Unlock()
	if len(live) > 0 {
		workers = live
	}
	best := ""
	bestTries := 0
	for off := 0; off < len(workers); off++ {
		w := workers[(rangeIdx+attempt+off)%len(workers)]
		if best == "" || tried[w] < bestTries {
			best, bestTries = w, tried[w]
		}
	}
	return best
}

// hasDeparted reports whether the registry has declared the worker gone.
func (c *coordinator) hasDeparted(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.departed[worker]
}

// errPermanent marks a terminal job failure reported by a worker: the
// sub-job's outcome is a deterministic function of its spec, so the same
// failure would reproduce on every worker and the range must not retry.
// Transport, HTTP, and stall failures stay retryable.
var errPermanent = errors.New("deterministic job failure")

// Wire shapes of the locd API (the subset the coordinator consumes).
type wireJob struct {
	ID         string      `json:"id"`
	Status     string      `json:"status"`
	Trials     int         `json:"trials"`
	DoneTrials int         `json:"done_trials"`
	Error      string      `json:"error"`
	Skipped    bool        `json:"skipped"`
	Result     *spec.Value `json:"result"`
	// Trace is the worker-side span subtree for the job (run.job plus the
	// engine spans beneath it), grafted under the range's span on success.
	Trace []obs.SpanRecord `json:"trace"`
}

type wireEvent struct {
	ID      string `json:"id"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Status  string `json:"status"`
	Error   string `json:"error"`
	Skipped bool   `json:"skipped"`
}

// runAttempt submits the sub-job to one worker and follows it to a result
// (plus the worker's span subtree for the job, when it recorded one). Any
// transport error, HTTP error, or job failure is returned for the controller
// to retry elsewhere; a stall is signaled on stalls while the attempt keeps
// waiting (hedging).
func (c *coordinator) runAttempt(ctx context.Context, worker string, sub spec.JobSpec, rangeIdx int, stalls chan<- string) (*spec.Value, []obs.SpanRecord, error) {
	wantPartial := sub.TrialRange != nil
	js, err := c.submit(ctx, worker, sub)
	if err != nil {
		return nil, nil, err
	}
	for {
		switch js.Status {
		case "done":
			return c.takeResult(ctx, worker, js, wantPartial)
		case "failed":
			if js.Skipped {
				// A batch sibling's failure; resubmission retries it fresh.
				if js, err = c.submit(ctx, worker, sub); err != nil {
					return nil, nil, err
				}
				continue
			}
			return nil, nil, fmt.Errorf("%w on %s: %s", errPermanent, worker, js.Error)
		}
		ev, err := c.watchEvents(ctx, worker, js.ID, rangeIdx, stalls)
		if err != nil {
			// Stream broke without a terminal line: poll once to tell a
			// finished job from a dead worker before giving the attempt up.
			polled, perr := c.getJob(ctx, worker, js.ID)
			if perr != nil {
				return nil, nil, fmt.Errorf("%v (poll: %v)", err, perr)
			}
			if polled.Status == "running" {
				return nil, nil, err
			}
			js = polled
			continue
		}
		switch ev.Status {
		case "done":
			full, err := c.getJob(ctx, worker, js.ID)
			if err != nil {
				return nil, nil, err
			}
			return c.takeResult(ctx, worker, full, wantPartial)
		case "failed":
			if ev.Skipped {
				if js, err = c.submit(ctx, worker, sub); err != nil {
					return nil, nil, err
				}
				continue
			}
			return nil, nil, fmt.Errorf("%w on %s: %s", errPermanent, worker, ev.Error)
		default:
			return nil, nil, fmt.Errorf("worker %s: unexpected terminal event status %q", worker, ev.Status)
		}
	}
}

// takeResult validates the finished job's result shape for this execution
// (a partial for range sub-jobs, a finalized value otherwise) and carries
// the worker's recorded span subtree along with it.
func (c *coordinator) takeResult(ctx context.Context, worker string, js *wireJob, wantPartial bool) (*spec.Value, []obs.SpanRecord, error) {
	if js.Result == nil {
		// A done job answered without its result (e.g. submit-time summary);
		// fetch the full record.
		full, err := c.getJob(ctx, worker, js.ID)
		if err != nil {
			return nil, nil, err
		}
		js = full
		if js.Result == nil {
			return nil, nil, fmt.Errorf("worker %s: done job %s carries no result", worker, js.ID)
		}
	}
	if wantPartial && js.Result.Partial == nil {
		return nil, nil, fmt.Errorf("worker %s: range sub-job %s returned no partial aggregate", worker, js.ID)
	}
	return js.Result, js.Trace, nil
}

// submit POSTs the sub-job and returns its (possibly already finished)
// summary. The submit round-trip gets a bounded context: a worker that
// accepts connections but never answers must not hold the attempt forever.
func (c *coordinator) submit(ctx context.Context, worker string, sub spec.JobSpec) (*wireJob, error) {
	tctx := ctx
	if c.stall > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, c.stall)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(sub.Canonical()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("submit to %s: status %d: %s", worker, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out struct {
		Jobs []*wireJob `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Jobs) != 1 {
		return nil, fmt.Errorf("submit to %s: malformed response (%v)", worker, err)
	}
	return out.Jobs[0], nil
}

// getJob fetches one job's full record (including its result when done).
func (c *coordinator) getJob(ctx context.Context, worker, id string) (*wireJob, error) {
	tctx := ctx
	if c.stall > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, c.stall)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, worker+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("poll %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("poll %s: status %d", worker, resp.StatusCode)
	}
	var js wireJob
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return nil, fmt.Errorf("poll %s: %w", worker, err)
	}
	return &js, nil
}

// watchEvents follows the job's NDJSON stream until a terminal status line,
// feeding progress counters to the coordinator. Silence beyond the stall
// timeout signals stalls once (the stream stays open — the attempt may
// still win the hedge race). A stream that ends without a terminal line is
// an error (disconnect).
func (c *coordinator) watchEvents(ctx context.Context, worker, id string, rangeIdx int, stalls chan<- string) (*wireEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}

	type line struct {
		ev  wireEvent
		err error
	}
	lines := make(chan line)
	// The HTTP round-trip runs inside the watched goroutine too: a worker
	// that hangs or drags the request itself (before any stream bytes) must
	// trip the stall detector exactly like mid-stream silence.
	go func() {
		send := func(l line) bool {
			select {
			case lines <- l:
				return true
			case <-ctx.Done():
				return false
			}
		}
		resp, err := c.client.Do(req)
		if err != nil {
			send(line{err: fmt.Errorf("events %s: %w", worker, err)})
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			send(line{err: fmt.Errorf("events %s: status %d", worker, resp.StatusCode)})
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			var ev wireEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				send(line{err: fmt.Errorf("events %s: bad line: %w", worker, err)})
				return
			}
			if !send(line{ev: ev}) {
				return
			}
		}
		err = sc.Err()
		if err == nil {
			err = fmt.Errorf("events %s: stream ended without a terminal status", worker)
		}
		send(line{err: err})
	}()

	var stallC <-chan time.Time
	var stallTimer *time.Timer
	if c.stall > 0 {
		stallTimer = time.NewTimer(c.stall)
		defer stallTimer.Stop()
		stallC = stallTimer.C
	}
	stalled := false
	for {
		select {
		case l := <-lines:
			if l.err != nil {
				return nil, l.err
			}
			if stallTimer != nil && !stalled {
				if !stallTimer.Stop() {
					<-stallTimer.C
				}
				stallTimer.Reset(c.stall)
			}
			if l.ev.Status != "" {
				return &l.ev, nil
			}
			c.progress(rangeIdx, l.ev.Done)
		case <-stallC:
			// Signal once; keep following the stream in case it recovers or
			// simply finishes slowly.
			stalled = true
			select {
			case stalls <- worker:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
