package coord

// Dynamic-mode scheduling: per-worker contiguous assignments drawn down in
// shard-aligned chunks, work stealing for idle (and newly joined) workers,
// registry polling for mid-run membership changes, and crash-resume from
// the fleet's range-keyed result caches. Only *unsubmitted* trial intervals
// ever move between workers, so no trial is computed twice by scheduling —
// duplication can still come from hedging, where it is deliberate.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/fleet"
	"resilientloc/internal/engine/spec"
)

// newSlotLocked appends one sub-range slot (range, result, progress); the
// caller holds c.mu.
func (c *coordinator) newSlotLocked(rg spec.Range) int {
	c.ranges = append(c.ranges, rg)
	c.parts = append(c.parts, nil)
	c.rangeDone = append(c.rangeDone, 0)
	return len(c.ranges) - 1
}

// distribute seeds the assignment pool from the uncovered gaps: the largest
// gap is split in half until there is roughly one interval per worker (or
// the pieces reach the minimum chunk), then intervals go to workers largest
// first, overflow to the spare pool.
func (c *coordinator) distribute(gaps []spec.Range) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := append([]spec.Range(nil), gaps...)
	for len(pool) < len(c.workers) {
		li, ln := -1, 0
		for i, g := range pool {
			if n := g.Hi - g.Lo; n > ln {
				li, ln = i, n
			}
		}
		if li < 0 || ln < 2*c.minChunk {
			break
		}
		half := ln / 2 / c.minChunk * c.minChunk
		if half < c.minChunk {
			half = c.minChunk
		}
		g := pool[li]
		pool[li] = spec.Range{Lo: g.Lo, Hi: g.Hi - half}
		pool = append(pool, spec.Range{Lo: g.Hi - half, Hi: g.Hi})
	}
	sort.Slice(pool, func(a, b int) bool {
		if da, db := pool[a].Hi-pool[a].Lo, pool[b].Hi-pool[b].Lo; da != db {
			return da > db
		}
		return pool[a].Lo < pool[b].Lo
	})
	for i := range pool {
		g := pool[i]
		if i < len(c.workers) {
			c.assign[c.workers[i]] = &g
		} else {
			c.spare = append(c.spare, g)
		}
	}
}

// nextChunk carves the worker's next sub-range to submit, refilling its
// assignment from the spare pool or by stealing when it runs dry. ok=false
// means the worker is done: the pool is drained (or the registry declared
// the worker gone).
func (c *coordinator) nextChunk(worker string) (i int, ok bool) {
	var stole *spec.Range
	var victim string
	c.mu.Lock()
	if c.departed[worker] {
		c.mu.Unlock()
		return 0, false
	}
	if a := c.assign[worker]; a == nil || a.Lo >= a.Hi {
		rg, from, refilled := c.refillLocked(worker)
		if !refilled {
			c.mu.Unlock()
			return 0, false
		}
		if from != "" {
			stole, victim = &rg, from
		}
	}
	i = c.carveLocked(worker)
	c.maybeDrainLocked()
	c.mu.Unlock()
	if stole != nil {
		obsSteals.Inc()
		warnTo(c.warn, "coord: %s: idle worker %s stole [%d, %d) from %s\n",
			c.job.Spec.ID, worker, stole.Lo, stole.Hi, victim)
		c.notifyScore()
	}
	return i, true
}

// refillLocked hands the worker a fresh assignment: the largest spare
// interval if any, else the tail half of the largest unsubmitted assignment
// in the fleet (a steal). Returns the new assignment and, for a steal, the
// victim. The caller holds c.mu.
func (c *coordinator) refillLocked(worker string) (spec.Range, string, bool) {
	if len(c.spare) > 0 {
		li, ln := 0, 0
		for i, g := range c.spare {
			if n := g.Hi - g.Lo; n > ln {
				li, ln = i, n
			}
		}
		g := c.spare[li]
		c.spare = append(c.spare[:li], c.spare[li+1:]...)
		c.assign[worker] = &g
		return g, "", true
	}
	victim, remaining := "", 0
	for w, a := range c.assign {
		if w == worker || a == nil {
			continue
		}
		if n := a.Hi - a.Lo; n > remaining {
			victim, remaining = w, n
		}
	}
	if victim == "" {
		return spec.Range{}, "", false
	}
	v := c.assign[victim]
	n := remaining / 2 / c.minChunk * c.minChunk
	if n < c.minChunk {
		n = remaining // too small to split; take the whole interval
	}
	g := spec.Range{Lo: v.Hi - n, Hi: v.Hi}
	v.Hi -= n
	if v.Lo >= v.Hi {
		delete(c.assign, victim)
	}
	c.assign[worker] = &g
	c.steals++
	c.tallyLocked(worker).steals++
	return g, victim, true
}

// carveLocked cuts the next chunk off the worker's assignment — half of
// what remains, shard-aligned, or everything when what remains is small —
// and registers its slot. The caller holds c.mu and guarantees a non-empty
// assignment.
func (c *coordinator) carveLocked(worker string) int {
	a := c.assign[worker]
	remaining := a.Hi - a.Lo
	n := remaining
	if remaining > 2*c.minChunk {
		half := (remaining + 1) / 2
		if r := half % c.minChunk; r != 0 {
			half += c.minChunk - r
		}
		if remaining-half >= c.minChunk {
			n = half
		}
	}
	rg := spec.Range{Lo: a.Lo, Hi: a.Lo + n}
	a.Lo += n
	if a.Lo >= a.Hi {
		delete(c.assign, worker)
	}
	return c.newSlotLocked(rg)
}

// maybeDrainLocked closes the drain channel once the assignment pool is
// empty — every trial interval has been carved and submitted (or resumed).
// Nothing refills a drained pool, so the close is final. Caller holds c.mu.
func (c *coordinator) maybeDrainLocked() {
	if c.drainCh == nil {
		return
	}
	if len(c.spare) > 0 {
		return
	}
	for _, a := range c.assign {
		if a != nil && a.Lo < a.Hi {
			return
		}
	}
	select {
	case <-c.drainCh:
	default:
		close(c.drainCh)
	}
}

// runDynamic is dynamic mode's top level: optionally recover work from the
// fleet's caches (resume and/or reuse), seed the pool with the uncovered
// gaps, run one drawing loop per worker (plus the registry poller), and
// merge.
func (c *coordinator) runDynamic(ctx context.Context) (*spec.Value, error) {
	gaps := []spec.Range{{Lo: 0, Hi: c.job.Trials}}
	if c.resumeOn || c.reuseOn {
		full, g, err := c.probeResume(ctx)
		if err != nil {
			return nil, err
		}
		if full != nil {
			return full, nil
		}
		gaps = g
	}
	if len(gaps) == 0 {
		return c.merge()
	}
	c.distribute(gaps)

	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		dcancel()
	}
	spawn := func(worker string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.workerLoop(dctx, worker, fail)
		}()
	}
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range workers {
		spawn(w)
	}
	if c.discover != "" {
		// The poller spawns drivers for mid-run joiners. It holds a wg slot
		// itself, so wg cannot complete while a spawn may still happen.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.pollFleet(dctx, spawn)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.merge()
}

// workerLoop is one worker's drawing loop: carve a chunk, run it (first
// attempt on this worker — retries and hedges go wherever pickWorker
// sends them), repeat until the pool drains.
func (c *coordinator) workerLoop(ctx context.Context, worker string, fail func(error)) {
	for ctx.Err() == nil {
		i, ok := c.nextChunk(worker)
		if !ok {
			return
		}
		if err := c.runRange(ctx, i, worker); err != nil {
			fail(err)
			return
		}
	}
}

// pollFleet re-reads the membership registry until the run is cancelled or
// the pool drains, spawning a driver for every worker that joins mid-run.
func (c *coordinator) pollFleet(ctx context.Context, spawn func(worker string)) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.drainCh:
			return
		case <-t.C:
		}
		view, err := fleet.Discover(ctx, c.client, c.discover)
		if err != nil {
			continue // transient registry trouble; keep the fleet we have
		}
		for _, w := range c.syncFleet(view.URLs()) {
			spawn(w)
		}
	}
}

// syncFleet reconciles the coordinator's worker list with a registry
// snapshot: new members are added (and returned for spawning), and members
// the registry no longer lists are marked departed with their unsubmitted
// work moved to the spare pool. Only registry-sourced knowledge departs a
// worker — a static -workers entry that never announced itself is left
// alone.
func (c *coordinator) syncFleet(urls []string) []string {
	now := make(map[string]bool, len(urls))
	for _, u := range urls {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			now[u] = true
		}
	}
	var added, gone []string
	c.mu.Lock()
	known := make(map[string]bool, len(c.workers))
	for _, w := range c.workers {
		known[w] = true
	}
	for u := range now {
		c.discovered[u] = true
		delete(c.departed, u) // a re-announce revives a departed worker
		if !known[u] {
			c.workers = append(c.workers, u)
			c.joined++
			added = append(added, u)
		}
	}
	for _, w := range c.workers {
		if c.discovered[w] && !now[w] && !c.departed[w] {
			c.departed[w] = true
			c.left++
			gone = append(gone, w)
			if a := c.assign[w]; a != nil && a.Lo < a.Hi {
				c.spare = append(c.spare, *a)
			}
			delete(c.assign, w)
		}
	}
	sort.Strings(added)
	c.mu.Unlock()
	for _, w := range added {
		warnTo(c.warn, "coord: %s: worker %s joined the fleet mid-run\n", c.job.Spec.ID, w)
	}
	for _, w := range gone {
		warnTo(c.warn, "coord: %s: worker %s left the fleet; reassigning its unsubmitted work\n", c.job.Spec.ID, w)
	}
	if len(added)+len(gone) > 0 {
		c.notifyScore()
	}
	return added
}

// Wire shapes of the worker cache-probe API (the subset resume and reuse
// consume). A range entry's trials field is the full trial count stamped on
// the entry's key — equal to the probe's trials for this job's own ranges,
// different for cross-N entries the planner may adopt (0 from a worker old
// enough not to report it, treated as same-N).
type wireProbe struct {
	Trials int    `json:"trials"`
	Full   string `json:"full"`
	Ranges []struct {
		Lo     int    `json:"lo"`
		Hi     int    `json:"hi"`
		Trials int    `json:"trials"`
		Hash   string `json:"hash"`
	} `json:"ranges"`
}

// probeResume asks every worker for the range-keyed cache entries its
// result cache banked for this job's content address, chains a greedy
// exact-boundary cover out of them, and returns the uncovered gaps — or,
// when some worker holds the finished result, that full value directly.
// Two kinds of entry qualify, gated independently: ranges of this job's own
// trial count (crash-resume, Options.Resume) and ranges banked under a
// different trial count (prefix reuse, Options.Reuse) — the latter pass
// through engine.AdaptPartial, which re-checks their shard geometry under
// the new count before they may join the merge set.
func (c *coordinator) probeResume(ctx context.Context) (*spec.Value, []spec.Range, error) {
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	c.mu.Unlock()

	type candidate struct {
		worker string
		rg     spec.Range
		trials int // the entry's stamped full trial count
		hash   string
	}
	var cands []candidate
	type fullEntry struct{ worker, hash string }
	var fulls []fullEntry
	body := c.job.Spec.Canonical()
	for _, w := range workers {
		probe, err := c.probeWorker(ctx, w, body)
		if err != nil {
			warnTo(c.warn, "coord: %s: cache probe of %s failed: %v\n", c.job.Spec.ID, w, err)
			continue
		}
		if probe.Trials != c.job.Trials {
			// The worker resolves the spec to a different trial count than we
			// do — a version skew its entries cannot safely bridge.
			warnTo(c.warn, "coord: %s: %s resolves %d trials, coordinator %d; ignoring its cache\n",
				c.job.Spec.ID, w, probe.Trials, c.job.Trials)
			continue
		}
		if probe.Full != "" && c.resumeOn {
			fulls = append(fulls, fullEntry{w, probe.Full})
		}
		for _, re := range probe.Ranges {
			if re.Lo < 0 || re.Hi > c.job.Trials || re.Hi <= re.Lo {
				continue
			}
			// An entry without a stamped count predates cross-N enumeration
			// and can only be this job's own (the probe matched on content
			// address including trials back then).
			entryTrials := re.Trials
			if entryTrials == 0 {
				entryTrials = c.job.Trials
			}
			if entryTrials == c.job.Trials && !c.resumeOn {
				continue // this job's own prior ranges are Resume's to adopt
			}
			if entryTrials != c.job.Trials && !c.reuseOn {
				continue // cross-N extension is Reuse's
			}
			cands = append(cands, candidate{w, spec.Range{Lo: re.Lo, Hi: re.Hi}, entryTrials, re.Hash})
		}
	}

	// A banked full result short-circuits all re-execution.
	for _, fe := range fulls {
		val, err := c.fetchEntry(ctx, fe.worker, fe.hash)
		if err != nil || val == nil {
			continue
		}
		c.mu.Lock()
		c.resumedTrials = c.job.Trials
		c.resumedRanges = 1
		c.workersUsed[fe.worker] = true
		c.tallyLocked(fe.worker).resumed += c.job.Trials
		c.mu.Unlock()
		obsResumed.Add(int64(c.job.Trials))
		warnTo(c.warn, "coord: %s: resumed the complete result from %s's cache\n", c.job.Spec.ID, fe.worker)
		return val, nil, nil
	}

	// Greedy cover: partials cannot be trimmed, so only an entry starting
	// exactly at the cursor extends the chain; prefer the longest, and on a
	// width tie an entry of this job's own trial count (which needs no
	// adaptation). An entry that fails to fetch or adapt just falls out of
	// the chain — siblings or a fresh gap cover its interval.
	used := make([]bool, len(cands))
	var gaps []spec.Range
	cursor, resumed, nResumed, reused, nReused := 0, 0, 0, 0, 0
	for cursor < c.job.Trials {
		best := -1
		for j, cd := range cands {
			if used[j] || cd.rg.Lo != cursor {
				continue
			}
			if best < 0 || cd.rg.Hi > cands[best].rg.Hi ||
				(cd.rg.Hi == cands[best].rg.Hi && cd.trials == c.job.Trials && cands[best].trials != c.job.Trials) {
				best = j
			}
		}
		if best < 0 {
			next := c.job.Trials
			for j, cd := range cands {
				if !used[j] && cd.rg.Lo > cursor && cd.rg.Lo < next {
					next = cd.rg.Lo
				}
			}
			gaps = append(gaps, spec.Range{Lo: cursor, Hi: next})
			cursor = next
			continue
		}
		used[best] = true
		cd := cands[best]
		val, err := c.fetchEntry(ctx, cd.worker, cd.hash)
		if err != nil || val == nil || val.Partial == nil {
			continue
		}
		if cd.trials != c.job.Trials {
			if err := engine.AdaptPartial(val.Partial, c.job.Trials); err != nil {
				warnTo(c.warn, "coord: %s: skipping %s's cached range [%d, %d): %v\n",
					c.job.Spec.ID, cd.worker, cd.rg.Lo, cd.rg.Hi, err)
				continue
			}
		}
		n := cd.rg.Hi - cd.rg.Lo
		c.mu.Lock()
		i := c.newSlotLocked(cd.rg)
		c.parts[i] = val
		c.rangeDone[i] = n
		if cd.trials == c.job.Trials {
			c.resumedTrials += n
			c.resumedRanges++
			c.tallyLocked(cd.worker).resumed += n
		} else {
			c.reusedTrials += n
			c.reusedRanges++
			c.tallyLocked(cd.worker).reused += n
		}
		c.workersUsed[cd.worker] = true
		c.mu.Unlock()
		if cd.trials == c.job.Trials {
			resumed += n
			nResumed++
			obsResumed.Add(int64(n))
		} else {
			reused += n
			nReused++
			obsReused.Add(int64(n))
		}
		cursor = cd.rg.Hi
	}
	if resumed > 0 {
		warnTo(c.warn, "coord: %s: resumed %d of %d trials in %d ranges from fleet caches\n",
			c.job.Spec.ID, resumed, c.job.Trials, nResumed)
	}
	if reused > 0 {
		warnTo(c.warn, "coord: %s: reused %d of %d trials in %d cross-count ranges from fleet caches\n",
			c.job.Spec.ID, reused, c.job.Trials, nReused)
	}
	return nil, gaps, nil
}

// probeWorker POSTs the job spec to one worker's cache-probe endpoint.
func (c *coordinator) probeWorker(ctx context.Context, worker string, body []byte) (*wireProbe, error) {
	tctx, cancel := c.boundedCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, worker+"/v1/cache/ranges", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var probe wireProbe
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		return nil, err
	}
	return &probe, nil
}

// fetchEntry retrieves one content-addressed cache entry from a worker and
// returns its stored value.
func (c *coordinator) fetchEntry(ctx context.Context, worker, hash string) (*spec.Value, error) {
	tctx, cancel := c.boundedCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, worker+"/v1/cache/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cache entry %s on %s: status %d", hash, worker, resp.StatusCode)
	}
	var e struct {
		Value *spec.Value `json:"value"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&e); err != nil {
		return nil, err
	}
	if e.Value == nil {
		return nil, fmt.Errorf("cache entry %s on %s carries no value", hash, worker)
	}
	return e.Value, nil
}

// boundedCtx derives a stall-bounded context for one HTTP round-trip.
func (c *coordinator) boundedCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.stall > 0 {
		return context.WithTimeout(ctx, c.stall)
	}
	return context.WithCancel(ctx)
}
