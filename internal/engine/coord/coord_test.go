package coord_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resilientloc/internal/engine/coord"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/locsrv"
	"resilientloc/internal/obs"
)

// newWorker stands up a real locd service (internal/locsrv) and returns its
// base URL.
func newWorker(t *testing.T, opts run.Options) string {
	t.Helper()
	if opts.CacheDir == "" && !opts.NoCache {
		opts.CacheDir = filepath.Join(t.TempDir(), "cache")
	}
	srv, err := locsrv.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Close(); hs.Close() })
	return hs.URL
}

// localValue executes the spec in-process — the reference the coordinated
// result must reproduce byte-for-byte (modulo execution metadata).
func localValue(t *testing.T, sp spec.JobSpec) *spec.Value {
	t.Helper()
	sess, err := run.NewSession(run.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	val, _, err := run.ExecuteSpec(sess, sp)
	if err != nil {
		t.Fatal(err)
	}
	return val
}

// normalized strips execution metadata and renders the value as JSON.
func normalized(t *testing.T, v *spec.Value) string {
	t.Helper()
	c := *v
	c.ClearExecutionMeta()
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCoordinatedMatchesGoldenCorpus is the acceptance check: a multi-trial
// figure job coordinated across two real locd workers renders
// byte-identically to the golden corpus at seeds 1 and 5, for several
// partitions of its trial space; a library scenario reproduces the local
// run the same way.
func TestCoordinatedMatchesGoldenCorpus(t *testing.T) {
	workers := []string{newWorker(t, run.Options{}), newWorker(t, run.Options{})}
	goldenDir := filepath.Join("..", "..", "experiments", "testdata", "golden")

	for _, seed := range []int64{1, 5} {
		sp := spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: seed}
		want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("maxrange_seed%d.golden", seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, ranges := range []int{2, 5} {
			val, st, err := coord.Execute(context.Background(), sp,
				coord.Options{Workers: workers, Ranges: ranges, Warnings: io.Discard})
			if err != nil {
				t.Fatalf("maxrange seed %d ranges %d: %v", seed, ranges, err)
			}
			if val.Figure == nil {
				t.Fatalf("maxrange seed %d: no figure in %+v", seed, val)
			}
			if got := val.Figure.Render(); got != string(want) {
				t.Errorf("maxrange seed %d over %d ranges diverged from golden output\n--- got ---\n%s--- want ---\n%s",
					seed, ranges, got, want)
			}
			if st.Ranges != ranges || st.Trials != 36 {
				t.Errorf("stats %+v, want %d ranges over 36 trials", st, ranges)
			}
		}
	}

	// A scenario job: coordinated result equals the local run.
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8, ShardSize: 2}
	want := normalized(t, localValue(t, sp))
	for _, ranges := range []int{0, 3, 8} { // 0 = one per worker
		val, _, err := coord.Execute(context.Background(), sp,
			coord.Options{Workers: workers, Ranges: ranges, Warnings: io.Discard})
		if err != nil {
			t.Fatalf("ranges %d: %v", ranges, err)
		}
		if got := normalized(t, val); got != want {
			t.Errorf("ranges %d: coordinated scenario diverged\n got %s\nwant %s", ranges, got, want)
		}
	}

	// A single-trial figure cannot split; the coordinator submits it whole.
	single := spec.JobSpec{Kind: spec.KindFigure, ID: "fig11", Seed: 1}
	val, st, err := coord.Execute(context.Background(), single,
		coord.Options{Workers: workers, Warnings: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	wantFig, err := os.ReadFile(filepath.Join(goldenDir, "fig11_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if val.Figure == nil || val.Figure.Render() != string(wantFig) {
		t.Error("single-trial figure over the coordinator diverged from golden output")
	}
	if st.Ranges != 1 {
		t.Errorf("single-trial job split into %d ranges", st.Ranges)
	}
}

// TestCoordinatorProgressAggregates: the aggregate progress counter reaches
// trials and never decreases.
func TestCoordinatorProgressAggregates(t *testing.T) {
	workers := []string{newWorker(t, run.Options{NoCache: true})}
	last := 0
	prev := -1
	monotonic := true
	val, _, err := coord.Execute(context.Background(),
		spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 2, Trials: 8, ShardSize: 1},
		coord.Options{Workers: workers, Ranges: 4, Warnings: io.Discard,
			OnProgress: func(done, total int) {
				if done < prev || total != 8 {
					monotonic = false
				}
				prev, last = done, done
			}})
	if err != nil {
		t.Fatal(err)
	}
	if val.Report == nil && val.Figure == nil && val.Partial != nil {
		t.Fatalf("coordinator leaked a partial: %+v", val)
	}
	if !monotonic || last != 8 {
		t.Errorf("progress ended %d (monotonic %v), want 8", last, monotonic)
	}
}

// erroringWorker always 500s job submissions — the "worker that 500s
// mid-engagement" fault.
func erroringWorker(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"induced failure"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(hs.Close)
	return hs.URL
}

// hangingWorker accepts a submission, reports the job running, and then
// never delivers another byte on the event stream.
func hangingWorker(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"jobs":[{"id":"hang","status":"running","trials":1}]}`)
		case strings.HasSuffix(r.URL.Path, "/events"):
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			w.(http.Flusher).Flush()
			<-r.Context().Done() // hold the stream open forever
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"id":"hang","status":"running","trials":1}`)
		}
	}))
	t.Cleanup(hs.Close)
	return hs.URL
}

// slowEventsProxy fronts a real worker but delays every event-stream
// response long enough to trip the stall detector, so the hedged duplicate
// attempt races the slow original to completion.
func slowEventsProxy(t *testing.T, target string, delay time.Duration) string {
	t.Helper()
	client := &http.Client{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			time.Sleep(delay)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := client.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestCoordinatorRetriesFaultyWorkers: ranges assigned to a worker that
// 500s, a worker that is simply down, or a worker that hangs mid-range are
// reassigned to the survivors, and the merged result is still exact.
func TestCoordinatorRetriesFaultyWorkers(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 3, Trials: 6, ShardSize: 2}
	want := normalized(t, localValue(t, sp))
	healthy := newWorker(t, run.Options{})

	// A dead worker: nothing listens on the port (the server is closed).
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	for name, faulty := range map[string]string{
		"erroring": erroringWorker(t),
		"dead":     deadURL,
		"hanging":  hangingWorker(t),
	} {
		val, st, err := coord.Execute(context.Background(), sp, coord.Options{
			Workers:      []string{faulty, healthy},
			Ranges:       2,
			StallTimeout: 200 * time.Millisecond,
			Warnings:     io.Discard,
		})
		if err != nil {
			t.Fatalf("%s worker: %v", name, err)
		}
		if got := normalized(t, val); got != want {
			t.Errorf("%s worker: merged result diverged", name)
		}
		if st.Retries == 0 {
			t.Errorf("%s worker: no retries recorded (stats %+v)", name, st)
		}
		if st.Workers != 1 {
			t.Errorf("%s worker: %d workers completed ranges, want only the healthy one", name, st.Workers)
		}
	}
}

// TestCoordinatorAllWorkersDown: with no survivors the execution fails with
// the range's error instead of hanging.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, _, err := coord.Execute(context.Background(),
		spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 4},
		coord.Options{Workers: []string{deadURL}, MaxAttempts: 2,
			StallTimeout: 100 * time.Millisecond, Warnings: io.Discard})
	if err == nil || !strings.Contains(err.Error(), "attempts failed") {
		t.Errorf("err %v, want an all-attempts-failed error", err)
	}
}

// TestCoordinatorDedupesDuplicateCompletions: a slow worker trips the stall
// detector, the range is hedged onto a fast worker, and both eventually
// complete the same content-addressed sub-job. Exactly one copy enters the
// merge (first wins) — a double-counted range would fail the merge's
// tiling validation or corrupt the aggregate, so byte-identity to the
// local run proves the dedupe.
func TestCoordinatorDedupesDuplicateCompletions(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 4, Trials: 6, ShardSize: 3}
	want := normalized(t, localValue(t, sp))
	// Both fronts share one backing worker — and thus one result cache and
	// job table — so the hedged duplicate resolves to the same
	// content-addressed job on the backend.
	backend := newWorker(t, run.Options{})
	slow := slowEventsProxy(t, backend, 400*time.Millisecond)

	val, st, err := coord.Execute(context.Background(), sp, coord.Options{
		Workers:      []string{slow, backend},
		Ranges:       2,
		StallTimeout: 100 * time.Millisecond,
		Warnings:     io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("deduped result diverged\n got %s\nwant %s", got, want)
	}
	if st.Retries == 0 {
		t.Errorf("no hedge recorded: %+v", st)
	}
}

// TestCoordinatorPermanentFailureDoesNotRetry: a worker reporting a
// terminal job failure (not a transport error, not a skipped sibling) ends
// the range immediately — the sub-job is deterministic, so every other
// worker would compute the same failure.
func TestCoordinatorPermanentFailureDoesNotRetry(t *testing.T) {
	var submits int32
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			atomic.AddInt32(&submits, 1)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"jobs":[{"id":"x","status":"failed","error":"trial 3: boom"}]}`)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	t.Cleanup(failing.Close)

	_, st, err := coord.Execute(context.Background(),
		spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 4},
		coord.Options{Workers: []string{failing.URL, failing.URL}, Ranges: 1,
			StallTimeout: time.Second, Warnings: io.Discard})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err %v, want the job's own failure", err)
	}
	if got := atomic.LoadInt32(&submits); got != 1 {
		t.Errorf("deterministic failure was submitted %d times, want exactly 1", got)
	}
	if st.Retries != 0 {
		t.Errorf("deterministic failure recorded %d retries, want 0", st.Retries)
	}
}

// TestSplitRanges: contiguous, non-empty, near-equal coverage; clamped to
// the trial count.
func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct {
		trials, k int
		want      []spec.Range
	}{
		{10, 3, []spec.Range{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 7}, {Lo: 7, Hi: 10}}},
		{4, 8, []spec.Range{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}, {Lo: 3, Hi: 4}}},
		{5, 1, []spec.Range{{Lo: 0, Hi: 5}}},
	} {
		got := coord.SplitRanges(tc.trials, tc.k)
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(tc.want)
		if string(gj) != string(wj) {
			t.Errorf("SplitRanges(%d, %d) = %s, want %s", tc.trials, tc.k, gj, wj)
		}
	}
}

// TestExecuteValidation: option errors surface before any network traffic.
func TestExecuteValidation(t *testing.T) {
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1}
	if _, _, err := coord.Execute(context.Background(), sp, coord.Options{}); err == nil {
		t.Error("no workers accepted")
	}
	ranged := sp
	ranged.TrialRange = &spec.Range{Lo: 0, Hi: 2}
	if _, _, err := coord.Execute(context.Background(), ranged,
		coord.Options{Workers: []string{"http://127.0.0.1:1"}}); err == nil ||
		!strings.Contains(err.Error(), "owns the split") {
		t.Errorf("pre-ranged spec: err %v, want rejection", err)
	}
	if _, _, err := coord.Execute(context.Background(),
		spec.JobSpec{Kind: spec.KindScenario, ID: "no-such", Seed: 1},
		coord.Options{Workers: []string{"http://127.0.0.1:1"}}); err == nil {
		t.Error("unknown job accepted")
	}
}

// TestCoordinatorTraceAndScoreboard: under tracing, one coordinated run
// exports spans from all three layers — coordinator ranges and attempts,
// each winning worker's run.job grafted beneath its range, and the engine
// shard spans beneath that — and the scoreboard snapshots attribute every
// range and trial to a worker.
func TestCoordinatorTraceAndScoreboard(t *testing.T) {
	workers := []string{newWorker(t, run.Options{NoCache: true}), newWorker(t, run.Options{NoCache: true})}
	sp := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8, ShardSize: 2}

	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	var last []coord.WorkerScore
	val, st, err := coord.Execute(ctx, sp, coord.Options{
		Workers: workers, Ranges: 4, Warnings: io.Discard,
		OnScoreboard: func(ws []coord.WorkerScore) { last = ws },
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.Report == nil {
		t.Fatalf("no report in %+v", val)
	}

	recs := tr.Export()
	byID := make(map[int64]obs.SpanRecord, len(recs))
	counts := make(map[string]int)
	for _, r := range recs {
		byID[r.ID] = r
		counts[r.Name]++
	}
	for _, name := range []string{"coord.job", "coord.range", "coord.attempt", "run.job", "engine.run", "engine.shard"} {
		if counts[name] == 0 {
			t.Errorf("trace lacks any %q span (have %v)", name, counts)
		}
	}
	if counts["coord.range"] != st.Ranges {
		t.Errorf("%d coord.range spans, want %d", counts["coord.range"], st.Ranges)
	}
	if counts["run.job"] != st.Ranges {
		t.Errorf("%d grafted run.job spans, want one per range (%d)", counts["run.job"], st.Ranges)
	}
	// Parentage across the graft points: worker jobs hang off coordinator
	// ranges, engine runs off worker jobs.
	for _, r := range recs {
		switch r.Name {
		case "run.job":
			if byID[r.Parent].Name != "coord.range" {
				t.Errorf("run.job parent is %q, want coord.range", byID[r.Parent].Name)
			}
		case "engine.run":
			if byID[r.Parent].Name != "run.job" {
				t.Errorf("engine.run parent is %q, want run.job", byID[r.Parent].Name)
			}
		case "engine.shard":
			if byID[r.Parent].Name != "engine.run" {
				t.Errorf("engine.shard parent is %q, want engine.run", byID[r.Parent].Name)
			}
		}
	}

	// Scoreboard: the final snapshot accounts for every range and trial.
	if len(last) != len(workers) {
		t.Fatalf("scoreboard has %d rows, want %d", len(last), len(workers))
	}
	var ranges, trials int
	for _, ws := range last {
		ranges += ws.Ranges
		trials += ws.Trials
		if ws.Ranges > 0 && ws.TrialsPerSec <= 0 {
			t.Errorf("worker %s won %d ranges but reports %g trials/s", ws.Worker, ws.Ranges, ws.TrialsPerSec)
		}
	}
	if ranges != st.Ranges || trials != st.Trials {
		t.Errorf("scoreboard totals %d ranges / %d trials, want %d / %d", ranges, trials, st.Ranges, st.Trials)
	}
	if st.Hedges != 0 || st.DedupLosses != 0 {
		t.Errorf("healthy fleet recorded hedges=%d dedupLosses=%d, want 0/0", st.Hedges, st.DedupLosses)
	}
}

// TestScoreboardNonTTY: on a non-terminal writer the scoreboard emits
// quarter-milestone progress lines while live and per-worker summary rows
// at Final — never ANSI control sequences.
func TestScoreboardNonTTY(t *testing.T) {
	var buf strings.Builder
	sb := coord.NewScoreboard(&buf, "fig06")
	sb.Progress(0, 8)
	sb.Progress(4, 8)
	sb.Update([]coord.WorkerScore{
		{Worker: "http://w1", Ranges: 2, Trials: 6, TrialsPerSec: 12.5, Hedges: 1},
		{Worker: "http://w2"},
	})
	sb.Progress(8, 8)
	sb.Final()
	sb.Final() // idempotent
	out := buf.String()
	if strings.Contains(out, "\x1b[") {
		t.Errorf("non-TTY scoreboard emitted ANSI control sequences:\n%q", out)
	}
	for _, want := range []string{"fig06: 4/8 trials", "fig06: 8/8 trials",
		"worker http://w1: ranges=2 trials=6 trials/s=12.5 retries=0 hedges=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scoreboard output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "http://w2") {
		t.Errorf("idle worker should not get a summary row:\n%s", out)
	}
	if n := strings.Count(out, "http://w1"); n != 1 {
		t.Errorf("Final printed the w1 summary %d times, want once", n)
	}

	// A nil scoreboard (progress off) must be a safe no-op.
	var nilSB *coord.Scoreboard
	nilSB.Progress(1, 2)
	nilSB.Update(nil)
	nilSB.Final()
}
