package coord_test

import (
	"context"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/coord"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// TestReuseExtendsAcrossTrialCounts is the distributed half of the
// prefix-reuse tentpole: a worker whose cache holds a finished 8-trial run
// lets a 16-trial coordination adopt the cached [0, 8) — banked under the
// *other* trial count — and compute only the extension, byte-identical to
// an uninterrupted 16-trial run.
func TestReuseExtendsAcrossTrialCounts(t *testing.T) {
	small := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8, ShardSize: 2}
	big := small
	big.Trials = 16
	want := normalized(t, localValue(t, big))

	// A full local run of the small spec banks its [0, 8) range entry (the
	// planner's cold path does) in the cache the worker will serve.
	dir := filepath.Join(t.TempDir(), "cache")
	sess, err := run.NewSession(run.Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.ExecuteSpec(sess, small); err != nil {
		t.Fatal(err)
	}
	worker := newWorker(t, run.Options{CacheDir: dir})

	var warnings strings.Builder
	val, st, err := coord.Execute(context.Background(), big, coord.Options{
		Workers:  []string{worker},
		Reuse:    true,
		Warnings: &warnings,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("cross-count reuse diverged\n got %s\nwant %s", got, want)
	}
	if st.ReusedTrials != 8 || st.ReusedRanges != 1 {
		t.Errorf("stats %+v, want 8 trials reused in 1 range", st)
	}
	if st.ResumedTrials != 0 {
		t.Errorf("cross-count adoption miscounted as resume: %+v", st)
	}
	if !strings.Contains(warnings.String(), "cross-count") {
		t.Errorf("no reuse diagnostic in warnings:\n%s", warnings.String())
	}
}

// TestReuseAndResumeStayDistinct: entries banked under the job's own trial
// count need Resume, entries under another count need Reuse, and when both
// kinds survive each merged range lands in exactly one counter.
func TestReuseAndResumeStayDistinct(t *testing.T) {
	small := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 5, Trials: 8, ShardSize: 2}
	big := small
	big.Trials = 16
	want := normalized(t, localValue(t, big))

	prime := func(t *testing.T) string {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "cache")
		sess, err := run.NewSession(run.Options{CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		// Cross-count material: the full small run's [0, 8) range entry.
		if _, _, err := run.ExecuteSpec(sess, small); err != nil {
			t.Fatal(err)
		}
		// Same-count material: a predecessor's [8, 12) sub-job of the big run.
		if _, _, err := run.ExecuteSpec(sess, subRange(big, 8, 12)); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// With both switches on, both entries merge — and each is counted once,
	// in its own bucket.
	val, st, err := coord.Execute(context.Background(), big, coord.Options{
		Workers:  []string{newWorker(t, run.Options{CacheDir: prime(t)})},
		Resume:   true,
		Reuse:    true,
		Warnings: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("mixed resume+reuse diverged\n got %s\nwant %s", got, want)
	}
	if st.ReusedTrials != 8 || st.ReusedRanges != 1 || st.ResumedTrials != 4 || st.ResumedRanges != 1 {
		t.Errorf("stats %+v, want 8 reused in 1 range and 4 resumed in 1 range", st)
	}

	// Reuse alone ignores the same-count entry; resume alone ignores the
	// cross-count one.
	_, st, err = coord.Execute(context.Background(), big, coord.Options{
		Workers:  []string{newWorker(t, run.Options{CacheDir: prime(t)})},
		Reuse:    true,
		Warnings: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedTrials != 8 || st.ResumedTrials != 0 {
		t.Errorf("reuse-only stats %+v, want only the 8 cross-count trials", st)
	}
	_, st, err = coord.Execute(context.Background(), big, coord.Options{
		Workers:  []string{newWorker(t, run.Options{CacheDir: prime(t)})},
		Resume:   true,
		Warnings: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedTrials != 4 || st.ReusedTrials != 0 {
		t.Errorf("resume-only stats %+v, want only the 4 same-count trials", st)
	}
}

// TestReusePropertyRandomSubsets mirrors the crash-resume property for the
// cross-count planner: for any surviving subset of a smaller run's
// shard-aligned ranges, a bigger coordinated run stays byte-identical to an
// uninterrupted one, and every adopted trial is counted exactly once — at
// seeds 1 and 5.
func TestReusePropertyRandomSubsets(t *testing.T) {
	tiling := [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}
	subsets := [][]int{
		{},           // nothing survived: cold coordination
		{0},          // prefix only
		{2},          // island mid-space
		{0, 1, 2, 3}, // the whole smaller run survived
	}
	for _, seed := range []int64{1, 5} {
		small := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: seed, Trials: 8, ShardSize: 2}
		big := small
		big.Trials = 12
		want := normalized(t, localValue(t, big))
		for _, subset := range subsets {
			dir := filepath.Join(t.TempDir(), "cache")
			sess, err := run.NewSession(run.Options{CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			wantReused := 0
			for _, idx := range subset {
				rg := tiling[idx]
				if _, _, err := run.ExecuteSpec(sess, subRange(small, rg[0], rg[1])); err != nil {
					t.Fatalf("seed %d subset %v: banking [%d, %d): %v", seed, subset, rg[0], rg[1], err)
				}
				wantReused += rg[1] - rg[0]
			}
			val, st, err := coord.Execute(context.Background(), big, coord.Options{
				Workers:  []string{newWorker(t, run.Options{CacheDir: dir})},
				Reuse:    true,
				Warnings: io.Discard,
			})
			if err != nil {
				t.Fatalf("seed %d subset %v: %v", seed, subset, err)
			}
			if got := normalized(t, val); got != want {
				t.Errorf("seed %d subset %v: reused result diverged\n got %s\nwant %s", seed, subset, got, want)
			}
			if st.ReusedTrials != wantReused || st.ReusedRanges != len(subset) {
				t.Errorf("seed %d subset %v: reused %d trials in %d ranges, want %d in %d",
					seed, subset, st.ReusedTrials, st.ReusedRanges, wantReused, len(subset))
			}
		}
	}
}

// TestCoordExecuteAuto: the distributed auto-trials ladder runs each round
// through the fleet, reuses each round as the next one's prefix, and ends
// byte-identical to an explicit fixed-count coordination.
func TestCoordExecuteAuto(t *testing.T) {
	grid := params.Map{"rows": params.Num(5), "cols": params.Num(6)}
	auto := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-grid", Seed: 2, Params: grid,
		AutoTrials: &spec.AutoTrials{CITarget: 1e-12, Metric: "avg_error_m", MaxTrials: 32}}
	fixed := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-grid", Seed: 2, Params: grid, Trials: 32}
	want := normalized(t, localValue(t, fixed))

	worker := newWorker(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
	var warnings strings.Builder
	val, st, err := coord.ExecuteAuto(context.Background(), auto, coord.Options{
		Workers:  []string{worker},
		Reuse:    true,
		Warnings: &warnings,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("distributed auto ladder diverged from fixed 32-trial coordination\n got %s\nwant %s", got, want)
	}
	if val.Report.Trials != 32 {
		t.Errorf("ladder ended at %d trials, want the 32-trial cap", val.Report.Trials)
	}
	if st.ReusedTrials == 0 {
		t.Errorf("later rounds never reused earlier ones: %+v", st)
	}
	if !strings.Contains(warnings.String(), "above target") {
		t.Errorf("missed-target warning not printed:\n%s", warnings.String())
	}

	// A fixed-count spec through ExecuteAuto is a plain Execute.
	val, _, err = coord.ExecuteAuto(context.Background(), fixed, coord.Options{
		Workers:  []string{newWorker(t, run.Options{NoCache: true})},
		Warnings: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalized(t, val); got != want {
		t.Errorf("ExecuteAuto with a fixed spec diverged from Execute\n got %s\nwant %s", got, want)
	}
}
