package engine

import (
	"math"
	"strings"
	"testing"
)

// TestCIHalfWidth: the stopping statistic is the textbook 1.96·σ/√n on the
// named metric (headline metric when unnamed), +Inf when a CI is undefined,
// and a hard error — not a silent never-converge — on a metric the report
// does not carry.
func TestCIHalfWidth(t *testing.T) {
	rep := mustRun(t, Config{Seed: 1, Trials: 50, ShardSize: 8}, noisyScenario())

	m := rep.Metrics[0]
	want := 1.96 * m.StdDev / math.Sqrt(float64(m.Count))
	if hw, err := CIHalfWidth(rep, ""); err != nil || math.Abs(hw-want) > 1e-12 {
		t.Errorf("headline: hw=%v err=%v, want %v", hw, err, want)
	}
	if hw, err := CIHalfWidth(rep, m.Name); err != nil || math.Abs(hw-want) > 1e-12 {
		t.Errorf("named headline: hw=%v err=%v, want %v", hw, err, want)
	}

	if _, err := CIHalfWidth(rep, "no-such-metric"); err == nil ||
		!strings.Contains(err.Error(), "no metric") {
		t.Errorf("unknown metric: err %v, want error", err)
	}
	if _, err := CIHalfWidth(&Report{}, ""); err == nil {
		t.Error("empty report accepted")
	}

	// A single observation has no sample variance: the half-width is +Inf,
	// which can never satisfy a finite target, so auto-trials keeps growing.
	one := &Report{Metrics: []MetricSummary{{Name: "x", Count: 1, StdDev: 0}}}
	if hw, err := CIHalfWidth(one, "x"); err != nil || !math.IsInf(hw, 1) {
		t.Errorf("count=1: hw=%v err=%v, want +Inf", hw, err)
	}
}
