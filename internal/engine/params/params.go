// Package params is the typed parameter surface of the scenario and
// experiment registries: a Map of named Values rides on a job spec
// (spec.JobSpec.Params) to select one operating point of a parameterized
// workload, and a Schema declares which names a factory accepts, their
// types, defaults, and bounds.
//
// Values encode canonically: a Map marshals with sorted keys (Go's
// encoding/json map behavior) and every number in its shortest round-trip
// form, so any two JSON spellings of the same operating point — key order,
// whitespace, "6.0" versus "6" — decode and re-encode to identical bytes.
// That property is what lets spec.Hash and cache.Key content-address the
// exact operating point.
package params

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind is a parameter's declared type.
type Kind int

const (
	// Float accepts any finite JSON number.
	Float Kind = iota + 1
	// Int accepts a JSON number with zero fractional part.
	Int
	// Bool accepts JSON true/false.
	Bool
	// String accepts a JSON string, constrained by the schema's Enum.
	String
)

// String implements fmt.Stringer for schema listings.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is one parameter value: a JSON number, string, or bool. The zero
// Value is invalid (it marshals to an error), so absent and present-but-zero
// parameters can never be confused.
type Value struct {
	kind Kind // Float, Bool, or String (Int is a schema-level constraint)
	num  float64
	str  string
	b    bool
}

// Num returns a numeric Value.
func Num(f float64) Value { return Value{kind: Float, num: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: String, str: s} }

// Flag returns a boolean Value.
func Flag(b bool) Value { return Value{kind: Bool, b: b} }

// Kind reports the value's JSON shape: Float for any number, Bool, or
// String. It never reports Int — integrality is a schema constraint, not a
// wire distinction.
func (v Value) Kind() Kind { return v.kind }

// Float64 returns the numeric value (0 for non-numbers).
func (v Value) Float64() float64 { return v.num }

// Int returns the numeric value truncated to int (0 for non-numbers).
func (v Value) Int() int { return int(v.num) }

// Bool returns the boolean value (false for non-bools).
func (v Value) Bool() bool { return v.b }

// Str returns the string value ("" for non-strings).
func (v Value) Str() string { return v.str }

// String renders the value the way the canonical encoding does.
func (v Value) String() string {
	switch v.kind {
	case Float:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.b)
	case String:
		return v.str
	}
	return "<invalid>"
}

// MarshalJSON encodes the value in its canonical form. Invalid (zero) and
// non-finite values are errors, never bytes.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case Float:
		if math.IsNaN(v.num) || math.IsInf(v.num, 0) {
			return nil, fmt.Errorf("params: non-finite number %v", v.num)
		}
		return json.Marshal(v.num)
	case Bool:
		return json.Marshal(v.b)
	case String:
		return json.Marshal(v.str)
	}
	return nil, fmt.Errorf("params: invalid zero Value")
}

// UnmarshalJSON decodes a JSON number, string, or bool; null, objects, and
// arrays are rejected.
func (v *Value) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("params: %w", err)
	}
	switch t := tok.(type) {
	case json.Number:
		f, err := strconv.ParseFloat(t.String(), 64)
		if err != nil {
			return fmt.Errorf("params: number %q out of range", t.String())
		}
		*v = Num(f)
	case bool:
		*v = Flag(t)
	case string:
		*v = Str(t)
	default:
		return fmt.Errorf("params: value must be a number, string, or bool (got %s)", strings.TrimSpace(string(b)))
	}
	return nil
}

// Equal reports value equality (numbers compare as float64 bits via ==, so
// 6 and 6.0 are equal and NaN is never equal to anything).
func (v Value) Equal(o Value) bool { return v == o }

// Map is a set of named parameter values. A nil or empty Map means "no
// parameters"; both encode to nothing under omitempty, which is what keeps
// param-less job specs hashing exactly as they did before params existed.
type Map map[string]Value

// Canonical returns the map's canonical encoding: compact JSON with sorted
// keys and shortest-form numbers. It panics on invalid or non-finite values
// — validate first (Schema.Validate or Map.Validate).
func (m Map) Canonical() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("params: canonical: %v", err))
	}
	return b
}

// Validate checks every value is marshalable (valid kind, finite number),
// independent of any schema.
func (m Map) Validate() error {
	for _, name := range m.Names() {
		if _, err := m[name].MarshalJSON(); err != nil {
			return fmt.Errorf("params: %s: %w", name, err)
		}
	}
	return nil
}

// Names returns the parameter names in sorted order.
func (m Map) Names() []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy (nil in, nil out).
func (m Map) Clone() Map {
	if m == nil {
		return nil
	}
	out := make(Map, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Equal reports whether two maps hold the same names and values.
func (m Map) Equal(o Map) bool {
	if len(m) != len(o) {
		return false
	}
	for k, v := range m {
		if ov, ok := o[k]; !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Float returns the named numeric value (0 when absent). Factories read
// resolved maps — defaults already filled — so absence is a programming
// error, not a runtime condition.
func (m Map) Float(name string) float64 { return m[name].Float64() }

// Int returns the named numeric value truncated to int (0 when absent).
func (m Map) Int(name string) int { return m[name].Int() }

// Bool returns the named boolean (false when absent).
func (m Map) Bool(name string) bool { return m[name].Bool() }

// Str returns the named string ("" when absent).
func (m Map) Str(name string) string { return m[name].str }

// Spec declares one parameter a factory accepts.
type Spec struct {
	// Name is the wire name, e.g. "delta_db".
	Name string
	// Kind is the declared type. Numeric kinds (Float, Int) enforce
	// [Min, Max]; String enforces Enum membership.
	Kind Kind
	// Default is the value used when the parameter is omitted. It must
	// itself satisfy the spec's constraints.
	Default Value
	// Min, Max bound numeric parameters (inclusive). Required for Float and
	// Int specs; ignored otherwise.
	Min, Max float64
	// Enum lists the admissible values of a String parameter.
	Enum []string
	// Help is the one-line description printed by -list.
	Help string
}

// check validates one value against the spec.
func (p Spec) check(v Value) error {
	switch p.Kind {
	case Float, Int:
		if v.Kind() != Float {
			return fmt.Errorf("want a number, got %s %v", v.Kind(), v)
		}
		f := v.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("non-finite number")
		}
		if p.Kind == Int && f != math.Trunc(f) {
			return fmt.Errorf("want an integer, got %v", f)
		}
		if f < p.Min || f > p.Max {
			return fmt.Errorf("value %v out of range [%g, %g]", f, p.Min, p.Max)
		}
	case Bool:
		if v.Kind() != Bool {
			return fmt.Errorf("want a bool, got %s %v", v.Kind(), v)
		}
	case String:
		if v.Kind() != String {
			return fmt.Errorf("want a string, got %s %v", v.Kind(), v)
		}
		for _, e := range p.Enum {
			if v.Str() == e {
				return nil
			}
		}
		return fmt.Errorf("value %q not one of %s", v.Str(), strings.Join(p.Enum, "|"))
	default:
		return fmt.Errorf("schema bug: invalid kind %d", int(p.Kind))
	}
	return nil
}

// Constraint renders the spec's admissible range for listings:
// "[0, 18]" for numbers, "grass|pavement|..." for enums, "" for bools.
func (p Spec) Constraint() string {
	switch p.Kind {
	case Float, Int:
		return fmt.Sprintf("[%g, %g]", p.Min, p.Max)
	case String:
		return strings.Join(p.Enum, "|")
	}
	return ""
}

// Schema is an ordered list of parameter specs — the declaration order is
// the display order.
type Schema []Spec

// Lookup returns the spec with the given name.
func (s Schema) Lookup(name string) (Spec, bool) {
	for _, p := range s {
		if p.Name == name {
			return p, true
		}
	}
	return Spec{}, false
}

// SelfCheck validates the schema's own declaration: unique names, valid
// kinds and bounds, defaults that satisfy their own constraints. Registry
// well-formedness tests call it for every factory.
func (s Schema) SelfCheck() error {
	seen := make(map[string]bool, len(s))
	for _, p := range s {
		if p.Name == "" {
			return fmt.Errorf("params: schema entry with no name")
		}
		if seen[p.Name] {
			return fmt.Errorf("params: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Kind {
		case Float, Int:
			if p.Min > p.Max {
				return fmt.Errorf("params: %s: inverted bounds [%g, %g]", p.Name, p.Min, p.Max)
			}
		case Bool:
		case String:
			if len(p.Enum) == 0 {
				return fmt.Errorf("params: %s: string parameter with no enum", p.Name)
			}
		default:
			return fmt.Errorf("params: %s: invalid kind %d", p.Name, int(p.Kind))
		}
		if err := p.check(p.Default); err != nil {
			return fmt.Errorf("params: %s: default: %w", p.Name, err)
		}
	}
	return nil
}

// Validate checks a user-supplied map against the schema: unknown names are
// rejected by name (listing the accepted ones), and every present value must
// satisfy its spec's type and bounds. Absent parameters are fine — Resolve
// fills defaults.
func (s Schema) Validate(m Map) error {
	for _, name := range m.Names() {
		p, ok := s.Lookup(name)
		if !ok {
			known := make([]string, len(s))
			for i, sp := range s {
				known[i] = sp.Name
			}
			return fmt.Errorf("params: unknown parameter %q (accepted: %s)", name, strings.Join(known, ", "))
		}
		if err := p.check(m[name]); err != nil {
			return fmt.Errorf("params: %s: %w", name, err)
		}
	}
	return nil
}

// Resolve validates m and returns the full operating point: every declared
// parameter present, defaults filled for the omitted ones. The resolved map
// — not the sparse user-supplied one — is what cache keys embed, so a spec
// that spells out a default addresses the same cache entry as one that
// omits it.
func (s Schema) Resolve(m Map) (Map, error) {
	if err := s.Validate(m); err != nil {
		return nil, err
	}
	out := make(Map, len(s))
	for _, p := range s {
		if v, ok := m[p.Name]; ok {
			out[p.Name] = v
		} else {
			out[p.Name] = p.Default
		}
	}
	return out, nil
}

// ParseArg parses one CLI "name=value" argument. The value is parsed as a
// bool ("true"/"false"), then a number, then falls back to a string — the
// same precedence a JSON reader would apply.
func ParseArg(arg string) (string, Value, error) {
	name, raw, ok := strings.Cut(arg, "=")
	if !ok || name == "" {
		return "", Value{}, fmt.Errorf("params: want name=value, got %q", arg)
	}
	switch raw {
	case "true":
		return name, Flag(true), nil
	case "false":
		return name, Flag(false), nil
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return name, Num(f), nil
	}
	return name, Str(raw), nil
}

// FlagValue adapts a Map to the flag package for repeatable -param flags:
//
//	var pf params.FlagValue
//	fs.Var(&pf, "param", "scenario parameter name=value (repeatable)")
type FlagValue struct {
	M Map
}

// String implements flag.Value.
func (f *FlagValue) String() string {
	if f == nil || len(f.M) == 0 {
		return ""
	}
	return string(f.M.Canonical())
}

// Set implements flag.Value: each occurrence adds one name=value pair.
// Setting a name twice keeps the last value, like repeated JSON keys don't.
func (f *FlagValue) Set(arg string) error {
	name, v, err := ParseArg(arg)
	if err != nil {
		return err
	}
	if f.M == nil {
		f.M = make(Map)
	}
	f.M[name] = v
	return nil
}
