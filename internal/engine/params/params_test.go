package params

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestValueJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Value
		out  string // canonical re-encoding
	}{
		{`6`, Num(6), `6`},
		{`6.0`, Num(6), `6`}, // shortest round-trip form wins
		{`9.5`, Num(9.5), `9.5`},
		{`-0.25`, Num(-0.25), `-0.25`},
		{`1e3`, Num(1000), `1000`},
		{`true`, Flag(true), `true`},
		{`false`, Flag(false), `false`},
		{`"grass"`, Str("grass"), `"grass"`},
		{`""`, Str(""), `""`},
	}
	for _, c := range cases {
		var v Value
		if err := json.Unmarshal([]byte(c.in), &v); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if !v.Equal(c.want) {
			t.Errorf("unmarshal %s: got %v, want %v", c.in, v, c.want)
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", c.in, err)
		}
		if string(b) != c.out {
			t.Errorf("re-encode %s: got %s, want %s", c.in, b, c.out)
		}
	}
}

func TestValueJSONRejects(t *testing.T) {
	for _, in := range []string{`null`, `{}`, `[1]`, `{"a":1}`} {
		var v Value
		if err := json.Unmarshal([]byte(in), &v); err == nil {
			t.Errorf("unmarshal %s: want error, got %v", in, v)
		}
	}
}

func TestZeroAndNonFiniteValuesDoNotMarshal(t *testing.T) {
	if _, err := json.Marshal(Value{}); err == nil {
		t.Error("zero Value marshaled")
	}
	if _, err := json.Marshal(Num(math.NaN())); err == nil {
		t.Error("NaN marshaled")
	}
	if _, err := json.Marshal(Num(math.Inf(1))); err == nil {
		t.Error("+Inf marshaled")
	}
	m := Map{"x": Num(math.NaN())}
	if err := m.Validate(); err == nil {
		t.Error("Map.Validate accepted NaN")
	}
}

func TestMapCanonicalSortsKeys(t *testing.T) {
	m := Map{"zeta": Num(1), "alpha": Str("a"), "mid": Flag(true)}
	got := string(m.Canonical())
	want := `{"alpha":"a","mid":true,"zeta":1}`
	if got != want {
		t.Errorf("canonical: got %s, want %s", got, want)
	}
	// Decoding any key order yields the same canonical bytes.
	var back Map
	if err := json.Unmarshal([]byte(`{"zeta":1,"mid":true,"alpha":"a"}`), &back); err != nil {
		t.Fatal(err)
	}
	if string(back.Canonical()) != want {
		t.Errorf("reordered decode: got %s, want %s", back.Canonical(), want)
	}
	if !m.Equal(back) {
		t.Error("maps with same content not Equal")
	}
}

func TestMapCloneAndEqual(t *testing.T) {
	if got := Map(nil).Clone(); got != nil {
		t.Errorf("nil clone: got %v", got)
	}
	m := Map{"a": Num(1)}
	c := m.Clone()
	c["a"] = Num(2)
	if m.Float("a") != 1 {
		t.Error("clone aliased the original")
	}
	if m.Equal(c) {
		t.Error("differing maps reported Equal")
	}
	if !m.Equal(Map{"a": Num(1)}) {
		t.Error("equal maps reported unequal")
	}
	if m.Equal(Map{"a": Num(1), "b": Num(2)}) {
		t.Error("subset reported Equal")
	}
}

func testSchema() Schema {
	return Schema{
		{Name: "delta_db", Kind: Float, Default: Num(6), Min: -20, Max: 40, Help: "noise floor delta"},
		{Name: "drop", Kind: Int, Default: Num(6), Min: 0, Max: 18, Help: "anchors to drop"},
		{Name: "env", Kind: String, Default: Str("grass"), Enum: []string{"grass", "pavement"}, Help: "terrain"},
		{Name: "strict", Kind: Bool, Default: Flag(false), Help: "strict mode"},
	}
}

func TestSchemaSelfCheck(t *testing.T) {
	if err := testSchema().SelfCheck(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{{Name: "", Kind: Float, Default: Num(0)}},
		{{Name: "a", Kind: Float, Default: Num(0)}, {Name: "a", Kind: Float, Default: Num(0)}},
		{{Name: "a", Kind: Float, Default: Num(0), Min: 5, Max: 1}},
		{{Name: "a", Kind: String, Default: Str("x")}},                          // no enum
		{{Name: "a", Kind: Int, Default: Num(1.5), Min: 0, Max: 9}},             // fractional default
		{{Name: "a", Kind: Float, Default: Num(99), Min: 0, Max: 9}},            // default out of range
		{{Name: "a", Kind: String, Default: Str("z"), Enum: []string{"grass"}}}, // default not in enum
		{{Name: "a", Kind: Kind(0), Default: Num(0)}},                           // invalid kind
		{{Name: "a", Kind: Bool, Default: Num(1)}},                              // default wrong type
	}
	for i, s := range bad {
		if err := s.SelfCheck(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	ok := []Map{
		nil,
		{},
		{"delta_db": Num(9.5)},
		{"drop": Num(0)},
		{"drop": Num(18)},
		{"env": Str("pavement")},
		{"strict": Flag(true)},
		{"delta_db": Num(-20), "drop": Num(3), "env": Str("grass"), "strict": Flag(false)},
	}
	for i, m := range ok {
		if err := s.Validate(m); err != nil {
			t.Errorf("valid map %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		m    Map
		frag string // required error-message fragment
	}{
		{Map{"nope": Num(1)}, `unknown parameter "nope"`},
		{Map{"nope": Num(1)}, "delta_db, drop, env, strict"}, // lists accepted names
		{Map{"delta_db": Num(41)}, "out of range"},
		{Map{"delta_db": Num(-21)}, "out of range"},
		{Map{"delta_db": Str("six")}, "want a number"},
		{Map{"drop": Num(1.5)}, "want an integer"},
		{Map{"drop": Num(math.NaN())}, "non-finite"},
		{Map{"env": Str("urban")}, `not one of grass|pavement`},
		{Map{"env": Num(1)}, "want a string"},
		{Map{"strict": Str("yes")}, "want a bool"},
	}
	for i, c := range bad {
		err := s.Validate(c.m)
		if err == nil {
			t.Errorf("bad map %d accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("bad map %d: error %q missing %q", i, err, c.frag)
		}
	}
}

func TestSchemaResolveFillsDefaults(t *testing.T) {
	s := testSchema()
	got, err := s.Resolve(Map{"delta_db": Num(9.5)})
	if err != nil {
		t.Fatal(err)
	}
	want := Map{"delta_db": Num(9.5), "drop": Num(6), "env": Str("grass"), "strict": Flag(false)}
	if !got.Equal(want) {
		t.Errorf("resolve: got %s, want %s", got.Canonical(), want.Canonical())
	}
	// A spelled-out default resolves to the same map as an omitted one —
	// the cache-key unification property.
	explicit, err := s.Resolve(Map{"drop": Num(6)})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(explicit.Canonical()) != string(empty.Canonical()) {
		t.Errorf("explicit default %s != omitted default %s", explicit.Canonical(), empty.Canonical())
	}
	if _, err := s.Resolve(Map{"bogus": Num(1)}); err == nil {
		t.Error("resolve accepted unknown param")
	}
}

func TestParseArg(t *testing.T) {
	cases := []struct {
		in   string
		name string
		want Value
	}{
		{"delta_db=9.5", "delta_db", Num(9.5)},
		{"drop=6", "drop", Num(6)},
		{"env=grass", "env", Str("grass")},
		{"strict=true", "strict", Flag(true)},
		{"strict=false", "strict", Flag(false)},
		{"label=1x", "label", Str("1x")},
		{"eq=a=b", "eq", Str("a=b")}, // first '=' splits
		{"nan=NaN", "nan", Str("NaN")},
	}
	for _, c := range cases {
		name, v, err := ParseArg(c.in)
		if err != nil {
			t.Fatalf("ParseArg(%q): %v", c.in, err)
		}
		if name != c.name || !v.Equal(c.want) {
			t.Errorf("ParseArg(%q): got %s=%v, want %s=%v", c.in, name, v, c.name, c.want)
		}
	}
	for _, in := range []string{"", "novalue", "=5"} {
		if _, _, err := ParseArg(in); err == nil {
			t.Errorf("ParseArg(%q): want error", in)
		}
	}
}

func TestFlagValue(t *testing.T) {
	var f FlagValue
	if f.String() != "" {
		t.Errorf("empty flag String: %q", f.String())
	}
	for _, arg := range []string{"delta_db=6", "env=pavement", "delta_db=9.5"} {
		if err := f.Set(arg); err != nil {
			t.Fatal(err)
		}
	}
	want := `{"delta_db":9.5,"env":"pavement"}` // last set wins
	if f.String() != want {
		t.Errorf("flag map: got %s, want %s", f.String(), want)
	}
	if err := f.Set("malformed"); err == nil {
		t.Error("malformed arg accepted")
	}
}

// FuzzMapCanonical proves the canonical encoding is a fixed point: any JSON
// object that decodes as a Map re-encodes to bytes that decode and re-encode
// to themselves, regardless of the input's key order, spacing, or number
// spelling.
func FuzzMapCanonical(f *testing.F) {
	f.Add(`{"b":1,"a":2}`)
	f.Add(`{"a": 6.0, "z": "grass", "m": true}`)
	f.Add(`{}`)
	f.Add(`{"x":-0.25,"y":1e3}`)
	f.Add(`{"dup":1,"dup":2}`)
	f.Fuzz(func(t *testing.T, in string) {
		var m Map
		if err := json.Unmarshal([]byte(in), &m); err != nil {
			return // not a valid params object — out of scope
		}
		if m.Validate() != nil {
			return
		}
		c1 := m.Canonical()
		var back Map
		if err := json.Unmarshal(c1, &back); err != nil {
			t.Fatalf("canonical bytes %s do not decode: %v", c1, err)
		}
		c2 := back.Canonical()
		if string(c1) != string(c2) {
			t.Fatalf("canonical not a fixed point: %s -> %s", c1, c2)
		}
		if !m.Equal(back) {
			t.Fatalf("round trip changed the map: %s vs %s", c1, c2)
		}
	})
}
