package engine

import (
	"fmt"
	"strings"
	"sync"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/engine/params"
)

// A Factory is a parameter-addressable scenario constructor: where the
// library in scenarios.go registers a handful of compiled-in operating
// points (NoiseSweep(6), AnchorDropout(12), ...), a factory exposes the
// whole parameter space behind the constructor on the wire — any point a
// job spec's params can name, validated against the declared schema.
type Factory struct {
	// Name addresses the factory from spec.JobSpec.ID. Factory names are
	// disjoint from library scenario names: "ranging-noise" is the factory,
	// "ranging-noise-6db" the compiled-in instance.
	Name        string
	Description string
	// Params declares the accepted parameters: names, types, defaults,
	// bounds. Validation is strict — unknown or out-of-range params are
	// rejected by name before Build runs.
	Params params.Schema
	// Build constructs the scenario for a resolved param map (every declared
	// parameter present; see params.Schema.Resolve).
	Build func(p params.Map) (Scenario, error)
}

// environments indexes the acoustics presets for enum-valued env params.
var environments = map[string]func() acoustics.Environment{
	"grass":    acoustics.Grass,
	"pavement": acoustics.Pavement,
	"urban":    acoustics.Urban,
	"wooded":   acoustics.Wooded,
}

// envEnum is the environment enum in display order.
var envEnum = []string{"grass", "pavement", "urban", "wooded"}

func envByName(name string) (acoustics.Environment, error) {
	f, ok := environments[name]
	if !ok {
		return acoustics.Environment{}, fmt.Errorf("unknown environment %q", name)
	}
	return f(), nil
}

// Factories returns the parameterized scenario factories in display order.
func Factories() []Factory {
	return []Factory{
		{
			Name:        "ranging-noise",
			Description: "refined ranging of a 15 m grass pair vs a raised ambient noise floor",
			Params: params.Schema{
				{Name: "delta_db", Kind: params.Float, Default: params.Num(6), Min: -20, Max: 40,
					Help: "ambient noise floor delta over the grass preset, dB"},
			},
			Build: func(p params.Map) (Scenario, error) {
				return NoiseSweep(p.Float("delta_db")), nil
			},
		},
		{
			Name:        "multilat-dropout",
			Description: "town multilateration with anchors randomly dropped each trial",
			Params: params.Schema{
				{Name: "drop", Kind: params.Int, Default: params.Num(6), Min: 0, Max: 18,
					Help: "anchors removed at random from the town's 18"},
			},
			Build: func(p params.Map) (Scenario, error) {
				return AnchorDropout(p.Int("drop")), nil
			},
		},
		{
			Name:        "multilat-grid",
			Description: "progressive multilateration on a rows×cols offset grid, 10% random anchors",
			Params: params.Schema{
				{Name: "rows", Kind: params.Int, Default: params.Num(14), Min: 2, Max: 32,
					Help: "grid rows"},
				{Name: "cols", Kind: params.Int, Default: params.Num(14), Min: 2, Max: 32,
					Help: "grid columns"},
			},
			Build: func(p params.Map) (Scenario, error) {
				return LargeGrid(p.Int("rows"), p.Int("cols")), nil
			},
		},
		{
			Name:        "maxrange",
			Description: "detection success vs distance sweep (paper §3.6.2) at any environment and threshold",
			Params: params.Schema{
				{Name: "env", Kind: params.String, Default: params.Str("grass"), Enum: envEnum,
					Help: "acoustic environment preset"},
				{Name: "detect_t", Kind: params.Int, Default: params.Num(2), Min: 1, Max: 8,
					Help: "detection threshold T"},
				{Name: "rounds", Kind: params.Int, Default: params.Num(40), Min: 1, Max: 400,
					Help: "measurement attempts per distance point"},
			},
			Build: func(p params.Map) (Scenario, error) {
				env, err := envByName(p.Str("env"))
				if err != nil {
					return Scenario{}, err
				}
				return MaxRangeScenario(env, uint8(p.Int("detect_t")), DefaultMaxRangeDistances(), p.Int("rounds")), nil
			},
		},
		{
			Name:        "mobility-waypoint",
			Description: "town multilateration under random-waypoint motion: measurements taken mid-walk",
			Params: params.Schema{
				{Name: "speed_mps", Kind: params.Float, Default: params.Num(1), Min: 0, Max: 10,
					Help: "node walking speed, m/s"},
				{Name: "epoch_s", Kind: params.Float, Default: params.Num(4), Min: 0.5, Max: 60,
					Help: "ranging epoch length, s"},
			},
			Build: func(p params.Map) (Scenario, error) {
				return MobilityWaypoint(p.Float("speed_mps"), p.Float("epoch_s")), nil
			},
		},
		{
			Name:        "ranging-mixed-env",
			Description: "ranging a grid deployment that straddles two acoustic environments",
			Params: params.Schema{
				{Name: "env_a", Kind: params.String, Default: params.Str("grass"), Enum: envEnum,
					Help: "environment left of the boundary"},
				{Name: "env_b", Kind: params.String, Default: params.Str("pavement"), Enum: envEnum,
					Help: "environment right of the boundary"},
				{Name: "boundary_frac", Kind: params.Float, Default: params.Num(0.5), Min: 0, Max: 1,
					Help: "boundary position as a fraction of the grid's width"},
			},
			Build: func(p params.Map) (Scenario, error) {
				envA, err := envByName(p.Str("env_a"))
				if err != nil {
					return Scenario{}, err
				}
				envB, err := envByName(p.Str("env_b"))
				if err != nil {
					return Scenario{}, err
				}
				return MixedEnvRanging(envA, envB, p.Float("boundary_frac")), nil
			},
		},
	}
}

var (
	factoryOnce  sync.Once
	factoryIndex map[string]Factory
)

// FindFactory returns the factory with the given name via a map-backed index
// built once per process.
func FindFactory(name string) (Factory, bool) {
	factoryOnce.Do(func() {
		all := Factories()
		factoryIndex = make(map[string]Factory, len(all))
		for _, f := range all {
			factoryIndex[f.Name] = f
		}
	})
	f, ok := factoryIndex[name]
	return f, ok
}

// BuildScenario resolves a scenario name plus params into a runnable
// scenario — the one entry point the spec layer uses for both factories and
// library instances. For a factory name it validates p against the schema,
// fills defaults, and builds; the returned map is the fully-resolved
// operating point (what cache keys embed). For a library name it returns the
// compiled-in scenario and a nil map; passing params to a library instance
// is an error, since those points are already fixed by name.
func BuildScenario(name string, p params.Map) (Scenario, params.Map, error) {
	if f, ok := FindFactory(name); ok {
		resolved, err := f.Params.Resolve(p)
		if err != nil {
			return Scenario{}, nil, fmt.Errorf("scenario %q: %w", name, err)
		}
		s, err := f.Build(resolved)
		if err != nil {
			return Scenario{}, nil, fmt.Errorf("scenario %q: %w", name, err)
		}
		return s, resolved, nil
	}
	if s, ok := Find(name); ok {
		if len(p) > 0 {
			return Scenario{}, nil, fmt.Errorf(
				"scenario %q takes no parameters (params: %s); parameterized factories: %s",
				name, p.Canonical(), strings.Join(factoryNames(), ", "))
		}
		return s, nil, nil
	}
	return Scenario{}, nil, fmt.Errorf("unknown scenario %q", name)
}

func factoryNames() []string {
	all := Factories()
	names := make([]string, len(all))
	for i, f := range all {
		names[i] = f.Name
	}
	return names
}
