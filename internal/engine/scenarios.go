package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"resilientloc/internal/acoustics"
	"resilientloc/internal/core"
	"resilientloc/internal/deploy"
	"resilientloc/internal/eval"
	"resilientloc/internal/geom"
	"resilientloc/internal/measure"
	"resilientloc/internal/ranging"
	"resilientloc/internal/stats"
)

// This file is the scenario library: declarative Monte Carlo workloads over
// the paper's ranging/localization pipeline. The first group re-expresses
// the paper's evaluation settings (Sections 3.3, 3.6, 4.4) as engine
// scenarios; the second opens workloads the paper never ran — anchor
// dropout, ambient-noise sweeps, large-N grids — which is exactly what the
// engine exists for.

// Library returns every registered scenario in display order.
func Library() []Scenario {
	var all []Scenario
	for _, suite := range Suites() {
		all = append(all, suite.Scenarios...)
	}
	return all
}

var (
	libraryOnce  sync.Once
	libraryIndex map[string]Scenario
)

// Find returns the library scenario with the given name via a map-backed
// index built once per process.
func Find(name string) (Scenario, bool) {
	libraryOnce.Do(func() {
		lib := Library()
		libraryIndex = make(map[string]Scenario, len(lib))
		for _, s := range lib {
			libraryIndex[s.Name] = s
		}
	})
	s, ok := libraryIndex[name]
	return s, ok
}

// Suite is a named group of related scenarios, runnable together from
// cmd/scenarios.
type Suite struct {
	Name        string
	Description string
	Scenarios   []Scenario
}

// Suites returns the scenario suites in display order.
func Suites() []Suite {
	return []Suite{
		{
			Name:        "ranging",
			Description: "acoustic ranging campaigns: error distributions, detection range, noise robustness",
			Scenarios: []Scenario{
				RangingUrbanBaseline(),
				RangingGrassRefined(),
				NoiseSweep(0),
				NoiseSweep(6),
				NoiseSweep(12),
				MaxRangeScenario(acoustics.Grass(), 2, DefaultMaxRangeDistances(), 40),
				MaxRangeScenario(acoustics.Pavement(), 2, DefaultMaxRangeDistances(), 40),
			},
		},
		{
			Name:        "multilat",
			Description: "anchor-based multilateration: the town scenario, anchor dropout, large-N grids",
			Scenarios: []Scenario{
				MultilatTown(),
				AnchorDropout(6),
				AnchorDropout(12),
				LargeGrid(14, 14),
			},
		},
		{
			Name:        "lss",
			Description: "centralized least-squares scaling with the minimum-spacing constraint",
			Scenarios: []Scenario{
				LSSTownConstrained(),
			},
		},
	}
}

// FindSuite returns the named suite.
func FindSuite(name string) (Suite, bool) {
	for _, s := range Suites() {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// recordSignedErrors reports every directed reading's measured-minus-true
// error and the per-trial robust summaries.
func recordSignedErrors(t *T, raw *measure.Raw, dep *deploy.Deployment) error {
	errs := raw.SignedErrors(dep)
	for _, e := range errs {
		t.Record("signed_error_m", e)
	}
	if len(errs) == 0 {
		return fmt.Errorf("campaign produced no readings")
	}
	med, err := stats.MedianAbs(errs)
	if err != nil {
		return err
	}
	var large, core30 int
	for _, e := range errs {
		if math.Abs(e) > 1 {
			large++
		}
		if math.Abs(e) <= 0.3 {
			core30++
		}
	}
	t.Record("median_abs_error_m", med)
	t.Record("frac_gt_1m", float64(large)/float64(len(errs)))
	t.Record("frac_within_30cm", float64(core30)/float64(len(errs)))
	t.Record("readings", float64(len(errs)))
	return nil
}

// RangingUrbanBaseline is the paper's Section 3.3 setting (Figure 2): the
// baseline service on a fresh random 60-node urban deployment each trial.
func RangingUrbanBaseline() Scenario {
	return Scenario{
		Name:        "ranging-urban-baseline",
		Description: "baseline 64 ms-chirp ranging, random 60-node urban deployment, pairs ≤ 30 m (paper Fig. 2)",
		Trials:      8,
		Run: func(t *T) error {
			dep, err := deploy.UniformRandom(60, 70, 70, 5, t.RNG)
			if err != nil {
				return err
			}
			svc, err := ranging.NewService(ranging.BaselineConfig(acoustics.Urban()), dep, t.RNG)
			if err != nil {
				return err
			}
			raw, err := svc.Campaign(1, 30)
			if err != nil {
				return err
			}
			return recordSignedErrors(t, raw, dep)
		},
	}
}

// RangingGrassRefined is the refined-service grass campaign of Section 3.6
// (Figure 6): the 46-node offset grid, three rounds, pairs ≤ 21 m.
func RangingGrassRefined() Scenario {
	return Scenario{
		Name:        "ranging-grass-refined",
		Description: "refined chirp-pattern ranging on the 46-node grass grid, 3 rounds (paper Fig. 6)",
		Trials:      8,
		Run: func(t *T) error {
			dep := deploy.PaperGrid()
			dep.Positions = dep.Positions[:46]
			dep.Name = "grass-grid-46"
			svc, err := ranging.NewService(ranging.DefaultConfig(acoustics.Grass()), dep, t.RNG)
			if err != nil {
				return err
			}
			raw, err := svc.Campaign(3, 21)
			if err != nil {
				return err
			}
			return recordSignedErrors(t, raw, dep)
		},
	}
}

// NoiseSweep measures ranging robustness against ambient noise the paper
// only gestures at: a 15 m grass pair with the noise floor raised by
// deltaDB, 30 measurement attempts per trial.
func NoiseSweep(deltaDB float64) Scenario {
	return Scenario{
		Name: fmt.Sprintf("ranging-noise-%ddb", int(deltaDB)),
		Description: fmt.Sprintf(
			"refined ranging of a 15 m grass pair with the ambient noise floor raised %g dB", deltaDB),
		Trials: 16,
		Run: func(t *T) error {
			env := acoustics.Grass()
			env.NoiseFloor += deltaDB
			cfg := ranging.DefaultConfig(env)
			cfg.Units.FaultProb = 0
			const d = 15.0
			dep := &deploy.Deployment{
				Name:      "noise-pair",
				Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(d, 0)},
			}
			svc, err := ranging.NewService(cfg, dep, t.RNG)
			if err != nil {
				return err
			}
			const attempts = 30
			ok := 0
			for i := 0; i < attempts; i++ {
				if m, hit := svc.MeasurePair(0, 1); hit {
					ok++
					t.Record("abs_error_m", math.Abs(m-d))
				}
			}
			t.Record("success_rate", float64(ok)/attempts)
			return nil
		},
	}
}

// DefaultMaxRangeDistances returns the paper's §3.6.2 sweep distances.
func DefaultMaxRangeDistances() []float64 {
	return []float64{5, 10, 15, 20, 25, 30, 35, 40, 50}
}

// MaxRangeScenario is the Section 3.6.2 maximum-range analysis as an engine
// scenario: trial k measures a single pair at distances[k] for
// trialsPerPoint rounds and records the detection success rate. The seed
// derivation reproduces the original serial experiment's arithmetic
// (seed + 7·distance + threshold), so the ported figure generator's output
// is unchanged.
func MaxRangeScenario(env acoustics.Environment, detectT uint8, distances []float64, trialsPerPoint int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("maxrange-%s-t%d", env.Name, detectT),
		Description: fmt.Sprintf(
			"detection success vs distance, %s, threshold T=%d (paper §3.6.2)", env.Name, detectT),
		Trials: len(distances),
		// One trial per distance point: a larger -trials override must not
		// index past the sweep list.
		MaxTrials: len(distances),
		SeedFn: func(seed int64, trial int) int64 {
			return seed + int64(distances[trial]*7) + int64(detectT)
		},
		Run: func(t *T) error {
			d := distances[t.Trial]
			rate, err := MaxRangePoint(env, detectT, d, trialsPerPoint, t.RNG)
			if err != nil {
				return err
			}
			t.Record("distance_m", d)
			t.Record("success_rate", rate)
			return nil
		},
	}
}

// MaxRangePoint measures one (environment, threshold, distance) point of the
// §3.6.2 sweep: the detection success rate of a single pair at distance d
// over `rounds` measurement attempts. Shared by the library scenario above
// and the maxrange figure campaign so both sweep exactly the same code.
func MaxRangePoint(env acoustics.Environment, detectT uint8, d float64, rounds int, rng *rand.Rand) (float64, error) {
	dep := &deploy.Deployment{
		Name:      "pair",
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(d, 0)},
	}
	cfg := ranging.DefaultConfig(env)
	cfg.MaxBufferRange = 55
	cfg.DetectT = detectT
	cfg.Units.FaultProb = 0
	svc, err := ranging.NewService(cfg, dep, rng)
	if err != nil {
		return 0, err
	}
	ok := 0
	for i := 0; i < rounds; i++ {
		// Success means detecting the actual chirp: a detection >3 m off is
		// a false positive (§3.6).
		if m, hit := svc.MeasurePair(0, 1); hit && math.Abs(m-d) <= 3 {
			ok++
		}
	}
	return float64(ok) / float64(rounds), nil
}

// townMultilat builds a fresh town deployment, measures all pairs within
// 22 m with N(0, 0.33 m) noise, and multilaterates from the given anchors.
func townMultilat(t *T, dropAnchors int) error {
	dep := deploy.Town(t.RNG)
	set, err := measure.Generate(dep, 22, measure.GaussianNoise, t.RNG)
	if err != nil {
		return err
	}
	kept := append([]int(nil), dep.Anchors...)
	if dropAnchors > 0 {
		t.RNG.Shuffle(len(kept), func(i, j int) { kept[i], kept[j] = kept[j], kept[i] })
		if dropAnchors > len(kept) {
			dropAnchors = len(kept)
		}
		kept = kept[:len(kept)-dropAnchors]
	}
	anchors := make(map[int]geom.Point, len(kept))
	for _, a := range kept {
		anchors[a] = dep.Positions[a]
	}
	// Unlike the single-seed Figure 20 run (whose footnote 5 omits the
	// intersection consistency check), the Monte Carlo sweep keeps the
	// §4.1.2 check on: across many random towns, the occasional
	// near-collinear anchor triple otherwise produces a wildly divergent
	// least-squares fix that dominates the mean.
	res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, core.DefaultMultilatConfig())
	if err != nil {
		return err
	}
	nonAnchors := float64(dep.N() - len(kept))
	t.Record("anchors_used", float64(len(kept)))
	t.Record("localized_frac", float64(len(res.Localized))/nonAnchors)
	t.Record("anchors_per_node", res.AvgAnchorsPerNode)
	if len(res.Localized) > 0 {
		avg, worst, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
		if err != nil {
			return err
		}
		t.Record("avg_error_m", avg)
		t.Record("worst_error_m", worst)
	}
	return nil
}

// MultilatTown is the paper's Figure 20 setting: a fresh random town
// deployment (59 nodes, 18 anchors) multilaterated each trial.
func MultilatTown() Scenario {
	return Scenario{
		Name:        "multilat-town",
		Description: "multilateration on the random town map, 59 nodes / 18 anchors (paper Fig. 20)",
		Trials:      16,
		Run:         func(t *T) error { return townMultilat(t, 0) },
	}
}

// AnchorDropout stresses anchor availability beyond the paper: the town
// scenario with `drop` of its 18 anchors removed at random each trial.
func AnchorDropout(drop int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("multilat-anchor-dropout-%d", drop),
		Description: fmt.Sprintf(
			"town multilateration with %d of 18 anchors randomly dropped per trial", drop),
		Trials: 16,
		Run:    func(t *T) error { return townMultilat(t, drop) },
	}
}

// LargeGrid scales multilateration to deployments far beyond the paper's
// 60 nodes: a rows×cols offset grid (9/10 m spacing), 10% random anchors,
// simulated measurements within 22 m.
func LargeGrid(rows, cols int) Scenario {
	n := rows * cols
	return Scenario{
		Name: fmt.Sprintf("multilat-grid-%d", n),
		Description: fmt.Sprintf(
			"multilateration on a %d×%d offset grid (%d nodes, 10%% random anchors)", rows, cols, n),
		Trials: 8,
		Run: func(t *T) error {
			dep, err := deploy.OffsetGrid(rows, cols, 9, 10)
			if err != nil {
				return err
			}
			if err := dep.ChooseRandomAnchors(n/10, t.RNG); err != nil {
				return err
			}
			set, err := measure.Generate(dep, 22, measure.GaussianNoise, t.RNG)
			if err != nil {
				return err
			}
			anchors := make(map[int]geom.Point, len(dep.Anchors))
			for _, a := range dep.Anchors {
				anchors[a] = dep.Positions[a]
			}
			// At 10% anchor density most grid nodes see fewer than 3
			// original anchors within the 22 m cutoff, so coverage relies
			// on the §4.1.1 progressive extension: localized nodes are
			// promoted to anchors and localization iterates to a fixpoint.
			cfg := core.DefaultMultilatConfig()
			cfg.Progressive = true
			res, err := core.SolveMultilaterationIn(t.Scratch(), set, anchors, cfg)
			if err != nil {
				return err
			}
			t.Record("pairs", float64(set.Len()))
			t.Record("localized_frac", float64(len(res.Localized))/float64(dep.N()-len(dep.Anchors)))
			if len(res.Localized) > 0 {
				avg, worst, err := eval.AvgErrorAbsolute(res.Positions, dep.Positions)
				if err != nil {
					return err
				}
				t.Record("avg_error_m", avg)
				t.Record("worst_error_m", worst)
			}
			return nil
		},
	}
}

// LSSTownConstrained is the paper's Figure 21 setting: anchor-free
// centralized LSS with the 9 m minimum-spacing constraint on a fresh town
// deployment each trial.
func LSSTownConstrained() Scenario {
	return Scenario{
		Name:        "lss-town-constrained",
		Description: "centralized constrained LSS on the random town map, no anchors (paper Fig. 21)",
		Trials:      4,
		Run: func(t *T) error {
			dep := deploy.Town(t.RNG)
			set, err := measure.Generate(dep, 22, measure.GaussianNoise, t.RNG)
			if err != nil {
				return err
			}
			res, err := core.SolveLSSIn(t.Scratch(), set, core.DefaultLSSConfig(9), t.RNG)
			if err != nil {
				return err
			}
			a, err := eval.Fit(res.Positions, dep.Positions)
			if err != nil {
				return err
			}
			t.Record("avg_error_m", a.AvgError)
			t.Record("max_error_m", a.MaxError)
			t.Record("final_E", res.Error)
			return nil
		},
	}
}
