package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"resilientloc/internal/engine/params"
)

// MaxSweepPoints bounds a sweep's expansion: a parameter study larger than
// this must be split into multiple sweeps, instead of one malformed grid
// silently fanning a million jobs into the queue.
const MaxSweepPoints = 4096

// Sweep is a parameter study as one document: a spec template plus a grid
// of parameter axes (and optionally a seed axis) that expands into the
// cartesian product of content-addressed JobSpecs. The expansion is
// deterministic — axes iterate in sorted name order, seeds outermost — so
// every consumer (run.ExecuteAll locally, locd's POST /v1/sweeps remotely)
// derives the identical job list from the same document. Expansion does not
// deduplicate: points that collide (e.g. a grid axis spelling out the
// template's value) hash identically and are collapsed by the executors'
// in-flight/cache machinery, not here.
type Sweep struct {
	// Template is the base spec every point starts from. Its own Params are
	// the fixed coordinates; grid axes must not collide with them.
	Template JobSpec `json:"template"`
	// Grid maps a parameter name to the values it sweeps over.
	Grid map[string][]params.Value `json:"grid,omitempty"`
	// Seeds optionally sweeps the seed as an outermost axis; empty means
	// the template's seed.
	Seeds []int64 `json:"seeds,omitempty"`
}

// Expand returns the sweep's job list: for each seed, the cartesian product
// of the grid axes in sorted name order (the first axis varies slowest),
// applied over the template. Every expanded spec is validated; registry
// checks (unknown names, bounds) still happen at Resolve time.
func (sw Sweep) Expand() ([]JobSpec, error) {
	axes := make([]string, 0, len(sw.Grid))
	total := 1
	for name, vals := range sw.Grid {
		if len(vals) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", name)
		}
		if _, fixed := sw.Template.Params[name]; fixed {
			return nil, fmt.Errorf("sweep: axis %q collides with a template param", name)
		}
		axes = append(axes, name)
		if total > MaxSweepPoints/len(vals) {
			return nil, fmt.Errorf("sweep: grid exceeds %d points", MaxSweepPoints)
		}
		total *= len(vals)
	}
	sort.Strings(axes)
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []int64{sw.Template.Seed}
	}
	if total > MaxSweepPoints/len(seeds) {
		return nil, fmt.Errorf("sweep: grid exceeds %d points", MaxSweepPoints)
	}

	specs := make([]JobSpec, 0, total*len(seeds))
	// idx is the mixed-radix odometer over the axes; incrementing the last
	// digit first makes the first (alphabetical) axis vary slowest.
	idx := make([]int, len(axes))
	for _, seed := range seeds {
		for i := range idx {
			idx[i] = 0
		}
		for {
			s := sw.Template
			s.Seed = seed
			s.Params = sw.Template.Params.Clone()
			if s.Params == nil && len(axes) > 0 {
				s.Params = make(params.Map, len(axes))
			}
			for i, name := range axes {
				s.Params[name] = sw.Grid[name][idx[i]]
			}
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			specs = append(specs, s)
			d := len(idx) - 1
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < len(sw.Grid[axes[d]]) {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
	}
	return specs, nil
}

// DecodeSweep reads one sweep document from r, rejecting unknown fields and
// trailing data.
func DecodeSweep(r io.Reader) (Sweep, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return Sweep{}, fmt.Errorf("sweep: read: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return Sweep{}, fmt.Errorf("sweep: decode: %w", err)
	}
	if dec.More() {
		return Sweep{}, fmt.Errorf("sweep: trailing data after the sweep document")
	}
	return sw, nil
}

// LoadSweepFile decodes a sweep document from a file.
func LoadSweepFile(path string) (Sweep, error) {
	f, err := os.Open(path)
	if err != nil {
		return Sweep{}, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	sw, err := DecodeSweep(f)
	if err != nil {
		return Sweep{}, fmt.Errorf("%s: %w", path, err)
	}
	return sw, nil
}
