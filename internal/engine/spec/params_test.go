package spec_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/spec"
)

// seedHashes pins every pre-params example spec to the job ID it had before
// JobSpec grew the params field. These are literal values, not recomputed:
// if any of them changes, existing caches, locd job tables, and every
// operator's saved job URL silently stop matching their history.
var seedHashes = []struct {
	file string
	id   string
	hash string
}{
	{"fig11-seed1.json", "fig11", "da553e69a09c2c8e30706306155789d9b532ed998234acd460d1de9ff8250b4e"},
	{"multilat-sweep.json", "multilat-town", "a8a3ea0705029823cc96e342ee75c57b939fe1272c21247736bbb39d810560f3"},
	{"multilat-sweep.json", "multilat-anchor-dropout-6", "86580ef7a4d9bd53a7b97b38faeeca96e08da32a4a6bd2d55db61d319a85a268"},
	{"multilat-sweep.json", "multilat-anchor-dropout-12", "752af49391cdc50c767edee879576777ef5433336837c62c595966c53ae32e56"},
	{"multilat-sweep.json", "multilat-grid-196", "f74487282289d5c1e66df7235c190dd7d2b718ce5423d474edaa1f426327794e"},
	{"ranging-figures.json", "fig02", "c4a4b9d852ba1797d7c87001e2bcaa07ad7f724a99b484874b8d6782fc821ffa"},
	{"ranging-figures.json", "fig04", "f894d2fae1716e592d86c2bf0b602555132be63604e3a578157328a2b8cadc59"},
	{"ranging-figures.json", "fig06", "bcf3918c55872fa1472dee671cc5cc54189535392f95b214c56bd166fe105e71"},
	{"ranging-figures.json", "fig07", "19309156838457c90742d1138aff3060a0a3e4f3eaecf7fcef14434548d1af6c"},
	{"ranging-figures.json", "fig08", "71db5c0803370c2dbf68641bfe86d223ccfcf9d6094c02019a3f2f0deafba93c"},
	{"ranging-figures.json", "fig10", "6436df2e7f3ebf5f278e2839658f77b93d9042c017a8f454a9dec26cdbc3030e"},
	{"ranging-figures.json", "maxrange", "2643f2a697c1e4790ea899a3e5867384a9eed54905552a4fb63a6c56e111edf5"},
}

func TestPreParamsExampleSpecsHashToSeedValues(t *testing.T) {
	byFile := map[string]map[string]string{}
	for _, p := range seedHashes {
		if byFile[p.file] == nil {
			byFile[p.file] = map[string]string{}
		}
		byFile[p.file][p.id] = p.hash
	}
	for file, want := range byFile {
		specs, err := spec.LoadFile(filepath.Join("..", "..", "..", "examples", "specs", file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		got := map[string]string{}
		for _, s := range specs {
			got[s.ID] = s.Hash()
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: hashes drifted from the pre-params seed values\ngot:  %v\nwant: %v", file, got, want)
		}
	}
}

// TestParamSpecHashKeyOrderIndependent: the params object encodes with
// sorted keys, so every key order of the same document is the same job.
func TestParamSpecHashKeyOrderIndependent(t *testing.T) {
	a := `{"kind":"scenario","id":"mobility-waypoint","seed":1,"params":{"speed_mps":2.5,"epoch_s":4}}`
	b := `{"kind":"scenario","id":"mobility-waypoint","seed":1,"params":{"epoch_s":4,"speed_mps":2.5}}`
	da, err := spec.Decode(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.Decode(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if da[0].Hash() != db[0].Hash() {
		t.Errorf("key order changed the hash:\n%s\nvs\n%s", da[0].Canonical(), db[0].Canonical())
	}
	// "4" and "4.0" are the same number, hence the same job.
	c := `{"kind":"scenario","id":"mobility-waypoint","seed":1,"params":{"epoch_s":4.0,"speed_mps":2.5}}`
	dc, err := spec.Decode(strings.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if dc[0].Hash() != da[0].Hash() {
		t.Errorf("number spelling changed the hash: %s vs %s", dc[0].Canonical(), da[0].Canonical())
	}
	// A nil and an empty params map are both omitted — the param-less hash.
	bare := spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1}
	empty := bare
	empty.Params = params.Map{}
	if bare.Hash() != empty.Hash() {
		t.Errorf("empty params map changed the hash: %s vs %s", bare.Canonical(), empty.Canonical())
	}
	// A different operating point is a different job.
	other := da[0]
	other.Params = params.Map{"speed_mps": params.Num(3), "epoch_s": params.Num(4)}
	if other.Hash() == da[0].Hash() {
		t.Error("distinct operating points hash identically")
	}
}

// FuzzSpecHashKeyOrder shuffles the fields of randomly-parameterized specs
// into fresh JSON documents and requires every permutation to decode to the
// same content hash.
func FuzzSpecHashKeyOrder(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(99), uint8(0))
	f.Add(int64(-7), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nParams uint8) {
		rng := rand.New(rand.NewSource(seed))
		p := make(params.Map)
		for i := 0; i < int(nParams%8); i++ {
			name := fmt.Sprintf("p%d", rng.Intn(10))
			switch rng.Intn(3) {
			case 0:
				p[name] = params.Num(float64(rng.Intn(2000)-1000) / 16)
			case 1:
				p[name] = params.Str(fmt.Sprintf("v%d", rng.Intn(5)))
			default:
				p[name] = params.Flag(rng.Intn(2) == 0)
			}
		}
		base := spec.JobSpec{Kind: spec.KindScenario, ID: "x", Seed: seed, Params: p}
		if err := base.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
		want := base.Hash()

		// Re-render the params object with shuffled key order and re-decode.
		names := p.Names()
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		var doc bytes.Buffer
		fmt.Fprintf(&doc, `{"seed":%d,"id":"x","kind":"scenario"`, seed)
		if len(names) > 0 {
			doc.WriteString(`,"params":{`)
			for i, n := range names {
				if i > 0 {
					doc.WriteByte(',')
				}
				vb, err := p[n].MarshalJSON()
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&doc, "%q:%s", n, vb)
			}
			doc.WriteString("}")
		}
		doc.WriteString("}")
		decoded, err := spec.Decode(bytes.NewReader(doc.Bytes()))
		if err != nil {
			t.Fatalf("decode %s: %v", doc.Bytes(), err)
		}
		if got := decoded[0].Hash(); got != want {
			t.Errorf("shuffled document %s hashes %s, canonical %s hashes %s",
				doc.Bytes(), got, base.Canonical(), want)
		}
	})
}

func TestResolveParams(t *testing.T) {
	// A factory spec resolves with defaults filled.
	r, err := spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint", Seed: 1,
		Params: params.Map{"speed_mps": params.Num(2.5)}})
	if err != nil {
		t.Fatal(err)
	}
	want := params.Map{"speed_mps": params.Num(2.5), "epoch_s": params.Num(4)}
	if !r.Params.Equal(want) {
		t.Errorf("resolved params %s, want %s", r.Params.Canonical(), want.Canonical())
	}
	// A parameterized figure resolves through its ParamCampaign.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1,
		Params: params.Map{"rounds": params.Num(10)}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Params.Int("rounds") != 10 || r.Trials != 36 {
		t.Errorf("maxrange with rounds=10 resolved to params %s, %d trials", r.Params.Canonical(), r.Trials)
	}
	// Param-less jobs resolve with nil params.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Params != nil {
		t.Errorf("param-less job resolved params %s", r.Params.Canonical())
	}

	// The default operating point spelled out as a param is byte-identical
	// to the param-less figure (the two specs are distinct wire jobs but
	// must produce the same bytes — and they share a cache key, since keys
	// embed the resolved map).
	if !testing.Short() {
		withDefault, err := spec.Resolve(spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1,
			Params: params.Map{"rounds": params.Num(40)}})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := spec.Resolve(spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		a := executeValue(t, withDefault)
		b := executeValue(t, bare)
		if a.Figure == nil || b.Figure == nil || a.Figure.Render() != b.Figure.Render() {
			t.Error("maxrange with rounds=40 diverges from the param-less figure")
		}
	}

	for _, tc := range []struct {
		sp   spec.JobSpec
		want string
	}{
		{spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1,
			Params: params.Map{"drop": params.Num(3)}}, "takes no parameters"},
		{spec.JobSpec{Kind: spec.KindFigure, ID: "fig11", Seed: 1,
			Params: params.Map{"rounds": params.Num(3)}}, "takes no parameters"},
		{spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1,
			Params: params.Map{"bogus": params.Num(3)}}, `unknown parameter "bogus"`},
		{spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint", Seed: 1,
			Params: params.Map{"speed_mps": params.Num(99)}}, "out of range"},
	} {
		if _, err := spec.Resolve(tc.sp); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Resolve(%+v) error %v, want it to mention %q", tc.sp, err, tc.want)
		}
	}
}
