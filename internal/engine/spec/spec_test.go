package spec_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/spec"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		sp      spec.JobSpec
		wantErr string // "" means valid
	}{
		{"minimal figure", spec.JobSpec{Kind: spec.KindFigure, ID: "fig06", Seed: 1}, ""},
		{"scenario with overrides", spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 4, ShardSize: 2, KeepTrialValues: true}, ""},
		{"missing kind", spec.JobSpec{ID: "fig06"}, "missing kind"},
		{"unknown kind", spec.JobSpec{Kind: "suite", ID: "x"}, "unknown kind"},
		{"missing id", spec.JobSpec{Kind: spec.KindFigure}, "missing id"},
		{"negative trials", spec.JobSpec{Kind: spec.KindScenario, ID: "x", Trials: -1}, "negative trial count"},
		{"negative shard", spec.JobSpec{Kind: spec.KindScenario, ID: "x", ShardSize: -2}, "negative shard size"},
		{"figure trials pinned", spec.JobSpec{Kind: spec.KindFigure, ID: "fig06", Trials: 4}, "pin their trial count"},
		{"figure shard pinned", spec.JobSpec{Kind: spec.KindFigure, ID: "fig06", ShardSize: 2}, "pin their shard partition"},
		{"figure retention pinned", spec.JobSpec{Kind: spec.KindFigure, ID: "fig06", KeepTrialValues: true}, "their own retention"},
		{"inverted range", spec.JobSpec{Kind: spec.KindScenario, ID: "x", TrialRange: &spec.Range{Lo: 4, Hi: 4}}, "invalid trial range"},
		{"negative range", spec.JobSpec{Kind: spec.KindScenario, ID: "x", TrialRange: &spec.Range{Lo: -1, Hi: 4}}, "invalid trial range"},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want it to mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCanonicalHashIdentity: every way of writing the same job addresses
// the same content hash, and any parameter change addresses a different one.
func TestCanonicalHashIdentity(t *testing.T) {
	base := spec.JobSpec{Kind: spec.KindFigure, ID: "fig11", Seed: 1}

	// Decoding a sprawling-but-equal document yields the same hash.
	doc := `{"seed": 1, "trials": 0, "id": "fig11", "kind": "figure"}`
	decoded, err := spec.Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Hash() != base.Hash() {
		t.Errorf("equivalent document hashes differently:\n%s\nvs\n%s", decoded[0].Canonical(), base.Canonical())
	}

	// Round trip: Canonical() decodes back to an equal spec.
	again, err := spec.Decode(bytes.NewReader(base.Canonical()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again[0], base) {
		t.Errorf("canonical round trip changed the spec: %+v vs %+v", again[0], base)
	}

	// Every knob is identity-bearing.
	variants := []spec.JobSpec{
		{Kind: spec.KindFigure, ID: "fig12", Seed: 1},
		{Kind: spec.KindFigure, ID: "fig11", Seed: 2},
		{Kind: spec.KindScenario, ID: "fig11", Seed: 1},
		{Kind: spec.KindScenario, ID: "fig11", Seed: 1, Trials: 4},
	}
	seen := map[string]bool{base.Hash(): true}
	for _, v := range variants {
		if seen[v.Hash()] {
			t.Errorf("variant %+v collides with an earlier hash", v)
		}
		seen[v.Hash()] = true
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"":                  "empty input",
		"[]":                "no jobs",
		`{"kind":"figure"}`: "missing id",
		`{"kind":"figure","id":"fig11","trails":3}`:                 "unknown field",
		`{"kind":"figure","id":"fig11"} {"x":1}`:                    "trailing data",
		`[{"kind":"figure","id":"fig11"},{"kind":"nope","id":"x"}]`: "unknown kind",
	}
	for in, want := range cases {
		if _, err := spec.Decode(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Decode(%q) error %v, want it to mention %q", in, err, want)
		}
	}
	// A single object and a one-element array are both accepted.
	for _, in := range []string{`{"kind":"figure","id":"fig11"}`, ` [ {"kind":"figure","id":"fig11"} ] `} {
		specs, err := spec.Decode(strings.NewReader(in))
		if err != nil || len(specs) != 1 || specs[0].ID != "fig11" {
			t.Errorf("Decode(%q) = %+v, %v", in, specs, err)
		}
	}
}

func TestResolve(t *testing.T) {
	// Figures resolve onto the experiment registry with their pinned
	// parameters surfaced.
	r, err := spec.Resolve(spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials != 36 || r.ShardSize != 1 || r.Shards() != 36 {
		t.Errorf("maxrange resolved to %d trials, %d shard size, %d shards; want 36/1/36",
			r.Trials, r.ShardSize, r.Shards())
	}
	// Scenarios resolve onto the library with spec overrides applied.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 4, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials != 4 || r.ShardSize != 2 || r.Shards() != 2 {
		t.Errorf("multilat-town resolved to %d/%d/%d, want 4/2/2", r.Trials, r.ShardSize, r.Shards())
	}

	for _, tc := range []struct {
		sp   spec.JobSpec
		want string
	}{
		{spec.JobSpec{Kind: spec.KindFigure, ID: "fig99", Seed: 1}, "unknown figure"},
		{spec.JobSpec{Kind: spec.KindScenario, ID: "nope", Seed: 1}, "unknown scenario"},
		{spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8,
			TrialRange: &spec.Range{Lo: 4, Hi: 12}}, "exceeds the job's 8 trials"},
	} {
		if _, err := spec.Resolve(tc.sp); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Resolve(%+v) error %v, want it to mention %q", tc.sp, err, tc.want)
		}
	}

	// A full-coverage trial range is the sharding no-op and resolves as a
	// full job.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8,
		TrialRange: &spec.Range{Lo: 0, Hi: 8}})
	if err != nil {
		t.Errorf("full trial range rejected: %v", err)
	}
	if r.PartialRange() != nil || r.Trials != 8 || r.TotalTrials != 8 {
		t.Errorf("full-range job resolved as partial: %+v", r)
	}

	// A proper sub-range resolves as a partial job: the range is its work,
	// the campaign's full span is retained alongside.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 8,
		TrialRange: &spec.Range{Lo: 2, Hi: 5}})
	if err != nil {
		t.Fatalf("partial trial range rejected: %v", err)
	}
	if rg := r.PartialRange(); rg == nil || rg.Lo != 2 || rg.Hi != 5 || r.Trials != 3 || r.TotalTrials != 8 {
		t.Errorf("partial job resolved to %+v (range %+v), want trials 3 of 8 over [2, 5)", r, r.PartialRange())
	}

	// Partial ranges work for multi-trial figure jobs too.
	r, err = spec.Resolve(spec.JobSpec{Kind: spec.KindFigure, ID: "maxrange", Seed: 1,
		TrialRange: &spec.Range{Lo: 30, Hi: 36}})
	if err != nil {
		t.Fatalf("figure partial range rejected: %v", err)
	}
	if r.Trials != 6 || r.TotalTrials != 36 || r.ShardSize != 1 {
		t.Errorf("maxrange partial resolved to %d/%d/%d, want 6 of 36 at shard 1", r.Trials, r.TotalTrials, r.ShardSize)
	}
}

// executeValue runs a resolved job on a bare engine runner, the way the
// unified runner would (same config derivation), without the run package
// (which spec must not depend on).
func executeValue(t *testing.T, r spec.Resolved) *spec.Value {
	t.Helper()
	runner, err := engine.NewRunner(engine.Config{
		Seed: r.Spec.Seed, Trials: r.Spec.Trials, ShardSize: r.Spec.ShardSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := engine.RunCampaign(runner, r.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRoundTripMatchesGoldenCorpus is the spec-path acceptance check: a
// figure job that goes through the full wire cycle — encode, decode,
// resolve, execute — renders byte-identically to the committed golden
// corpus at seeds 1 and 5.
func TestRoundTripMatchesGoldenCorpus(t *testing.T) {
	goldenDir := filepath.Join("..", "..", "experiments", "testdata", "golden")
	for _, id := range []string{"fig11", "fig20", "maxrange"} {
		for _, seed := range []int64{1, 5} {
			t.Run(fmt.Sprintf("%s/seed%d", id, seed), func(t *testing.T) {
				sp := spec.JobSpec{Kind: spec.KindFigure, ID: id, Seed: seed}
				decoded, err := spec.Decode(bytes.NewReader(sp.Canonical()))
				if err != nil {
					t.Fatal(err)
				}
				r, err := spec.Resolve(decoded[0])
				if err != nil {
					t.Fatal(err)
				}
				v := executeValue(t, r)
				if v.Figure == nil || v.Report != nil {
					t.Fatalf("figure job produced %+v, want only the Figure field", v)
				}
				want, err := os.ReadFile(filepath.Join(goldenDir, fmt.Sprintf("%s_seed%d.golden", id, seed)))
				if err != nil {
					t.Fatal(err)
				}
				if got := v.Figure.Render(); got != string(want) {
					t.Errorf("%s seed %d through the spec round trip diverged from golden output\n--- got ---\n%s--- want ---\n%s",
						id, seed, got, want)
				}
			})
		}
	}
}

// TestScenarioValueShape: scenario jobs fill only the Report field, and the
// spec's trial override reaches the engine.
func TestScenarioValueShape(t *testing.T) {
	r, err := spec.Resolve(spec.JobSpec{Kind: spec.KindScenario, ID: "multilat-town", Seed: 1, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := executeValue(t, r)
	if v.Report == nil || v.Figure != nil {
		t.Fatalf("scenario job produced %+v, want only the Report field", v)
	}
	if v.Report.Trials != 3 || v.Report.Seed != 1 {
		t.Errorf("report ran %d trials at seed %d, want 3 at 1", v.Report.Trials, v.Report.Seed)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(`[{"kind":"scenario","id":"multilat-town","seed":3,"trials":2}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := spec.LoadFile(path)
	if err != nil || len(specs) != 1 || specs[0].Seed != 3 {
		t.Fatalf("LoadFile = %+v, %v", specs, err)
	}
	if _, err := spec.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
}
