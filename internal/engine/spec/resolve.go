package spec

import (
	"fmt"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/params"
	"resilientloc/internal/experiments"
)

// Value is the uniform result of a spec-driven execution: exactly one field
// is set, matching the spec's kind — or Partial, for either kind, when the
// spec restricts execution to a proper trial sub-range. One concrete result
// type is what lets one runner, one cache entry shape, and one service
// response carry every campaign in the repository.
type Value struct {
	// Figure is the result of a KindFigure job.
	Figure *experiments.Result `json:"figure,omitempty"`
	// Report is the result of a KindScenario job.
	Report *engine.Report `json:"report,omitempty"`
	// Partial is the result of a job with a proper trial sub-range: the
	// serialized shard aggregates of that range, mergeable by the
	// coordinator (engine.MergePartials) into the full campaign result.
	Partial *engine.Partial `json:"partial,omitempty"`
}

// ClearExecutionMeta strips the per-invocation execution metadata (worker
// count, wall time) so a cached Value never replays the populating run's
// numbers. Figure results carry no execution metadata.
func (v *Value) ClearExecutionMeta() {
	if v.Report != nil {
		v.Report.ClearExecutionMeta()
	}
}

// SetExecutionMeta stamps the current invocation's execution metadata.
func (v *Value) SetExecutionMeta(workers int, elapsedSeconds float64) {
	if v.Report != nil {
		v.Report.SetExecutionMeta(workers, elapsedSeconds)
	}
}

// Resolved couples a validated spec with the executable campaign it names
// and the effective execution parameters the engine would use for it. The
// unified runner (internal/engine/run) executes Resolved jobs; tests may
// construct one directly around a synthetic campaign.
type Resolved struct {
	// Spec is the job description this was resolved from.
	Spec JobSpec
	// Campaign is the executable campaign, finalizing into a *Value.
	Campaign engine.Campaign[*Value]
	// Trials is the effective trial count this job executes: the campaign's
	// full count, or the range size for a partial job. Trials and ShardSize
	// are advisory metadata for scheduling and display; execution and the
	// cache key always re-derive them from Spec + Campaign (the same
	// arithmetic Resolve uses), so a hand-built Resolved with stale sizes is
	// mis-sorted, never mis-keyed.
	Trials int
	// TotalTrials is the campaign's full trial space [0, TotalTrials) —
	// equal to Trials unless the job is partial.
	TotalTrials int
	// ShardSize is the effective shard size.
	ShardSize int
	// Params is the fully-resolved operating point — every declared
	// parameter present, defaults filled — for a parameterized job, nil for
	// a param-less one. It is what cache keys embed (so a spec spelling out
	// a default shares the cache entry of one omitting it) and what job
	// summaries display.
	Params params.Map
}

// PartialRange returns the proper trial sub-range this job executes, or nil
// when the job covers the full trial space (including a TrialRange that
// spells out the full range).
func (r Resolved) PartialRange() *Range {
	rg := r.Spec.TrialRange
	if rg == nil || (rg.Lo == 0 && rg.Hi == r.TotalTrials) {
		return nil
	}
	return rg
}

// Shards returns the number of aggregation shards the job partitions into.
func (r Resolved) Shards() int {
	if r.ShardSize <= 0 {
		return 0
	}
	return (r.Trials + r.ShardSize - 1) / r.ShardSize
}

// wrapCampaign lifts a campaign of any result type into one finalizing to a
// *Value via wrap.
func wrapCampaign[R any](c engine.Campaign[R], wrap func(R) *Value) engine.Campaign[*Value] {
	return engine.Campaign[*Value]{
		Scenario:        c.Scenario,
		ShardSize:       c.ShardSize,
		FixedTrials:     c.FixedTrials,
		KeepTrialValues: c.KeepTrialValues,
		Finalize: func(rep *engine.Report) (*Value, error) {
			r, err := c.Finalize(rep)
			if err != nil {
				return nil, err
			}
			return wrap(r), nil
		},
	}
}

// Resolve validates the spec and maps it onto its registry:
// experiments.Find for figures, engine.BuildScenario for scenarios (which
// covers both the compiled-in library and the parameterized factories). The
// returned job carries the effective trial/shard parameters and the
// resolved operating point, so callers can size, order, and cache-key the
// work before running any of it.
func Resolve(s JobSpec) (Resolved, error) {
	if err := s.Validate(); err != nil {
		return Resolved{}, err
	}
	if s.AutoTrials != nil {
		// An auto spec is a driving recipe for a *sequence* of fixed-count
		// jobs, not one resolvable execution: the runner's auto loop
		// (run.ExecuteSpecContext, coord.ExecuteAuto) peels the rule off and
		// resolves each round's explicit-N spec instead. Rejecting here
		// keeps every direct consumer of Resolve — locd submissions, suite
		// batches, the coordinator's sub-jobs — from silently treating the
		// recipe as a single job.
		return Resolved{}, fmt.Errorf("spec: %s: auto_trials specs drive a round sequence; execute via the session runner or coordinator auto mode, not as one resolved job", s.ID)
	}
	var campaign engine.Campaign[*Value]
	var resolvedParams params.Map
	switch s.Kind {
	case KindFigure:
		e, ok := experiments.Find(s.ID)
		if !ok {
			return Resolved{}, fmt.Errorf("spec: unknown figure job %q", s.ID)
		}
		var c engine.Campaign[*experiments.Result]
		if len(e.Params) > 0 {
			p, err := e.Params.Resolve(s.Params)
			if err != nil {
				return Resolved{}, fmt.Errorf("spec: figure %q: %w", s.ID, err)
			}
			resolvedParams = p
			c = e.ParamCampaign(s.Seed, p)
		} else {
			if len(s.Params) > 0 {
				return Resolved{}, fmt.Errorf("spec: figure %q takes no parameters (params: %s)",
					s.ID, s.Params.Canonical())
			}
			c = e.Campaign(s.Seed)
		}
		campaign = wrapCampaign(c, func(r *experiments.Result) *Value { return &Value{Figure: r} })
	case KindScenario:
		sc, p, err := engine.BuildScenario(s.ID, s.Params)
		if err != nil {
			return Resolved{}, fmt.Errorf("spec: %w", err)
		}
		resolvedParams = p
		campaign = wrapCampaign(engine.ReportCampaign(sc), func(r *engine.Report) *Value { return &Value{Report: r} })
		campaign.KeepTrialValues = s.KeepTrialValues
	}
	// Resolve the effective execution parameters exactly as the engine will:
	// spec overrides into the config, campaign pins on top.
	runner, err := engine.NewRunner(engine.Config{Trials: s.Trials, ShardSize: s.ShardSize, Seed: s.Seed})
	if err != nil {
		return Resolved{}, fmt.Errorf("spec: %s: %w", s.ID, err)
	}
	trials, shardSize := engine.CampaignConfig(runner, campaign)
	if trials <= 0 {
		return Resolved{}, fmt.Errorf("spec: %s: no trial count configured", s.ID)
	}
	job := Resolved{Spec: s, Campaign: campaign, Trials: trials, TotalTrials: trials, ShardSize: shardSize, Params: resolvedParams}
	if r := s.TrialRange; r != nil {
		if r.Hi > trials {
			return Resolved{}, fmt.Errorf("spec: %s: trial range [%d, %d) exceeds the job's %d trials",
				s.ID, r.Lo, r.Hi, trials)
		}
		if rg := job.PartialRange(); rg != nil {
			// A partial job's work — and what its trials/progress counters
			// describe — is the range, not the full campaign.
			job.Trials = rg.Hi - rg.Lo
		}
	}
	return job, nil
}

// ResolveAll resolves every spec, failing on the first unresolvable one —
// a batch with an unknown or unrunnable job is rejected before any work
// starts.
func ResolveAll(specs []JobSpec) ([]Resolved, error) {
	jobs := make([]Resolved, len(specs))
	for i, s := range specs {
		r, err := Resolve(s)
		if err != nil {
			return nil, err
		}
		jobs[i] = r
	}
	return jobs, nil
}
