// Package spec is the declarative, wire-addressable job surface of the
// engine: a JobSpec is a JSON-serializable description of one campaign
// execution — which experiment or library scenario, at which seed, with
// which trial/shard overrides — that can be validated, canonically encoded,
// content-addressed, and resolved onto the in-process registries
// (internal/experiments and the engine scenario library).
//
// Everything that executes campaigns goes through specs: both CLIs compile
// their flags into specs (and accept ready-made spec files via -spec), and
// the locd service accepts spec batches over HTTP. A spec's canonical
// encoding doubles as its identity: Hash() is the job ID locd serves, and —
// because the spec carries exactly the inputs a campaign result is a pure
// function of — identical specs are the same job, which is what makes
// submissions deduplicable across processes and machines.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"resilientloc/internal/engine/params"
)

// Job kinds: which registry the spec's ID names.
const (
	// KindFigure runs a paper-figure reproduction from internal/experiments.
	KindFigure = "figure"
	// KindScenario runs a library scenario from the engine scenario library.
	KindScenario = "scenario"
)

// Range is a half-open trial range [Lo, Hi). It is the suite-sharding
// coordination record: the coordinator (internal/engine/coord) hands each
// worker process a sub-range of one spec's trials as its own
// content-addressed job, and merges the returned shard aggregates into the
// full result. A spec carrying a proper sub-range resolves to a partial
// job whose result is a serialized engine.Partial rather than a finalized
// figure or report; a range covering the whole trial space is equivalent to
// omitting it (though the two hash to distinct job IDs).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// JobSpec declares one campaign execution. The zero values of the optional
// fields mean "use the campaign's defaults", so the minimal useful spec is
// {"kind": "figure", "id": "fig06", "seed": 1}.
type JobSpec struct {
	// Kind selects the registry: KindFigure or KindScenario.
	Kind string `json:"kind"`
	// ID names the job within its registry: an experiment ID ("fig06",
	// "maxrange") or a library scenario name ("multilat-town").
	ID string `json:"id"`
	// Seed is the base seed; results are deterministic per seed.
	Seed int64 `json:"seed"`
	// Trials overrides the scenario's default trial count when positive.
	// Figure jobs pin their trial structure and reject an override.
	Trials int `json:"trials,omitempty"`
	// ShardSize overrides the engine's default shard partition when
	// positive. Like Trials it is a cache-key ingredient; figure jobs pin
	// their own partitions and reject an override.
	ShardSize int `json:"shard_size,omitempty"`
	// KeepTrialValues retains per-trial metric values for the campaign's
	// Finalize step. Retained values feed result assembly only; they are
	// not part of the serialized result, which is also why retention jobs
	// bypass the result cache (a hit could not restore them).
	KeepTrialValues bool `json:"keep_trial_values,omitempty"`
	// TrialRange optionally restricts execution to a trial sub-range for
	// distributed suite sharding; see Range.
	TrialRange *Range `json:"trial_range,omitempty"`
	// Params selects one operating point of a parameterized workload — a
	// scenario factory (engine.Factories) or a parameterized experiment.
	// Omitted params take the schema's defaults; names and values are
	// validated against the schema at Resolve time. The map encodes with
	// sorted keys and shortest-form numbers (see params.Map), so the
	// operating point is part of the spec's content address; nil and empty
	// are both omitted, keeping every pre-params spec's hash unchanged.
	Params params.Map `json:"params,omitempty"`
	// AutoTrials switches a scenario job to confidence-interval-driven
	// stopping instead of a fixed trial count; see AutoTrials. An auto spec
	// is a driver recipe, not a single execution: it never resolves or
	// hashes as one job. The executor (run.ExecuteSpecContext locally,
	// coord.ExecuteAuto distributed) runs a sequence of fixed-N rounds —
	// each an ordinary spec whose hash and cache key are exactly those of
	// an explicit "trials": N submission, so rounds share cache entries
	// with explicit runs and the prefix-reuse planner turns each round into
	// an increment over the last. Mutually exclusive with Trials,
	// TrialRange, and KeepTrialValues; omitted for fixed-count specs,
	// keeping every earlier spec's hash unchanged.
	AutoTrials *AutoTrials `json:"auto_trials,omitempty"`
}

// AutoTrials is the CI-driven stopping rule of an auto-trials spec: keep
// doubling the trial count (persisting every round through the result
// cache, so later runs extend rather than restart) until the 95%
// confidence-interval half-width of the job's headline metric falls below
// CITarget.
type AutoTrials struct {
	// CITarget is the target 95% CI half-width on the stopping metric, in
	// the metric's own units. Must be positive.
	CITarget float64 `json:"ci_target"`
	// Metric names the stopping metric; empty selects the report's headline
	// (first-recorded) metric.
	Metric string `json:"metric,omitempty"`
	// MaxTrials caps the growth; 0 means DefaultAutoMaxTrials. The run also
	// stops early when the scenario's own trial ceiling (engine
	// MaxTrials clamping) makes further requests ineffective.
	MaxTrials int `json:"max_trials,omitempty"`
}

// DefaultAutoMaxTrials bounds auto-trials growth when the spec does not cap
// it: a stopping rule that cannot be met must terminate, not run forever.
const DefaultAutoMaxTrials = 1 << 20

// Cap returns the effective trial ceiling of the stopping rule.
func (a *AutoTrials) Cap() int {
	if a.MaxTrials > 0 {
		return a.MaxTrials
	}
	return DefaultAutoMaxTrials
}

// NextTrials returns the trial count of the round after one that ran
// effective trials: doubled, clamped to Cap.
func (a *AutoTrials) NextTrials(effective int) int {
	next := effective * 2
	if next < 1 {
		next = 1
	}
	if c := a.Cap(); next > c {
		next = c
	}
	return next
}

// Validate checks the spec's self-contained invariants (registry lookups
// happen in Resolve).
func (s JobSpec) Validate() error {
	switch s.Kind {
	case KindFigure, KindScenario:
	case "":
		return fmt.Errorf("spec: missing kind (want %q or %q)", KindFigure, KindScenario)
	default:
		return fmt.Errorf("spec: unknown kind %q (want %q or %q)", s.Kind, KindFigure, KindScenario)
	}
	if s.ID == "" {
		return fmt.Errorf("spec: missing id")
	}
	if s.Trials < 0 {
		return fmt.Errorf("spec: %s: negative trial count %d", s.ID, s.Trials)
	}
	if s.ShardSize < 0 {
		return fmt.Errorf("spec: %s: negative shard size %d", s.ID, s.ShardSize)
	}
	if s.Kind == KindFigure {
		// A figure's trial structure (trial count, shard partition, retained
		// values) is part of its definition; silently ignoring an override
		// would make equal-looking specs hash differently while producing
		// the same bytes, so reject instead.
		switch {
		case s.Trials != 0:
			return fmt.Errorf("spec: %s: figure jobs pin their trial count; drop \"trials\"", s.ID)
		case s.ShardSize != 0:
			return fmt.Errorf("spec: %s: figure jobs pin their shard partition; drop \"shard_size\"", s.ID)
		case s.KeepTrialValues:
			return fmt.Errorf("spec: %s: figure jobs declare their own retention; drop \"keep_trial_values\"", s.ID)
		}
	}
	if r := s.TrialRange; r != nil {
		if r.Lo < 0 || r.Hi <= r.Lo {
			return fmt.Errorf("spec: %s: invalid trial range [%d, %d)", s.ID, r.Lo, r.Hi)
		}
	}
	if a := s.AutoTrials; a != nil {
		// Auto mode owns the trial count round by round, so every other way
		// of pinning or slicing the trial space conflicts with it — and
		// retention jobs bypass the cache the rounds accumulate through.
		switch {
		case s.Kind != KindScenario:
			return fmt.Errorf("spec: %s: auto_trials applies to scenario jobs only", s.ID)
		case s.Trials != 0:
			return fmt.Errorf("spec: %s: auto_trials and \"trials\" conflict; drop one", s.ID)
		case s.TrialRange != nil:
			return fmt.Errorf("spec: %s: auto_trials and \"trial_range\" conflict; drop one", s.ID)
		case s.KeepTrialValues:
			return fmt.Errorf("spec: %s: auto_trials needs the result cache, which keep_trial_values bypasses; drop one", s.ID)
		case !(a.CITarget > 0) || math.IsInf(a.CITarget, 0):
			// The negated comparison also rejects NaN, and non-finite targets
			// would break the spec's canonical JSON encoding.
			return fmt.Errorf("spec: %s: auto_trials.ci_target must be a positive finite number, got %v", s.ID, a.CITarget)
		case a.MaxTrials < 0:
			return fmt.Errorf("spec: %s: negative auto_trials.max_trials %d", s.ID, a.MaxTrials)
		}
	}
	// Schema checks (names, bounds) happen in Resolve, where the registry
	// is known; here only the value-level invariant that keeps Canonical
	// total: every param must be encodable (JSON can't produce NaN/Inf, but
	// in-process constructed specs could).
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("spec: %s: %w", s.ID, err)
	}
	return nil
}

// Canonical returns the spec's canonical encoding: the compact JSON of the
// struct with optional zero-value fields omitted, so every way of writing
// the same job ("trials": 0, field order, whitespace) encodes to the same
// bytes. The encoding is what Hash addresses and what decodes back to an
// equal spec.
func (s JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// JobSpec is strings, integers, a flat pointer struct, and a params
		// map whose only marshal failures (zero or non-finite values) are
		// rejected by Validate — unreachable on a validated spec.
		panic(fmt.Sprintf("spec: marshal: %v", err))
	}
	return b
}

// Hash returns the spec's content address — the hex SHA-256 of its
// canonical encoding. Identical specs are the same job: locd uses this as
// the wire-visible job ID and deduplicates submissions on it.
func (s JobSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// Decode reads one spec or a JSON array of specs from r. Unknown fields are
// rejected (a typoed knob must not silently become a default), every spec is
// validated, and an empty list is an error.
func Decode(r io.Reader) ([]JobSpec, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spec: read: %w", err)
	}
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("spec: empty input")
	}
	var specs []JobSpec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if trimmed[0] == '[' {
		err = dec.Decode(&specs)
	} else {
		var one JobSpec
		if err = dec.Decode(&one); err == nil {
			specs = []JobSpec{one}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the spec document")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("spec: no jobs in input")
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("spec %d/%d: %w", i+1, len(specs), err)
		}
	}
	return specs, nil
}

// LoadFile decodes a spec file (one spec object or an array).
func LoadFile(path string) ([]JobSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	defer f.Close()
	specs, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

// LoadFileOfKind decodes a spec file and requires every spec to be of one
// kind — the shared guard for single-kind front-ends (cmd/experiments runs
// figure specs, cmd/scenarios scenario specs; locd runs both).
func LoadFileOfKind(path, kind string) ([]JobSpec, error) {
	specs, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if s.Kind != kind {
			return nil, fmt.Errorf("%s: spec %s has kind %q; this command runs %s specs (use the other CLI or locd)",
				path, s.ID, s.Kind, kind)
		}
	}
	return specs, nil
}
