package spec_test

import (
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/spec"
)

func TestSweepExpandOrderAndContent(t *testing.T) {
	sw := spec.Sweep{
		Template: spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint", Seed: 1,
			Params: params.Map{"epoch_s": params.Num(4)}},
		Grid: map[string][]params.Value{
			"speed_mps": {params.Num(0), params.Num(2.5), params.Num(5)},
		},
		Seeds: []int64{1, 5},
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded %d specs, want 6", len(specs))
	}
	// Seeds outermost, then the axis in order: (1,0) (1,2.5) (1,5) (5,0) ...
	for i, want := range []struct {
		seed  int64
		speed float64
	}{{1, 0}, {1, 2.5}, {1, 5}, {5, 0}, {5, 2.5}, {5, 5}} {
		s := specs[i]
		if s.Seed != want.seed || s.Params.Float("speed_mps") != want.speed {
			t.Errorf("point %d: seed %d speed %v, want seed %d speed %v",
				i, s.Seed, s.Params.Float("speed_mps"), want.seed, want.speed)
		}
		if s.Params.Float("epoch_s") != 4 {
			t.Errorf("point %d lost the template param: %s", i, s.Params.Canonical())
		}
	}
	// Expansion is deterministic: a second expansion hashes identically.
	again, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if specs[i].Hash() != again[i].Hash() {
			t.Errorf("point %d hash differs across expansions", i)
		}
	}
	// The template document is untouched by expansion.
	if len(sw.Template.Params) != 1 {
		t.Errorf("expansion mutated the template params: %s", sw.Template.Params.Canonical())
	}
}

func TestSweepExpandMultiAxis(t *testing.T) {
	sw := spec.Sweep{
		Template: spec.JobSpec{Kind: spec.KindScenario, ID: "ranging-mixed-env", Seed: 3},
		Grid: map[string][]params.Value{
			"env_b":         {params.Str("pavement"), params.Str("urban")},
			"boundary_frac": {params.Num(0.25), params.Num(0.5), params.Num(0.75)},
		},
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded %d specs, want 6", len(specs))
	}
	// Sorted axis order: boundary_frac (alphabetically first) varies
	// slowest, env_b fastest.
	wantFrac := []float64{0.25, 0.25, 0.5, 0.5, 0.75, 0.75}
	wantEnv := []string{"pavement", "urban", "pavement", "urban", "pavement", "urban"}
	for i, s := range specs {
		if s.Seed != 3 {
			t.Errorf("point %d seed %d, want the template's 3", i, s.Seed)
		}
		if s.Params.Float("boundary_frac") != wantFrac[i] || s.Params.Str("env_b") != wantEnv[i] {
			t.Errorf("point %d is %s, want frac %v env %s", i, s.Params.Canonical(), wantFrac[i], wantEnv[i])
		}
	}
	// All six points must resolve (the registry accepts them).
	if _, err := spec.ResolveAll(specs); err != nil {
		t.Errorf("expanded points failed to resolve: %v", err)
	}
}

func TestSweepExpandErrors(t *testing.T) {
	template := spec.JobSpec{Kind: spec.KindScenario, ID: "mobility-waypoint", Seed: 1,
		Params: params.Map{"speed_mps": params.Num(1)}}
	cases := []struct {
		name string
		sw   spec.Sweep
		want string
	}{
		{"empty axis", spec.Sweep{Template: template,
			Grid: map[string][]params.Value{"epoch_s": {}}}, "has no values"},
		{"template collision", spec.Sweep{Template: template,
			Grid: map[string][]params.Value{"speed_mps": {params.Num(2)}}}, "collides with a template param"},
		{"invalid point", spec.Sweep{Template: spec.JobSpec{Kind: "nope", ID: "x"},
			Grid: map[string][]params.Value{"a": {params.Num(1)}}}, "unknown kind"},
	}
	for _, tc := range cases {
		if _, err := tc.sw.Expand(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want it to mention %q", tc.name, err, tc.want)
		}
	}

	// Over-cap grids are rejected before any allocation balloons.
	big := make([]params.Value, 70)
	for i := range big {
		big[i] = params.Num(float64(i))
	}
	sw := spec.Sweep{Template: spec.JobSpec{Kind: spec.KindScenario, ID: "x", Seed: 1},
		Grid: map[string][]params.Value{"a": big, "b": big}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("4900-point grid accepted: %v", err)
	}
}

func TestDecodeSweep(t *testing.T) {
	doc := `{
	  "template": {"kind": "scenario", "id": "mobility-waypoint", "seed": 1},
	  "grid": {"speed_mps": [0, 1, 2.5]},
	  "seeds": [1, 5]
	}`
	sw, err := spec.DecodeSweep(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Errorf("expanded %d specs, want 6", len(specs))
	}
	for in, want := range map[string]string{
		`{"template": {"kind":"scenario","id":"x"}, "gird": {}}`: "unknown field",
		`{"template": {"kind":"scenario","id":"x"}} trailing`:    "trailing data",
		`not json`: "decode",
	} {
		if _, err := spec.DecodeSweep(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("DecodeSweep(%q) error %v, want it to mention %q", in, err, want)
		}
	}
}

// TestExampleSweepFilesExpand: every shipped .sweep.json example loads,
// expands, and resolves — the documented entry point must never rot.
func TestExampleSweepFilesExpand(t *testing.T) {
	dir := filepath.Join("..", "..", "..", "examples", "specs")
	files, err := filepath.Glob(filepath.Join(dir, "*.sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .sweep.json examples found")
	}
	for _, f := range files {
		sw, err := spec.LoadSweepFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		specs, err := sw.Expand()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(specs) < 2 {
			t.Errorf("%s expanded to %d specs; examples should sweep something", f, len(specs))
		}
		if _, err := spec.ResolveAll(specs); err != nil {
			t.Errorf("%s: expanded specs do not resolve: %v", f, err)
		}
	}
}
