// Package engine is the concurrent scenario-execution subsystem: it runs
// parameterized Monte Carlo experiments (Scenarios) by sharding independent
// trials across a goroutine worker pool while keeping every result
// bit-for-bit reproducible.
//
// Determinism rests on two invariants:
//
//  1. Per-trial RNG derivation. Each trial gets its own rand.Rand seeded by
//     a pure function of (scenario seed, trial index) — DeriveSeed by
//     default, or the scenario's SeedFn when an experiment needs
//     paper-faithful seeding. No trial ever shares generator state with
//     another, so the schedule cannot leak into the results.
//
//  2. Shard-ordered aggregation. Trials are grouped into fixed-size shards
//     (independent of the worker count); each shard accumulates its metrics
//     into streaming aggregators (stats.Online + stats.QuantileSketch), and
//     shards are merged in ascending shard order after all workers finish.
//     Running with 1 worker or 64 therefore produces byte-identical
//     aggregates — every metric, quantile, series, and per-trial value;
//     only Report.Workers and Report.ElapsedSeconds reflect the actual run.
package engine

import (
	"fmt"
	"math/rand"

	"resilientloc/internal/scratch"
)

// DeriveSeed maps (scenario seed, trial index) to an independent per-trial
// seed using a splitmix64 finalizer, so consecutive trial indices yield
// uncorrelated generator streams.
func DeriveSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// TrialFunc executes one independent trial. It must derive all randomness
// from t.RNG and report measurements through t.Record / t.RecordSeries; it
// must not mutate state shared with other trials.
type TrialFunc func(t *T) error

// Scenario is a declarative description of a parameterized Monte Carlo
// experiment: what one trial does, how many trials make a run, and how
// trial seeds are derived.
type Scenario struct {
	Name        string
	Description string

	// Trials is the default trial count, used when the runner's Config
	// leaves Trials at 0.
	Trials int

	// MaxTrials, when positive, caps the effective trial count regardless
	// of the runner's Config. Scenarios whose trials index a fixed
	// parameter list (e.g. one trial per sweep distance) set this so a
	// larger -trials override cannot run them off the end of the list.
	MaxTrials int

	// SeedFn optionally overrides DeriveSeed. Figure reproductions use this
	// to keep the paper-faithful seed arithmetic of the original serial
	// loops, which makes porting them onto the engine output-preserving.
	SeedFn func(scenarioSeed int64, trial int) int64

	// Run executes one trial.
	Run TrialFunc

	// ShardInit, when set, is called once per shard (and once per
	// distributed raw trial range) before any of its trials run; the value
	// it returns is exposed to every trial as T.ShardData. It exists to
	// hoist per-scenario invariants — synthesized chirp templates,
	// environment tables — out of the trial loop. It MUST be a pure,
	// deterministic function of the scenario (no RNG, no trial index, no
	// mutable shared state): the runner calls it once per shard, so any
	// nondeterminism would break the worker-count independence of results.
	ShardInit func() any
}

// Validate checks that the scenario is runnable.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("engine: scenario has no name")
	}
	if s.Run == nil {
		return fmt.Errorf("engine: scenario %s has no trial function", s.Name)
	}
	if s.Trials < 0 {
		return fmt.Errorf("engine: scenario %s: negative default trial count", s.Name)
	}
	if s.MaxTrials < 0 {
		return fmt.Errorf("engine: scenario %s: negative trial cap", s.Name)
	}
	return nil
}

// seedFor returns the RNG seed for one trial.
func (s Scenario) seedFor(seed int64, trial int) int64 {
	if s.SeedFn != nil {
		return s.SeedFn(seed, trial)
	}
	return DeriveSeed(seed, trial)
}

// T is the per-trial context handed to a TrialFunc: the trial's private,
// deterministically seeded generator plus the metric recording surface.
type T struct {
	// Trial is this trial's index in [0, Trials).
	Trial int
	// RNG is the trial's private generator. All randomness must flow
	// through it (or through samplers built on it).
	RNG *rand.Rand
	// ShardData is the value the scenario's ShardInit hook returned for
	// this trial's shard (nil when the scenario has no ShardInit, or when
	// the T was built outside the runner). It is shared by every trial in
	// the shard and must be treated as read-only.
	ShardData any

	scalars []sample
	series  []seriesSample
	output  any
	ws      *scratch.Arena
}

// Scratch returns the shard worker's scratch arena. Buffers borrowed from
// it are valid only until the trial returns — the runner releases the arena
// between trials — so nothing reachable from Record/RecordSeries/Keep values
// may alias them (both Record methods copy, so recording is always safe).
// Outside the runner (unit tests calling a TrialFunc directly) the arena is
// nil, which every arena method treats as plain allocation.
func (t *T) Scratch() *scratch.Arena { return t.ws }

type sample struct {
	name  string
	value float64
}

type seriesSample struct {
	name   string
	values []float64
}

// Record reports one scalar sample of the named metric. A trial may record
// the same metric any number of times (e.g. once per measurement); every
// sample feeds the metric's aggregate, and the last one recorded is the
// trial's value in Report.TrialScalars.
func (t *T) Record(name string, v float64) {
	t.scalars = append(t.scalars, sample{name: name, value: v})
}

// RecordSeries reports an indexed series (e.g. an optimizer's objective
// history). Series are aggregated pointwise across trials, so every trial
// of a scenario must record a series of the same length under a given name;
// pad shorter histories before recording.
func (t *T) RecordSeries(name string, values []float64) {
	t.series = append(t.series, seriesSample{name: name, values: append([]float64(nil), values...)})
}

// Keep retains an arbitrary per-trial output value, surfaced (only under
// Config.KeepTrialValues) as Report.TrialOutputs[t.Trial]. Campaigns whose
// trials build structured results — e.g. a whole figure Result — hand them
// to their Finalize step this way. Calling Keep again replaces the value.
func (t *T) Keep(v any) {
	t.output = v
}
