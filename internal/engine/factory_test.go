package engine

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/params"
)

var updateFactoryGolden = flag.Bool("update", false, "rewrite the factory-workload golden reports")

func TestFactoriesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Factories() {
		if f.Name == "" || f.Description == "" {
			t.Errorf("factory %+v missing name or description", f.Name)
		}
		if seen[f.Name] {
			t.Errorf("duplicate factory name %q", f.Name)
		}
		seen[f.Name] = true
		if _, ok := Find(f.Name); ok {
			t.Errorf("factory %q collides with a library scenario name", f.Name)
		}
		if _, ok := FindFactory(f.Name); !ok {
			t.Errorf("FindFactory(%q) failed", f.Name)
		}
		if err := f.Params.SelfCheck(); err != nil {
			t.Errorf("factory %q schema: %v", f.Name, err)
		}
		if len(f.Params) == 0 {
			t.Errorf("factory %q declares no parameters", f.Name)
		}
		// The default operating point must build and validate.
		s, resolved, err := BuildScenario(f.Name, nil)
		if err != nil {
			t.Errorf("factory %q default build: %v", f.Name, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("factory %q default scenario invalid: %v", f.Name, err)
		}
		if len(resolved) != len(f.Params) {
			t.Errorf("factory %q resolved %d params, schema declares %d", f.Name, len(resolved), len(f.Params))
		}
	}
	if _, ok := FindFactory("nope"); ok {
		t.Error("FindFactory accepted unknown name")
	}
}

func TestBuildScenarioErrors(t *testing.T) {
	if _, _, err := BuildScenario("no-such-scenario", nil); err == nil {
		t.Error("unknown name accepted")
	}
	// Library instances are fixed points — params must be rejected by name.
	_, _, err := BuildScenario("multilat-town", params.Map{"drop": params.Num(3)})
	if err == nil || !strings.Contains(err.Error(), "takes no parameters") {
		t.Errorf("library instance with params: got %v", err)
	}
	// Factory param validation errors carry the scenario and param names.
	_, _, err = BuildScenario("ranging-noise", params.Map{"delta_db": params.Num(99)})
	if err == nil || !strings.Contains(err.Error(), "delta_db") || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range param: got %v", err)
	}
	_, _, err = BuildScenario("ranging-noise", params.Map{"bogus": params.Num(1)})
	if err == nil || !strings.Contains(err.Error(), `unknown parameter "bogus"`) {
		t.Errorf("unknown param: got %v", err)
	}
	_, _, err = BuildScenario("maxrange", params.Map{"env": params.Str("moon")})
	if err == nil || !strings.Contains(err.Error(), "not one of") {
		t.Errorf("bad enum: got %v", err)
	}
}

// TestFactoryPointsMatchLegacyConstructors pins the tentpole's compatibility
// claim: a param-expressed operating point is byte-identical to the
// compiled-in constructor it replaces.
func TestFactoryPointsMatchLegacyConstructors(t *testing.T) {
	cases := []struct {
		factory string
		p       params.Map
		legacy  Scenario
	}{
		{"ranging-noise", params.Map{"delta_db": params.Num(6)}, NoiseSweep(6)},
		{"multilat-dropout", params.Map{"drop": params.Num(6)}, AnchorDropout(6)},
		{"multilat-grid", nil, LargeGrid(14, 14)},
	}
	for _, c := range cases {
		t.Run(c.factory, func(t *testing.T) {
			built, _, err := BuildScenario(c.factory, c.p)
			if err != nil {
				t.Fatal(err)
			}
			if built.Name != c.legacy.Name {
				t.Fatalf("factory built %q, legacy is %q", built.Name, c.legacy.Name)
			}
			cfg := Config{Workers: 2, Trials: 4, Seed: 7}
			a := mustRun(t, cfg, built)
			b := mustRun(t, cfg, c.legacy)
			if !sameReport(a, b) {
				t.Errorf("factory point diverges from legacy constructor %q", c.legacy.Name)
			}
		})
	}
}

// TestMobilitySpeedDegrades: the new workload's physics — measurements taken
// mid-walk at higher speed must hurt accuracy relative to a static network.
func TestMobilitySpeedDegrades(t *testing.T) {
	cfg := Config{Workers: 0, Trials: 6, Seed: 9}
	still := mustRun(t, cfg, MobilityWaypoint(0, 4))
	fast := mustRun(t, cfg, MobilityWaypoint(5, 4))
	eStill, ok := still.Metric("avg_error_m")
	if !ok {
		t.Fatal("static run recorded no avg_error_m")
	}
	eFast, ok := fast.Metric("avg_error_m")
	if !ok {
		t.Fatal("fast run recorded no avg_error_m")
	}
	if eFast.Mean <= eStill.Mean {
		t.Errorf("5 m/s motion did not degrade accuracy: %.3f m -> %.3f m", eStill.Mean, eFast.Mean)
	}
	if eStill.Mean > 2 {
		t.Errorf("static mobility run avg error %.2f m, want town-like (< 2 m)", eStill.Mean)
	}
}

// TestMixedEnvRuns: the straddling-grid workload produces readings from both
// sides of the boundary and town-like error statistics.
func TestMixedEnvRuns(t *testing.T) {
	s, _, err := BuildScenario("ranging-mixed-env", params.Map{"boundary_frac": params.Num(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, Config{Workers: 4, Trials: 2, Seed: 3}, s)
	frac, ok := rep.Metric("env_a_pair_frac")
	if !ok || frac.Mean <= 0.1 || frac.Mean >= 0.9 {
		t.Errorf("env_a_pair_frac %.2f, want a genuine split", frac.Mean)
	}
	if n, ok := rep.Metric("readings"); !ok || n.Mean < 50 {
		t.Errorf("readings %.0f, want a populated campaign", n.Mean)
	}
	if med, ok := rep.Metric("median_abs_error_m"); !ok || med.Mean > 1 {
		t.Errorf("median abs error %.3f m, want sub-meter", med.Mean)
	}
}

func factoryGoldenPath(name string, seed int64) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_seed%d.golden", name, seed))
}

// TestGoldenFactoryWorkloads pins the new parameterized workloads at seeds 1
// and 5 across worker counts, exactly like the figure corpus: the golden
// bytes are the serial run's JSON report with execution metadata cleared.
func TestGoldenFactoryWorkloads(t *testing.T) {
	points := []struct {
		factory string
		p       params.Map
	}{
		{"mobility-waypoint", params.Map{"speed_mps": params.Num(1.5), "epoch_s": params.Num(4)}},
		{"ranging-mixed-env", nil},
	}
	for _, pt := range points {
		for _, seed := range []int64{1, 5} {
			for _, workers := range []int{1, 8} {
				if *updateFactoryGolden && workers != 1 {
					continue // goldens are defined by the serial run
				}
				t.Run(fmt.Sprintf("%s/seed%d/workers%d", pt.factory, seed, workers), func(t *testing.T) {
					s, _, err := BuildScenario(pt.factory, pt.p)
					if err != nil {
						t.Fatal(err)
					}
					rep := mustRun(t, Config{Workers: workers, Seed: seed}, s)
					rep.ClearExecutionMeta()
					got, err := json.MarshalIndent(rep, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					path := factoryGoldenPath(pt.factory, seed)
					if *updateFactoryGolden {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file (regenerate with -update): %v", err)
					}
					if string(got) != string(want) {
						t.Errorf("%s seed %d workers %d diverged from golden report\n--- got ---\n%s--- want ---\n%s",
							pt.factory, seed, workers, got, want)
					}
				})
			}
		}
	}
}
