package engine

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"resilientloc/internal/obs"
	"resilientloc/internal/scratch"
	"resilientloc/internal/stats"
)

// Engine telemetry. Handles are resolved once at init so the per-shard hot
// path touches only atomics; spans cost nothing unless the caller's context
// carries a tracer (obs.Start returns nil then). None of it touches the
// result path, so golden outputs are byte-identical with telemetry on.
var (
	obsTrials     = obs.Default().Counter("engine_trials_total")
	obsShards     = obs.Default().Counter("engine_shards_total")
	obsShardSec   = obs.Default().Histogram("engine_shard_seconds", obs.DefLatencyBuckets)
	obsBudgetWait = obs.Default().Histogram("engine_budget_wait_seconds", obs.DefLatencyBuckets)
)

// DefaultShardSize is the number of consecutive trials aggregated into one
// shard. The shard partition depends only on the trial count — never on the
// worker count — which is what makes parallel runs reproduce serial ones.
const DefaultShardSize = 8

// Config parameterizes a Runner.
type Config struct {
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// Trials overrides the scenario's default trial count when positive.
	Trials int
	// Seed is the scenario seed every per-trial seed is derived from.
	Seed int64
	// ShardSize overrides DefaultShardSize when positive. Aggregates are
	// a deterministic function of (seed, trials, shard size) only.
	ShardSize int
	// KeepTrialValues retains per-trial metric values (Report.TrialScalars,
	// Report.TrialSeries, Report.TrialOutputs) in addition to the streaming
	// aggregates. Figure reproductions use this when they need trial-ordered
	// data.
	KeepTrialValues bool
	// Progress, when non-nil, is called after each shard finishes with the
	// cumulative number of completed trials and the total. Calls are
	// serialized but arrive in shard-completion order, which depends on
	// scheduling; done is monotonically non-decreasing across calls.
	Progress func(done, total int)
	// Budget, when non-nil, is a worker-slot pool this run shares with
	// other concurrently running Runners: each worker acquires one slot per
	// shard and releases it when the shard finishes, so overlapped campaigns
	// together stay within the budget instead of multiplying worker pools.
	// Nil means unbudgeted (the run's own Workers count is the only limit).
	Budget *Budget
}

// EffectiveTrials resolves the trial count one Run of s would execute: the
// Config override when positive, else the scenario default, capped by the
// scenario's MaxTrials. Cache keys are derived from this resolved value.
func (c Config) EffectiveTrials(s Scenario) int {
	trials := c.Trials
	if trials == 0 {
		trials = s.Trials
	}
	if s.MaxTrials > 0 && trials > s.MaxTrials {
		trials = s.MaxTrials
	}
	return trials
}

// EffectiveShardSize resolves the shard size a Run would use.
func (c Config) EffectiveShardSize() int {
	if c.ShardSize > 0 {
		return c.ShardSize
	}
	return DefaultShardSize
}

// Runner executes scenarios by sharding their trials across a worker pool.
type Runner struct {
	cfg Config
}

// NewRunner validates cfg and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("engine: NewRunner: negative worker count %d", cfg.Workers)
	}
	if cfg.Trials < 0 {
		return nil, fmt.Errorf("engine: NewRunner: negative trial count %d", cfg.Trials)
	}
	if cfg.ShardSize < 0 {
		return nil, fmt.Errorf("engine: NewRunner: negative shard size %d", cfg.ShardSize)
	}
	return &Runner{cfg: cfg}, nil
}

// MetricSummary aggregates every sample of one scalar metric across a run.
// Quantiles come from the merged stats.QuantileSketch and are accurate to
// its relative error; the moments come from the merged stats.Online.
type MetricSummary struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// SeriesSummary is the pointwise mean of a recorded series across trials.
type SeriesSummary struct {
	Name   string    `json:"name"`
	Trials int64     `json:"trials"`
	Mean   []float64 `json:"mean"`
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario       string          `json:"scenario"`
	Seed           int64           `json:"seed"`
	Trials         int             `json:"trials"`
	Workers        int             `json:"workers"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Metrics        []MetricSummary `json:"metrics"`
	Series         []SeriesSummary `json:"series,omitempty"`

	// TrialScalars maps a metric name to its last recorded value per trial
	// (NaN where a trial recorded none); TrialSeries likewise holds each
	// trial's recorded series (nil where absent); TrialOutputs holds each
	// trial's T.Keep value (nil where none was kept). All three are
	// populated only under Config.KeepTrialValues and are excluded from
	// JSON.
	TrialScalars map[string][]float64   `json:"-"`
	TrialSeries  map[string][][]float64 `json:"-"`
	TrialOutputs []any                  `json:"-"`
}

// ClearExecutionMeta zeroes the fields describing one physical execution
// (worker count, wall time) rather than the deterministic aggregate. The
// result cache strips them before storing, so a cache hit can never replay
// the execution metadata of the run that populated the entry.
func (r *Report) ClearExecutionMeta() {
	r.Workers = 0
	r.ElapsedSeconds = 0
}

// SetExecutionMeta stamps the execution metadata of the current invocation.
func (r *Report) SetExecutionMeta(workers int, elapsedSeconds float64) {
	r.Workers = workers
	r.ElapsedSeconds = elapsedSeconds
}

// WriteSummary renders the report's text shape — header (with the
// caller-supplied execution descriptor, e.g. "8 workers, 0.52s" or
// "cached"), metric table, and series lines — shared by every
// report-printing CLI so the format cannot drift between them.
func (r *Report) WriteSummary(w io.Writer, how string) {
	fmt.Fprintf(w, "== %s: %d trials, seed %d, %s ==\n", r.Scenario, r.Trials, r.Seed, how)
	fmt.Fprintf(w, "  %-22s %7s %10s %10s %10s %10s %10s\n",
		"metric", "count", "mean", "std", "p50", "p90", "max")
	for _, m := range r.Metrics {
		fmt.Fprintf(w, "  %-22s %7d %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			m.Name, m.Count, m.Mean, m.StdDev, m.P50, m.P90, m.Max)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "  series %s: %d points (pointwise mean over %d trials)\n",
			s.Name, len(s.Mean), s.Trials)
	}
}

// Metric returns the summary of the named metric, if present.
func (r *Report) Metric(name string) (MetricSummary, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSummary{}, false
}

// scalarAgg is one metric's streaming state within a shard.
type scalarAgg struct {
	online stats.Online
	sketch *stats.QuantileSketch
}

func newScalarAgg() *scalarAgg {
	sk, err := stats.NewQuantileSketch(stats.DefaultSketchAlpha)
	if err != nil {
		panic(err) // DefaultSketchAlpha is always valid
	}
	return &scalarAgg{sketch: sk}
}

func (a *scalarAgg) add(v float64) {
	if math.IsNaN(v) {
		return
	}
	a.online.Add(v)
	a.sketch.Add(v)
}

// seriesAgg is one series metric's pointwise streaming state.
type seriesAgg struct {
	points []stats.Online
	trials int64
}

// shardAgg accumulates one shard's trials. Shards are merged in ascending
// shard order, so any metric-name discovery order and every floating-point
// reduction is independent of scheduling.
type shardAgg struct {
	lo, hi int // trial index range [lo, hi)

	scalarOrder []string
	scalars     map[string]*scalarAgg
	seriesOrder []string
	series      map[string]*seriesAgg

	trialScalars map[string][]float64   // per-trial last value, len hi-lo
	trialSeries  map[string][][]float64 // per-trial series, len hi-lo
	trialOutputs []any                  // per-trial T.Keep value, len hi-lo

	err      error // first trial error in this shard
	errTrial int
}

// runShard executes trials [lo, hi) serially and aggregates their samples.
func runShard(s Scenario, seed int64, lo, hi int, keep bool) *shardAgg {
	agg := &shardAgg{
		lo: lo, hi: hi,
		scalars: make(map[string]*scalarAgg),
		series:  make(map[string]*seriesAgg),
	}
	if keep {
		agg.trialScalars = make(map[string][]float64)
		agg.trialSeries = make(map[string][][]float64)
		agg.trialOutputs = make([]any, hi-lo)
	}
	ws := grabArena()
	defer releaseArena(ws)
	var shardData any
	if s.ShardInit != nil {
		shardData = s.ShardInit()
	}
	for trial := lo; trial < hi; trial++ {
		t := &T{Trial: trial, RNG: newTrialRNG(s, seed, trial), ShardData: shardData, ws: ws}
		err := s.Run(t)
		// Rewind the arena before folding: fold only touches the T's own
		// recorded copies, never borrowed buffers.
		ws.Release()
		if err != nil {
			agg.err = fmt.Errorf("engine: scenario %s: trial %d: %w", s.Name, trial, err)
			agg.errTrial = trial
			return agg
		}
		if err := agg.fold(t, keep); err != nil {
			agg.err = err
			agg.errTrial = trial
			return agg
		}
	}
	return agg
}

// arenaPool recycles scratch arenas across shards so a long campaign's
// steady state allocates nothing per shard either.
var arenaPool = sync.Pool{New: func() any { return scratch.New() }}

func grabArena() *scratch.Arena { return arenaPool.Get().(*scratch.Arena) }

func releaseArena(ws *scratch.Arena) {
	ws.Release()
	arenaPool.Put(ws)
}

func (agg *shardAgg) fold(t *T, keep bool) error {
	if keep && t.output != nil {
		agg.trialOutputs[t.Trial-agg.lo] = t.output
	}
	for _, smp := range t.scalars {
		a, ok := agg.scalars[smp.name]
		if !ok {
			a = newScalarAgg()
			agg.scalars[smp.name] = a
			agg.scalarOrder = append(agg.scalarOrder, smp.name)
		}
		a.add(smp.value)
		if keep {
			agg.trialScalar(smp.name)[t.Trial-agg.lo] = smp.value
		}
	}
	for _, ss := range t.series {
		a, ok := agg.series[ss.name]
		if !ok {
			a = &seriesAgg{points: make([]stats.Online, len(ss.values))}
			agg.series[ss.name] = a
			agg.seriesOrder = append(agg.seriesOrder, ss.name)
		}
		if len(ss.values) != len(a.points) {
			return fmt.Errorf("engine: series %q length %d differs from earlier trials' %d (trial %d)",
				ss.name, len(ss.values), len(a.points), t.Trial)
		}
		for i, v := range ss.values {
			a.points[i].Add(v)
		}
		a.trials++
		if keep {
			if _, ok := agg.trialSeries[ss.name]; !ok {
				agg.trialSeries[ss.name] = make([][]float64, agg.hi-agg.lo)
			}
			agg.trialSeries[ss.name][t.Trial-agg.lo] = ss.values
		}
	}
	return nil
}

// trialScalar returns (creating on demand) the per-trial value slice for a
// metric, initialized to NaN so absent trials are distinguishable.
func (agg *shardAgg) trialScalar(name string) []float64 {
	vs, ok := agg.trialScalars[name]
	if !ok {
		vs = make([]float64, agg.hi-agg.lo)
		for i := range vs {
			vs[i] = math.NaN()
		}
		agg.trialScalars[name] = vs
	}
	return vs
}

// newTrialRNG builds the trial's private deterministic generator.
func newTrialRNG(s Scenario, seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(s.seedFor(seed, trial)))
}

// Run executes the scenario under the runner's configuration. A failing
// trial stops only its own shard (the shard's later trials are skipped);
// every other shard still runs, so both the aggregates and any error are a
// pure function of the configuration. If several trials fail, the error of
// the lowest-indexed failing trial is returned.
func (r *Runner) Run(s Scenario) (*Report, error) {
	return r.RunContext(context.Background(), s)
}

// RunContext is Run with an observability context: when ctx carries a
// tracer (obs.WithTracer), the run records an engine.run span with one
// engine.shard child per shard (plus engine.budget.wait children while
// blocked on the shared budget). The context does not cancel the run — the
// engine's determinism contract has no partial-result story for
// cancellation; it is a telemetry carrier only.
func (r *Runner) RunContext(ctx context.Context, s Scenario) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trials := r.cfg.EffectiveTrials(s)
	if trials <= 0 {
		return nil, fmt.Errorf("engine: scenario %s: no trial count configured", s.Name)
	}
	shardSize := r.cfg.EffectiveShardSize()
	workers := r.cfg.Workers
	if workers == 0 {
		workers = defaultWorkers()
	}
	numShards := (trials + shardSize - 1) / shardSize
	if workers > numShards {
		workers = numShards
	}

	ctx, runSpan := obs.Start(ctx, "engine.run")
	if runSpan != nil {
		runSpan.SetAttr("scenario", s.Name).SetAttr("trials", trials).
			SetAttr("shard_size", shardSize).SetAttr("workers", workers)
	}
	defer runSpan.End()

	start := time.Now()
	aggs := make([]*shardAgg, numShards)
	runIndexed(workers, numShards, trials, func(si int) int {
		lo := si * shardSize
		hi := lo + shardSize
		if hi > trials {
			hi = trials
		}
		r.acquireBudget(ctx)
		if r.cfg.Budget != nil {
			defer r.cfg.Budget.release()
		}
		_, shardSpan := obs.Start(ctx, "engine.shard")
		if shardSpan != nil {
			shardSpan.SetAttr("shard", si).SetAttr("lo", lo).SetAttr("hi", hi)
		}
		shardStart := time.Now()
		aggs[si] = runShard(s, r.cfg.Seed, lo, hi, r.cfg.KeepTrialValues)
		obsShardSec.Observe(time.Since(shardStart).Seconds())
		obsShards.Inc()
		completed := hi - lo
		if aggs[si].err != nil {
			// The failing trial and the rest of its shard never completed;
			// don't over-report.
			completed = aggs[si].errTrial - lo
			if shardSpan != nil {
				shardSpan.SetAttr("error", aggs[si].err.Error())
			}
		}
		obsTrials.Add(int64(completed))
		shardSpan.End()
		return completed
	}, r.cfg.Progress)

	if err := firstError(aggs); err != nil {
		return nil, err
	}
	rep, err := mergeShards(s.Name, aggs, trials, r.cfg)
	if err != nil {
		return nil, err
	}
	rep.Workers = workers
	rep.ElapsedSeconds = time.Since(start).Seconds()
	return rep, nil
}

// acquireBudget claims one shared-budget slot (when a budget is
// configured), recording how long the shard waited for it — the direct
// measure of budget saturation — as a histogram sample and, under tracing,
// an engine.budget.wait span. The caller releases the slot.
func (r *Runner) acquireBudget(ctx context.Context) {
	if r.cfg.Budget == nil {
		return
	}
	_, waitSpan := obs.Start(ctx, "engine.budget.wait")
	waitStart := time.Now()
	r.cfg.Budget.acquire()
	obsBudgetWait.Observe(time.Since(waitStart).Seconds())
	waitSpan.End()
}

// defaultWorkers is the pool size when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// runIndexed fans jobs 0..n-1 across a pool of workers. Each job returns
// the number of trials it completed; progress (when non-nil) receives the
// cumulative count against total, serialized, in completion order.
func runIndexed(workers, n, total int, job func(i int) int, progress func(done, total int)) {
	jobs := make(chan int)
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		done       int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				completed := job(i)
				if progress != nil {
					progressMu.Lock()
					done += completed
					progress(done, total)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// firstError returns the error of the lowest-indexed failing trial.
func firstError(aggs []*shardAgg) error {
	var first error
	firstTrial := -1
	for _, a := range aggs {
		if a.err != nil && (firstTrial == -1 || a.errTrial < firstTrial) {
			first, firstTrial = a.err, a.errTrial
		}
	}
	return first
}

// mergeShards folds the per-shard aggregates, in ascending shard order,
// into one Report.
func mergeShards(scenario string, aggs []*shardAgg, trials int, cfg Config) (*Report, error) {
	rep := &Report{Scenario: scenario, Seed: cfg.Seed, Trials: trials}
	scalarOrder := []string{}
	scalars := map[string]*scalarAgg{}
	seriesOrder := []string{}
	series := map[string]*seriesAgg{}
	if cfg.KeepTrialValues {
		rep.TrialScalars = make(map[string][]float64)
		rep.TrialSeries = make(map[string][][]float64)
		rep.TrialOutputs = make([]any, trials)
	}

	for _, a := range aggs {
		for _, name := range a.scalarOrder {
			dst, ok := scalars[name]
			if !ok {
				dst = newScalarAgg()
				scalars[name] = dst
				scalarOrder = append(scalarOrder, name)
			}
			src := a.scalars[name]
			dst.online.Merge(&src.online)
			if err := dst.sketch.Merge(src.sketch); err != nil {
				return nil, fmt.Errorf("engine: scenario %s: %w", scenario, err)
			}
		}
		for _, name := range a.seriesOrder {
			src := a.series[name]
			dst, ok := series[name]
			if !ok {
				dst = &seriesAgg{points: make([]stats.Online, len(src.points))}
				series[name] = dst
				seriesOrder = append(seriesOrder, name)
			}
			if len(src.points) != len(dst.points) {
				return nil, fmt.Errorf("engine: scenario %s: series %q length differs across shards (%d vs %d)",
					scenario, name, len(src.points), len(dst.points))
			}
			for i := range src.points {
				dst.points[i].Merge(&src.points[i])
			}
			dst.trials += src.trials
		}
		if cfg.KeepTrialValues {
			for name, vs := range a.trialScalars {
				copy(trialScalarSlot(rep, name, trials)[a.lo:a.hi], vs)
			}
			for name, rows := range a.trialSeries {
				if _, ok := rep.TrialSeries[name]; !ok {
					rep.TrialSeries[name] = make([][]float64, trials)
				}
				copy(rep.TrialSeries[name][a.lo:a.hi], rows)
			}
			copy(rep.TrialOutputs[a.lo:a.hi], a.trialOutputs)
		}
	}

	for _, name := range scalarOrder {
		a := scalars[name]
		m := MetricSummary{
			Name:   name,
			Count:  a.online.N(),
			Mean:   a.online.Mean(),
			StdDev: a.online.StdDev(),
			Min:    a.online.Min(),
			Max:    a.online.Max(),
		}
		if a.sketch.Count() > 0 {
			m.P50, _ = a.sketch.Quantile(0.5)
			m.P90, _ = a.sketch.Quantile(0.9)
			m.P99, _ = a.sketch.Quantile(0.99)
		}
		rep.Metrics = append(rep.Metrics, m)
	}
	for _, name := range seriesOrder {
		a := series[name]
		mean := make([]float64, len(a.points))
		for i := range a.points {
			mean[i] = a.points[i].Mean()
		}
		rep.Series = append(rep.Series, SeriesSummary{Name: name, Trials: a.trials, Mean: mean})
	}
	return rep, nil
}

func trialScalarSlot(rep *Report, name string, trials int) []float64 {
	vs, ok := rep.TrialScalars[name]
	if !ok {
		vs = make([]float64, trials)
		for i := range vs {
			vs[i] = math.NaN()
		}
		rep.TrialScalars[name] = vs
	}
	return vs
}
