package engine

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// jsonRoundTrip pushes a Partial through its wire encoding, as the
// coordinator does between processes.
func jsonRoundTrip(t *testing.T, p *Partial) *Partial {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal partial: %v", err)
	}
	var back Partial
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal partial: %v", err)
	}
	return &back
}

// randomPartition cuts [0, trials) into 1..8 contiguous ranges. Cut points
// are drawn with replacement, so adjacent duplicates — which would create
// empty ranges — occur and are dropped, and single-trial ranges are common.
func randomPartition(rng *rand.Rand, trials int) [][2]int {
	k := 1 + rng.Intn(8)
	cuts := map[int]bool{0: true, trials: true}
	for i := 0; i < k-1; i++ {
		cuts[rng.Intn(trials+1)] = true
	}
	points := make([]int, 0, len(cuts))
	for c := range cuts {
		points = append(points, c)
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if points[j] < points[i] {
				points[i], points[j] = points[j], points[i]
			}
		}
	}
	var ranges [][2]int
	for i := 0; i+1 < len(points); i++ {
		if points[i] < points[i+1] {
			ranges = append(ranges, [2]int{points[i], points[i+1]})
		}
	}
	return ranges
}

// TestPartialMergeMatchesFullRun is the distribution property: for random
// partitions of the trial space — shard-aligned or not, down to single-trial
// ranges — running each range partially, shipping the partials over the
// wire encoding, and merging them reproduces the full run exactly, with and
// without per-trial retention, at several shard sizes and seeds.
func TestPartialMergeMatchesFullRun(t *testing.T) {
	s := noisyScenario()
	rng := rand.New(rand.NewSource(42))
	for _, keep := range []bool{false, true} {
		for _, tc := range []struct {
			trials, shardSize int
		}{
			{100, 8},  // default-style shards, boundaries cut shards
			{37, 7},   // ragged tail shard
			{10, 1},   // every range is shard-aligned
			{20, 100}, // a single shard cut into fragments
		} {
			cfg := Config{Seed: 5, Trials: tc.trials, ShardSize: tc.shardSize, KeepTrialValues: keep}
			full := mustRun(t, cfg, s)
			fullJSON, _ := json.Marshal(comparable(full))
			runner, err := NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 12; iter++ {
				ranges := randomPartition(rng, tc.trials)
				parts := make([]*Partial, 0, len(ranges))
				for _, rg := range ranges {
					p, err := runner.RunPartial(s, rg[0], rg[1])
					if err != nil {
						t.Fatalf("trials=%d shard=%d keep=%v range %v: %v", tc.trials, tc.shardSize, keep, rg, err)
					}
					parts = append(parts, jsonRoundTrip(t, p))
				}
				// Merge in shuffled order: MergePartials sorts by range.
				rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
				merged, err := MergePartials(parts)
				if err != nil {
					t.Fatalf("trials=%d shard=%d keep=%v ranges %v: merge: %v", tc.trials, tc.shardSize, keep, ranges, err)
				}
				if !sameReport(merged, full) {
					t.Fatalf("trials=%d shard=%d keep=%v ranges %v: merged report diverged from full run",
						tc.trials, tc.shardSize, keep, ranges)
				}
				mergedJSON, _ := json.Marshal(comparable(merged))
				if string(mergedJSON) != string(fullJSON) {
					t.Fatalf("trials=%d shard=%d keep=%v ranges %v: merged JSON diverged\n got %s\nwant %s",
						tc.trials, tc.shardSize, keep, ranges, mergedJSON, fullJSON)
				}
			}
		}
	}
}

// TestPartialSingleRangeIsFullRun: one partial covering [0, trials) merges
// to the full run — the degenerate one-worker deployment.
func TestPartialSingleRangeIsFullRun(t *testing.T) {
	s := noisyScenario()
	cfg := Config{Seed: 1, Trials: 24, ShardSize: 5}
	full := mustRun(t, cfg, s)
	runner, _ := NewRunner(cfg)
	p, err := runner.RunPartial(s, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergePartials([]*Partial{jsonRoundTrip(t, p)})
	if err != nil {
		t.Fatal(err)
	}
	if !sameReport(merged, full) {
		t.Fatal("single full-range partial diverged from full run")
	}
}

// TestPartialProgressTotals: partial-run progress counts against the range
// size, not the full trial count, and sums to it.
func TestPartialProgressTotals(t *testing.T) {
	s := noisyScenario()
	var last, total int
	runner, _ := NewRunner(Config{Seed: 1, Trials: 40, ShardSize: 4,
		Workers: 1, Progress: func(d, tot int) { last, total = d, tot }})
	if _, err := runner.RunPartial(s, 10, 25); err != nil {
		t.Fatal(err)
	}
	if last != 15 || total != 15 {
		t.Errorf("progress ended %d/%d, want 15/15", last, total)
	}
}

// TestPartialRejectsKeptOutputs: campaigns whose trials retain structured
// outputs via T.Keep cannot run partially — on either the complete-shard or
// the boundary-fragment path — because those outputs do not serialize.
func TestPartialRejectsKeptOutputs(t *testing.T) {
	s := Scenario{
		Name:   "test-keeper",
		Trials: 8,
		Run: func(t *T) error {
			t.Record("x", float64(t.Trial))
			t.Keep(struct{ V int }{t.Trial})
			return nil
		},
	}
	runner, _ := NewRunner(Config{Seed: 1, ShardSize: 4, KeepTrialValues: true})
	if _, err := runner.RunPartial(s, 0, 4); err == nil || !strings.Contains(err.Error(), "T.Keep") {
		t.Errorf("complete-shard path: err %v, want T.Keep rejection", err)
	}
	if _, err := runner.RunPartial(s, 1, 3); err == nil || !strings.Contains(err.Error(), "T.Keep") {
		t.Errorf("fragment path: err %v, want T.Keep rejection", err)
	}
}

// TestRunPartialInvalidRange: out-of-bounds and empty ranges are rejected.
func TestRunPartialInvalidRange(t *testing.T) {
	s := noisyScenario()
	runner, _ := NewRunner(Config{Seed: 1, Trials: 10})
	for _, rg := range [][2]int{{-1, 5}, {5, 5}, {6, 4}, {0, 11}} {
		if _, err := runner.RunPartial(s, rg[0], rg[1]); err == nil {
			t.Errorf("range %v accepted", rg)
		}
	}
}

// TestMergePartialsValidation: gaps, overlaps, mismatched job identity, and
// incomplete coverage are merge errors, never silently wrong aggregates.
func TestMergePartialsValidation(t *testing.T) {
	s := noisyScenario()
	runner, _ := NewRunner(Config{Seed: 1, Trials: 20, ShardSize: 4})
	part := func(lo, hi int) *Partial {
		p, err := runner.RunPartial(s, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := MergePartials(nil); err == nil {
		t.Error("empty partial set accepted")
	}
	if _, err := MergePartials([]*Partial{part(0, 10)}); err == nil {
		t.Error("incomplete coverage accepted")
	}
	if _, err := MergePartials([]*Partial{part(0, 10), part(12, 20)}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := MergePartials([]*Partial{part(0, 12), part(10, 20)}); err == nil {
		t.Error("overlap accepted")
	}
	other := part(10, 20)
	other.Seed = 99
	if _, err := MergePartials([]*Partial{part(0, 10), other}); err == nil {
		t.Error("mismatched seed accepted")
	}
	sized := part(10, 20)
	sized.ShardSize = 5
	if _, err := MergePartials([]*Partial{part(0, 10), sized}); err == nil {
		t.Error("mismatched shard size accepted")
	}
}

// TestRunCampaignPartialAppliesOverrides: the campaign's shard pinning and
// retention apply to partial runs exactly as they do to full ones, so the
// partials a distributed figure job produces merge against the figure's own
// shard geometry.
func TestRunCampaignPartialAppliesOverrides(t *testing.T) {
	c := Campaign[*Report]{
		Scenario:        noisyScenario(),
		ShardSize:       1,
		KeepTrialValues: true,
		Finalize:        func(rep *Report) (*Report, error) { return rep, nil },
	}
	runner, _ := NewRunner(Config{Seed: 3, Trials: 6, ShardSize: 99})
	p, err := RunCampaignPartial(runner, c, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.ShardSize != 1 || !p.Retained {
		t.Fatalf("partial geometry %+v, want campaign overrides (shard 1, retained)", p)
	}

	// Full distributed cycle through the campaign: partials -> merge ->
	// finalize equals RunCampaign.
	full, _, err := RunCampaign(runner, c)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunCampaignPartial(runner, c, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaignPartial(runner, c, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MergePartials([]*Partial{jsonRoundTrip(t, a), jsonRoundTrip(t, b)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FinalizeCampaign(c, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !sameReport(res, full) {
		t.Fatal("distributed campaign cycle diverged from RunCampaign")
	}
}

// TestAdaptPartial: restamping a partial's full trial count is valid exactly
// when every complete piece still spans its shard under the new count — the
// geometry check behind the prefix-reuse planner's cross-count extension.
func TestAdaptPartial(t *testing.T) {
	s := noisyScenario()
	part := func(trials, shardSize, lo, hi int) *Partial {
		runner, err := NewRunner(Config{Seed: 1, Trials: trials, ShardSize: shardSize})
		if err != nil {
			t.Fatal(err)
		}
		p, err := runner.RunPartial(s, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// A shard-aligned prefix grows cleanly: every complete shard keeps its
	// bounds, only the stamp changes.
	p := part(16, 4, 0, 8)
	if err := AdaptPartial(p, 32); err != nil {
		t.Fatalf("aligned grow: %v", err)
	}
	if p.Trials != 32 {
		t.Fatalf("aligned grow left Trials=%d, want 32", p.Trials)
	}

	// Same count is a no-op.
	p = part(16, 4, 0, 8)
	if err := AdaptPartial(p, 16); err != nil || p.Trials != 16 {
		t.Fatalf("same-count adapt: err=%v Trials=%d", err, p.Trials)
	}

	// The ragged tail shard of a 10-trial run ([8, 10) of shard 2) was
	// complete only because 10 trials clipped the shard; under 32 trials
	// shard 2 spans [8, 12), so the piece no longer carries the shard's full
	// aggregate and the adapt must refuse.
	p = part(10, 4, 0, 10)
	if err := AdaptPartial(p, 32); err == nil || !strings.Contains(err.Error(), "no longer spans") {
		t.Fatalf("clipped tail shard: err %v, want refusal", err)
	}

	// Shrinking below the partial's own range is out of bounds.
	p = part(16, 4, 8, 16)
	if err := AdaptPartial(p, 12); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("shrink below Hi: err %v, want rejection", err)
	}

	// Degenerate inputs.
	if err := AdaptPartial(nil, 8); err == nil {
		t.Error("nil partial accepted")
	}
	p = part(16, 4, 0, 8)
	if err := AdaptPartial(p, 0); err == nil {
		t.Error("zero trial count accepted")
	}
}

// TestAdaptPartialMergesIntoLargerRun: the end-to-end property the planner
// relies on — a prefix partial banked under a small trial count, adapted to
// a larger one, merges with the freshly computed remainder into exactly the
// larger run's report.
func TestAdaptPartialMergesIntoLargerRun(t *testing.T) {
	s := noisyScenario()
	small, err := NewRunner(Config{Seed: 7, Trials: 8, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := small.RunPartial(s, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	prefix = jsonRoundTrip(t, prefix)
	if err := AdaptPartial(prefix, 20); err != nil {
		t.Fatal(err)
	}

	big, err := NewRunner(Config{Seed: 7, Trials: 20, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rest, err := big.RunPartial(s, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergePartials([]*Partial{prefix, jsonRoundTrip(t, rest)})
	if err != nil {
		t.Fatal(err)
	}
	full := mustRun(t, Config{Seed: 7, Trials: 20, ShardSize: 4}, s)
	if !sameReport(merged, full) {
		t.Fatal("adapted prefix + remainder diverged from the full 20-trial run")
	}
}
