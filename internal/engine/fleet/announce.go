package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// AnnouncePath and ListPath are the registry's wire endpoints, served by
// internal/locsrv on every locd.
const (
	AnnouncePath = "/v1/fleet/announce"
	ListPath     = "/v1/fleet"
)

// Announcer keeps one worker registered: it announces immediately, then
// heartbeats every Interval, and sends a leaving announce when its context
// is cancelled. Run is the worker's registration lifetime.
type Announcer struct {
	// Registry is the registry's base URL (any locd serves one).
	Registry string
	// Self is the announce record to register. Leaving is managed by the
	// announcer itself.
	Self Announce
	// Interval between heartbeats; 0 means DefaultHeartbeat.
	Interval time.Duration
	// Client is the HTTP client to announce with; nil means a client with a
	// per-request timeout of Interval.
	Client *http.Client
	// Warn, when set, receives transient announce failures (the announcer
	// keeps retrying on the next heartbeat — a down registry must not take
	// the worker down with it).
	Warn func(format string, args ...any)
}

// Run announces until ctx is cancelled, then deregisters. It only returns
// an error for a misconfigured announcer; transient registry failures are
// reported through Warn and retried.
func (a *Announcer) Run(ctx context.Context) error {
	if strings.TrimSpace(a.Registry) == "" {
		return fmt.Errorf("fleet: announcer without a registry URL")
	}
	if err := a.Self.Validate(); err != nil {
		return err
	}
	interval := a.Interval
	if interval <= 0 {
		interval = DefaultHeartbeat
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	a.post(ctx, client, a.Self)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Deregister on a fresh context: ctx is already cancelled, and a
			// clean leave is worth one short request.
			leave, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			self := a.Self
			self.Leaving = true
			a.post(leave, client, self)
			cancel()
			return nil
		case <-ticker.C:
			a.post(ctx, client, a.Self)
		}
	}
}

func (a *Announcer) post(ctx context.Context, client *http.Client, ann Announce) {
	if err := postAnnounce(ctx, client, a.Registry, ann); err != nil && ctx.Err() == nil && a.Warn != nil {
		a.Warn("fleet: announce to %s failed: %v", a.Registry, err)
	}
}

// PostAnnounce sends a single announce record to a registry.
func PostAnnounce(ctx context.Context, client *http.Client, registry string, ann Announce) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postAnnounce(ctx, client, registry, ann)
}

func postAnnounce(ctx context.Context, client *http.Client, registry string, ann Announce) error {
	body, err := json.Marshal(ann)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(registry, "/")+AnnouncePath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("registry returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}
