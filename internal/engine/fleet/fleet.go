// Package fleet is the cluster-membership subsystem of the distributed
// execution tier: a registry of live locd workers that the coordinator
// (internal/engine/coord) discovers its fleet from, instead of being handed
// a static -workers URL list.
//
// Membership is announce-based: every worker periodically POSTs an
// Announce record — its advertised base URL, its shard-slot capacity
// (engine.Budget.Cap), and its binary fingerprint (cache.Fingerprint,
// which the coordinator needs to address the worker's range-keyed cache
// entries during crash-resume) — to a registry served by any locd
// (internal/locsrv routes /v1/fleet/announce and /v1/fleet onto a
// Registry). A worker that misses enough heartbeats is evicted; a worker
// that shuts down cleanly announces Leaving and is removed at once. The
// registry is deliberately soft-state: it holds no job state, so losing it
// costs only discovery — a fresh registry repopulates within one heartbeat
// interval as workers re-announce.
package fleet

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"resilientloc/internal/obs"
)

// Fleet telemetry: the live-member gauge plus the membership lifecycle
// counters (a join is a first announce or a re-announce after eviction; a
// leave is a clean shutdown; an eviction is a missed-heartbeat removal).
var (
	obsWorkers   = obs.Default().Gauge("fleet_workers")
	obsJoins     = obs.Default().Counter("fleet_joins_total")
	obsLeaves    = obs.Default().Counter("fleet_leaves_total")
	obsEvictions = obs.Default().Counter("fleet_evictions_total")
)

// DefaultHeartbeat is how often a worker re-announces itself.
const DefaultHeartbeat = 3 * time.Second

// DefaultEvictAfter is how long a member may go without an announce before
// the registry evicts it — five missed default heartbeats, so one dropped
// packet or a GC pause never flaps membership.
const DefaultEvictAfter = 5 * DefaultHeartbeat

// Announce is the wire record a worker registers itself with.
type Announce struct {
	// URL is the worker's advertised base URL (e.g. "http://10.0.0.7:8090")
	// — the address the coordinator will submit jobs to.
	URL string `json:"url"`
	// Capacity is the worker's shard-slot budget (engine.Budget.Cap): how
	// many shards it executes concurrently. Advisory fleet metadata for
	// schedulers and scoreboards.
	Capacity int `json:"capacity,omitempty"`
	// Fingerprint is the worker binary's cache fingerprint
	// (cache.Fingerprint). The coordinator uses it to tell mixed-build
	// fleets apart; the resume path addresses each worker's range-keyed
	// cache entries through the worker itself, so the fingerprint is
	// informational.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Leaving marks a clean shutdown: the registry removes the member
	// immediately instead of waiting out the eviction window.
	Leaving bool `json:"leaving,omitempty"`
}

// Validate checks the announce's self-contained invariants.
func (a Announce) Validate() error {
	if strings.TrimSpace(a.URL) == "" {
		return fmt.Errorf("fleet: announce without a url")
	}
	u, err := url.Parse(a.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: announce url %q is not an absolute URL", a.URL)
	}
	if a.Capacity < 0 {
		return fmt.Errorf("fleet: negative capacity %d", a.Capacity)
	}
	return nil
}

// Member is one live worker as the registry sees it.
type Member struct {
	// URL is the worker's advertised base URL, normalized (no trailing
	// slash) — the member's identity.
	URL string `json:"url"`
	// Capacity and Fingerprint echo the worker's latest announce.
	Capacity    int    `json:"capacity,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// JoinedAt is when the member first announced (or re-announced after an
	// eviction); LastSeen is its most recent heartbeat.
	JoinedAt time.Time `json:"joined_at"`
	LastSeen time.Time `json:"last_seen"`
}

// Registry is the in-memory membership table. Zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	evictAfter time.Duration
	now        func() time.Time // injectable clock for tests

	mu      sync.Mutex
	members map[string]*Member
}

// NewRegistry returns a registry evicting members that have not announced
// within evictAfter (0 means DefaultEvictAfter).
func NewRegistry(evictAfter time.Duration) *Registry {
	if evictAfter <= 0 {
		evictAfter = DefaultEvictAfter
	}
	return &Registry{
		evictAfter: evictAfter,
		now:        time.Now,
		members:    make(map[string]*Member),
	}
}

// EvictAfter returns the registry's eviction window — the heartbeat
// deadline it advertises to announcing workers.
func (r *Registry) EvictAfter() time.Duration { return r.evictAfter }

// Announce upserts a member (or removes it, when the announce is a leave).
// The boolean reports a join: the member was not in the live set before.
func (r *Registry) Announce(a Announce) (bool, error) {
	if err := a.Validate(); err != nil {
		return false, err
	}
	key := strings.TrimRight(strings.TrimSpace(a.URL), "/")
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	if a.Leaving {
		if _, ok := r.members[key]; ok {
			delete(r.members, key)
			obsLeaves.Inc()
			obsWorkers.Set(int64(len(r.members)))
		}
		return false, nil
	}
	m, ok := r.members[key]
	if !ok {
		m = &Member{URL: key, JoinedAt: now}
		r.members[key] = m
		obsJoins.Inc()
		obsWorkers.Set(int64(len(r.members)))
	}
	m.Capacity = a.Capacity
	m.Fingerprint = a.Fingerprint
	m.LastSeen = now
	return !ok, nil
}

// Members returns the live membership (stale members evicted first),
// sorted by URL so every reader sees the fleet in one deterministic order.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.now())
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// sweepLocked evicts members whose last announce is older than the
// eviction window. The caller holds r.mu.
func (r *Registry) sweepLocked(now time.Time) {
	evicted := 0
	for key, m := range r.members {
		if now.Sub(m.LastSeen) > r.evictAfter {
			delete(r.members, key)
			evicted++
		}
	}
	if evicted > 0 {
		obsEvictions.Add(int64(evicted))
		obsWorkers.Set(int64(len(r.members)))
	}
}
