package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// View is the registry's GET /v1/fleet response: the live membership plus
// the heartbeat deadline the registry enforces, so clients can size their
// own polling.
type View struct {
	Workers           []Member `json:"workers"`
	EvictAfterSeconds float64  `json:"evict_after_seconds"`
}

// Discover fetches the live fleet from a registry. A nil client uses
// http.DefaultClient.
func Discover(ctx context.Context, client *http.Client, registry string) (View, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var view View
	if strings.TrimSpace(registry) == "" {
		return view, fmt.Errorf("fleet: discover without a registry URL")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(registry, "/")+ListPath, nil)
	if err != nil {
		return view, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return view, fmt.Errorf("fleet: registry %s returned %s: %s", registry, resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, fmt.Errorf("fleet: decoding registry response: %w", err)
	}
	return view, nil
}

// URLs returns the members' base URLs in the registry's deterministic
// (sorted) order — the shape the coordinator's worker list wants.
func (v View) URLs() []string {
	out := make([]string, len(v.Workers))
	for i, m := range v.Workers {
		out[i] = m.URL
	}
	return out
}
