package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRegistryAnnounceEvictLeave(t *testing.T) {
	r := NewRegistry(10 * time.Second)
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	joined, err := r.Announce(Announce{URL: "http://a:1/", Capacity: 4, Fingerprint: "aaaa"})
	if err != nil || !joined {
		t.Fatalf("first announce: joined=%v err=%v", joined, err)
	}
	joined, err = r.Announce(Announce{URL: "http://a:1", Capacity: 8})
	if err != nil || joined {
		t.Fatalf("re-announce should not be a join: joined=%v err=%v", joined, err)
	}
	if _, err := r.Announce(Announce{URL: "http://b:2", Capacity: 2}); err != nil {
		t.Fatal(err)
	}
	ms := r.Members()
	if len(ms) != 2 || ms[0].URL != "http://a:1" || ms[1].URL != "http://b:2" {
		t.Fatalf("members = %+v", ms)
	}
	if ms[0].Capacity != 8 {
		t.Fatalf("re-announce should update capacity, got %d", ms[0].Capacity)
	}

	// b heartbeats, a goes silent past the eviction window.
	clock = clock.Add(9 * time.Second)
	if _, err := r.Announce(Announce{URL: "http://b:2", Capacity: 2}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Second)
	ms = r.Members()
	if len(ms) != 1 || ms[0].URL != "http://b:2" {
		t.Fatalf("expected a evicted, members = %+v", ms)
	}

	// A clean leave removes immediately.
	if _, err := r.Announce(Announce{URL: "http://b:2", Leaving: true}); err != nil {
		t.Fatal(err)
	}
	if ms := r.Members(); len(ms) != 0 {
		t.Fatalf("expected empty after leave, members = %+v", ms)
	}

	// An evicted worker that comes back counts as a fresh join.
	joined, err = r.Announce(Announce{URL: "http://a:1"})
	if err != nil || !joined {
		t.Fatalf("rejoin after eviction: joined=%v err=%v", joined, err)
	}
}

func TestRegistryRejectsBadAnnounce(t *testing.T) {
	r := NewRegistry(0)
	for _, a := range []Announce{
		{},
		{URL: "not a url"},
		{URL: "/relative/only"},
		{URL: "http://ok:1", Capacity: -1},
	} {
		if _, err := r.Announce(a); err == nil {
			t.Fatalf("announce %+v should be rejected", a)
		}
	}
	if len(r.Members()) != 0 {
		t.Fatal("rejected announces must not register members")
	}
}

func TestAnnouncerLifecycle(t *testing.T) {
	var mu sync.Mutex
	var got []Announce
	seen := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost || req.URL.Path != AnnouncePath {
			http.NotFound(w, req)
			return
		}
		var a Announce
		if err := json.NewDecoder(req.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
		seen <- struct{}{}
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ann := &Announcer{
		Registry: srv.URL,
		Self:     Announce{URL: "http://worker:9", Capacity: 3, Fingerprint: "ffff"},
		Interval: 20 * time.Millisecond,
	}
	go func() { done <- ann.Run(ctx) }()

	// At least the immediate announce plus one heartbeat.
	for i := 0; i < 2; i++ {
		select {
		case <-seen:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for announce")
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("announcer run: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 3 {
		t.Fatalf("expected announce + heartbeat + leave, got %d records", len(got))
	}
	last := got[len(got)-1]
	if !last.Leaving {
		t.Fatalf("final announce should be a leave, got %+v", last)
	}
	for _, a := range got {
		if a.URL != "http://worker:9" || a.Capacity != 3 || a.Fingerprint != "ffff" {
			t.Fatalf("announce payload corrupted: %+v", a)
		}
	}
}

func TestDiscover(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet || req.URL.Path != ListPath {
			http.NotFound(w, req)
			return
		}
		json.NewEncoder(w).Encode(View{
			Workers:           []Member{{URL: "http://a:1", Capacity: 4}, {URL: "http://b:2", Capacity: 2}},
			EvictAfterSeconds: 15,
		})
	}))
	defer srv.Close()

	view, err := Discover(context.Background(), nil, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	urls := view.URLs()
	if len(urls) != 2 || urls[0] != "http://a:1" || urls[1] != "http://b:2" {
		t.Fatalf("urls = %v", urls)
	}
	if view.EvictAfterSeconds != 15 {
		t.Fatalf("evict_after_seconds = %v", view.EvictAfterSeconds)
	}

	if _, err := Discover(context.Background(), nil, srv.URL+"/missing"); err == nil {
		t.Fatal("discover against a non-registry path should fail")
	}
}

func TestAnnouncerMisconfigured(t *testing.T) {
	if err := (&Announcer{Self: Announce{URL: "http://w:1"}}).Run(context.Background()); err == nil {
		t.Fatal("announcer without registry should error")
	}
	if err := (&Announcer{Registry: "http://r:1", Self: Announce{}}).Run(context.Background()); err == nil {
		t.Fatal("announcer with invalid self should error")
	}
}
