package engine

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"resilientloc/internal/stats"
)

// noisyScenario is a cheap synthetic scenario exercising scalars (multiple
// samples per trial), series, and occasionally-absent metrics.
func noisyScenario() Scenario {
	return Scenario{
		Name:        "test-noisy",
		Description: "synthetic mixture metrics",
		Trials:      100,
		Run: func(t *T) error {
			for i := 0; i < 5; i++ {
				t.Record("err_m", t.RNG.NormFloat64()*0.3)
			}
			t.Record("trial_mean", t.RNG.Float64())
			if t.Trial%3 == 0 {
				t.Record("sparse", float64(t.Trial))
			}
			hist := make([]float64, 16)
			v := 10.0
			for i := range hist {
				v *= 0.8 + 0.1*t.RNG.Float64()
				hist[i] = v
			}
			t.RecordSeries("E", hist)
			return nil
		},
	}
}

func mustRun(t *testing.T, cfg Config, s Scenario) *Report {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// comparable strips the fields that legitimately differ between runs
// (wall-clock, realized worker count).
func comparable(rep *Report) *Report {
	c := *rep
	c.ElapsedSeconds = 0
	c.Workers = 0
	return &c
}

// sameReport is reflect.DeepEqual with NaN == NaN, so the NaN holes in
// TrialScalars don't mask genuine differences.
func sameReport(a, b *Report) bool {
	return sameValue(reflect.ValueOf(comparable(a)), reflect.ValueOf(comparable(b)))
}

func sameValue(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float64:
		x, y := a.Float(), b.Float()
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return sameValue(a.Elem(), b.Elem())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !sameValue(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice:
		if a.Len() != b.Len() || a.IsNil() != b.IsNil() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !sameValue(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() || a.IsNil() != b.IsNil() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !sameValue(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same seed must yield byte-identical aggregates at any worker count.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	s := noisyScenario()
	base := mustRun(t, Config{Workers: 1, Seed: 42, KeepTrialValues: true}, s)
	for _, workers := range []int{2, 3, 8, 64} {
		got := mustRun(t, Config{Workers: workers, Seed: 42, KeepTrialValues: true}, s)
		if !sameReport(base, got) {
			t.Errorf("workers=%d: report differs from serial run", workers)
		}
	}
	// A different seed must actually change the results.
	other := mustRun(t, Config{Workers: 1, Seed: 43}, s)
	if reflect.DeepEqual(comparable(base).Metrics, comparable(other).Metrics) {
		t.Error("different seeds produced identical aggregates")
	}
}

// TestAggregatorsMatchBatch checks the streaming aggregates against batch
// statistics computed from the retained per-trial values.
func TestAggregatorsMatchBatch(t *testing.T) {
	s := Scenario{
		Name:   "test-batch",
		Trials: 400,
		Run: func(t *T) error {
			t.Record("x", t.RNG.NormFloat64()*2+5)
			return nil
		},
	}
	rep := mustRun(t, Config{Workers: 4, Seed: 7, KeepTrialValues: true}, s)
	xs := rep.TrialScalars["x"]
	if len(xs) != 400 {
		t.Fatalf("kept %d trial values, want 400", len(xs))
	}
	m, ok := rep.Metric("x")
	if !ok {
		t.Fatal("metric x missing")
	}
	mean, _ := stats.Mean(xs)
	sd, _ := stats.StdDev(xs)
	med, _ := stats.Percentile(xs, 0.5)
	p90, _ := stats.Percentile(xs, 0.9)
	if math.Abs(m.Mean-mean) > 1e-9 || math.Abs(m.StdDev-sd) > 1e-9 {
		t.Errorf("moments (%.9f, %.9f) vs batch (%.9f, %.9f)", m.Mean, m.StdDev, mean, sd)
	}
	if math.Abs(m.P50-med) > 0.03*math.Abs(med)+0.01 {
		t.Errorf("P50 %.4f vs batch %.4f", m.P50, med)
	}
	if math.Abs(m.P90-p90) > 0.03*math.Abs(p90)+0.01 {
		t.Errorf("P90 %.4f vs batch %.4f", m.P90, p90)
	}
	if m.Count != 400 {
		t.Errorf("count %d, want 400", m.Count)
	}
}

// TestSeriesPointwiseMean checks pointwise aggregation against a direct
// trial-ordered accumulation.
func TestSeriesPointwiseMean(t *testing.T) {
	s := noisyScenario()
	rep := mustRun(t, Config{Workers: 5, Seed: 9, KeepTrialValues: true}, s)
	if len(rep.Series) != 1 || rep.Series[0].Name != "E" {
		t.Fatalf("series = %+v, want one series E", rep.Series)
	}
	got := rep.Series[0].Mean
	rows := rep.TrialSeries["E"]
	if len(rows) != s.Trials {
		t.Fatalf("kept %d trial series, want %d", len(rows), s.Trials)
	}
	for i := range got {
		var sum float64
		for _, row := range rows {
			sum += row[i]
		}
		want := sum / float64(len(rows))
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("pointwise mean[%d] = %.12f, want %.12f", i, got[i], want)
		}
	}
	if rep.Series[0].Trials != int64(s.Trials) {
		t.Errorf("series trials %d, want %d", rep.Series[0].Trials, s.Trials)
	}
}

// TestSparseMetricsAndNaN: metrics missing from some trials aggregate only
// the recorded samples; NaN records don't poison the aggregates.
func TestSparseMetricsAndNaN(t *testing.T) {
	s := Scenario{
		Name:   "test-sparse",
		Trials: 30,
		Run: func(t *T) error {
			if t.Trial%2 == 0 {
				t.Record("even_only", 1)
			}
			if t.Trial == 5 {
				t.Record("poison", math.NaN())
			}
			t.Record("poison", 2)
			return nil
		},
	}
	rep := mustRun(t, Config{Workers: 3, Seed: 1, KeepTrialValues: true}, s)
	if m, _ := rep.Metric("even_only"); m.Count != 15 {
		t.Errorf("even_only count %d, want 15", m.Count)
	}
	if m, _ := rep.Metric("poison"); m.Count != 30 || math.IsNaN(m.Mean) || m.Mean != 2 {
		t.Errorf("poison summary %+v — NaN must be skipped", m)
	}
	vs := rep.TrialScalars["even_only"]
	if !math.IsNaN(vs[1]) || vs[2] != 1 {
		t.Errorf("trial values %v — odd trials must be NaN", vs[:4])
	}
}

// TestTrialErrorDeterministic: the lowest-indexed failing trial's error is
// returned regardless of worker count, and all shards still run.
func TestTrialErrorDeterministic(t *testing.T) {
	boom := errors.New("boom")
	s := Scenario{
		Name:   "test-error",
		Trials: 100,
		Run: func(t *T) error {
			if t.Trial == 17 || t.Trial == 93 {
				return boom
			}
			return nil
		},
	}
	for _, workers := range []int{1, 8} {
		r, err := NewRunner(Config{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Run(s)
		if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "trial 17") {
			t.Errorf("workers=%d: err = %v, want trial 17's failure", workers, err)
		}
	}
}

// TestSeriesLengthMismatch: unequal series lengths are an error, not a
// silent misalignment.
func TestSeriesLengthMismatch(t *testing.T) {
	s := Scenario{
		Name:   "test-mismatch",
		Trials: 20,
		Run: func(t *T) error {
			t.RecordSeries("E", make([]float64, 4+t.Trial%2))
			return nil
		},
	}
	r, _ := NewRunner(Config{Workers: 4, Seed: 1})
	if _, err := r.Run(s); err == nil {
		t.Error("mismatched series lengths accepted")
	}
}

// TestSeedFnOverride: a scenario's SeedFn fully controls trial seeding.
func TestSeedFnOverride(t *testing.T) {
	s := Scenario{
		Name:   "test-seedfn",
		Trials: 4,
		SeedFn: func(seed int64, trial int) int64 { return seed + int64(trial)*10 },
		Run: func(t *T) error {
			t.Record("first_draw", t.RNG.Float64())
			return nil
		},
	}
	rep := mustRun(t, Config{Workers: 2, Seed: 100, KeepTrialValues: true}, s)
	for trial, got := range rep.TrialScalars["first_draw"] {
		want := newTrialRNG(s, 100, trial).Float64()
		if got != want {
			t.Errorf("trial %d first draw %v, want %v", trial, got, want)
		}
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for trial := 0; trial < 1000; trial++ {
		s := DeriveSeed(1, trial)
		if seen[s] {
			t.Fatalf("seed collision at trial %d", trial)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("scenario seed ignored")
	}
}

func TestConfigAndScenarioValidation(t *testing.T) {
	if _, err := NewRunner(Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := NewRunner(Config{Trials: -1}); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := NewRunner(Config{ShardSize: -1}); err == nil {
		t.Error("negative shard size accepted")
	}
	r, _ := NewRunner(Config{})
	if _, err := r.Run(Scenario{Name: "x", Run: func(*T) error { return nil }}); err == nil {
		t.Error("zero trial count accepted")
	}
	if _, err := r.Run(Scenario{Name: "x", Trials: 1}); err == nil {
		t.Error("nil trial func accepted")
	}
	if _, err := r.Run(Scenario{Trials: 1, Run: func(*T) error { return nil }}); err == nil {
		t.Error("unnamed scenario accepted")
	}
}

// TestTrialsOverride: the runner's Trials takes precedence over the
// scenario default, and shard size is honored.
func TestTrialsOverride(t *testing.T) {
	s := noisyScenario()
	rep := mustRun(t, Config{Workers: 2, Trials: 11, Seed: 3, ShardSize: 3}, s)
	if rep.Trials != 11 {
		t.Errorf("trials %d, want 11", rep.Trials)
	}
	m, _ := rep.Metric("trial_mean")
	if m.Count != 11 {
		t.Errorf("trial_mean count %d, want 11", m.Count)
	}
	// Same run serially with the same shard size must agree exactly.
	serial := mustRun(t, Config{Workers: 1, Trials: 11, Seed: 3, ShardSize: 3}, s)
	if !sameReport(serial, rep) {
		t.Error("serial/parallel divergence under custom shard size")
	}
}
