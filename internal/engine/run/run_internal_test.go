package run

import (
	"testing"

	"resilientloc/internal/engine/spec"
)

// TestDispatchOrderLongestFirst pins the scheduler's size heuristic: jobs
// are started in descending trials × shard-count order, with submission
// order breaking ties, so the longest campaigns anchor the critical path.
func TestDispatchOrderLongestFirst(t *testing.T) {
	sized := func(id string, trials, shardSize int) spec.Resolved {
		return spec.Resolved{
			Spec:   spec.JobSpec{Kind: spec.KindScenario, ID: id, Seed: 1},
			Trials: trials, ShardSize: shardSize,
		}
	}
	jobs := []spec.Resolved{
		sized("small", 2, 8),     // 2 trials × 1 shard  = 2
		sized("descents", 17, 1), // 17 trials × 17 shards = 289: heavy per-trial work
		sized("sweep", 36, 8),    // 36 trials × 5 shards = 180
		sized("tie-a", 8, 8),     // 8 × 1 = 8
		sized("tie-b", 8, 8),     // equal cost: submission order must hold
		sized("singleton", 1, 8), // 1 × 1 = 1
	}
	got := dispatchOrder(jobs)
	want := []int{1, 2, 3, 4, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatchOrder = %v, want %v (job %d is %s)", got, want, i, jobs[got[i]].Spec.ID)
		}
	}
}

// TestDispatchOrderHandlesUnsizedJobs: hand-built resolved jobs without
// size metadata sort last instead of crashing the scheduler.
func TestDispatchOrderHandlesUnsizedJobs(t *testing.T) {
	jobs := []spec.Resolved{
		{Spec: spec.JobSpec{ID: "unsized"}},
		{Spec: spec.JobSpec{ID: "sized"}, Trials: 4, ShardSize: 2},
	}
	if got := dispatchOrder(jobs); got[0] != 1 || got[1] != 0 {
		t.Fatalf("dispatchOrder = %v, want the sized job first", got)
	}
}
