package run

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileOptionsWriteBothProfiles(t *testing.T) {
	dir := t.TempDir()
	var p ProfileOptions
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p.Register(fs)
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += math.Sqrt(float64(i))
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileOptionsDisabledIsNoop(t *testing.T) {
	var p ProfileOptions
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
