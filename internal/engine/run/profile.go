package run

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileOptions wires the conventional -cpuprofile/-memprofile flags into a
// command so whole-run profiles of the trial hot path can be captured without
// attaching to the locd pprof endpoints:
//
//	experiments -only fig10 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
type ProfileOptions struct {
	CPUProfile string
	MemProfile string
}

// Register installs the profiling flags on fs.
func (p *ProfileOptions) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file when the run ends")
}

// Start begins CPU profiling when requested and returns a stop function that
// ends the CPU profile and writes the heap profile. Call stop exactly once,
// after the profiled work finishes; it reports the first error encountered
// while finishing either profile.
func (p *ProfileOptions) Start() (stop func() error, err error) {
	var cpuOut *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuOut = f
	}
	memPath := p.MemProfile
	return func() error {
		var first error
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				first = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("memprofile: %w", err)
				}
				return first
			}
			// A final GC makes the heap profile reflect live steady-state
			// memory rather than whatever the last cycle left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		}
		return first
	}, nil
}
