package run_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// TestRangeProbe: the crash-resume probe reports exactly the partial-range
// entries a session banked for a job — addressed by hashes that really
// fetch those entries — and distinguishes seeds, retention, and the
// full-run entry.
func TestRangeProbe(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s := newSession(t, run.Options{CacheDir: dir})
	full := scenSpec("multilat-town", 1, 8, 2)

	// Nothing banked yet.
	probe, err := s.RangeEntries(full)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Trials != 8 || probe.Full != "" || len(probe.Ranges) != 0 {
		t.Fatalf("empty-cache probe = %+v", probe)
	}

	// Bank two disjoint ranges; leave [3, 5) missing.
	for _, rg := range [][2]int{{0, 3}, {5, 8}} {
		if _, _, err := run.ExecuteSpec(s, rangeSpec(full, rg[0], rg[1])); err != nil {
			t.Fatal(err)
		}
	}
	probe, err = s.RangeEntries(full)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Full != "" {
		t.Errorf("probe reports a full entry before the full job ran: %q", probe.Full)
	}
	if len(probe.Ranges) != 2 || probe.Ranges[0].Lo != 0 || probe.Ranges[0].Hi != 3 ||
		probe.Ranges[1].Lo != 5 || probe.Ranges[1].Hi != 8 {
		t.Fatalf("probe ranges = %+v", probe.Ranges)
	}

	// The reported hashes fetch real partial entries.
	for _, re := range probe.Ranges {
		raw, ok, err := s.CacheEntry(re.Hash)
		if err != nil || !ok {
			t.Fatalf("entry %s: ok=%v err=%v", re.Hash, ok, err)
		}
		var e struct {
			Key   cache.Key  `json:"key"`
			Value spec.Value `json:"value"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if e.Key.RangeLo != re.Lo || e.Key.RangeHi != re.Hi || e.Value.Partial == nil {
			t.Fatalf("entry %s: key range [%d, %d), partial=%v", re.Hash, e.Key.RangeLo, e.Key.RangeHi, e.Value.Partial != nil)
		}
	}

	// Another seed's probe sees none of them.
	other, err := s.RangeEntries(scenSpec("multilat-town", 2, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Ranges) != 0 {
		t.Fatalf("seed-2 probe sees seed-1 ranges: %+v", other.Ranges)
	}

	// A retained partial stays invisible to the unretained probe and
	// vice versa.
	kept := full
	kept.KeepTrialValues = true
	if _, _, err := run.ExecuteSpec(s, rangeSpec(kept, 3, 5)); err != nil {
		t.Fatal(err)
	}
	probe, err = s.RangeEntries(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Ranges) != 2 {
		t.Fatalf("unretained probe picked up a retained partial: %+v", probe.Ranges)
	}
	keptProbe, err := s.RangeEntries(kept)
	if err != nil {
		t.Fatal(err)
	}
	if len(keptProbe.Ranges) != 1 || keptProbe.Ranges[0].Lo != 3 || keptProbe.Ranges[0].Hi != 5 {
		t.Fatalf("retained probe = %+v", keptProbe.Ranges)
	}

	// After the full job runs, the probe hands back its entry too.
	if _, _, err := run.ExecuteSpec(s, full); err != nil {
		t.Fatal(err)
	}
	probe, err = s.RangeEntries(full)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Full == "" {
		t.Fatal("probe missed the full-run entry")
	}
	if _, ok, err := s.CacheEntry(probe.Full); err != nil || !ok {
		t.Fatalf("full entry %s: ok=%v err=%v", probe.Full, ok, err)
	}

	// A spec that is itself a sub-range has nothing to resume.
	if _, err := s.RangeEntries(rangeSpec(full, 0, 3)); err == nil {
		t.Fatal("probing a sub-range spec should error")
	}

	// A cache-less session answers empty rather than failing.
	nc := newSession(t, run.Options{NoCache: true})
	probe, err = nc.RangeEntries(full)
	if err != nil || probe.Full != "" || len(probe.Ranges) != 0 {
		t.Fatalf("no-cache probe = %+v err=%v", probe, err)
	}
}
