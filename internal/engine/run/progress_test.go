package run

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// newTTYProgress builds a renderer forced onto the terminal path so the
// status-block rendering is testable against a plain buffer.
func newTTYProgress(w *bytes.Buffer) *progress {
	return &progress{w: w, tty: true, lines: map[string]string{}, milestones: map[string]int{}}
}

func TestTTYStatusBlockRendersConcurrentCampaigns(t *testing.T) {
	var buf bytes.Buffer
	p := newTTYProgress(&buf)
	a, b := p.callback("alpha", "alpha"), p.callback("beta", "beta")

	a(1, 4)
	first := buf.String()
	if strings.Contains(first, "\x1b[") {
		t.Errorf("first draw should not move the cursor: %q", first)
	}
	if !strings.Contains(first, "alpha") || !strings.Contains(first, "1/4 trials") {
		t.Errorf("first draw missing the campaign line: %q", first)
	}

	b(1, 2) // both campaigns now own a line in the block
	if got := buf.String(); !strings.Contains(got, "\x1b[1A\x1b[J") {
		t.Errorf("second campaign should repaint the one-line block: %q", got)
	}

	b(2, 2) // beta completes: its line becomes permanent, alpha stays active
	a(4, 4) // alpha completes: block empties
	p.done("alpha")
	p.done("beta")

	out := buf.String()
	ia := strings.LastIndex(out, "alpha                           4/4 trials")
	ib := strings.LastIndex(out, "beta                            2/2 trials")
	if ia < 0 || ib < 0 || ib > ia {
		t.Errorf("completion lines missing or out of completion order (beta first): %q", out)
	}
	if p.drawn != 0 || len(p.order) != 0 {
		t.Errorf("block not empty after both campaigns finished: drawn=%d order=%v", p.drawn, p.order)
	}
}

// TestSuspendProtectsInterleavedOutput: while a report is printing, the
// block must be erased (so no cursor-up can destroy the report) and updates
// must accumulate silently, repainting only on resume.
func TestSuspendProtectsInterleavedOutput(t *testing.T) {
	var buf bytes.Buffer
	p := newTTYProgress(&buf)
	a, b := p.callback("alpha", "alpha"), p.callback("beta", "beta")
	a(1, 4)
	b(1, 2)

	p.suspend()
	if p.drawn != 0 {
		t.Errorf("suspend left %d drawn block lines", p.drawn)
	}
	mark := buf.Len()
	a(2, 4) // active update while suspended: nothing may be written
	b(2, 2) // completion while suspended: queued, not written
	if buf.Len() != mark {
		t.Errorf("suspended renderer wrote %q", buf.String()[mark:])
	}
	buf.Reset()
	p.resume()
	out := buf.String()
	if !strings.Contains(out, "beta") || !strings.Contains(out, "2/2 trials") {
		t.Errorf("resume did not flush the queued completion line: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2/4 trials") {
		t.Errorf("resume did not repaint the active block: %q", out)
	}
	if strings.Contains(out, "\x1b[") && strings.Index(out, "\x1b[") < strings.Index(out, "beta") {
		t.Errorf("resume moved the cursor before printing (would erase prior output): %q", out)
	}
}

// TestTTYRefreshThrottle: with a refresh interval, pure counter repaints
// within the interval are suppressed (the state still accumulates), while
// completion lines always render immediately.
func TestTTYRefreshThrottle(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(1000, 0)
	p := newTTYProgress(&buf)
	p.refresh = 100 * time.Millisecond
	p.now = func() time.Time { return clock }
	cb := p.callback("job", "job")

	cb(1, 10) // first repaint: lastDraw is zero, interval elapsed
	if !strings.Contains(buf.String(), "1/10") {
		t.Fatalf("first update did not draw: %q", buf.String())
	}
	mark := buf.Len()
	cb(2, 10) // within the interval: suppressed
	if buf.Len() != mark {
		t.Errorf("throttled update still drew: %q", buf.String()[mark:])
	}
	clock = clock.Add(150 * time.Millisecond)
	cb(3, 10) // interval elapsed: repaints with the latest counter
	if !strings.Contains(buf.String()[mark:], "3/10") {
		t.Errorf("post-interval update did not draw the latest counter: %q", buf.String()[mark:])
	}
	mark = buf.Len()
	cb(10, 10) // completion: permanent line bypasses the throttle
	if !strings.Contains(buf.String()[mark:], "10/10") {
		t.Errorf("completion line was throttled: %q", buf.String()[mark:])
	}
}

func TestProgressDoneResetsMilestones(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf, 0)
	cb := p.callback("again", "again")
	cb(4, 4)
	p.done("again")
	cb = p.callback("again", "again")
	cb(4, 4) // a re-run of the same campaign must report afresh
	if got := strings.Count(buf.String(), "4/4 trials"); got != 2 {
		t.Errorf("re-run milestone emitted %d times, want 2: %q", got, buf.String())
	}
}

func TestIsTTY(t *testing.T) {
	if isTTY(&bytes.Buffer{}) {
		t.Error("a bytes.Buffer is not a terminal")
	}
	if isTTY(nil) {
		t.Error("nil writer is not a terminal")
	}
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Skipf("cannot open %s: %v", os.DevNull, err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 && !isTTY(f) {
		t.Errorf("%s is a character device but isTTY says no", os.DevNull)
	}
}
