package run

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// newTTYProgress builds a renderer forced onto the terminal path so the
// status-block rendering is testable against a plain buffer.
func newTTYProgress(w *bytes.Buffer) *progress {
	return &progress{w: w, tty: true, lines: map[string]string{}, milestones: map[string]int{}}
}

func TestTTYStatusBlockRendersConcurrentCampaigns(t *testing.T) {
	var buf bytes.Buffer
	p := newTTYProgress(&buf)
	a, b := p.callback("alpha"), p.callback("beta")

	a(1, 4)
	first := buf.String()
	if strings.Contains(first, "\x1b[") {
		t.Errorf("first draw should not move the cursor: %q", first)
	}
	if !strings.Contains(first, "alpha") || !strings.Contains(first, "1/4 trials") {
		t.Errorf("first draw missing the campaign line: %q", first)
	}

	b(1, 2) // both campaigns now own a line in the block
	if got := buf.String(); !strings.Contains(got, "\x1b[1A\x1b[J") {
		t.Errorf("second campaign should repaint the one-line block: %q", got)
	}

	b(2, 2) // beta completes: its line becomes permanent, alpha stays active
	a(4, 4) // alpha completes: block empties
	p.done("alpha")
	p.done("beta")

	out := buf.String()
	ia := strings.LastIndex(out, "alpha                           4/4 trials")
	ib := strings.LastIndex(out, "beta                            2/2 trials")
	if ia < 0 || ib < 0 || ib > ia {
		t.Errorf("completion lines missing or out of completion order (beta first): %q", out)
	}
	if p.drawn != 0 || len(p.order) != 0 {
		t.Errorf("block not empty after both campaigns finished: drawn=%d order=%v", p.drawn, p.order)
	}
}

// TestSuspendProtectsInterleavedOutput: while a report is printing, the
// block must be erased (so no cursor-up can destroy the report) and updates
// must accumulate silently, repainting only on resume.
func TestSuspendProtectsInterleavedOutput(t *testing.T) {
	var buf bytes.Buffer
	p := newTTYProgress(&buf)
	a, b := p.callback("alpha"), p.callback("beta")
	a(1, 4)
	b(1, 2)

	p.suspend()
	if p.drawn != 0 {
		t.Errorf("suspend left %d drawn block lines", p.drawn)
	}
	mark := buf.Len()
	a(2, 4) // active update while suspended: nothing may be written
	b(2, 2) // completion while suspended: queued, not written
	if buf.Len() != mark {
		t.Errorf("suspended renderer wrote %q", buf.String()[mark:])
	}
	buf.Reset()
	p.resume()
	out := buf.String()
	if !strings.Contains(out, "beta") || !strings.Contains(out, "2/2 trials") {
		t.Errorf("resume did not flush the queued completion line: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2/4 trials") {
		t.Errorf("resume did not repaint the active block: %q", out)
	}
	if strings.Contains(out, "\x1b[") && strings.Index(out, "\x1b[") < strings.Index(out, "beta") {
		t.Errorf("resume moved the cursor before printing (would erase prior output): %q", out)
	}
}

func TestProgressDoneResetsMilestones(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf)
	cb := p.callback("again")
	cb(4, 4)
	p.done("again")
	cb = p.callback("again")
	cb(4, 4) // a re-run of the same campaign must report afresh
	if got := strings.Count(buf.String(), "4/4 trials"); got != 2 {
		t.Errorf("re-run milestone emitted %d times, want 2: %q", got, buf.String())
	}
}

func TestIsTTY(t *testing.T) {
	if isTTY(&bytes.Buffer{}) {
		t.Error("a bytes.Buffer is not a terminal")
	}
	if isTTY(nil) {
		t.Error("nil writer is not a terminal")
	}
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Skipf("cannot open %s: %v", os.DevNull, err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 && !isTTY(f) {
		t.Errorf("%s is a character device but isTTY says no", os.DevNull)
	}
}
