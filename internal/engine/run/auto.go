package run

// CI-driven stopping (auto-trials mode): instead of a fixed trial count,
// the spec carries a target confidence-interval half-width, and the
// executor runs a doubling sequence of ordinary fixed-N rounds until the
// target is met. Every round is a normal cacheable job — its hash and cache
// key are exactly those of an explicit "trials": N submission — so each
// round's result persists, the prefix-reuse planner turns the next round
// into an increment over it, and a later invocation (same session or not)
// resumes the sequence from whatever the cache still holds instead of
// restarting.

import (
	"context"
	"fmt"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// obsAutoRounds counts auto-trials rounds executed (each round is one
// ordinary fixed-N job).
var obsAutoRounds = obs.Default().Counter("run_auto_rounds_total")

// executeAuto drives an auto-trials spec: run the scenario's default trial
// count, then keep doubling — each round an ordinary fixed-N execution
// through the session, so caching and prefix reuse apply — until the 95% CI
// half-width of the stopping metric reaches the target, the trial cap is
// hit, or the scenario's own ceiling stops growth. The returned Info is the
// final round's, with Elapsed covering the whole sequence and ReusedTrials
// reporting how much of the final round came from cache (earlier rounds of
// this same call included).
func executeAuto(ctx context.Context, s *Session, sp spec.JobSpec) (*spec.Value, Info, error) {
	auto := sp.AutoTrials
	base := sp
	base.AutoTrials = nil
	// Round zero runs the scenario's default count: resolve the fixed spec
	// once to learn what that is.
	job, err := spec.Resolve(base)
	if err != nil {
		return nil, Info{}, err
	}
	start := time.Now()
	ctx, autoSpan := obs.Start(ctx, "run.auto")
	if autoSpan != nil {
		autoSpan.SetAttr("scenario", base.ID).SetAttr("ci_target", auto.CITarget)
	}
	defer autoSpan.End()
	n := job.TotalTrials
	if c := auto.Cap(); n > c {
		n = c
	}
	prevEffective := 0
	for round := 1; ; round++ {
		rs := base
		rs.Trials = n
		res, info, err := ExecuteSpecContext(ctx, s, rs)
		if err != nil {
			return nil, Info{}, err
		}
		obsAutoRounds.Inc()
		rep := res.Report
		if rep == nil {
			return nil, Info{}, fmt.Errorf("run: %s: auto-trials round produced no report", base.ID)
		}
		// The scenario may clamp the request (engine MaxTrials), so the
		// stopping arithmetic uses what actually ran, not what was asked.
		effective := rep.Trials
		hw, err := engine.CIHalfWidth(rep, auto.Metric)
		if err != nil {
			return nil, Info{}, fmt.Errorf("run: %s: auto-trials: %w", base.ID, err)
		}
		done := hw <= auto.CITarget
		plateau := effective == prevEffective
		capped := effective >= auto.Cap()
		if autoSpan != nil {
			autoSpan.SetAttr("rounds", round).SetAttr("trials", effective).SetAttr("ci_half_width", hw)
		}
		if done || plateau || capped {
			if !done {
				fmt.Fprintf(s.warn,
					"warning: %s: auto-trials stopped at %d trials with CI half-width %.6g above target %.6g\n",
					base.ID, effective, hw, auto.CITarget)
			}
			info.Elapsed = time.Since(start)
			return res, info, nil
		}
		prevEffective = effective
		n = auto.NextTrials(effective)
	}
}
