package run_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// jsonEqual compares two values by their JSON bytes.
func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}

func rangeSpec(sp spec.JobSpec, lo, hi int) spec.JobSpec {
	sp.TrialRange = &spec.Range{Lo: lo, Hi: hi}
	return sp
}

// TestPartialSpecExecutesRange: a spec with a proper trial sub-range
// executes only that range, returns a Value.Partial (never a finalized
// result), and the ranges of one job merge back to the full job's result.
func TestPartialSpecExecutesRange(t *testing.T) {
	s := newSession(t, run.Options{NoCache: true})
	full, _, err := run.ExecuteSpec(s, scenSpec("multilat-town", 1, 8, 2))
	if err != nil {
		t.Fatal(err)
	}

	var parts []*engine.Partial
	executed := s.TrialsExecuted()
	for _, rg := range [][2]int{{0, 3}, {3, 8}} {
		res, info, err := run.ExecuteSpec(s, rangeSpec(scenSpec("multilat-town", 1, 8, 2), rg[0], rg[1]))
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial == nil || res.Report != nil || res.Figure != nil {
			t.Fatalf("range %v: result %+v, want a bare Partial", rg, res)
		}
		if want := rg[1] - rg[0]; info.Trials != want {
			t.Errorf("range %v: info reports %d trials, want %d", rg, info.Trials, want)
		}
		parts = append(parts, res.Partial)
	}
	if got := s.TrialsExecuted() - executed; got != 8 {
		t.Errorf("partial runs computed %d trials, want 8", got)
	}

	rep, err := engine.MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetExecutionMeta(full.Report.Workers, full.Report.ElapsedSeconds)
	if !jsonEqual(t, rep, full.Report) {
		t.Error("merged partial ranges diverged from the full job")
	}

	// A range beyond the job's trials is rejected.
	if _, _, err := run.ExecuteSpec(s, rangeSpec(scenSpec("multilat-town", 1, 8, 2), 4, 12)); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized range: err %v, want rejection", err)
	}
}

// TestPartialResultsAreCached: partial results are cached under their own
// range-extended content address — the coordination record — so a retried
// or duplicate range submission recomputes nothing; and the partial entry
// never collides with the full job's entry.
func TestPartialResultsAreCached(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	sub := rangeSpec(scenSpec("multilat-town", 1, 8, 2), 2, 6)

	s := newSession(t, run.Options{CacheDir: dir})
	res, info, err := run.ExecuteSpec(s, sub)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached || info.CacheKey == "" || res.Partial == nil {
		t.Fatalf("first partial run: cached=%v key=%q partial=%v", info.Cached, info.CacheKey, res.Partial != nil)
	}

	again, info2, err := run.ExecuteSpec(s, sub)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached || info2.Trials != 4 || again.Partial == nil {
		t.Fatalf("second partial run: cached=%v trials=%d", info2.Cached, info2.Trials)
	}
	if !jsonEqual(t, again.Partial, res.Partial) {
		t.Error("cached partial differs from computed one")
	}

	// The full job misses the partial's entry (distinct content address)
	// and computes its own.
	fullRes, fullInfo, err := run.ExecuteSpec(s, scenSpec("multilat-town", 1, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fullInfo.Cached || fullRes.Partial != nil || fullRes.Report == nil {
		t.Fatalf("full job after partial: cached=%v result=%+v", fullInfo.Cached, fullRes)
	}
	if fullInfo.CacheKey == info.CacheKey {
		t.Error("full and partial jobs share a cache key")
	}

	// Figure partials cache too, even though their campaigns retain
	// per-trial values (an engine.Partial serializes them).
	fig := rangeSpec(figSpec("maxrange", 1), 0, 9)
	if _, i1, err := run.ExecuteSpec(s, fig); err != nil || i1.Cached {
		t.Fatalf("figure partial first run: %v cached=%v", err, i1.Cached)
	}
	if _, i2, err := run.ExecuteSpec(s, fig); err != nil || !i2.Cached {
		t.Fatalf("figure partial second run: %v cached=%v, want hit", err, i2.Cached)
	}

	// Retention keys separately: the same range with keep_trial_values set
	// must miss the unretained entry and store its own retained partial —
	// serving the unretained aggregate to a retention job would hand its
	// Finalize empty trial data.
	kept := rangeSpec(scenSpec("multilat-town", 1, 8, 2), 2, 6)
	kept.KeepTrialValues = true
	keptRes, keptInfo, err := run.ExecuteSpec(s, kept)
	if err != nil {
		t.Fatal(err)
	}
	if keptInfo.Cached {
		t.Error("retention partial served the unretained range's cache entry")
	}
	if keptInfo.CacheKey == info.CacheKey {
		t.Error("retained and unretained partials share a cache key")
	}
	if keptRes.Partial == nil || !keptRes.Partial.Retained {
		t.Fatalf("retention partial result %+v, want Retained", keptRes.Partial)
	}
	if _, again2, err := run.ExecuteSpec(s, kept); err != nil || !again2.Cached {
		t.Errorf("retention partial rerun: %v cached=%v, want hit on its own key", err, again2.Cached)
	}
}
