package run

// Prefix-reuse planner: before computing a full cacheable run from scratch,
// probe the cache for surviving range-keyed entries of the same content
// address (including entries banked under a *different* full trial count —
// per-trial computation depends only on scenario, seed, and trial index, so
// a partial of an old N is bit-valid under a new N whenever its shard
// geometry still lines up; see engine.AdaptPartial). Select a maximal
// disjoint chain of cached ranges, execute only the uncovered gaps, and
// merge — so extending a cached 1024-trial run to 4096 trials computes only
// trials [1024, 4096), byte-identical (modulo execution metadata) to a cold
// 4096-trial run.
//
// Every executed gap is banked under its own range key before the merge, and
// the merged result under the full key — which is what makes the *next*
// extension incremental: the full-key entry stores a finalized result with
// no mergeable shard state, so the range entries are the planner's entire
// raw material.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"resilientloc/internal/engine"
	"resilientloc/internal/engine/cache"
	"resilientloc/internal/engine/spec"
	"resilientloc/internal/obs"
)

// obsReusedTrials counts trials the planner satisfied from cached range
// entries instead of recomputing — the fleet-wide measure of how much work
// incremental extension is saving.
var obsReusedTrials = obs.Default().Counter("run_reused_trials_total")

// reusePlan is the planner's schedule for one job: cached partials to merge
// as-is and the uncovered gaps to compute, together tiling [0, trials)
// exactly, in range order.
type reusePlan struct {
	parts        []*engine.Partial
	gaps         []spec.Range
	reusedTrials int
	reusedRanges int
}

// coldPlan is the schedule with nothing reusable: one gap covering the whole
// trial space.
func coldPlan(trials int) reusePlan {
	return reusePlan{gaps: []spec.Range{{Lo: 0, Hi: trials}}}
}

// planReuse probes the cache for range entries sharing key's content address
// (any stamped trial count) and greedily builds a disjoint chain: at each
// uncovered cursor, take the widest cached range starting exactly there
// (preferring same-N entries on width ties, which adapt trivially); where
// none starts, open a gap up to the next candidate. Entries that fail to
// fetch or adapt are skipped in place, so a half-evicted cache degrades to
// wider gaps, never to an error.
func (s *Session) planReuse(key cache.Key, trials int, name string) reusePlan {
	entries, err := s.cache.RangeEntries(key)
	if err != nil || len(entries) == 0 {
		return coldPlan(trials)
	}
	var plan reusePlan
	used := make([]bool, len(entries))
	cursor := 0
	for cursor < trials {
		best := -1
		for i, e := range entries {
			if used[i] || e.Lo != cursor || e.Hi > trials {
				continue
			}
			if best < 0 || e.Hi > entries[best].Hi ||
				(e.Hi == entries[best].Hi && e.Trials == trials && entries[best].Trials != trials) {
				best = i
			}
		}
		if best < 0 {
			// No cached range starts at the cursor: compute up to the next
			// point where one does.
			next := trials
			for i, e := range entries {
				if !used[i] && e.Lo > cursor && e.Lo < next {
					next = e.Lo
				}
			}
			plan.gaps = append(plan.gaps, spec.Range{Lo: cursor, Hi: next})
			cursor = next
			continue
		}
		used[best] = true
		e := entries[best]
		p, ok := s.fetchRange(key, e, trials, name)
		if !ok {
			// Retry the same cursor against the remaining candidates.
			continue
		}
		plan.parts = append(plan.parts, p)
		plan.reusedTrials += e.Hi - e.Lo
		plan.reusedRanges++
		cursor = e.Hi
	}
	return plan
}

// fetchRange loads one enumerated range entry and adapts it to the job's
// trial count. A miss (evicted between probe and fetch), an undecodable
// value, or a geometry that no longer lines up under the new trial count all
// report !ok — the planner treats the entry as absent.
func (s *Session) fetchRange(base cache.Key, e cache.RangeEntry, trials int, name string) (*engine.Partial, bool) {
	k := base
	k.Trials = e.Trials
	k.RangeLo, k.RangeHi = e.Lo, e.Hi
	var val spec.Value
	hit, err := s.cache.Get(k, &val)
	if err != nil || !hit || val.Partial == nil {
		return nil, false
	}
	if err := engine.AdaptPartial(val.Partial, trials); err != nil {
		fmt.Fprintf(s.warn, "warning: %s: skipping cached range [%d, %d): %v\n", name, e.Lo, e.Hi, err)
		return nil, false
	}
	return val.Partial, true
}

// executePlanned is the planner-driven replacement for the classic full-run
// path: plan against the cache, execute the gaps, merge, finalize, and bank
// both the gap partials (range keys) and the merged result (full key). The
// caller holds the key lock and has already missed on the full key.
func (s *Session) executePlanned(ctx context.Context, jobSpan *obs.Span, job spec.Resolved, key cache.Key, keyHash string, trials, shardSize int, start time.Time) (*spec.Value, Info, error) {
	name := job.Campaign.Scenario.Name

	_, planSpan := obs.Start(ctx, "run.plan")
	plan := s.planReuse(key, trials, name)
	if planSpan != nil {
		planSpan.SetAttr("job", job.Spec.Hash()).SetAttr("reused_trials", plan.reusedTrials).
			SetAttr("reused_ranges", plan.reusedRanges).SetAttr("gaps", len(plan.gaps))
	}
	planSpan.End()
	if plan.reusedTrials > 0 {
		obsReusedTrials.Add(int64(plan.reusedTrials))
		if jobSpan != nil {
			jobSpan.SetAttr("reused_trials", plan.reusedTrials)
		}
	}

	res, err := s.runPlan(ctx, job, key, trials, plan)
	if err != nil && plan.reusedTrials > 0 && ctx.Err() == nil {
		// Every reused entry decoded and adapted cleanly, yet the plan still
		// failed downstream — a cache inconsistency deeper than the per-entry
		// checks. Recompute from scratch rather than failing a job the
		// classic path would have completed.
		fmt.Fprintf(s.warn, "warning: %s: discarding %d cached trials after plan failure: %v\n",
			name, plan.reusedTrials, err)
		plan = coldPlan(trials)
		res, err = s.runPlan(ctx, job, key, trials, plan)
	}
	if err != nil {
		return nil, Info{}, err
	}

	executed := trials - plan.reusedTrials
	workers := 0
	if executed > 0 {
		// Mirror the engine's effective pool size for the report's execution
		// metadata (display only — normalized out of the stored entry).
		workers = s.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if shards := (trials + shardSize - 1) / shardSize; workers > shards {
			workers = shards
		}
	}
	res.ClearExecutionMeta()
	_ = s.cache.Put(key, res)
	res.SetExecutionMeta(workers, time.Since(start).Seconds())
	return res, Info{
		Cached:       executed == 0,
		Trials:       trials,
		ReusedTrials: plan.reusedTrials,
		Elapsed:      time.Since(start),
		CacheKey:     keyHash,
	}, nil
}

// runPlan executes a plan's gaps (banking each under its range key), merges
// them with the reused partials, and finalizes the campaign's full result.
// Progress reports cover the whole trial space: reused trials count as done
// from the start, and each gap's counters are offset by everything covered
// before it.
func (s *Session) runPlan(ctx context.Context, job spec.Resolved, key cache.Key, trials int, plan reusePlan) (*spec.Value, error) {
	c := job.Campaign
	cb := s.progressCallback(c.Scenario.Name, job.Spec.Hash())
	parts := make([]*engine.Partial, 0, len(plan.parts)+len(plan.gaps))
	parts = append(parts, plan.parts...)
	covered := plan.reusedTrials
	for _, g := range plan.gaps {
		var progress func(done, total int)
		if cb != nil {
			base := covered
			progress = func(done, total int) { cb(base+done, trials) }
		}
		runner, err := engine.NewRunner(engine.Config{
			Workers:   s.opts.Workers,
			Trials:    job.Spec.Trials,
			Seed:      job.Spec.Seed,
			ShardSize: job.Spec.ShardSize,
			Progress:  progress,
			Budget:    engine.SharedBudget(),
		})
		if err != nil {
			return nil, err
		}
		p, err := engine.RunCampaignPartialContext(ctx, runner, c, g.Lo, g.Hi)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.trialsExecuted += g.Hi - g.Lo
		s.mu.Unlock()
		// Bank the gap before the merge: a crash past this point still leaves
		// the range on disk for the next attempt to reuse. Best-effort, like
		// every Put.
		rk := key
		rk.RangeLo, rk.RangeHi = g.Lo, g.Hi
		_ = s.cache.Put(rk, &spec.Value{Partial: p})
		parts = append(parts, p)
		covered += g.Hi - g.Lo
	}
	rep, err := engine.MergePartials(parts)
	if err != nil {
		return nil, err
	}
	return engine.FinalizeCampaign(c, rep)
}
