package run_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"resilientloc/internal/engine/params"
	"resilientloc/internal/engine/run"
	"resilientloc/internal/engine/spec"
)

// autoSpec wraps a grid scenario in auto-trials mode: no fixed count, a CI
// target on avg_error_m. The grid is 5×6 — large enough that some trials
// localize, so the stopping metric has real trial-to-trial variance (the
// grid's headline "pairs" metric is a constant, whose CI is zero-width).
func autoSpec(seed int64, target float64, maxTrials int) spec.JobSpec {
	sp := gridSpec(seed, 0)
	sp.Params = params.Map{"rows": params.Num(5), "cols": params.Num(6)}
	sp.AutoTrials = &spec.AutoTrials{CITarget: target, Metric: "avg_error_m", MaxTrials: maxTrials}
	return sp
}

// TestAutoTrialsStopsWhenTargetMet: a generous CI target is satisfied by the
// scenario's default trial count, so the sequence is a single round.
func TestAutoTrialsStopsWhenTargetMet(t *testing.T) {
	s := newSession(t, run.Options{CacheDir: filepath.Join(t.TempDir(), "cache")})
	res, info, err := run.ExecuteSpec(s, autoSpec(1, 1e9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("auto run returned no report")
	}
	// multilat-grid's default count is its scenario default; the single
	// round must not have doubled past it.
	if res.Report.Trials != info.Trials || s.TrialsExecuted() != info.Trials {
		t.Errorf("single round: report %d, info %d, executed %d — want all equal",
			res.Report.Trials, info.Trials, s.TrialsExecuted())
	}
}

// TestAutoTrialsDoublesIncrementally is the auto-mode acceptance check: an
// unreachable target with a 64-trial cap runs the doubling ladder 8 → 16 →
// 32 → 64, each round a prefix extension of the last, so the whole sequence
// executes exactly 64 trials — not 8+16+32+64 — warns about the missed
// target, and its final bytes equal an explicit 64-trial run's.
func TestAutoTrialsDoublesIncrementally(t *testing.T) {
	var warnings bytes.Buffer
	s := newSession(t, run.Options{
		CacheDir: filepath.Join(t.TempDir(), "cache"),
		Warnings: &warnings,
	})
	res, info, err := run.ExecuteSpec(s, autoSpec(2, 1e-12, 64))
	if err != nil {
		t.Fatal(err)
	}
	if info.Trials != 64 || res.Report.Trials != 64 {
		t.Fatalf("capped sequence ended at %d trials (report %d), want 64", info.Trials, res.Report.Trials)
	}
	if got := s.TrialsExecuted(); got != 64 {
		t.Errorf("doubling sequence executed %d trials, want exactly 64 (each round reuses the last)", got)
	}
	if !strings.Contains(warnings.String(), "above target") {
		t.Errorf("missed-target warning not printed; warnings: %q", warnings.String())
	}

	cold := newSession(t, run.Options{NoCache: true})
	fixed := autoSpec(2, 0, 0)
	fixed.AutoTrials = nil
	fixed.Trials = 64
	want, _, err := run.ExecuteSpec(cold, fixed)
	if err != nil {
		t.Fatal(err)
	}
	res.ClearExecutionMeta()
	want.ClearExecutionMeta()
	if !jsonEqual(t, res.Report, want.Report) {
		t.Error("auto-trials final report diverged from the explicit fixed-count run")
	}
}

// TestAutoTrialsResumesAcrossSessions: the rounds are ordinary cacheable
// jobs, so a second auto invocation over the same cache replays the ladder
// from cache without recomputing anything.
func TestAutoTrialsResumesAcrossSessions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	first := newSession(t, run.Options{CacheDir: dir})
	if _, _, err := run.ExecuteSpec(first, autoSpec(3, 1e-12, 32)); err != nil {
		t.Fatal(err)
	}

	second := newSession(t, run.Options{CacheDir: dir})
	_, info, err := run.ExecuteSpec(second, autoSpec(3, 1e-12, 32))
	if err != nil {
		t.Fatal(err)
	}
	if got := second.TrialsExecuted(); got != 0 {
		t.Errorf("repeat auto run executed %d trials, want 0 (all rounds cached)", got)
	}
	if !info.Cached {
		t.Errorf("repeat auto run's final round not reported cached: %+v", info)
	}
}

// TestAutoTrialsValidation: malformed auto specs fail up front, and a
// stopping metric the report does not carry fails on round one instead of
// silently running to the cap.
func TestAutoTrialsValidation(t *testing.T) {
	s := newSession(t, run.Options{NoCache: true})

	bad := autoSpec(1, 0, 0) // non-positive target
	if _, _, err := run.ExecuteSpec(s, bad); err == nil {
		t.Error("zero CI target accepted")
	}

	fixed := autoSpec(1, 0.5, 0)
	fixed.Trials = 100 // auto and fixed counts are mutually exclusive
	if _, _, err := run.ExecuteSpec(s, fixed); err == nil {
		t.Error("auto spec with a fixed trial count accepted")
	}

	typo := autoSpec(1, 1e9, 0)
	typo.AutoTrials.Metric = "no-such-metric"
	if _, _, err := run.ExecuteSpec(s, typo); err == nil ||
		!strings.Contains(err.Error(), "no metric") {
		t.Errorf("unknown stopping metric: err %v, want round-one failure", err)
	}
}
